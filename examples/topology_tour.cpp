// Topology tour: prints the machine presets, a thread placement, the teams
// derived from it, castability domains under each backend, and the
// sub-thread slots a hybrid configuration would occupy — the "hardware
// topology exposed to the application" story of thesis §3.2.
//
//   ./topology_tour [--machine lehman|pyramid] [--nodes 2] [--threads 8]
#include <cstdio>

#include "core/core.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"
#include "util/cli.hpp"

using namespace hupc;  // NOLINT

namespace {

void describe(const topo::MachineSpec& m) {
  std::printf("machine '%s': %d nodes x %d sockets x %d cores x %d SMT = %d "
              "hardware threads\n",
              m.name.c_str(), m.nodes, m.sockets_per_node, m.cores_per_socket,
              m.smt_per_core, m.total_hwthreads());
  std::printf("  core: %.2f GHz x %.0f flops/cycle = %.1f GF/s peak; node "
              "peak %.1f GF/s\n",
              m.clock_ghz, m.flops_per_cycle, m.core_flops() / 1e9,
              m.core_flops() * m.cores_per_node() / 1e9);
  std::printf("  caches: L1d %zu KiB, L2 %zu KiB/core, L3 %zu MiB/socket\n",
              m.cache.l1d_per_core / 1024, m.cache.l2_per_core / 1024,
              m.cache.l3_per_socket / (1024 * 1024));
  std::printf("  memory: %.1f GB/s/socket, interconnect %.1f GB/s/dir, NUMA "
              "penalty %.2fx, SMT throughput %.2fx\n\n",
              m.socket_mem_bw / 1e9, m.interconnect_bw / 1e9, m.numa_penalty,
              m.smt_throughput);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string name = cli.get("machine", "lehman");
  const int nodes = static_cast<int>(cli.get_int("nodes", 2));
  const int threads = static_cast<int>(cli.get_int("threads", 8));
  cli.reject_unread("topology_tour");

  if (name != "pyramid" && name != "lehman") {
    std::fprintf(stderr,
                 "topology_tour: error: unknown machine preset '%s' "
                 "(expected pyramid|lehman)\n",
                 name.c_str());
    return 2;
  }
  const topo::MachineSpec machine =
      name == "pyramid" ? topo::pyramid(nodes) : topo::lehman(nodes);
  describe(machine);

  sim::Engine engine;
  gas::Config config;
  config.machine = machine;
  config.threads = threads;
  gas::Runtime rt(engine, config);

  std::printf("placement of %d UPC threads (cyclic-by-socket):\n", threads);
  for (int r = 0; r < threads; ++r) {
    const auto loc = rt.loc_of(r);
    std::printf("  rank %2d -> node %d socket %d core %d smt %d\n", r, loc.node,
                loc.socket, loc.core, loc.smt);
  }

  std::printf("\nnode teams:\n");
  for (const auto& team : core::Team::all_node_teams(rt)) {
    std::printf("  node team:");
    for (int r : team.ranks()) std::printf(" %d", r);
    std::printf("\n");
  }
  std::printf("socket teams on node 0:\n");
  for (int s = 0; s < machine.sockets_per_node; ++s) {
    const auto team = core::Team::socket_team(rt, 0, s);
    std::printf("  socket %d:", s);
    for (int r : team.ranks()) std::printf(" %d", r);
    std::printf("\n");
  }

  std::printf("\ncastability from rank 0 (PSHM on): ");
  for (int r = 0; r < threads; ++r) {
    std::printf("%d:%s ", r, rt.same_supernode(0, r) ? "yes" : "no");
  }
  std::printf("\n\nsub-thread slots for a 4-wide pool under rank 0:\n");
  rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
    if (t.rank() == 0) {
      core::SubPool pool(t, 4);
      for (int i = 0; i < pool.width(); ++i) {
        const auto loc = pool.context(i).loc();
        std::printf("  sub %d -> node %d socket %d core %d smt %d%s\n", i,
                    loc.node, loc.socket, loc.core, loc.smt,
                    i == 0 ? "  (master's own slot)" : "");
      }
    }
    co_return;
  });
  rt.run_to_completion();
  return 0;
}
