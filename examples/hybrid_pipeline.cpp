// Hierarchical execution pipeline — the Chapter 4 model in miniature.
//
// Each UPC master owns a slice of a distributed dataset; per round it
// (a) fans the compute out to its sub-thread pool (dynamic schedule — the
// work items are deliberately imbalanced), then (b) funnels one reduction
// value to rank 0 through the global address space. Demonstrates
// sub-threads reading shared data directly — the PGAS-over-threads
// convenience MPI+OpenMP lacks — under a chosen thread-safety level.
//
//   ./hybrid_pipeline [--threads 4] [--nodes 2] [--subs 4] [--rounds 3]
#include <cstdio>
#include <vector>

#include "core/core.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace hupc;  // NOLINT

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const int nodes = static_cast<int>(cli.get_int("nodes", 2));
  const int subs = static_cast<int>(cli.get_int("subs", 4));
  const int rounds = static_cast<int>(cli.get_int("rounds", 3));
  cli.reject_unread("hybrid_pipeline");
  const std::size_t items_per_rank = 64;

  sim::Engine engine;
  gas::Config config;
  config.machine = topo::lehman(nodes);
  config.threads = threads;
  gas::Runtime rt(engine, config);

  // Distributed dataset: each rank's slice holds "work sizes"; results
  // gather into rank 0's inbox, one slot per (round, rank).
  auto work = rt.heap().all_alloc<double>(
      items_per_rank * static_cast<std::size_t>(threads), items_per_rank);
  auto inbox = rt.heap().alloc<double>(
      0, static_cast<std::size_t>(rounds) * static_cast<std::size_t>(threads));

  util::Xoshiro256ss rng(7);
  for (std::size_t i = 0; i < work.size(); ++i) {
    *work.at(i).raw = 0.5 + 4.5 * rng.uniform();  // imbalanced item costs (us)
  }

  rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
    core::SubPool pool(t, subs, core::SubModel::openmp,
                       core::ThreadSafety::serialized);
    const double* slice = work.slice(t.rank());
    for (int round = 0; round < rounds; ++round) {
      double partial = 0.0;
      // Fan out: dynamic schedule soaks up the imbalance.
      co_await pool.parallel_for(
          items_per_rank, core::Schedule::dynamic,
          [&partial, slice](core::SubContext& c, std::size_t lo,
                            std::size_t hi) -> sim::Task<void> {
            double local = 0.0;
            double cost_us = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
              local += slice[i] * slice[i];
              cost_us += slice[i];
            }
            co_await c.compute(cost_us * 1e-6);
            partial += local;  // single-threaded simulator: no race
          },
          /*chunk=*/4);
      // Funnel: the master deposits the round result into rank 0's inbox.
      gas::GlobalPtr<double> slot =
          inbox + (round * t.threads() + t.rank());
      co_await t.put(slot, partial);
      co_await t.barrier();
      if (t.rank() == 0) {
        double total = 0.0;
        for (int r = 0; r < t.threads(); ++r) {
          total += inbox.raw[round * t.threads() + r];
        }
        std::printf("round %d: global sum of squares = %.4f (t = %.1f us)\n",
                    round, total, sim::to_micros(rt.engine().now()));
      }
      co_await t.barrier();
    }
  });
  rt.run_to_completion();

  std::printf("done in %.3f ms virtual time (%d masters x %d subs)\n",
              sim::to_seconds(engine.now()) * 1e3, threads, subs);
  return 0;
}
