// 1-D heat diffusion with halo exchange — a teams + privatization showcase.
//
// The rod is block-distributed over UPC threads. Each step every thread
// updates its block with a 3-point stencil; halo cells come from the
// neighbours either through upc-style memgets (portable) or through
// privatized pointers when the neighbour is shared-memory reachable (the
// thesis's pointer-table optimization). Both variants must agree with a
// serial reference to machine precision, and the privatized variant is
// faster in virtual time.
//
// With --async=on a third variant runs: halos are PUSHED with copy_async
// into neighbour mailboxes and the interior update overlaps the transfers
// (split-phase producer-push, thesis §4.2's overlap idiom on the new
// completion layer). It must match the same serial reference.
//
// A team-scoped reduction epilogue sums the rod's energy through the
// algorithm-selecting collectives (gas::reduce_gather over a world team,
// plus per-node/per-socket subteam sums under --team-split), verified
// against a host-side fold.
//
// With --vis=on a 2-D column-distributed stencil runs as well: each rank
// owns a vertical strip of the plate, so the halo a neighbour needs is an
// edge COLUMN — ny elements strided by the strip width. The exchange runs
// twice, once with per-element puts and once as a single packed
// gas::copy_strided message per neighbour, and the two grids must be
// bit-identical after every step.
//
//   ./heat_stencil [--threads N] [--nodes M] [--cells 4096] [--steps 200]
//                  [--async=on|off] [--coll-algo=auto|flat|hier|ring|dissem]
//                  [--team-split=none|node|socket] [--vis=on|off]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "async/future.hpp"
#include "core/core.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"
#include "util/cli.hpp"

using namespace hupc;  // NOLINT

namespace {

constexpr double kAlpha = 0.25;  // diffusion number (stable for explicit)

std::vector<double> serial_reference(std::size_t cells, int steps) {
  std::vector<double> u(cells), next(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    u[i] = i < cells / 2 ? 1.0 : 0.0;  // step initial condition
  }
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < cells; ++i) {
      const double left = i == 0 ? u[0] : u[i - 1];
      const double right = i == cells - 1 ? u[cells - 1] : u[i + 1];
      next[i] = u[i] + kAlpha * (left - 2.0 * u[i] + right);
    }
    std::swap(u, next);
  }
  return u;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int threads = static_cast<int>(cli.get_int("threads", 8));
  const int nodes = static_cast<int>(cli.get_int("nodes", 2));
  const auto cells = static_cast<std::size_t>(cli.get_int("cells", 4096));
  const int steps = static_cast<int>(cli.get_int("steps", 200));
  const std::string async_opt = cli.get("async", "off");
  const std::string coll_algo_opt = cli.get("coll-algo", "auto");
  const std::string team_split = cli.get("team-split", "none");
  const std::string vis_opt = cli.get("vis", "off");
  cli.reject_unread("heat_stencil");
  if (vis_opt != "on" && vis_opt != "off") {
    std::fprintf(stderr,
                 "heat_stencil: error: unknown --vis value '%s' "
                 "(expected on|off)\n",
                 vis_opt.c_str());
    return 2;
  }
  if (async_opt != "on" && async_opt != "off") {
    std::printf("unknown --async value '%s' (expected on|off)\n",
                async_opt.c_str());
    return 1;
  }
  const auto coll_algo = gas::parse_coll_algo(coll_algo_opt);
  if (!coll_algo) {
    std::fprintf(stderr,
                 "heat_stencil: error: unknown --coll-algo value '%s' "
                 "(expected auto|flat|hier|ring|dissem)\n",
                 coll_algo_opt.c_str());
    return 2;
  }
  if (team_split != "none" && team_split != "node" && team_split != "socket") {
    std::fprintf(stderr,
                 "heat_stencil: error: unknown --team-split value '%s' "
                 "(expected none|node|socket)\n",
                 team_split.c_str());
    return 2;
  }
  const bool run_async = async_opt == "on";
  const std::size_t per = cells / static_cast<std::size_t>(threads);
  if (per * static_cast<std::size_t>(threads) != cells) {
    std::printf("cells must divide by threads\n");
    return 1;
  }

  const auto reference = serial_reference(cells, steps);

  for (const bool privatized : {false, true}) {
    sim::Engine engine;
    gas::Config config;
    config.machine = topo::lehman(nodes);
    config.threads = threads;
    gas::Runtime rt(engine, config);

    // Two block-distributed buffers (ping-pong).
    auto u = rt.heap().all_alloc<double>(cells, per);
    auto v = rt.heap().all_alloc<double>(cells, per);

    rt.spmd([&, privatized](gas::Thread& t) -> sim::Task<void> {
      const auto base = static_cast<std::size_t>(t.rank()) * per;
      double* mine_u = u.slice(t.rank());
      double* mine_v = v.slice(t.rank());
      for (std::size_t i = 0; i < per; ++i) {
        mine_u[i] = base + i < cells / 2 ? 1.0 : 0.0;
      }
      co_await t.barrier();

      double* cur = mine_u;
      double* nxt = mine_v;
      auto cur_arr = &u;
      for (int s = 0; s < steps; ++s) {
        // Halo exchange: one value from each side.
        double left_halo = cur[0], right_halo = cur[per - 1];
        if (t.rank() > 0) {
          const auto idx = base - 1;
          if (double* p = privatized ? t.cast(cur_arr->at(idx)) : nullptr) {
            left_halo = *p;
            co_await t.compute(2e-9);  // a plain load
          } else {
            left_halo = co_await t.get(cur_arr->at(idx));
          }
        }
        if (t.rank() + 1 < t.threads()) {
          const auto idx = base + per;
          if (double* p = privatized ? t.cast(cur_arr->at(idx)) : nullptr) {
            right_halo = *p;
            co_await t.compute(2e-9);
          } else {
            right_halo = co_await t.get(cur_arr->at(idx));
          }
        }
        // Everyone's halo reads must finish before anyone overwrites the
        // buffer being read (the classic second barrier of ping-pong codes).
        co_await t.barrier();
        // Stencil update (real arithmetic + charged compute).
        for (std::size_t i = 0; i < per; ++i) {
          const double l = i == 0 ? left_halo : cur[i - 1];
          const double r = i == per - 1 ? right_halo : cur[i + 1];
          nxt[i] = cur[i] + kAlpha * (l - 2.0 * cur[i] + r);
        }
        co_await t.compute(static_cast<double>(per) * 4.0 /
                           (t.runtime().config().machine.core_flops() * 0.5));
        co_await t.barrier();
        std::swap(cur, nxt);
        cur_arr = cur_arr == &u ? &v : &u;
      }
      co_return;
    });
    rt.run_to_completion();

    // Verify against the serial reference.
    const auto& result_arr = steps % 2 == 0 ? u : v;
    double max_err = 0.0;
    for (int r = 0; r < threads; ++r) {
      const double* slab = result_arr.slice(r);
      for (std::size_t i = 0; i < per; ++i) {
        max_err = std::max(
            max_err,
            std::abs(slab[i] - reference[static_cast<std::size_t>(r) * per + i]));
      }
    }
    std::printf("%-12s %zu cells, %d steps, %d threads: max err %.2e, "
                "virtual time %.3f ms\n",
                privatized ? "privatized" : "upc-get", cells, steps, threads,
                max_err, sim::to_seconds(engine.now()) * 1e3);
    if (max_err > 1e-12) return 1;
  }

  if (run_async) {
    // Producer-push variant on the completion layer: each rank PUSHES its
    // edge cells into neighbour mailboxes with copy_async, updates its
    // interior while the puts are in flight, then settles the futures with
    // when_all before touching the boundary cells.
    sim::Engine engine;
    gas::Config config;
    config.machine = topo::lehman(nodes);
    config.threads = threads;
    gas::Runtime rt(engine, config);

    auto u = rt.heap().all_alloc<double>(cells, per);
    auto v = rt.heap().all_alloc<double>(cells, per);
    // Per-rank halo in-boxes: lbox[r] holds r's left halo (written by
    // r-1), rbox[r] its right halo (written by r+1).
    auto lbox = rt.heap().all_alloc<double>(static_cast<std::size_t>(threads),
                                            1);
    auto rbox = rt.heap().all_alloc<double>(static_cast<std::size_t>(threads),
                                            1);

    rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
      const auto base = static_cast<std::size_t>(t.rank()) * per;
      double* mine_u = u.slice(t.rank());
      double* mine_v = v.slice(t.rank());
      for (std::size_t i = 0; i < per; ++i) {
        mine_u[i] = base + i < cells / 2 ? 1.0 : 0.0;
      }
      co_await t.barrier();

      double* cur = mine_u;
      double* nxt = mine_v;
      for (int s = 0; s < steps; ++s) {
        // Snapshot the edges (the puts must not observe this step's
        // updates) and push them to the neighbours' mailboxes.
        const double left_edge = cur[0];
        const double right_edge = cur[per - 1];
        std::vector<async::future<>> puts;
        if (t.rank() > 0) {
          puts.push_back(t.copy_async(rbox.at(t.rank() - 1), &left_edge, 1));
        }
        if (t.rank() + 1 < t.threads()) {
          puts.push_back(t.copy_async(lbox.at(t.rank() + 1), &right_edge, 1));
        }
        // Interior update overlaps the in-flight halo puts.
        for (std::size_t i = 1; i + 1 < per; ++i) {
          nxt[i] = cur[i] + kAlpha * (cur[i - 1] - 2.0 * cur[i] + cur[i + 1]);
        }
        co_await t.compute(static_cast<double>(per) * 4.0 /
                           (t.runtime().config().machine.core_flops() * 0.5));
        co_await async::when_all(std::move(puts)).wait();
        co_await t.barrier();  // every mailbox is filled past this point
        const double left_halo =
            t.rank() > 0 ? *lbox.at(t.rank()).raw : cur[0];
        const double right_halo =
            t.rank() + 1 < t.threads() ? *rbox.at(t.rank()).raw : cur[per - 1];
        nxt[0] = cur[0] + kAlpha * (left_halo - 2.0 * cur[0] +
                                    (per > 1 ? cur[1] : right_halo));
        if (per > 1) {
          nxt[per - 1] = cur[per - 1] + kAlpha * (cur[per - 2] -
                                                  2.0 * cur[per - 1] +
                                                  right_halo);
        }
        // Nobody may refill a mailbox before its owner consumed it.
        co_await t.barrier();
        std::swap(cur, nxt);
      }
      co_return;
    });
    rt.run_to_completion();

    const auto& result_arr = steps % 2 == 0 ? u : v;
    double max_err = 0.0;
    for (int r = 0; r < threads; ++r) {
      const double* slab = result_arr.slice(r);
      for (std::size_t i = 0; i < per; ++i) {
        max_err = std::max(
            max_err,
            std::abs(slab[i] - reference[static_cast<std::size_t>(r) * per + i]));
      }
    }
    std::printf("%-12s %zu cells, %d steps, %d threads: max err %.2e, "
                "virtual time %.3f ms\n",
                "async-halo", cells, steps, threads, max_err,
                sim::to_seconds(engine.now()) * 1e3);
    if (max_err > 1e-12) return 1;
  }

  // --- Team-scoped energy reduction (teams + selecting collectives) -----
  // The rod's total energy summed two ways: globally through the world
  // team's collective tree (gas::reduce_gather — the algorithm follows
  // --coll-algo through the selector), and per-subteam under --team-split
  // (world + subteams overlap on every rank, exercising per-(team,op)
  // collective matching). Both verified against host-side folds.
  {
    sim::Engine engine;
    gas::Config config;
    config.machine = topo::lehman(nodes);
    config.threads = threads;
    gas::Runtime rt(engine, config);
    auto rod = rt.heap().all_alloc<double>(cells, per);

    std::vector<int> everyone(static_cast<std::size_t>(threads));
    std::iota(everyone.begin(), everyone.end(), 0);
    core::Team world(rt, everyone);
    gas::CollectiveSelector sel;
    sel.override_algo = *coll_algo;
    auto world_coll = world.make_collectives(sel);
    std::vector<core::Team> subteams;
    if (team_split == "node") subteams = world.split_by_node();
    if (team_split == "socket") subteams = world.split_by_socket();
    std::vector<std::unique_ptr<gas::Collectives>> sub_colls;
    sub_colls.reserve(subteams.size());
    for (const auto& st : subteams) {
      sub_colls.push_back(
          std::make_unique<gas::Collectives>(st.make_collectives(sel)));
    }

    std::vector<double> global_sum(static_cast<std::size_t>(threads), 0.0);
    std::vector<double> team_sum(static_cast<std::size_t>(threads), 0.0);
    const auto plus = [](double a, double b) { return a + b; };
    rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
      const auto base = static_cast<std::size_t>(t.rank()) * per;
      double* mine = rod.slice(t.rank());
      for (std::size_t i = 0; i < per; ++i) {
        mine[i] = base + i < cells / 2 ? 1.0 : 0.0;
      }
      co_await t.barrier();
      global_sum[static_cast<std::size_t>(t.rank())] =
          co_await gas::reduce_gather(t, world_coll, rod, 0.0, plus);
      for (std::size_t k = 0; k < subteams.size(); ++k) {
        if (!subteams[k].contains(t.rank())) continue;
        double local = 0.0;
        for (std::size_t i = 0; i < per; ++i) local += mine[i];
        team_sum[static_cast<std::size_t>(t.rank())] =
            co_await sub_colls[k]->allreduce_value(t, local, plus);
      }
      co_return;
    });
    rt.run_to_completion();

    const double expected = static_cast<double>(cells / 2);
    double max_err = 0.0;
    for (int r = 0; r < threads; ++r) {
      max_err = std::max(
          max_err,
          std::abs(global_sum[static_cast<std::size_t>(r)] - expected));
    }
    for (const auto& st : subteams) {
      double host = 0.0;
      for (int r : st.ranks()) {
        for (std::size_t i = 0; i < per; ++i) {
          host += static_cast<std::size_t>(r) * per + i < cells / 2 ? 1.0 : 0.0;
        }
      }
      for (int r : st.ranks()) {
        max_err = std::max(
            max_err, std::abs(team_sum[static_cast<std::size_t>(r)] - host));
      }
    }
    std::printf("%-12s %zu cells, %d threads: energy err %.2e "
                "(coll-algo %s, team-split %s, %zu subteams)\n",
                "team-reduce", cells, threads, max_err,
                gas::coll_algo_name(*coll_algo), team_split.c_str(),
                subteams.size());
    if (max_err > 1e-9) return 1;
  }

  // --- 2-D column-distributed stencil (VIS halo exchange) ---------------
  // Each rank owns a ny2 x w2 vertical strip (row-major), so the halo a
  // neighbour needs is an edge column: ny2 elements strided by w2. The
  // element-loop variant pushes it with one put per row; the VIS variant
  // ships the same column as ONE packed strided message per neighbour.
  // Same arithmetic, same order — the final grids must be bit-identical.
  if (vis_opt == "on") {
    constexpr std::size_t kW2 = 8;       // columns per rank
    constexpr std::size_t kNy2 = 32;     // rows
    constexpr int kSteps2 = 10;
    constexpr double kAlpha2 = 0.125;
    auto run_2d = [&](bool use_vis) {
      sim::Engine engine;
      gas::Config config;
      config.machine = topo::lehman(nodes);
      config.threads = threads;
      gas::Runtime rt(engine, config);

      std::vector<gas::GlobalPtr<double>> strip, lhalo, rhalo;
      for (int r = 0; r < threads; ++r) {
        strip.push_back(rt.heap().alloc<double>(r, kNy2 * kW2));
        lhalo.push_back(rt.heap().alloc<double>(r, kNy2));
        rhalo.push_back(rt.heap().alloc<double>(r, kNy2));
      }
      rt.spmd([&, use_vis](gas::Thread& t) -> sim::Task<void> {
        const int me = t.rank();
        const int T = t.threads();
        double* cur = strip[static_cast<std::size_t>(me)].raw;
        for (std::size_t y = 0; y < kNy2; ++y) {
          for (std::size_t x = 0; x < kW2; ++x) {
            const std::size_t gx = static_cast<std::size_t>(me) * kW2 + x;
            cur[y * kW2 + x] =
                static_cast<double>((y * 31 + gx * 17) % 7) * 0.125;
          }
        }
        std::vector<double> next(kNy2 * kW2);
        co_await t.barrier();

        for (int s = 0; s < kSteps2; ++s) {
          // Push my edge columns into the neighbours' halo boxes.
          if (me > 0) {
            gas::GlobalPtr<double> box = rhalo[static_cast<std::size_t>(me - 1)];
            if (use_vis) {
              co_await t.copy_strided(box, gas::StridedSpec::contiguous(kNy2),
                                      cur, gas::StridedSpec::rows(1, kNy2, kW2));
            } else {
              for (std::size_t y = 0; y < kNy2; ++y) {
                co_await t.put(gas::GlobalPtr<double>{box.owner, box.raw + y},
                               cur[y * kW2]);
              }
            }
          }
          if (me + 1 < T) {
            gas::GlobalPtr<double> box = lhalo[static_cast<std::size_t>(me + 1)];
            if (use_vis) {
              co_await t.copy_strided(box, gas::StridedSpec::contiguous(kNy2),
                                      cur + (kW2 - 1),
                                      gas::StridedSpec::rows(1, kNy2, kW2));
            } else {
              for (std::size_t y = 0; y < kNy2; ++y) {
                co_await t.put(gas::GlobalPtr<double>{box.owner, box.raw + y},
                               cur[y * kW2 + kW2 - 1]);
              }
            }
          }
          co_await t.barrier();  // every halo box is filled
          const double* lh = lhalo[static_cast<std::size_t>(me)].raw;
          const double* rh = rhalo[static_cast<std::size_t>(me)].raw;
          for (std::size_t y = 0; y < kNy2; ++y) {
            for (std::size_t x = 0; x < kW2; ++x) {
              const double c = cur[y * kW2 + x];
              const double up = y > 0 ? cur[(y - 1) * kW2 + x] : c;
              const double dn = y + 1 < kNy2 ? cur[(y + 1) * kW2 + x] : c;
              const double lf = x > 0 ? cur[y * kW2 + x - 1]
                                      : (me > 0 ? lh[y] : c);
              const double rg = x + 1 < kW2 ? cur[y * kW2 + x + 1]
                                            : (me + 1 < T ? rh[y] : c);
              next[y * kW2 + x] = c + kAlpha2 * (up + dn + lf + rg - 4.0 * c);
            }
          }
          co_await t.compute(static_cast<double>(kNy2 * kW2) * 6.0 /
                             (t.runtime().config().machine.core_flops() * 0.5));
          std::memcpy(cur, next.data(), kNy2 * kW2 * sizeof(double));
          // Nobody may refill a halo box before its owner consumed it.
          co_await t.barrier();
        }
        co_return;
      });
      rt.run_to_completion();

      std::vector<double> dense(kNy2 * kW2 * static_cast<std::size_t>(threads));
      for (int r = 0; r < threads; ++r) {
        const double* s = strip[static_cast<std::size_t>(r)].raw;
        for (std::size_t y = 0; y < kNy2; ++y) {
          std::memcpy(dense.data() +
                          (y * static_cast<std::size_t>(threads) +
                           static_cast<std::size_t>(r)) * kW2,
                      s + y * kW2, kW2 * sizeof(double));
        }
      }
      return dense;
    };

    const auto loop_grid = run_2d(false);
    const auto vis_grid = run_2d(true);
    const bool identical =
        std::memcmp(loop_grid.data(), vis_grid.data(),
                    loop_grid.size() * sizeof(double)) == 0;
    std::printf("%-12s %zux%zu plate, %d steps, %d threads: vis halo %s\n",
                "vis-2d", kNy2, kW2 * static_cast<std::size_t>(threads),
                kSteps2, threads,
                identical ? "bit-identical to element loop" : "MISMATCH");
    if (!identical) return 1;
  }
  return 0;
}
