// Distributed 3-D FFT with real data — the Chapter 4 application.
//
// Runs the slab-decomposed forward transform on the simulated PGAS runtime
// (both communication variants), verifies the spectrum against the serial
// oracle, then uses it to solve a 3-D Poisson problem spectrally:
//   lap(u) = f  ->  u_hat(k) = -f_hat(k) / |k|^2.
//
//   ./fft3d_solver [--threads N] [--nodes M] [--size 32] [--vis=on|off]
//
// --vis=on routes the transpose exchange through the VIS descriptor API
// (one packed strided message per peer per plane); off keeps the per-row
// contiguous copies. Both must match the serial oracle bit for bit.
#include <cmath>
#include <complex>
#include <cstdio>
#include <numbers>
#include <vector>

#include "fft/ft_real.hpp"
#include "fft/kernel.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"
#include "util/cli.hpp"

using namespace hupc;  // NOLINT

namespace {

double spectral_poisson_error(std::vector<fft::Complex> f_hat, int n) {
  // Solve in spectrum, inverse-transform, compare against the manufactured
  // solution u(x,y,z) = sin(2 pi x / n) sin(2 pi y / n) sin(2 pi z / n).
  const auto un = static_cast<std::size_t>(n);
  auto wavenumber = [n](std::size_t i) {
    const int k = static_cast<int>(i) <= n / 2 ? static_cast<int>(i)
                                               : static_cast<int>(i) - n;
    return 2.0 * std::numbers::pi * k / n;
  };
  for (std::size_t z = 0; z < un; ++z) {
    for (std::size_t x = 0; x < un; ++x) {
      for (std::size_t y = 0; y < un; ++y) {
        const double kx = wavenumber(x), ky = wavenumber(y), kz = wavenumber(z);
        const double k2 = kx * kx + ky * ky + kz * kz;
        auto& v = f_hat[(z * un + x) * un + y];
        v = k2 == 0.0 ? fft::Complex{0, 0} : -v / k2;
      }
    }
  }
  fft::fft_3d_serial(f_hat.data(), un, un, un, +1);
  const double scale = 1.0 / (static_cast<double>(n) * n * n);
  double max_err = 0.0;
  for (std::size_t z = 0; z < un; ++z) {
    for (std::size_t x = 0; x < un; ++x) {
      for (std::size_t y = 0; y < un; ++y) {
        const double s = 2.0 * std::numbers::pi / n;
        const double expected = -std::sin(s * static_cast<double>(x)) *
                                std::sin(s * static_cast<double>(y)) *
                                std::sin(s * static_cast<double>(z)) /
                                (3.0 * s * s);
        const auto got = f_hat[(z * un + x) * un + y] * scale;
        max_err = std::max(max_err, std::abs(got.real() - expected));
      }
    }
  }
  return max_err;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const int nodes = static_cast<int>(cli.get_int("nodes", 2));
  const int n = static_cast<int>(cli.get_int("size", 32));
  const std::string vis_opt = cli.get("vis", "off");
  cli.reject_unread("fft3d_solver");
  if (vis_opt != "on" && vis_opt != "off") {
    std::fprintf(stderr,
                 "fft3d_solver: error: unknown --vis value '%s' "
                 "(expected on|off)\n",
                 vis_opt.c_str());
    return 2;
  }
  const bool vis = vis_opt == "on";

  for (const auto variant :
       {fft::CommVariant::split_phase, fft::CommVariant::overlap}) {
    sim::Engine engine;
    gas::Config config;
    config.machine = topo::lehman(nodes);
    config.threads = threads;
    gas::Runtime rt(engine, config);

    fft::FtParams grid{n, n, n, 1, "example"};
    fft::FtReal ft(rt, grid, variant, vis);
    ft.fill_input(2026);

    // Serial oracle of the same input.
    std::vector<fft::Complex> oracle = ft.initial_grid();
    fft::fft_3d_serial(oracle.data(), static_cast<std::size_t>(n),
                       static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                       -1);

    rt.spmd([&ft](gas::Thread& t) -> sim::Task<void> { co_await ft.run(t); });
    rt.run_to_completion();

    const auto result = ft.gather_result();
    double max_diff = 0.0;
    for (std::size_t i = 0; i < result.size(); ++i) {
      max_diff = std::max(max_diff, std::abs(result[i] - oracle[i]));
    }
    std::printf(
        "%-12s %d^3 on %d threads/%d nodes (vis %s): max |distributed - "
        "serial| = %.2e, virtual time %.3f ms, %llu network messages\n",
        variant == fft::CommVariant::split_phase ? "split-phase" : "overlap", n,
        threads, nodes, vis_opt.c_str(), max_diff,
        sim::to_seconds(engine.now()) * 1e3,
        static_cast<unsigned long long>(rt.network().total_messages()));
    if (max_diff > 1e-8) return 1;
  }

  // Spectral Poisson solve with a manufactured RHS, all-serial demo of the
  // kernel library itself.
  {
    const auto un = static_cast<std::size_t>(n);
    std::vector<fft::Complex> f(un * un * un);
    const double s = 2.0 * std::numbers::pi / n;
    for (std::size_t z = 0; z < un; ++z) {
      for (std::size_t x = 0; x < un; ++x) {
        for (std::size_t y = 0; y < un; ++y) {
          f[(z * un + x) * un + y] = std::sin(s * static_cast<double>(x)) *
                                     std::sin(s * static_cast<double>(y)) *
                                     std::sin(s * static_cast<double>(z));
        }
      }
    }
    fft::fft_3d_serial(f.data(), un, un, un, -1);
    const double err = spectral_poisson_error(std::move(f), n);
    std::printf("poisson      spectral solve max error = %.2e\n", err);
    if (err > 1e-10) return 1;
  }
  return 0;
}
