// Distributed matrix multiply (SUMMA) on overlapping row/column thread
// groups — multidimensional blocking meets Chapter 3's thread groups.
//
//   ./matmul_summa [--grid 2] [--size 64] [--nodes 2] [--vis=on|off]
//
// --vis=on pulls the step panels straight from the owners' tiles with
// packed strided (VIS) messages; off uses the owner-load + team-broadcast
// pipeline. C is bit-identical either way.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "gas/gas.hpp"
#include "linalg/summa.hpp"
#include "sim/sim.hpp"
#include "util/cli.hpp"

using namespace hupc;  // NOLINT

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("grid", 2));
  const auto size = static_cast<std::size_t>(cli.get_int("size", 64));
  const int nodes = static_cast<int>(cli.get_int("nodes", 2));
  const std::string vis_opt = cli.get("vis", "off");
  cli.reject_unread("matmul_summa");
  if (vis_opt != "on" && vis_opt != "off") {
    std::fprintf(stderr,
                 "matmul_summa: error: unknown --vis value '%s' "
                 "(expected on|off)\n",
                 vis_opt.c_str());
    return 2;
  }

  sim::Engine engine;
  gas::Config config;
  config.machine = topo::lehman(nodes);
  config.threads = p * p;
  gas::Runtime rt(engine, config);

  linalg::Summa summa(rt, linalg::ProcessGrid{p, p}, size, size, size,
                      vis_opt == "on");
  summa.fill(2026);
  const auto a = summa.dense_a();
  const auto b = summa.dense_b();

  rt.spmd([&summa](gas::Thread& t) -> sim::Task<void> {
    co_await summa.run(t);
  });
  rt.run_to_completion();

  // Verify against the serial triple loop.
  const auto c = summa.dense_c();
  double max_err = 0.0;
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = 0; j < size; ++j) {
      double ref = 0.0;
      for (std::size_t k = 0; k < size; ++k) {
        ref += a[i * size + k] * b[k * size + j];
      }
      max_err = std::max(max_err, std::abs(c[i * size + j] - ref));
    }
  }

  const double flops = 2.0 * static_cast<double>(size) * size * size;
  const double secs = sim::to_seconds(engine.now());
  std::printf("SUMMA %zux%zu on a %dx%d grid (%d nodes, vis %s): max err "
              "%.2e, %.3f ms virtual, %.2f GF/s effective, %llu messages\n",
              size, size, p, p, nodes, vis_opt.c_str(), max_err, secs * 1e3,
              flops / secs / 1e9,
              static_cast<unsigned long long>(rt.network().total_messages()));
  return max_err < 1e-9 ? 0 : 1;
}
