// Unbalanced Tree Search with hierarchical work stealing — the Chapter 3
// application. Counts the nodes of a binomial UTS tree in parallel across
// a simulated cluster, comparing the locality-oblivious baseline with the
// thesis's local-first + rapid-diffusion strategy, and verifying both
// against the sequential enumeration.
//
//   ./uts_search [--threads N] [--nodes M] [--seed S] [--conduit gige|ib-ddr]
//               [--read-cache=on|off]   serve steal-probe reads through a
//                  read-cache epoch (--cache-lines=N --cache-line-bytes=B)
//               [--trace=FILE]       chrome://tracing JSON of the final run
//               [--trace-summary=FILE]  per-category counts/time + counters
//               [--fault-plan=NAME --fault-seed=S]  run under a seeded fault
//                  plan — the parallel count must still match the oracle
//               [--fuzz=N]           run an N-case fault-injection sweep
//                  instead of the comparison (see fault/fuzzer.hpp)
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/read_cache.hpp"
#include "fault/fuzzer.hpp"
#include "fault/plan.hpp"
#include "gas/gas.hpp"
#include "net/conduit.hpp"
#include "sched/work_stealing.hpp"
#include "sim/sim.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "uts/tree.hpp"

using namespace hupc;  // NOLINT

namespace {

struct RunResult {
  double seconds;
  std::uint64_t nodes;
  double local_ratio;
};

struct CacheConfig {
  bool enabled = false;
  comm::CacheParams params;
};

RunResult explore(const uts::TreeParams& tree, int threads, int nodes,
                  const std::string& conduit, bool optimized,
                  const CacheConfig& cache, trace::Tracer* tracer,
                  const fault::PlanParams* fault_plan) {
  sim::Engine engine;
  gas::Config config;
  config.machine = topo::pyramid(nodes);
  config.threads = threads;
  config.conduit = conduit == "gige" ? net::gige() : net::ib_ddr();
  config.tracer = tracer;
  gas::Runtime rt(engine, config);
  // Installed before WorkStealing: the steal seam is read at construction.
  std::unique_ptr<fault::FaultPlan> plan;
  if (fault_plan != nullptr) {
    plan = std::make_unique<fault::FaultPlan>(*fault_plan);
    plan->install(rt);
  }

  sched::StealParams params;
  params.policy = optimized ? sched::VictimPolicy::local_first
                            : sched::VictimPolicy::random;
  params.rapid_diffusion = optimized;
  params.granularity = conduit == "gige" ? 20 : 8;
  params.chunk = params.granularity;
  params.cache_probes = cache.enabled;
  params.cache = cache.params;

  sched::WorkStealing<uts::Node> ws(
      rt, params, [&tree](const uts::Node& n, std::vector<uts::Node>& out) {
        uts::expand(tree, n, out);
      });
  ws.seed_work(0, {uts::root_node(tree)});
  rt.spmd([&ws](gas::Thread& t) -> sim::Task<void> { co_await ws.run(t); });
  rt.run_to_completion();
  return RunResult{sim::to_seconds(engine.now()), ws.total_processed(),
                   ws.local_steal_ratio()};
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  if (cli.has("fuzz")) {
    fault::FuzzOptions opt;
    opt.budget = static_cast<int>(cli.get_int("fuzz", 32));
    opt.base_seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
    opt.verbose = cli.get_bool("fuzz-verbose", false);
    cli.reject_unread("uts_search");
    fault::Fuzzer fuzzer(opt);
    return static_cast<int>(fuzzer.run(std::cout).failures.size());
  }

  uts::TreeParams tree;
  tree.root_seed = static_cast<std::uint32_t>(cli.get_int("seed", 42));
  const int threads = static_cast<int>(cli.get_int("threads", 32));
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));
  const std::string conduit = cli.get("conduit", "ib-ddr");
  if (conduit != "gige" && conduit != "ib-ddr") {
    throw std::invalid_argument("unknown conduit '" + conduit +
                                "' (expected gige|ib-ddr)");
  }
  CacheConfig cache;
  const std::string rc = cli.get("read-cache", "off");
  if (rc != "on" && rc != "off") {
    throw std::invalid_argument("unknown --read-cache value '" + rc +
                                "' (expected on|off)");
  }
  cache.enabled = rc == "on";
  cache.params.lines =
      static_cast<std::size_t>(cli.get_int("cache-lines", 256));
  cache.params.line_bytes =
      static_cast<std::size_t>(cli.get_int("cache-line-bytes", 64));

  std::printf("UTS: binomial tree, seed %u — sequential oracle first...\n",
              tree.root_seed);
  const auto oracle = uts::enumerate(tree);
  std::printf("  %llu nodes, %llu leaves, max depth %u\n\n",
              static_cast<unsigned long long>(oracle.nodes),
              static_cast<unsigned long long>(oracle.leaves), oracle.max_depth);

  const std::string trace_file = cli.get("trace", "");
  const std::string summary_file = cli.get("trace-summary", "");
  std::unique_ptr<trace::Tracer> tracer;
  if (!trace_file.empty() || !summary_file.empty()) {
    tracer = std::make_unique<trace::Tracer>();
  }

  std::unique_ptr<fault::PlanParams> fault_plan;
  const std::string plan_name = cli.get("fault-plan", "");
  const auto fault_seed =
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  if (!plan_name.empty()) {
    fault_plan = std::make_unique<fault::PlanParams>(
        fault::plan_template(plan_name, fault_seed));
    std::printf("fault: %s\n\n", fault_plan->describe().c_str());
  }
  cli.reject_unread("uts_search");

  for (const bool optimized : {false, true}) {
    // Each configuration starts a fresh trace; the exported file holds the
    // final (optimized) run.
    if (tracer) tracer->clear();
    const auto r = explore(tree, threads, nodes, conduit, optimized, cache,
                           tracer.get(), fault_plan.get());
    std::printf("%-28s %8.2f ms  %6.1f Mnodes/s  local steals %5.1f%%  %s\n",
                optimized ? "local-first + diffusion:" : "random baseline:",
                r.seconds * 1e3,
                static_cast<double>(r.nodes) / r.seconds / 1e6,
                r.local_ratio * 100.0,
                r.nodes == oracle.nodes ? "[verified]" : "[MISMATCH!]");
    if (r.nodes != oracle.nodes) return 1;
  }
  if (tracer && !trace_file.empty()) {
    std::ofstream os(trace_file);
    tracer->export_chrome(os);
    if (!os) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_file.c_str());
      return 1;
    }
    std::printf("trace: %llu events (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(tracer->recorded()),
                static_cast<unsigned long long>(tracer->dropped()),
                trace_file.c_str());
  }
  if (tracer && !summary_file.empty()) {
    std::ofstream os(summary_file);
    tracer->export_summary(os);
    if (!os) {
      std::fprintf(stderr, "error: cannot write trace summary to %s\n",
                   summary_file.c_str());
      return 1;
    }
  }
  return 0;
} catch (const std::exception& e) {
  // Config validation (bad --threads/--nodes/...) throws std::invalid_argument;
  // surface it as a clean CLI error instead of std::terminate.
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
