// Unified scenario runner: every workload in the library behind one CLI,
// with machine/backend/network knobs and a per-phase profile — the
// "driver" binary a downstream user reaches for first.
//
//   ./hupc_bench --workload uts|ft|stream|gups|summa|fuzz
//                [--machine lehman|pyramid] [--nodes N] [--threads T]
//                [--backend processes|pthreads] [--conduit ib-qdr|ib-ddr|gige]
//                [--subs S]            (ft: sub-threads per UPC thread)
//                [--async=on|off]      (ft: drain the all-to-all through the
//                                       promise-based completion layer (on,
//                                       default) or the legacy waitsync loop)
//                [--coll-algo=auto|flat|hier|ring|dissem]
//                                      (ft: all-to-all exchange algorithm —
//                                       flat staggered or supernode-leader
//                                       hierarchical; auto selects by size)
//                [--variant ...]       (workload-specific, see below)
//                [--trace=FILE]        (chrome://tracing JSON of the run)
//                [--trace-summary=FILE] (per-category counts/time + counters)
//                [--fault-plan=NAME --fault-seed=S]
//                                      (run under a seeded fault plan; any
//                                       workload; see fault/plan.hpp)
//
// Variants: uts: baseline|local|diffusion; ft: split|overlap;
//           stream: baseline|relocalize|cast|openmp;
//           gups: naive|grouped|gather (gather reads bursts of consecutive
//                 elements; --read-cache=on|off serves them through a
//                 read-cache epoch, --cache-lines=N / --cache-line-bytes=B
//                 set its geometry);
//           summa: (grid inferred from --threads, must be a square).
//
// Fuzzing: --workload fuzz [--budget N] [--fuzz-seed S] [--fuzz-test-bug]
//          [--fuzz-verbose] sweeps N seeded fault-injection cases, shrinks
//          any failure and prints its one-line replay command; exit status
//          is the number of failing cases (0 = clean sweep).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fuzzer.hpp"
#include "fault/plan.hpp"
#include "fft/ft_model.hpp"
#include "gas/gas.hpp"
#include "linalg/summa.hpp"
#include "net/conduit.hpp"
#include "sched/work_stealing.hpp"
#include "sim/sim.hpp"
#include "stream/random_access.hpp"
#include "stream/stream.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "uts/tree.hpp"

using namespace hupc;  // NOLINT

namespace {

std::unique_ptr<trace::Tracer> make_tracer(const util::Cli& cli) {
  if (cli.get("trace", "").empty() && cli.get("trace-summary", "").empty()) {
    return nullptr;
  }
  return std::make_unique<trace::Tracer>();
}

int export_trace(const util::Cli& cli, const trace::Tracer* tracer) {
  if (!tracer) return 0;
  if (const std::string file = cli.get("trace", ""); !file.empty()) {
    std::ofstream os(file);
    tracer->export_chrome(os);
    if (!os) {
      std::fprintf(stderr, "error: cannot write trace to %s\n", file.c_str());
      return 1;
    }
    std::printf("-- trace: %llu events (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(tracer->recorded()),
                static_cast<unsigned long long>(tracer->dropped()),
                file.c_str());
  }
  if (const std::string file = cli.get("trace-summary", ""); !file.empty()) {
    std::ofstream os(file);
    tracer->export_summary(os);
    if (!os) {
      std::fprintf(stderr, "error: cannot write trace summary to %s\n",
                   file.c_str());
      return 1;
    }
  }
  return 0;
}

gas::Config build_config(const util::Cli& cli,
                         trace::Tracer* tracer = nullptr) {
  gas::Config config;
  config.tracer = tracer;
  const std::string machine = cli.get("machine", "lehman");
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));
  if (machine == "pyramid") {
    config.machine = topo::pyramid(nodes);
  } else if (machine == "lehman") {
    config.machine = topo::lehman(nodes);
  } else {
    throw std::invalid_argument("unknown machine preset '" + machine +
                                "' (expected pyramid|lehman)");
  }
  config.threads = static_cast<int>(cli.get_int("threads", 16));
  const std::string backend = cli.get("backend", "processes");
  if (backend == "pthreads") {
    config.backend = gas::Backend::pthreads;
  } else if (backend == "processes") {
    config.backend = gas::Backend::processes;
  } else {
    throw std::invalid_argument("unknown backend '" + backend +
                                "' (expected processes|pthreads)");
  }
  const std::string conduit = cli.get(
      "conduit", machine == "pyramid" ? "ib-ddr" : "ib-qdr");
  if (conduit == "gige") {
    config.conduit = net::gige();
  } else if (conduit == "ib-ddr") {
    config.conduit = net::ib_ddr();
  } else if (conduit == "ib-qdr") {
    config.conduit = net::ib_qdr();
  } else {
    throw std::invalid_argument("unknown conduit '" + conduit +
                                "' (expected gige|ib-qdr|ib-ddr)");
  }
  return config;
}

/// `--variant` must name one of the workload's variants; a typo must not
/// silently measure the default.
std::string get_variant(const util::Cli& cli, const char* fallback,
                        std::initializer_list<const char*> allowed) {
  const std::string variant = cli.get("variant", fallback);
  for (const char* a : allowed) {
    if (variant == a) return variant;
  }
  std::string expected;
  for (const char* a : allowed) {
    if (!expected.empty()) expected += '|';
    expected += a;
  }
  throw std::invalid_argument("unknown variant '" + variant + "' (expected " +
                              expected + ")");
}

/// `--fault-plan=NAME --fault-seed=S`: build + install a fault plan on `rt`.
/// Must run before constructing layers that read hooks at construction time
/// (WorkStealing, SubPool). Returns null when no plan was requested.
std::unique_ptr<fault::FaultPlan> make_fault_plan(const util::Cli& cli,
                                                  gas::Runtime& rt) {
  const std::string name = cli.get("fault-plan", "");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  if (name.empty()) return nullptr;
  auto plan =
      std::make_unique<fault::FaultPlan>(fault::plan_template(name, seed));
  plan->install(rt);
  std::printf("-- fault: %s\n", plan->params().describe().c_str());
  return plan;
}

void fault_footer(const fault::FaultPlan* plan) {
  if (plan == nullptr) return;
  std::printf("-- fault: injected %llu perturbations\n",
              static_cast<unsigned long long>(plan->stats().total()));
}

void footer(const sim::Engine& engine, const gas::Runtime& rt) {
  std::printf("-- virtual time %.3f ms | %llu events | %llu network msgs, "
              "%.1f MB\n",
              sim::to_seconds(engine.now()) * 1e3,
              static_cast<unsigned long long>(engine.events_executed()),
              static_cast<unsigned long long>(
                  const_cast<gas::Runtime&>(rt).network().total_messages()),
              const_cast<gas::Runtime&>(rt).network().total_bytes() / 1e6);
}

int run_uts(const util::Cli& cli) {
  sim::Engine engine;
  auto tracer = make_tracer(cli);
  gas::Runtime rt(engine, build_config(cli, tracer.get()));
  const auto plan = make_fault_plan(cli, rt);
  uts::TreeParams tree;
  tree.root_seed = static_cast<std::uint32_t>(cli.get_int("seed", 42));
  const std::string variant =
      get_variant(cli, "diffusion", {"baseline", "local", "diffusion"});
  cli.reject_unread("hupc_bench");
  sched::StealParams params;
  params.policy = variant == "baseline" ? sched::VictimPolicy::random
                                        : sched::VictimPolicy::local_first;
  params.rapid_diffusion = variant == "diffusion";
  sched::WorkStealing<uts::Node> ws(
      rt, params, [&tree](const uts::Node& n, std::vector<uts::Node>& out) {
        uts::expand(tree, n, out);
      });
  ws.seed_work(0, {uts::root_node(tree)});
  rt.spmd([&ws](gas::Thread& t) -> sim::Task<void> { co_await ws.run(t); });
  rt.run_to_completion();
  std::printf("uts[%s]: %llu nodes, %.1f Mnodes/s, local steals %.1f%%\n",
              variant.c_str(),
              static_cast<unsigned long long>(ws.total_processed()),
              static_cast<double>(ws.total_processed()) /
                  sim::to_seconds(engine.now()) / 1e6,
              ws.local_steal_ratio() * 100.0);
  fault_footer(plan.get());
  footer(engine, rt);
  return export_trace(cli, tracer.get());
}

/// `--async=on|off`: route non-blocking transfers through the promise-based
/// completion layer (async::future + when_all) or the legacy per-handle
/// waitsync loop. Strict on|off: a typo must not silently measure the wrong
/// completion path.
bool async_flag(const util::Cli& cli, bool fallback) {
  const std::string v = cli.get("async", fallback ? "on" : "off");
  if (v != "on" && v != "off") {
    throw std::invalid_argument("unknown --async value '" + v +
                                "' (expected on|off)");
  }
  return v == "on";
}

/// `--coll-algo=auto|flat|hier|ring|dissem`: pin the collective algorithm
/// (fft: the all-to-all exchange schedule). Exits 2 on anything unknown —
/// a typo must not silently benchmark the wrong algorithm.
gas::CollAlgo coll_algo_flag(const util::Cli& cli, const char* program) {
  const std::string v = cli.get("coll-algo", "auto");
  const auto algo = gas::parse_coll_algo(v);
  if (!algo) {
    std::fprintf(stderr,
                 "%s: error: unknown --coll-algo value '%s' "
                 "(expected auto|flat|hier|ring|dissem)\n",
                 program, v.c_str());
    std::exit(2);
  }
  return *algo;
}

int run_ft(const util::Cli& cli) {
  sim::Engine engine;
  auto tracer = make_tracer(cli);
  gas::Runtime rt(engine, build_config(cli, tracer.get()));
  const auto plan = make_fault_plan(cli, rt);
  fft::FtConfig fc;
  const std::string cls = cli.get("class", "A");
  if (cls != "S" && cls != "A" && cls != "B") {
    throw std::invalid_argument("unknown class '" + cls +
                                "' (expected S|A|B)");
  }
  fc.grid = cls == "B"   ? fft::FtParams::class_b()
            : cls == "S" ? fft::FtParams::class_s()
                         : fft::FtParams::class_a();
  fc.variant = get_variant(cli, "split", {"split", "overlap"}) == "overlap"
                   ? fft::CommVariant::overlap
                   : fft::CommVariant::split_phase;
  fc.subs = static_cast<int>(cli.get_int("subs", 0));
  fc.async = async_flag(cli, true);
  fc.coll_algo = coll_algo_flag(cli, "hupc_bench");
  cli.reject_unread("hupc_bench");
  fft::FtModel ft(rt, fc);
  rt.spmd([&ft](gas::Thread& t) -> sim::Task<void> { co_await ft.run(t); });
  rt.run_to_completion();
  const auto m = ft.mean();
  std::printf("ft[class %s, %s, subs %d]: total %.3fs | evolve %.3f fft2d "
              "%.3f transpose %.3f comm %.3f fft1d %.3f\n",
              fc.grid.name, cli.get("variant", "split").c_str(), fc.subs,
              m.total, m.evolve, m.fft2d, m.transpose, m.comm, m.fft1d);
  fault_footer(plan.get());
  footer(engine, rt);
  return export_trace(cli, tracer.get());
}

int run_stream(const util::Cli& cli) {
  sim::Engine engine;
  auto tracer = make_tracer(cli);
  auto config = build_config(cli, tracer.get());
  config.machine = topo::lehman(1);  // single-node study
  gas::Runtime rt(engine, config);
  const auto plan = make_fault_plan(cli, rt);
  const std::string variant = get_variant(
      cli, "cast", {"baseline", "relocalize", "cast", "openmp"});
  stream::TriadVariant v = stream::TriadVariant::upc_cast;
  if (variant == "baseline") v = stream::TriadVariant::upc_baseline;
  if (variant == "relocalize") v = stream::TriadVariant::upc_relocalize;
  if (variant == "openmp") v = stream::TriadVariant::openmp;
  const auto elements =
      static_cast<std::size_t>(cli.get_int("elements", 4 << 20));
  cli.reject_unread("hupc_bench");
  const auto r = stream::twisted_triad(rt, elements, v);
  std::printf("stream[twisted %s]: %.1f GB/s\n", variant.c_str(),
              r.gbytes_per_s);
  fault_footer(plan.get());
  footer(engine, rt);
  return export_trace(cli, tracer.get());
}

/// `--read-cache=on|off` plus the geometry knobs `--cache-lines` and
/// `--cache-line-bytes`. Strict on|off: a typo must not silently measure
/// the uncached path.
bool read_cache_flags(const util::Cli& cli, comm::CacheParams& params) {
  const std::string rc = cli.get("read-cache", "off");
  if (rc != "on" && rc != "off") {
    throw std::invalid_argument("unknown --read-cache value '" + rc +
                                "' (expected on|off)");
  }
  params.lines = static_cast<std::size_t>(cli.get_int("cache-lines", 256));
  params.line_bytes =
      static_cast<std::size_t>(cli.get_int("cache-line-bytes", 64));
  return rc == "on";
}

int run_gups(const util::Cli& cli) {
  sim::Engine engine;
  auto tracer = make_tracer(cli);
  gas::Runtime rt(engine, build_config(cli, tracer.get()));
  const auto plan = make_fault_plan(cli, rt);
  stream::RandomAccess ra(rt, static_cast<int>(cli.get_int("log2-table", 16)));
  const std::string variant =
      get_variant(cli, "grouped", {"naive", "grouped", "gather"});
  if (variant == "gather") {
    stream::GatherParams gp;
    gp.bursts = static_cast<std::uint64_t>(cli.get_int("bursts", 64));
    gp.burst_len = static_cast<std::uint64_t>(cli.get_int("burst-len", 64));
    gp.cached = read_cache_flags(cli, gp.cache);
    cli.reject_unread("hupc_bench");
    const auto g = ra.run_gather(gp);
    std::printf("gups[gather, cache %s]: %.2f Mreads/s (%llu reads, %llu "
                "remote, checksum %llx)\n",
                gp.cached ? "on" : "off", g.mreads,
                static_cast<unsigned long long>(g.reads),
                static_cast<unsigned long long>(g.remote),
                static_cast<unsigned long long>(g.checksum));
    fault_footer(plan.get());
    footer(engine, rt);
    return export_trace(cli, tracer.get());
  }
  const bool grouped = variant == "grouped";
  const auto updates =
      static_cast<std::uint64_t>(cli.get_int("updates", 4096));
  cli.reject_unread("hupc_bench");
  const auto r = ra.run(grouped ? stream::GupsVariant::grouped
                                : stream::GupsVariant::naive,
                        updates);
  std::printf("gups[%s]: %.4f GUP/s (%llu updates, %.1f%% local) %s\n",
              grouped ? "grouped" : "naive", r.gups,
              static_cast<unsigned long long>(r.updates),
              100.0 * static_cast<double>(r.local) /
                  static_cast<double>(r.updates),
              ra.verify() ? "" : "[table changed as expected after 1 pass]");
  fault_footer(plan.get());
  footer(engine, rt);
  return export_trace(cli, tracer.get());
}

int run_summa(const util::Cli& cli) {
  sim::Engine engine;
  auto tracer = make_tracer(cli);
  auto config = build_config(cli, tracer.get());
  const int p = static_cast<int>(
      std::lround(std::sqrt(static_cast<double>(config.threads))));
  if (p * p != config.threads) {
    std::printf("summa: --threads must be a perfect square\n");
    return 1;
  }
  gas::Runtime rt(engine, config);
  const auto plan = make_fault_plan(cli, rt);
  const auto size = static_cast<std::size_t>(cli.get_int("size", 256));
  cli.reject_unread("hupc_bench");
  linalg::Summa summa(rt, linalg::ProcessGrid{p, p}, size, size, size);
  summa.fill(1);
  rt.spmd([&summa](gas::Thread& t) -> sim::Task<void> {
    co_await summa.run(t);
  });
  rt.run_to_completion();
  const double flops = 2.0 * static_cast<double>(size) * size * size;
  std::printf("summa[%zu^3 on %dx%d]: %.2f GF/s effective\n", size, p, p,
              flops / sim::to_seconds(engine.now()) / 1e9);
  fault_footer(plan.get());
  footer(engine, rt);
  return export_trace(cli, tracer.get());
}

int run_fuzz(const util::Cli& cli) {
  fault::FuzzOptions opt;
  opt.base_seed = static_cast<std::uint64_t>(cli.get_int("fuzz-seed", 1));
  opt.budget = static_cast<int>(cli.get_int("budget", 32));
  opt.plant_split_bug = cli.get_bool("fuzz-test-bug", false);
  opt.verbose = cli.get_bool("fuzz-verbose", false);
  cli.reject_unread("hupc_bench");
  fault::Fuzzer fuzzer(opt);
  const fault::FuzzReport report = fuzzer.run(std::cout);
  return static_cast<int>(report.failures.size());
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const std::string workload = cli.get("workload", "");
  if (workload == "uts") return run_uts(cli);
  if (workload == "ft") return run_ft(cli);
  if (workload == "stream") return run_stream(cli);
  if (workload == "gups") return run_gups(cli);
  if (workload == "summa") return run_summa(cli);
  if (workload == "fuzz") return run_fuzz(cli);
  std::printf("usage: hupc_bench --workload uts|ft|stream|gups|summa|fuzz "
              "[--machine lehman|pyramid] [--nodes N] [--threads T]\n"
              "                  [--backend processes|pthreads] "
              "[--conduit ib-qdr|ib-ddr|gige] [--variant ...]\n"
              "                  [--fault-plan=NAME --fault-seed=S] | "
              "--workload fuzz [--budget N] [--fuzz-seed S]\n");
  return workload.empty() ? 0 : 1;
} catch (const std::exception& e) {
  // Config validation (bad --threads/--nodes/...) throws std::invalid_argument;
  // surface it as a clean CLI error instead of std::terminate.
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
