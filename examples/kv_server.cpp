// kv_server — open-loop serving driver for the sharded in-GAS key-value
// store (DESIGN.md §16).
//
// Builds a KvStore sharded over every rank of the simulated machine, then
// runs kv::run_serving: rank-partitioned preload of the key universe, a
// barrier, and an open-loop measured phase where every rank fires
// get/put/update requests at precomputed Poisson arrival times (optionally
// bursty) and latency is charged from the INTENDED arrival to completion.
// The summary prints the latency distribution (p50/p99/p99.9 from the
// log-bucketed histogram), throughput, goodput under the SLO, and how the
// selector split operations between the AMO and RPC paths.
//
//   ./kv_server [--threads N] [--nodes M] [--machine lehman|pyramid]
//               [--dist=zipfian|uniform] [--zipf-s 0.99] [--rw-mix 0.95]
//               [--kv-path=auto|amo|rpc] [--keys 4096] [--ops 128]
//               [--shards S] [--capacity C] [--arrival HZ] [--burst B]
//               [--burst-len L] [--slo-us US] [--read-cache=on|off]
//               [--seed S] [--fault-plan=NAME] [--fault-seed=S]
//               [--trace FILE] [--trace-summary FILE]
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "fault/plan.hpp"
#include "gas/gas.hpp"
#include "kv/shard_map.hpp"
#include "kv/store.hpp"
#include "kv/workload.hpp"
#include "sim/sim.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"

using namespace hupc;  // NOLINT

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int threads = static_cast<int>(cli.get_int("threads", 16));
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));
  const std::string machine = cli.get("machine", "lehman");
  const std::string dist_opt = cli.get("dist", "zipfian");
  const double zipf_s = cli.get_double("zipf-s", 0.99);
  const double rw_mix = cli.get_double("rw-mix", 0.95);
  const std::string path_opt = cli.get("kv-path", "auto");
  const auto keys = static_cast<std::size_t>(cli.get_int("keys", 4096));
  const auto ops = static_cast<std::size_t>(cli.get_int("ops", 128));
  const int shards = static_cast<int>(cli.get_int("shards", 0));
  const auto capacity = static_cast<std::size_t>(cli.get_int("capacity", 0));
  const double arrival_hz = cli.get_double("arrival", 1.0e6);
  const double burst = cli.get_double("burst", 1.0);
  const auto burst_len = static_cast<std::size_t>(cli.get_int("burst-len", 16));
  const double slo_us = cli.get_double("slo-us", 50.0);
  const std::string cache_opt = cli.get("read-cache", "on");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string plan_name = cli.get("fault-plan", "");
  const auto fault_seed =
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  const std::string trace_file = cli.get("trace", "");
  const std::string summary_file = cli.get("trace-summary", "");
  cli.reject_unread("kv_server");

  if (machine != "lehman" && machine != "pyramid") {
    std::fprintf(stderr,
                 "kv_server: error: unknown machine preset '%s' "
                 "(expected lehman|pyramid)\n",
                 machine.c_str());
    return 2;
  }
  const auto dist = kv::parse_key_dist(dist_opt);
  if (!dist) {
    std::fprintf(stderr,
                 "kv_server: error: unknown --dist value '%s' "
                 "(expected zipfian|uniform)\n",
                 dist_opt.c_str());
    return 2;
  }
  const auto path = kv::parse_kv_path(path_opt);
  if (!path) {
    std::fprintf(stderr,
                 "kv_server: error: unknown --kv-path value '%s' "
                 "(expected auto|amo|rpc)\n",
                 path_opt.c_str());
    return 2;
  }
  if (!(rw_mix >= 0.0 && rw_mix <= 1.0)) {
    std::fprintf(stderr,
                 "kv_server: error: --rw-mix must be in [0,1] (got '%s')\n",
                 cli.get("rw-mix", "0.95").c_str());
    return 2;
  }
  if (cache_opt != "on" && cache_opt != "off") {
    std::fprintf(stderr,
                 "kv_server: error: unknown --read-cache value '%s' "
                 "(expected on|off)\n",
                 cache_opt.c_str());
    return 2;
  }

  std::unique_ptr<trace::Tracer> tracer;
  if (!trace_file.empty() || !summary_file.empty()) {
    tracer = std::make_unique<trace::Tracer>();
  }

  sim::Engine engine;
  gas::Config config;
  config.machine =
      machine == "pyramid" ? topo::pyramid(nodes) : topo::lehman(nodes);
  config.threads = threads;
  config.tracer = tracer.get();
  gas::Runtime rt(engine, config);

  std::unique_ptr<fault::FaultPlan> plan;
  if (!plan_name.empty()) {
    plan = std::make_unique<fault::FaultPlan>(
        fault::plan_template(plan_name, fault_seed));
    plan->install(rt);
    std::printf("-- fault: %s\n", plan->params().describe().c_str());
  }

  async::RpcDomain rpc(rt);
  kv::KvStore::Params store_params;
  if (capacity != 0) store_params.capacity = capacity;
  kv::KvStore store(rt, rpc, kv::ShardMap::over(rt, shards), store_params);

  kv::ServingParams params;
  params.keys = keys;
  params.ops_per_rank = ops;
  params.dist = *dist;
  params.zipf_s = zipf_s;
  params.read_fraction = rw_mix;
  params.path = *path;
  params.arrival_rate_hz = arrival_hz;
  params.burst = burst;
  params.burst_len = burst_len;
  params.slo_s = slo_us * 1e-6;
  params.read_cache = cache_opt == "on";
  params.seed = seed;

  const kv::ServingResult res = kv::run_serving(rt, store, params);

  const kv::KvStats& stats = store.stats();
  std::printf("kv_server: %d threads on %s(%d), %zu keys over %d shards, "
              "%s keys (s=%.2f), rw-mix %.2f, path %s, read-cache %s\n",
              threads, machine.c_str(), nodes, keys,
              store.shard_map().shards(), kv::key_dist_name(*dist), zipf_s,
              rw_mix, kv::kv_path_name(*path), cache_opt.c_str());
  std::printf("  ops %llu (%llu reads, %llu writes) in %.3f ms virtual "
              "makespan\n",
              static_cast<unsigned long long>(res.ops),
              static_cast<unsigned long long>(res.reads),
              static_cast<unsigned long long>(res.writes),
              res.makespan_s * 1e3);
  std::printf("  latency  p50 %8.2f us   p99 %8.2f us   p99.9 %8.2f us   "
              "mean %8.2f us   max %8.2f us\n",
              res.p50_s * 1e6, res.p99_s * 1e6, res.p999_s * 1e6,
              res.mean_s * 1e6, res.max_s * 1e6);
  std::printf("  load     %.1f kops/s offered/rank, %.1f kops/s served, "
              "%.1f kops/s within %.0f us SLO (%llu/%llu ops)\n",
              arrival_hz / 1e3, res.throughput_ops_s / 1e3,
              res.slo_goodput_ops_s / 1e3, slo_us,
              static_cast<unsigned long long>(res.within_slo),
              static_cast<unsigned long long>(res.ops));
  std::printf("  paths    %llu amo, %llu rpc (%llu probes, %llu retries); "
              "%llu live keys\n",
              static_cast<unsigned long long>(stats.amo_ops),
              static_cast<unsigned long long>(stats.rpc_ops),
              static_cast<unsigned long long>(stats.probes),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(store.live()));
  if (plan) {
    std::printf("-- fault: injected %llu perturbations\n",
                static_cast<unsigned long long>(plan->stats().total()));
  }

  if (tracer) {
    if (!trace_file.empty()) {
      std::ofstream os(trace_file);
      tracer->export_chrome(os);
      if (!os) {
        std::fprintf(stderr, "kv_server: error: cannot write trace to %s\n",
                     trace_file.c_str());
        return 1;
      }
    }
    if (!summary_file.empty()) {
      std::ofstream os(summary_file);
      tracer->export_summary(os);
      if (!os) {
        std::fprintf(stderr,
                     "kv_server: error: cannot write trace summary to %s\n",
                     summary_file.c_str());
        return 1;
      }
    }
  }

  // The preload puts every key exactly once and the measured phase never
  // erases: a live count that drifted from the key universe means the slot
  // protocol lost an insert.
  if (store.live() != keys) {
    std::fprintf(stderr, "kv_server: error: %llu live keys != %zu preloaded\n",
                 static_cast<unsigned long long>(store.live()), keys);
    return 1;
  }
  return 0;
}
