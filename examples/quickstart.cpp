// Quickstart: the HUPC programming model in one file.
//
// Eight simulated UPC threads on one dual-socket node: a block-cyclic
// shared array, fine-grained puts/gets, barriers, pointer privatization,
// and a team barrier — with virtual time reported at the end.
//
//   ./quickstart [--threads N] [--nodes M]
#include <cstdio>

#include "core/core.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"
#include "util/cli.hpp"

using namespace hupc;  // NOLINT

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int threads = static_cast<int>(cli.get_int("threads", 8));
  const int nodes = static_cast<int>(cli.get_int("nodes", 1));
  cli.reject_unread("quickstart");

  // 1. Describe the machine and the runtime configuration.
  sim::Engine engine;
  gas::Config config;
  config.machine = topo::lehman(nodes);
  config.threads = threads;
  config.backend = gas::Backend::processes;
  config.pshm = true;
  gas::Runtime rt(engine, config);

  // 2. Build a distributed shared array: `shared [4] long a[threads*16]`.
  auto array = rt.heap().all_alloc<long>(
      static_cast<std::size_t>(threads) * 16, 4);

  // 3. A node team, constructed from the topology (thesis Chapter 3).
  core::Team node0 = core::Team::node_team(rt, 0);

  // 4. The SPMD kernel. Every UPC operation is awaited — each charges
  //    virtual time through the memory/network cost models.
  rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
    // Each thread initializes the elements it owns, via privatized access.
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (array.owner_of(i) == t.rank()) {
        *array.at(i).raw = 100 * t.rank() + static_cast<long>(i);
      }
    }
    co_await t.barrier();

    // Fine-grained remote read: the classic UPC neighbour access.
    const int right = (t.rank() + 1) % t.threads();
    const long peeked =
        co_await t.get(array.at(static_cast<std::size_t>(right) * 4));
    if (t.rank() == 0) {
      std::printf("[rank 0] first element owned by rank %d = %ld\n", right,
                  peeked);
    }

    // Pointer privatization (the castability extension): direct load/store
    // into a neighbour's slice when it is shared-memory reachable.
    if (long* raw = t.cast(array.at(static_cast<std::size_t>(right) * 4));
        raw != nullptr) {
      *raw += 1;  // no translation overhead, no communication
    }

    // Team-scoped synchronization: only node 0's threads participate.
    if (node0.contains(t.rank())) {
      co_await node0.barrier(t);
    }
    co_await t.barrier();

    if (t.rank() == 0) {
      std::printf("[rank 0] all %d threads synchronized at t = %.3f us\n",
                  t.threads(), sim::to_micros(engine.now()));
    }
  });
  rt.run_to_completion();

  std::printf("done: %d threads, %llu engine events, %.3f us virtual time\n",
              threads,
              static_cast<unsigned long long>(engine.events_executed()),
              sim::to_micros(engine.now()));
  return 0;
}
