#include "perf/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hupc::perf {

namespace {

const Json kNull;

[[noreturn]] void fail(std::string_view what, std::size_t offset) {
  throw std::runtime_error("json: " + std::string(what) + " at offset " +
                           std::to_string(offset));
}

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; artifacts should never contain them, but a
    // defensive null beats emitting an unparseable token.
    os << "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os.write(buf, res.ptr - buf);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal", pos_);
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal", pos_);
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal", pos_);
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.set(key, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape", pos_);
          unsigned code = 0;
          const auto res = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (res.ptr != text_.data() + pos_ + 4) fail("bad \\u escape", pos_);
          pos_ += 4;
          // Artifacts only ever escape control characters; encode the code
          // point as UTF-8 (no surrogate-pair handling needed for < 0x80,
          // but cover the BMP for robustness).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape", pos_);
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double v = 0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ ||
        pos_ == start) {
      fail("invalid number", start);
    }
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::array() {
  Json j;
  j.type_ = Type::array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::object;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::boolean) throw std::runtime_error("json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::number) throw std::runtime_error("json: not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::string) throw std::runtime_error("json: not a string");
  return str_;
}

void Json::push_back(Json v) {
  if (type_ == Type::null) type_ = Type::array;
  if (type_ != Type::array) throw std::runtime_error("json: not an array");
  arr_.push_back(std::move(v));
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::array) throw std::runtime_error("json: not an array");
  return arr_;
}

std::size_t Json::size() const {
  if (type_ == Type::array) return arr_.size();
  if (type_ == Type::object) return obj_.size();
  throw std::runtime_error("json: not a container");
}

void Json::set(std::string_view key, Json v) {
  if (type_ == Type::null) type_ = Type::object;
  if (type_ != Type::object) throw std::runtime_error("json: not an object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
}

const Json& Json::at(std::string_view key) const {
  if (type_ != Type::object) throw std::runtime_error("json: not an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  return kNull;
}

bool Json::contains(std::string_view key) const {
  if (type_ != Type::object) return false;
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::object) throw std::runtime_error("json: not an object");
  return obj_;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

void Json::write(std::ostream& os, int indent) const {
  write_indented(os, indent, 0);
}

void Json::write_indented(std::ostream& os, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) *
                            static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::null: os << "null"; break;
    case Type::boolean: os << (bool_ ? "true" : "false"); break;
    case Type::number: write_number(os, num_); break;
    case Type::string: write_escaped(os, str_); break;
    case Type::array: {
      if (arr_.empty()) {
        os << "[]";
        break;
      }
      os << '[' << nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        os << pad;
        arr_[i].write_indented(os, indent, depth + 1);
        if (i + 1 < arr_.size()) os << ',';
        os << nl;
      }
      os << close_pad << ']';
      break;
    }
    case Type::object: {
      if (obj_.empty()) {
        os << "{}";
        break;
      }
      os << '{' << nl;
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        os << pad;
        write_escaped(os, obj_[i].first);
        os << (indent > 0 ? ": " : ":");
        obj_[i].second.write_indented(os, indent, depth + 1);
        if (i + 1 < obj_.size()) os << ',';
        os << nl;
      }
      os << close_pad << '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::null: return true;
    case Json::Type::boolean: return a.bool_ == b.bool_;
    case Json::Type::number: return a.num_ == b.num_;
    case Json::Type::string: return a.str_ == b.str_;
    case Json::Type::array: return a.arr_ == b.arr_;
    case Json::Type::object: return a.obj_ == b.obj_;
  }
  return false;
}

}  // namespace hupc::perf
