// Robust descriptive statistics for benchmark sample sets.
//
// The regression gate compares *medians* with a MAD-derived noise band:
// both are robust to the occasional scheduler hiccup that poisons a mean
// and a stddev. The 95% confidence interval on the median comes from a
// percentile bootstrap with a fixed-seed deterministic RNG, so the same
// samples always produce the same interval (artifacts re-serialize
// bit-identically — the property the CI gate's "identical re-run passes"
// check relies on).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace hupc::perf {

struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  /// Median absolute deviation from the median (raw, unscaled; multiply by
  /// 1.4826 for a normal-consistent sigma estimate).
  double mad = 0;
  /// 95% percentile-bootstrap confidence interval on the median. Collapses
  /// to [median, median] for a single sample or constant data.
  double ci95_lo = 0;
  double ci95_hi = 0;
};

/// Median of `samples` (linear interpolation between the two middle order
/// statistics for even counts); 0 for an empty span.
[[nodiscard]] double median(std::span<const double> samples);

/// Summarize `samples`. `resamples` bootstrap draws estimate the CI;
/// `seed` fixes the resampling stream (determinism).
[[nodiscard]] Summary summarize(std::span<const double> samples,
                                int resamples = 200,
                                std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

}  // namespace hupc::perf
