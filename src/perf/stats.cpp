#include "perf/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hupc::perf {

namespace {

/// Median of a pre-sorted vector — the suite-wide shared percentile
/// formula at p = 0.5 (identical to the two-middle-ranks average).
double sorted_median(const std::vector<double>& sorted) {
  return util::percentile_sorted(sorted, 0.5);
}

}  // namespace

double median(std::span<const double> samples) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_median(sorted);
}

Summary summarize(std::span<const double> samples, int resamples,
                  std::uint64_t seed) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0;
  for (const double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(sorted.size());
  s.median = sorted_median(sorted);

  std::vector<double> dev(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    dev[i] = std::abs(sorted[i] - s.median);
  }
  std::sort(dev.begin(), dev.end());
  s.mad = sorted_median(dev);

  if (sorted.size() == 1 || s.max == s.min || resamples <= 0) {
    s.ci95_lo = s.median;
    s.ci95_hi = s.median;
    return s;
  }

  // Percentile bootstrap of the median: resample n-with-replacement,
  // record each resample's median, take the 2.5th / 97.5th percentiles.
  util::Xoshiro256ss rng(seed);
  const std::size_t n = sorted.size();
  std::vector<double> medians(static_cast<std::size_t>(resamples));
  std::vector<double> draw(n);
  for (auto& m : medians) {
    for (auto& d : draw) {
      d = sorted[static_cast<std::size_t>(rng.next() % n)];
    }
    std::sort(draw.begin(), draw.end());
    m = sorted_median(draw);
  }
  std::sort(medians.begin(), medians.end());
  s.ci95_lo = util::percentile_sorted(medians, 0.025);
  s.ci95_hi = util::percentile_sorted(medians, 0.975);
  return s;
}

}  // namespace hupc::perf
