#include "perf/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace hupc::perf {

namespace {

/// Median of a pre-sorted vector.
double sorted_median(const std::vector<double>& sorted) {
  if (sorted.empty()) return 0;
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

}  // namespace

double median(std::span<const double> samples) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_median(sorted);
}

Summary summarize(std::span<const double> samples, int resamples,
                  std::uint64_t seed) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0;
  for (const double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(sorted.size());
  s.median = sorted_median(sorted);

  std::vector<double> dev(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    dev[i] = std::abs(sorted[i] - s.median);
  }
  std::sort(dev.begin(), dev.end());
  s.mad = sorted_median(dev);

  if (sorted.size() == 1 || s.max == s.min || resamples <= 0) {
    s.ci95_lo = s.median;
    s.ci95_hi = s.median;
    return s;
  }

  // Percentile bootstrap of the median: resample n-with-replacement,
  // record each resample's median, take the 2.5th / 97.5th percentiles.
  util::Xoshiro256ss rng(seed);
  const std::size_t n = sorted.size();
  std::vector<double> medians(static_cast<std::size_t>(resamples));
  std::vector<double> draw(n);
  for (auto& m : medians) {
    for (auto& d : draw) {
      d = sorted[static_cast<std::size_t>(rng.next() % n)];
    }
    std::sort(draw.begin(), draw.end());
    m = sorted_median(draw);
  }
  std::sort(medians.begin(), medians.end());
  const auto rank = [&](double p) {
    const double r = p * static_cast<double>(medians.size() - 1);
    const auto lo = static_cast<std::size_t>(r);
    const auto hi = std::min(lo + 1, medians.size() - 1);
    const double frac = r - static_cast<double>(lo);
    return medians[lo] + frac * (medians[hi] - medians[lo]);
  };
  s.ci95_lo = rank(0.025);
  s.ci95_hi = rank(0.975);
  return s;
}

}  // namespace hupc::perf
