// Drives registered benchmarks and writes the versioned JSON artifact.
//
// Flags (unknown flags are a hard error):
//   --list                 print benchmark ids (with tier/repetition info)
//   --filter=a,b           run benchmarks whose id contains any substring
//   --repetitions=N        default sample count per benchmark (default 3)
//   --warmup=N             discarded repetitions before sampling (default 0)
//   --tier=smoke|full      workload tier (default full)
//   --json=FILE            write the artifact ("-" for stdout)
//   --no-table             suppress the generic per-metric summary table
//
// Artifact schema v1 (see DESIGN.md §11):
//   { "schema_version": 1, "suite", "tier", "fingerprint": {...},
//     "benchmarks": [ { "id", "repetitions", "warmup", "config": {...},
//                       "metrics": { name: { "unit", "direction", "kind",
//                         "median","mad","min","max","mean",
//                         "ci95_lo","ci95_hi","samples":[...] } },
//                       "counters": { name: value } } ] }
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "perf/benchmark.hpp"

namespace hupc::perf {

struct RunnerOptions {
  std::string filter;
  int repetitions = 3;
  int warmup = 0;
  Tier tier = Tier::full;
  std::string json_path;  // empty: no artifact; "-": stdout
  bool list_only = false;
  bool print_table = true;
};

class Runner {
 public:
  Runner(std::string suite, RunnerOptions options);

  /// Parse `argv` into options; exits(2) on an unknown flag or a bad value.
  Runner(std::string suite, int argc, const char* const* argv);

  [[nodiscard]] const RunnerOptions& options() const noexcept {
    return options_;
  }

  /// Stream for banners and human-readable tables: std::cerr when the JSON
  /// artifact streams to stdout (--json=-), so stdout stays parseable.
  [[nodiscard]] std::ostream& human_out() const noexcept;

  /// Run every selected benchmark and return its results (empty for
  /// --list, which prints instead).
  [[nodiscard]] std::vector<Result> run(
      const Registry& registry = Registry::instance()) const;

  /// Serialize `results` as the schema-v1 artifact.
  void write_artifact(std::ostream& os,
                      const std::vector<Result>& results) const;

  /// run() + generic summary table + artifact emission + optional custom
  /// report (the migrated benches' human tables; its return value becomes
  /// the exit code). Returns nonzero on I/O failure.
  int main(const std::function<int(const std::vector<Result>&)>& report = {},
           const Registry& registry = Registry::instance()) const;

 private:
  std::string suite_;
  RunnerOptions options_;
};

}  // namespace hupc::perf
