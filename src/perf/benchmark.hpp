// Benchmark registry + per-run reporting context.
//
// A benchmark is a named function `void(Context&)` registered at static
// initialization with PERF_BENCHMARK (or programmatically via
// Registry::add). The Runner calls it once per repetition; the body builds
// its workload (typically a fresh sim::Engine + gas::Runtime), runs it, and
// reports one sample per metric through Context::report. Modeled metrics
// (virtual-time throughput, byte counts) come out of the deterministic
// simulation and are bit-identical across repetitions and runs; measured
// metrics (wall-clock ns/op of the substrate itself) are noisy and are
// gated report-only by tools/bench_compare.py.
//
// Alongside metrics, a benchmark can attach selected trace counters
// (bytes on wire, aggregated messages, steals) so a perf regression and the
// behavioral change that caused it land in the same artifact.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/trace.hpp"

namespace hupc::perf {

/// Which way is better for a metric. Serialized into the artifact so the
/// compare tool knows what a regression looks like.
enum class Direction : std::uint8_t { higher_is_better, lower_is_better };

/// Where a metric's values come from:
///   modeled  — deterministic simulation output; bit-identical across runs,
///              hard-gated by the regression compare;
///   measured — host wall-clock; noisy, report-only in the gate.
enum class Kind : std::uint8_t { modeled, measured };

enum class Tier : std::uint8_t { smoke, full };

[[nodiscard]] const char* to_string(Direction d) noexcept;
[[nodiscard]] const char* to_string(Kind k) noexcept;
[[nodiscard]] const char* to_string(Tier t) noexcept;

/// Parse "smoke" / "full"; throws std::invalid_argument otherwise.
[[nodiscard]] Tier parse_tier(std::string_view s);

/// One metric's samples across the repetitions of a benchmark.
struct MetricSeries {
  std::string name;
  std::string unit;
  Direction direction = Direction::higher_is_better;
  Kind kind = Kind::modeled;
  std::vector<double> samples;
};

/// Everything one benchmark produced under the Runner.
struct Result {
  std::string id;
  int repetitions = 0;
  int warmup = 0;
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<MetricSeries> metrics;
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  [[nodiscard]] const MetricSeries* metric(std::string_view name) const;
  /// Median of the named metric's samples; throws std::out_of_range if the
  /// metric was never reported (formatter typo guard).
  [[nodiscard]] double median(std::string_view name) const;
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
};

/// Handed to the benchmark body once per repetition. Samples accumulate
/// across repetitions; config/counters are overwritten (last value wins, and
/// for a deterministic simulation every repetition agrees anyway).
class Context {
 public:
  [[nodiscard]] Tier tier() const noexcept { return tier_; }
  /// True in the smoke tier — bodies pick CI-sized workloads off this.
  [[nodiscard]] bool smoke() const noexcept { return tier_ == Tier::smoke; }
  /// Current repetition, 0-based; warmup repetitions are negative.
  [[nodiscard]] int repetition() const noexcept { return repetition_; }
  [[nodiscard]] bool warmup_rep() const noexcept { return repetition_ < 0; }

  /// Describe one knob of this benchmark's configuration (machine preset,
  /// conduit, thread count, ...). Key-deduplicated.
  void set_config(std::string key, std::string value);

  /// Report one sample of `name` for the current repetition. Ignored
  /// during warmup repetitions.
  void report(std::string name, double value, std::string unit,
              Direction direction = Direction::higher_is_better,
              Kind kind = Kind::modeled);

  /// Attach a behavioral counter (overwritten each repetition).
  void report_counter(std::string name, std::uint64_t value);

  /// Copy the named counters out of `tracer` (totals across ranks). No-op
  /// when trace instrumentation is compiled out (HUPC_TRACE=0) so untraced
  /// builds produce artifacts without misleading zero counters.
  void report_trace_counters(const trace::Tracer& tracer,
                             std::initializer_list<const char*> names);

 private:
  friend class Runner;
  Context(std::string id, Tier tier) : tier_(tier) { result_.id = std::move(id); }

  Tier tier_;
  int repetition_ = 0;
  Result result_;
};

struct Benchmark {
  std::string id;
  std::function<void(Context&)> fn;
  /// Repetition override; 0 uses the Runner's --repetitions. Deterministic
  /// simulation benches register 1 — re-running them only re-derives the
  /// same modeled numbers.
  int repetitions = 0;
  /// Warmup override; -1 uses the Runner's --warmup.
  int warmup = -1;
  /// Whether the smoke tier includes this benchmark (full runs everything).
  bool in_smoke = true;
};

class Registry {
 public:
  /// The global registry PERF_BENCHMARK adds to.
  [[nodiscard]] static Registry& instance();

  /// Register; throws std::invalid_argument on a duplicate or empty id.
  void add(Benchmark b);

  [[nodiscard]] const std::vector<Benchmark>& benchmarks() const noexcept {
    return benchmarks_;
  }

  /// Benchmarks selected by `filter` (comma-separated substrings; empty
  /// matches everything) within `tier`, in registration order.
  [[nodiscard]] std::vector<const Benchmark*> match(std::string_view filter,
                                                    Tier tier) const;

 private:
  std::vector<Benchmark> benchmarks_;
};

/// Static-initialization helper behind PERF_BENCHMARK.
struct Registrar {
  explicit Registrar(Benchmark b) { Registry::instance().add(std::move(b)); }
};

}  // namespace hupc::perf

// Define-and-register a benchmark:
//
//   PERF_BENCHMARK("gups.coalesce.naive") { ... use ctx ... }
//   PERF_BENCHMARK("uts.scaling.gige.t128.baseline",
//                  .repetitions = 1, .in_smoke = false) { ... }
//
// Optional designated initializers after the id set Benchmark fields
// (repetitions / warmup / in_smoke).
#define HUPC_PERF_CONCAT_IMPL_(a, b) a##b
#define HUPC_PERF_CONCAT_(a, b) HUPC_PERF_CONCAT_IMPL_(a, b)
#define PERF_BENCHMARK(bench_id, ...)                                         \
  static void HUPC_PERF_CONCAT_(hupc_perf_fn_, __LINE__)(                     \
      ::hupc::perf::Context&);                                                \
  static const ::hupc::perf::Registrar HUPC_PERF_CONCAT_(hupc_perf_reg_,      \
                                                         __LINE__)(           \
      ::hupc::perf::Benchmark{                                                \
          .id = (bench_id),                                                   \
          .fn = &HUPC_PERF_CONCAT_(hupc_perf_fn_, __LINE__),                  \
          __VA_ARGS__});                                                      \
  static void HUPC_PERF_CONCAT_(hupc_perf_fn_,                                \
                                __LINE__)(::hupc::perf::Context& ctx)
