// Environment fingerprint stamped into every benchmark artifact.
//
// A perf number is only comparable to another perf number taken under the
// same conditions; the fingerprint records the conditions so the compare
// tool can warn when apples meet oranges: git revision (from $HUPC_GIT_SHA,
// exported by tools/run_bench_suite.sh), CMake build type and flags (baked
// in at compile time), compiler, the compile-time trace level (HUPC_TRACE=0
// artifacts carry no counters), and the suite tier. Per-benchmark machine /
// conduit / backend configuration lives next to each benchmark's results,
// not here — one artifact can mix machine presets.
#pragma once

#include <string>

#include "perf/json.hpp"

namespace hupc::perf {

struct Fingerprint {
  std::string suite;       // producing binary, e.g. "bench_gups_groups"
  std::string tier;        // "smoke" | "full"
  std::string git_sha;     // $HUPC_GIT_SHA, or "unknown"
  std::string build_type;  // CMAKE_BUILD_TYPE
  std::string cxx_flags;   // CMAKE_CXX_FLAGS
  std::string compiler;    // __VERSION__
  int trace_level = 0;     // HUPC_TRACE the binary was compiled with

  [[nodiscard]] Json to_json() const;
};

/// Collect the fingerprint for this process (compile-time macros + env).
[[nodiscard]] Fingerprint collect_fingerprint(std::string suite,
                                              std::string tier);

}  // namespace hupc::perf
