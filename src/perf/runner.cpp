#include "perf/runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "perf/fingerprint.hpp"
#include "perf/json.hpp"
#include "perf/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace hupc::perf {

namespace {

Json metric_json(const MetricSeries& m) {
  const Summary s = summarize(m.samples);
  Json j = Json::object();
  j.set("unit", m.unit);
  j.set("direction", to_string(m.direction));
  j.set("kind", to_string(m.kind));
  j.set("median", s.median);
  j.set("mad", s.mad);
  j.set("min", s.min);
  j.set("max", s.max);
  j.set("mean", s.mean);
  j.set("ci95_lo", s.ci95_lo);
  j.set("ci95_hi", s.ci95_hi);
  Json samples = Json::array();
  for (const double x : m.samples) samples.push_back(x);
  j.set("samples", std::move(samples));
  return j;
}

Json result_json(const Result& r) {
  Json j = Json::object();
  j.set("id", r.id);
  j.set("repetitions", r.repetitions);
  j.set("warmup", r.warmup);
  Json config = Json::object();
  for (const auto& [k, v] : r.config) config.set(k, v);
  j.set("config", std::move(config));
  Json metrics = Json::object();
  for (const auto& m : r.metrics) metrics.set(m.name, metric_json(m));
  j.set("metrics", std::move(metrics));
  Json counters = Json::object();
  for (const auto& [k, v] : r.counters) counters.set(k, v);
  j.set("counters", std::move(counters));
  return j;
}

}  // namespace

Runner::Runner(std::string suite, RunnerOptions options)
    : suite_(std::move(suite)), options_(std::move(options)) {}

Runner::Runner(std::string suite, int argc, const char* const* argv)
    : suite_(std::move(suite)) {
  const util::Cli cli(argc, argv);
  options_.list_only = cli.get_bool("list", false);
  options_.filter = cli.get("filter", "");
  options_.repetitions = static_cast<int>(cli.get_int("repetitions", 3));
  options_.warmup = static_cast<int>(cli.get_int("warmup", 0));
  options_.json_path = cli.get("json", "");
  options_.print_table = !cli.get_bool("no-table", false);
  const std::string tier = cli.get("tier", "full");
  cli.reject_unread(suite_.c_str());
  try {
    options_.tier = parse_tier(tier);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: error: %s\n", suite_.c_str(), e.what());
    std::exit(2);
  }
  if (options_.repetitions < 1 || options_.warmup < 0) {
    std::fprintf(stderr,
                 "%s: error: --repetitions must be >= 1 and --warmup >= 0\n",
                 suite_.c_str());
    std::exit(2);
  }
}

std::ostream& Runner::human_out() const noexcept {
  return options_.json_path == "-" ? std::cerr : std::cout;
}

std::vector<Result> Runner::run(const Registry& registry) const {
  const auto selected = registry.match(options_.filter, options_.tier);
  std::vector<Result> results;
  if (options_.list_only) {
    for (const Benchmark* b : selected) {
      std::printf("%-48s tier=%s reps=%d\n", b->id.c_str(),
                  b->in_smoke ? "smoke+full" : "full",
                  b->repetitions > 0 ? b->repetitions : options_.repetitions);
    }
    return results;
  }
  results.reserve(selected.size());
  for (const Benchmark* b : selected) {
    const int reps = b->repetitions > 0 ? b->repetitions : options_.repetitions;
    const int warmup = b->warmup >= 0 ? b->warmup : options_.warmup;
    Context ctx(b->id, options_.tier);
    for (int rep = -warmup; rep < reps; ++rep) {
      ctx.repetition_ = rep;
      b->fn(ctx);
    }
    ctx.result_.repetitions = reps;
    ctx.result_.warmup = warmup;
    results.push_back(std::move(ctx.result_));
  }
  return results;
}

void Runner::write_artifact(std::ostream& os,
                            const std::vector<Result>& results) const {
  Json root = Json::object();
  root.set("schema_version", 1);
  root.set("suite", suite_);
  root.set("tier", to_string(options_.tier));
  root.set("fingerprint",
           collect_fingerprint(suite_, to_string(options_.tier)).to_json());
  Json benchmarks = Json::array();
  for (const auto& r : results) benchmarks.push_back(result_json(r));
  root.set("benchmarks", std::move(benchmarks));
  root.write(os, 2);
  os << '\n';
}

int Runner::main(const std::function<int(const std::vector<Result>&)>& report,
                 const Registry& registry) const {
  const std::vector<Result> results = run(registry);
  if (options_.list_only) return 0;

  if (options_.print_table) {
    util::Table table({"Benchmark", "Metric", "Median", "Unit", "MAD",
                       "95% CI", "n"});
    for (const auto& r : results) {
      for (const auto& m : r.metrics) {
        const Summary s = summarize(m.samples);
        std::string ci = "[";
        ci += util::Table::num(s.ci95_lo, 4);
        ci += ", ";
        ci += util::Table::num(s.ci95_hi, 4);
        ci += "]";
        table.add_row({r.id, m.name, util::Table::num(s.median, 4), m.unit,
                       util::Table::num(s.mad, 4), ci,
                       std::to_string(s.count)});
      }
    }
    human_out() << '\n';
    table.print(human_out());
  }

  if (!options_.json_path.empty()) {
    if (options_.json_path == "-") {
      write_artifact(std::cout, results);
    } else {
      std::ofstream os(options_.json_path);
      write_artifact(os, results);
      if (!os) {
        std::fprintf(stderr, "%s: error: cannot write artifact to %s\n",
                     suite_.c_str(), options_.json_path.c_str());
        return 1;
      }
      std::printf("perf: %zu benchmark(s) -> %s\n", results.size(),
                  options_.json_path.c_str());
    }
  }

  return report ? report(results) : 0;
}

}  // namespace hupc::perf
