#include "perf/benchmark.hpp"

#include <algorithm>
#include <stdexcept>

namespace hupc::perf {

const char* to_string(Direction d) noexcept {
  return d == Direction::higher_is_better ? "higher_is_better"
                                          : "lower_is_better";
}

const char* to_string(Kind k) noexcept {
  return k == Kind::modeled ? "modeled" : "measured";
}

const char* to_string(Tier t) noexcept {
  return t == Tier::smoke ? "smoke" : "full";
}

Tier parse_tier(std::string_view s) {
  if (s == "smoke") return Tier::smoke;
  if (s == "full") return Tier::full;
  throw std::invalid_argument("unknown tier '" + std::string(s) +
                              "' (expected smoke|full)");
}

const MetricSeries* Result::metric(std::string_view name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

double Result::median(std::string_view name) const {
  const MetricSeries* m = metric(name);
  if (m == nullptr || m->samples.empty()) {
    throw std::out_of_range("benchmark '" + id + "' has no metric '" +
                            std::string(name) + "'");
  }
  std::vector<double> sorted = m->samples;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

std::uint64_t Result::counter(std::string_view name) const {
  for (const auto& [k, v] : counters) {
    if (k == name) return v;
  }
  return 0;
}

void Context::set_config(std::string key, std::string value) {
  for (auto& [k, v] : result_.config) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  result_.config.emplace_back(std::move(key), std::move(value));
}

void Context::report(std::string name, double value, std::string unit,
                     Direction direction, Kind kind) {
  if (warmup_rep()) return;
  for (auto& m : result_.metrics) {
    if (m.name == name) {
      m.samples.push_back(value);
      return;
    }
  }
  MetricSeries series;
  series.name = std::move(name);
  series.unit = std::move(unit);
  series.direction = direction;
  series.kind = kind;
  series.samples.push_back(value);
  result_.metrics.push_back(std::move(series));
}

void Context::report_counter(std::string name, std::uint64_t value) {
  if (warmup_rep()) return;
  for (auto& [k, v] : result_.counters) {
    if (k == name) {
      v = value;
      return;
    }
  }
  result_.counters.emplace_back(std::move(name), value);
}

void Context::report_trace_counters(
    const trace::Tracer& tracer, std::initializer_list<const char*> names) {
  if constexpr (!trace::kEnabled) return;
  for (const char* name : names) {
    report_counter(name, tracer.counter_total(name));
  }
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(Benchmark b) {
  if (b.id.empty()) throw std::invalid_argument("perf: empty benchmark id");
  if (!b.fn) {
    throw std::invalid_argument("perf: benchmark '" + b.id + "' has no body");
  }
  for (const auto& existing : benchmarks_) {
    if (existing.id == b.id) {
      throw std::invalid_argument("perf: duplicate benchmark id '" + b.id +
                                  "'");
    }
  }
  benchmarks_.push_back(std::move(b));
}

std::vector<const Benchmark*> Registry::match(std::string_view filter,
                                              Tier tier) const {
  // Split the comma-separated filter into substrings; a benchmark matches
  // when any substring occurs in its id.
  std::vector<std::string_view> needles;
  std::size_t start = 0;
  while (start <= filter.size()) {
    const std::size_t comma = filter.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? filter.size() : comma;
    if (end > start) needles.push_back(filter.substr(start, end - start));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }

  std::vector<const Benchmark*> out;
  for (const auto& b : benchmarks_) {
    if (tier == Tier::smoke && !b.in_smoke) continue;
    if (!needles.empty()) {
      bool hit = false;
      for (const auto needle : needles) {
        if (b.id.find(needle) != std::string::npos) {
          hit = true;
          break;
        }
      }
      if (!hit) continue;
    }
    out.push_back(&b);
  }
  return out;
}

}  // namespace hupc::perf
