#include "perf/fingerprint.hpp"

#include <cstdlib>

#include "trace/trace.hpp"

// Baked in by src/perf/CMakeLists.txt; fall back gracefully when compiled
// outside the build system (e.g. the header self-containment check).
#ifndef HUPC_BUILD_TYPE
#define HUPC_BUILD_TYPE "unknown"
#endif
#ifndef HUPC_CXX_FLAGS
#define HUPC_CXX_FLAGS ""
#endif

namespace hupc::perf {

Json Fingerprint::to_json() const {
  Json j = Json::object();
  j.set("suite", suite);
  j.set("tier", tier);
  j.set("git_sha", git_sha);
  j.set("build_type", build_type);
  j.set("cxx_flags", cxx_flags);
  j.set("compiler", compiler);
  j.set("trace_level", trace_level);
  return j;
}

Fingerprint collect_fingerprint(std::string suite, std::string tier) {
  Fingerprint fp;
  fp.suite = std::move(suite);
  fp.tier = std::move(tier);
  const char* sha = std::getenv("HUPC_GIT_SHA");
  fp.git_sha = (sha != nullptr && sha[0] != '\0') ? sha : "unknown";
  fp.build_type = HUPC_BUILD_TYPE;
  fp.cxx_flags = HUPC_CXX_FLAGS;
#ifdef __VERSION__
  fp.compiler = __VERSION__;
#else
  fp.compiler = "unknown";
#endif
  fp.trace_level = trace::kTraceLevel;
  return fp;
}

}  // namespace hupc::perf
