// Minimal JSON document model for the benchmark-artifact pipeline.
//
// The perf subsystem needs exactly three things from JSON: (1) write the
// versioned benchmark artifact (`BENCH_results.json`), (2) parse it back for
// schema round-trip tests, (3) keep object key order stable so artifacts
// diff cleanly and a deterministic run re-serializes bit-identically.
// A dependency-free recursive value type covers all three; anything fancier
// (SAX, string_view zero-copy, NaN extensions) is out of scope.
//
// Numbers are serialized with std::to_chars (shortest round-trip form), so
// parse(dump(x)) == x holds exactly for every finite double — the property
// the "bit-identical modeled metrics" regression gate relies on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hupc::perf {

/// One JSON value: null, bool, number (double), string, array, or object.
/// Objects preserve insertion order (lookup is linear — artifact objects
/// are small).
class Json {
 public:
  enum class Type : std::uint8_t { null, boolean, number, string, array, object };

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::boolean), bool_(b) {}  // NOLINT
  Json(double n) : type_(Type::number), num_(n) {}  // NOLINT
  Json(int n) : Json(static_cast<double>(n)) {}     // NOLINT
  Json(std::int64_t n) : Json(static_cast<double>(n)) {}   // NOLINT
  Json(std::uint64_t n) : Json(static_cast<double>(n)) {}  // NOLINT
  Json(std::string s) : type_(Type::string), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                     // NOLINT

  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::null; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::object; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::array; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  // --- arrays -----------------------------------------------------------
  void push_back(Json v);
  [[nodiscard]] const std::vector<Json>& items() const;
  [[nodiscard]] std::size_t size() const;

  // --- objects (insertion-ordered) --------------------------------------
  /// Insert or overwrite `key`.
  void set(std::string_view key, Json v);
  /// Null-constant reference if absent (use contains() to distinguish an
  /// absent key from a stored null).
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const;

  // --- (de)serialization ------------------------------------------------
  /// Parse one JSON document; throws std::runtime_error with an offset on
  /// malformed input or trailing garbage.
  [[nodiscard]] static Json parse(std::string_view text);

  /// Serialize; `indent` > 0 pretty-prints with that many spaces per level.
  void write(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string dump(int indent = 0) const;

  friend bool operator==(const Json& a, const Json& b);

 private:
  void write_indented(std::ostream& os, int indent, int depth) const;

  Type type_ = Type::null;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace hupc::perf
