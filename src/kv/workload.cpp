#include "kv/workload.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "async/future.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace hupc::kv {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty key universe");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: negative exponent");
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

std::uint64_t ZipfSampler::draw(double u01) const {
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u01);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  return std::min(idx, cdf_.size() - 1);
}

namespace {

/// One planned operation: intended arrival (seconds after measured-phase
/// start) plus everything needed to issue it.
struct PlannedOp {
  double at_s = 0;
  KvOp op = KvOp::get;
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

/// Per-rank accumulator the in-flight op coroutines write into.
struct RankAgg {
  util::LogHistogram hist{1e-6, 4, 30};
  double sum_s = 0;
  double max_s = 0;
  double last_done_s = 0;
  std::uint64_t done = 0;
  std::uint64_t within_slo = 0;
};

/// Issue one operation, then record intended-arrival → completion latency.
sim::Task<void> serve_op(gas::Thread& t, gas::Runtime& rt, KvStore& store,
                         PlannedOp op, double due_s, double slo_s,
                         KvPath path, RankAgg& agg) {
  switch (op.op) {
    case KvOp::get:
      (void)co_await store.get(t, op.key, path);
      break;
    case KvOp::put:
      (void)co_await store.put(t, op.key, op.value, path);
      break;
    case KvOp::update:
      (void)co_await store.update(t, op.key, op.value, path);
      break;
    case KvOp::erase:
      (void)co_await store.erase(t, op.key, path);
      break;
  }
  const double done_s = sim::to_seconds(rt.engine().now());
  const double lat_s = std::max(0.0, done_s - due_s);
  agg.hist.add(lat_s);
  agg.sum_s += lat_s;
  agg.max_s = std::max(agg.max_s, lat_s);
  agg.last_done_s = std::max(agg.last_done_s, done_s);
  ++agg.done;
  HUPC_TRACE_COUNT(rt.tracer(), "kv.latency.op", t.rank());
  if (lat_s <= slo_s) {
    ++agg.within_slo;
  } else {
    HUPC_TRACE_COUNT(rt.tracer(), "kv.latency.slo_miss", t.rank());
  }
}

void validate(const ServingParams& p) {
  if (p.keys == 0) throw std::invalid_argument("kv: keys must be > 0");
  if (p.ops_per_rank == 0) {
    throw std::invalid_argument("kv: ops-per-rank must be > 0");
  }
  if (p.read_fraction < 0.0 || p.read_fraction > 1.0) {
    throw std::invalid_argument("kv: rw-mix read fraction must be in [0,1]");
  }
  if (!(p.arrival_rate_hz > 0.0)) {
    throw std::invalid_argument("kv: arrival rate must be positive");
  }
  if (p.burst < 1.0) {
    throw std::invalid_argument("kv: burst factor must be >= 1");
  }
  if (p.burst_len == 0) {
    throw std::invalid_argument("kv: burst length must be > 0");
  }
  if (p.zipf_s < 0.0) {
    throw std::invalid_argument("kv: zipf exponent must be >= 0");
  }
  if (!(p.slo_s > 0.0)) {
    throw std::invalid_argument("kv: slo must be positive");
  }
}

}  // namespace

ServingResult run_serving(gas::Runtime& rt, KvStore& store,
                          const ServingParams& p) {
  validate(p);
  const int n = rt.threads();

  // Host-side plan: deterministic per (seed, rank), independent of the
  // interleaving the engine later produces.
  std::optional<ZipfSampler> zipf;
  if (p.dist == KeyDist::zipfian) zipf.emplace(p.keys, p.zipf_s);
  const double base_gap_s = 1.0 / p.arrival_rate_hz;
  const double hot_gap_s = base_gap_s / p.burst;
  const double cold_gap_s = base_gap_s * (2.0 - 1.0 / p.burst);

  std::vector<std::vector<PlannedOp>> plans(static_cast<std::size_t>(n));
  std::uint64_t planned_reads = 0;
  std::uint64_t planned_writes = 0;
  for (int r = 0; r < n; ++r) {
    util::Xoshiro256ss rng(
        mix64(p.seed ^ 0x5EBD1A11ULL) ^ static_cast<std::uint64_t>(r));
    auto& plan = plans[static_cast<std::size_t>(r)];
    plan.reserve(p.ops_per_rank);
    double at = 0;
    for (std::size_t i = 0; i < p.ops_per_rank; ++i) {
      const bool hot = (i / p.burst_len) % 2 == 0;
      const double mean_gap = hot ? hot_gap_s : cold_gap_s;
      at += -std::log(1.0 - rng.uniform()) * mean_gap;
      PlannedOp op;
      op.at_s = at;
      op.key = zipf ? zipf->draw(rng.uniform())
                    : rng.below(static_cast<std::uint64_t>(p.keys));
      const double u = rng.uniform();
      if (u < p.read_fraction) {
        op.op = KvOp::get;
        ++planned_reads;
      } else {
        op.op = rng.uniform() < 2.0 / 3.0 ? KvOp::put : KvOp::update;
        op.value = rng.next();
        ++planned_writes;
      }
      plan.push_back(op);
    }
  }

  std::vector<RankAgg> aggs(static_cast<std::size_t>(n));
  std::vector<double> t0s(static_cast<std::size_t>(n), 0.0);

  rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
    const int r = t.rank();
    // Preload every key exactly once (rank-partitioned: the measured phase
    // then only ever re-assigns existing keys, sidestepping the
    // unarbitrated first-insert race the slot protocol documents).
    for (std::uint64_t k = static_cast<std::uint64_t>(r); k < p.keys;
         k += static_cast<std::uint64_t>(n)) {
      (void)co_await store.put(t, k, mix64(k));
    }
    co_await t.barrier();

    const double t0 = sim::to_seconds(rt.engine().now());
    t0s[static_cast<std::size_t>(r)] = t0;
    std::optional<gas::CachedEpoch> epoch;
    if (p.read_cache) epoch.emplace(t);

    RankAgg& agg = aggs[static_cast<std::size_t>(r)];
    std::vector<async::future<>> inflight;
    const auto& plan = plans[static_cast<std::size_t>(r)];
    inflight.reserve(plan.size());
    for (const PlannedOp& op : plan) {
      const double due = t0 + op.at_s;
      const double now = sim::to_seconds(rt.engine().now());
      if (due > now) {
        co_await sim::delay(rt.engine(), sim::from_seconds(due - now));
      }
      inflight.push_back(
          t.launch_async(serve_op(t, rt, store, op, due, p.slo_s, p.path,
                                  agg)));
    }
    co_await async::when_all(std::move(inflight));
    if (epoch) epoch->end();
    co_await t.barrier();
  });
  rt.run_to_completion();

  // Shard occupancy counters: one weighted count per shard at its owner,
  // recorded once the table is quiescent.
  for (int s = 0; s < store.shard_map().shards(); ++s) {
    HUPC_TRACE_COUNT(rt.tracer(), "gas.kv.shard.live",
                     store.shard_map().owner_of(s), store.shard_live(s));
  }

  ServingResult res;
  res.reads = planned_reads;
  res.writes = planned_writes;
  double t0_min = t0s.empty() ? 0.0 : t0s.front();
  double last_done = 0;
  for (const double t0 : t0s) t0_min = std::min(t0_min, t0);
  for (const RankAgg& agg : aggs) {
    res.latency.merge(agg.hist);
    res.ops += agg.done;
    res.within_slo += agg.within_slo;
    res.mean_s += agg.sum_s;
    res.max_s = std::max(res.max_s, agg.max_s);
    last_done = std::max(last_done, agg.last_done_s);
  }
  if (res.ops > 0) res.mean_s /= static_cast<double>(res.ops);
  res.makespan_s = std::max(0.0, last_done - t0_min);
  res.p50_s = res.latency.percentile(0.50);
  res.p99_s = res.latency.percentile(0.99);
  res.p999_s = res.latency.percentile(0.999);
  if (res.makespan_s > 0) {
    res.throughput_ops_s = static_cast<double>(res.ops) / res.makespan_s;
    res.slo_goodput_ops_s =
        static_cast<double>(res.within_slo) / res.makespan_s;
  }
  return res;
}

}  // namespace hupc::kv
