// KV access-path identities and the per-call selector.
//
// Every kv::KvStore operation can execute two ways (DESIGN.md §16):
//
//   amo — fine-grained slot claims at the CALLER: remote gets walk the
//         probe chain, a compare_swap on the slot's state word claims it,
//         and puts publish the mutation. Reads are plain fine-grained gets,
//         so a read-cache epoch serves hot (Zipfian head) keys at local
//         cost; writes pay the full claim/publish round trips.
//   rpc — ship the operation to the shard's OWNER through the src/async
//         personas: one request message, a host-side probe charged as local
//         work in the owner's context, one reply. Writes collapse the
//         multi-round-trip claim protocol into a single round trip; reads
//         give up the caller-side cache.
//
// KvSelector packages the choice the same way CollectiveSelector does for
// collectives: call sites either pin a path (`--kv-path=amo|rpc`) or let
// `choose` pick per call (`auto`). The policy mirrors the modeled costs:
// same-supernode shards are cheapest via direct atomics, remote reads ride
// the (cacheable) fine-grained path, and remote writes take the
// single-round-trip RPC.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace hupc::kv {

/// Operation kinds a KvStore executes (trace counters count each).
enum class KvOp : std::uint8_t {
  get = 0,
  put = 1,
  erase = 2,
  update = 3,
};

enum class KvPath : std::uint8_t {
  automatic = 0,  // defer to the KvSelector
  amo = 1,        // caller-side fine-grained AMO slot claims
  rpc = 2,        // execute at the shard owner via async::RpcDomain
};

[[nodiscard]] inline const char* kv_op_name(KvOp op) noexcept {
  switch (op) {
    case KvOp::get: return "get";
    case KvOp::put: return "put";
    case KvOp::erase: return "erase";
    case KvOp::update: return "update";
  }
  return "?";
}

[[nodiscard]] inline const char* kv_path_name(KvPath p) noexcept {
  switch (p) {
    case KvPath::automatic: return "auto";
    case KvPath::amo: return "amo";
    case KvPath::rpc: return "rpc";
  }
  return "?";
}

/// Parse a `--kv-path` value; nullopt on anything unknown (callers turn
/// that into their CLI error path — exit 2, like every other enum flag).
[[nodiscard]] inline std::optional<KvPath> parse_kv_path(
    const std::string& s) noexcept {
  if (s == "auto") return KvPath::automatic;
  if (s == "amo") return KvPath::amo;
  if (s == "rpc") return KvPath::rpc;
  return std::nullopt;
}

/// Path choice keyed on (operation, shard locality). `override_path` pins
/// every operation to one path (the `--kv-path=` escape hatch).
struct KvSelector {
  KvPath override_path = KvPath::automatic;
  /// Same-supernode shards: the claim protocol runs at atomic-op cost with
  /// no wire in the way, so everything stays on the AMO path.
  bool local_amo = true;
  /// Remote reads stay fine-grained so a read-cache epoch can serve the
  /// Zipfian head at local cost; a remote get is one probe round trip
  /// against the RPC's request + persona + reply.
  bool reads_amo = true;

  [[nodiscard]] KvPath choose(KvOp op, bool same_supernode) const noexcept {
    if (override_path != KvPath::automatic) return override_path;
    if (same_supernode && local_amo) return KvPath::amo;
    if (op == KvOp::get && reads_amo) return KvPath::amo;
    // Remote mutations: one RPC round trip beats the probe + claim +
    // publish sequence (3+ round trips) every time.
    return KvPath::rpc;
  }
};

}  // namespace hupc::kv
