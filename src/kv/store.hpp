// Sharded in-GAS key-value store (DESIGN.md §16).
//
// A KvStore is an open-addressing hash table scattered over the global
// address space: every shard is a fixed-capacity array of fixed-size
// Slot{key, value, state} records homed at the shard's owner rank (the
// ShardMap deals shards round-robin over a team). Linear probing, lazy
// deletion through tombstones, and a three-state slot protocol:
//
//     empty ──cas──> busy ──publish──> full ──cas──> busy ──> tomb
//                     ^                                │
//                     └──────── cas (update) ──────────┘
//
// A writer CLAIMS a slot by compare_swap'ing its state word to `busy`,
// publishes key/value with plain puts, and RELEASES by storing the final
// state. Because the window between a probe read and the claim CAS is
// several round trips wide, a slot can be erased and its tombstone reused
// for a different key in that window with the state word back at `full`
// (ABA); every full-slot claim therefore re-reads the key under the claim
// and, on a mismatch, releases the slot untouched and re-probes. Readers
// re-read busy slots until the claimant publishes; the single-threaded
// event engine makes every interleaving reproducible. Mutating ONE key
// from two ranks concurrently is linearized by the claim CAS; concurrently
// INSERTING the same brand-new key from two ranks is the one race the
// protocol does not arbitrate (both may claim distinct empty slots) —
// callers partition first-insert responsibility, as kv::run_serving's
// preload and the fuzz workload's writer partitions do.
//
// Every operation executes over one of two paths — caller-side AMO claims
// or RPC-to-owner via async::RpcDomain — chosen per call by the KvSelector
// (see selector.hpp for the cost trade). Both paths maintain per-shard
// live/tombstone counters in GAS, count gas.kv.* trace counters, and are
// interchangeable mid-run: the fuzz workload mixes them per-op and the
// equivalence tests pin identical final states.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "async/rpc.hpp"
#include "gas/runtime.hpp"
#include "kv/selector.hpp"
#include "kv/shard_map.hpp"
#include "sim/sim.hpp"

namespace hupc::kv {

/// Wire-serializable operation result: `found == 0` means the key was not
/// present (get/update) or the shard chain was exhausted (put).
struct KvHit {
  std::uint64_t value = 0;
  std::uint8_t found = 0;
};

/// Host-side aggregate of everything the gas.kv.* trace counters count —
/// available in HUPC_TRACE_LEVEL=0 builds and cross-checked against the
/// counters by fault::check_kv_conservation when tracing is compiled in.
struct KvStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t erases = 0;
  std::uint64_t updates = 0;
  std::uint64_t amo_ops = 0;
  std::uint64_t rpc_ops = 0;
  std::uint64_t probes = 0;
  std::uint64_t retries = 0;
  std::uint64_t inserts = 0;
  std::uint64_t tombstones = 0;

  [[nodiscard]] std::uint64_t total_ops() const noexcept {
    return gets + puts + erases + updates;
  }
};

class KvStore {
 public:
  /// One table slot. Trivially copyable so the AMO path reads a whole slot
  /// in ONE fine-grained get (and a read-cache line covers whole slots).
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    std::uint64_t state = 0;
  };

  static constexpr std::uint64_t kEmpty = 0;
  static constexpr std::uint64_t kBusy = 1;
  static constexpr std::uint64_t kFull = 2;
  static constexpr std::uint64_t kTomb = 3;

  struct Params {
    /// Slots per shard; rounded up to a power of two.
    std::size_t capacity = 1024;
    KvSelector selector;
  };

  /// Allocates every shard's slot array and meta words in the heap at the
  /// shard owner's affinity. The RpcDomain must outlive the store (both
  /// must be constructed before spmd(), like the domain itself).
  KvStore(gas::Runtime& rt, async::RpcDomain& rpc, ShardMap map,
          Params params);
  KvStore(gas::Runtime& rt, async::RpcDomain& rpc, ShardMap map)
      : KvStore(rt, rpc, std::move(map), Params{}) {}

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // --- simulation-side operations (per-call path override; `automatic`
  //     defers to the selector) ---

  [[nodiscard]] sim::Task<KvHit> get(gas::Thread& t, std::uint64_t key,
                                     KvPath path = KvPath::automatic);
  /// Insert-or-assign; false only when the shard's probe chain is full.
  [[nodiscard]] sim::Task<bool> put(gas::Thread& t, std::uint64_t key,
                                    std::uint64_t value,
                                    KvPath path = KvPath::automatic);
  /// Tombstone the key; false when absent.
  [[nodiscard]] sim::Task<bool> erase(gas::Thread& t, std::uint64_t key,
                                      KvPath path = KvPath::automatic);
  /// Atomic read-modify-write: value += delta when present (the AMO path
  /// runs a fetch_add under the slot claim). Returns the NEW value.
  [[nodiscard]] sim::Task<KvHit> update(gas::Thread& t, std::uint64_t key,
                                        std::uint64_t delta,
                                        KvPath path = KvPath::automatic);

  // --- host-side accessors (between runs / after run_to_completion) ---

  [[nodiscard]] const ShardMap& shard_map() const noexcept { return map_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const KvStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const KvSelector& selector() const noexcept {
    return params_.selector;
  }

  /// Shard's live counter (maintained by fetch_add / handler increments).
  [[nodiscard]] std::uint64_t shard_live(int shard) const;
  /// Shard's live count RE-COUNTED by walking the slots — conservation
  /// checking compares this against shard_live().
  [[nodiscard]] std::uint64_t shard_live_recount(int shard) const;
  [[nodiscard]] std::uint64_t live() const;
  /// Occupied fraction of the fullest shard, in slots (live + tombstones).
  [[nodiscard]] std::uint64_t max_shard_slots_used() const;

  /// All live (key, value) pairs, unordered.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  snapshot() const;

 private:
  struct Shard {
    gas::GlobalPtr<Slot> slots;
    gas::GlobalPtr<std::uint64_t> meta;  // [0] live, [1] tombstones
  };

  [[nodiscard]] std::size_t start_of(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(mix64(key) >> 17) & (capacity_ - 1);
  }
  [[nodiscard]] gas::GlobalPtr<Slot> slot_ptr(const Shard& sh,
                                              std::size_t idx) const noexcept {
    return {sh.slots.owner, sh.slots.raw + idx};
  }
  [[nodiscard]] gas::GlobalPtr<std::uint64_t> state_ptr(
      const Shard& sh, std::size_t idx) const noexcept {
    return {sh.slots.owner, &(sh.slots.raw + idx)->state};
  }
  [[nodiscard]] gas::GlobalPtr<std::uint64_t> value_ptr(
      const Shard& sh, std::size_t idx) const noexcept {
    return {sh.slots.owner, &(sh.slots.raw + idx)->value};
  }
  [[nodiscard]] gas::GlobalPtr<std::uint64_t> key_ptr(
      const Shard& sh, std::size_t idx) const noexcept {
    return {sh.slots.owner, &(sh.slots.raw + idx)->key};
  }
  [[nodiscard]] gas::GlobalPtr<std::uint64_t> live_ptr(
      const Shard& sh) const noexcept {
    return {sh.meta.owner, sh.meta.raw};
  }
  [[nodiscard]] gas::GlobalPtr<std::uint64_t> tomb_ptr(
      const Shard& sh) const noexcept {
    return {sh.meta.owner, sh.meta.raw + 1};
  }

  /// Selector + locality → concrete path; counts the op and path. A
  /// non-automatic `call_override` (the per-call argument) wins over the
  /// store-wide selector without touching it.
  [[nodiscard]] KvPath resolve(KvOp op, gas::Thread& t, int shard,
                               KvPath call_override);

  // Caller-side AMO protocol.

  /// Outcome of a verified full-slot claim: `lost` the CAS to a racer,
  /// `won` it with the expected key still in place, or `moved` — the CAS
  /// succeeded but the slot was recycled to another key inside the claim
  /// window (erase + tombstone reuse), so the claimant released it and
  /// must re-probe from scratch.
  enum class Claim : std::uint8_t { won, lost, moved };
  [[nodiscard]] sim::Task<Claim> claim_full_slot(gas::Thread& t,
                                                 const Shard& sh,
                                                 std::size_t idx,
                                                 std::uint64_t key);
  [[nodiscard]] sim::Task<KvHit> amo_get(gas::Thread& t, int shard,
                                         std::uint64_t key);
  [[nodiscard]] sim::Task<bool> amo_put(gas::Thread& t, int shard,
                                        std::uint64_t key,
                                        std::uint64_t value);
  [[nodiscard]] sim::Task<bool> amo_erase(gas::Thread& t, int shard,
                                          std::uint64_t key);
  [[nodiscard]] sim::Task<KvHit> amo_update(gas::Thread& t, int shard,
                                            std::uint64_t key,
                                            std::uint64_t delta);

  // Owner-side execution: host probe + local-work charge, invoked through
  // the RPC personas (or inline when the caller IS the owner).
  [[nodiscard]] sim::Task<KvHit> owner_op(gas::Thread& at, KvOp op, int shard,
                                          std::uint64_t key,
                                          std::uint64_t value);
  [[nodiscard]] sim::Task<KvHit> rpc_op(gas::Thread& t, KvOp op, int shard,
                                        std::uint64_t key,
                                        std::uint64_t value);

  void note_probe(int rank, std::uint64_t n = 1);
  void note_retry(int rank);

  gas::Runtime* rt_;
  async::RpcDomain* rpc_;
  ShardMap map_;
  Params params_;
  std::size_t capacity_ = 0;  // power of two
  std::vector<Shard> shards_;
  KvStats stats_;
};

}  // namespace hupc::kv
