// Open-loop serving workload for the kv store (DESIGN.md §16).
//
// The generator is OPEN-LOOP: every operation has a precomputed intended
// arrival time drawn from a Poisson process (optionally phased into bursts),
// and latency is measured from the INTENDED arrival to completion — so a
// store that falls behind accumulates queueing delay in its tail instead of
// quietly throttling the load, the property that makes p99/p99.9 mean
// something. Key draws are Zipfian (precomputed CDF, binary-searched) or
// uniform; the read/write mix splits the write side between put and update.
// The measured phase runs get/put/update only: concurrent first-inserts of
// one brand-new key are the single race the slot protocol leaves to callers
// (store.hpp), so every key is preloaded by exactly one rank first, and
// erase is exercised by the fuzz workload and unit tests, which partition
// key ownership.
//
// Arrival waits ride sim::delay, so a fault plan's event_jitter seam (the
// kv-storm template) perturbs the arrival process itself — bursty *and*
// jittered arrivals come from the same knob that jitters everything else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kv/store.hpp"
#include "util/histogram.hpp"

namespace hupc::kv {

enum class KeyDist : std::uint8_t {
  zipfian = 0,
  uniform = 1,
};

[[nodiscard]] inline const char* key_dist_name(KeyDist d) noexcept {
  switch (d) {
    case KeyDist::zipfian: return "zipfian";
    case KeyDist::uniform: return "uniform";
  }
  return "?";
}

/// Parse a `--dist` value; nullopt on anything unknown.
[[nodiscard]] inline std::optional<KeyDist> parse_key_dist(
    const std::string& s) noexcept {
  if (s == "zipfian") return KeyDist::zipfian;
  if (s == "uniform") return KeyDist::uniform;
  return std::nullopt;
}

/// Zipfian rank sampler over {0..n-1} with exponent `s`: precomputes the
/// CDF once (O(n)), then inverts uniform draws by binary search. s == 0
/// degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Map a uniform u in [0,1) to a rank; rank 0 is the hottest key.
  [[nodiscard]] std::uint64_t draw(double u01) const;

 private:
  std::vector<double> cdf_;
};

struct ServingParams {
  /// Key universe; every key is preloaded before the measured phase.
  std::size_t keys = 4096;
  std::size_t ops_per_rank = 128;
  KeyDist dist = KeyDist::zipfian;
  double zipf_s = 0.99;
  /// Fraction of measured ops that are gets; the rest split 2:1 put:update.
  double read_fraction = 0.95;
  /// Path every measured op requests (automatic = per-call selector).
  KvPath path = KvPath::automatic;
  /// Per-rank offered load (open-loop Poisson arrivals).
  double arrival_rate_hz = 1.0e6;
  /// Peak-to-mean arrival ratio: phases of `burst_len` ops alternate
  /// between `burst` x and the balancing fraction of the mean rate. 1.0
  /// keeps arrivals homogeneous.
  double burst = 1.0;
  std::size_t burst_len = 16;
  /// Latency SLO for goodput accounting.
  double slo_s = 50e-6;
  /// Serve the measured phase inside a read-cache epoch.
  bool read_cache = true;
  std::uint64_t seed = 1;
};

struct ServingResult {
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t within_slo = 0;
  /// Virtual time from measured-phase start to last completion.
  double makespan_s = 0;
  double p50_s = 0;
  double p99_s = 0;
  double p999_s = 0;
  double mean_s = 0;
  double max_s = 0;
  double throughput_ops_s = 0;
  /// Completions that met the SLO, per second of makespan.
  double slo_goodput_ops_s = 0;
  /// Merged latency distribution (seconds; 1 µs unit, 16 sub-buckets).
  util::LogHistogram latency{1e-6, 4, 30};
};

/// Run the full serving experiment on an already-built store: rank-
/// partitioned preload of every key, barrier, then the open-loop measured
/// phase (launch_async per op, when_all at the end). Drives rt.spmd +
/// run_to_completion itself; the caller installs any fault plan and tracer
/// beforehand. Throws std::invalid_argument on out-of-range params.
[[nodiscard]] ServingResult run_serving(gas::Runtime& rt, KvStore& store,
                                        const ServingParams& params);

}  // namespace hupc::kv
