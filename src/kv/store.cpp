#include "kv/store.hpp"

#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace hupc::kv {

namespace {

/// Backoff after observing a busy (mid-claim) slot or losing a claim CAS:
/// guarantees virtual time advances between retries, so a retry loop can
/// never spin inside one engine instant.
constexpr double kBusyBackoffS = 500e-9;

/// Owner-side handler cost model: hash/dispatch plus a per-slot walk
/// charge — the privatized local work an RPC buys in exchange for the
/// request/reply round trip.
constexpr double kOwnerBaseS = 150e-9;
constexpr double kOwnerProbeS = 40e-9;

}  // namespace

KvStore::KvStore(gas::Runtime& rt, async::RpcDomain& rpc, ShardMap map,
                 Params params)
    : rt_(&rt), rpc_(&rpc), map_(std::move(map)), params_(params) {
  capacity_ = 2;
  while (capacity_ < params_.capacity) capacity_ *= 2;
  shards_.reserve(static_cast<std::size_t>(map_.shards()));
  for (int s = 0; s < map_.shards(); ++s) {
    Shard sh;
    const int owner = map_.owner_of(s);
    sh.slots = rt.heap().alloc<Slot>(owner, capacity_);
    sh.meta = rt.heap().alloc<std::uint64_t>(owner, 2);
    for (std::size_t i = 0; i < capacity_; ++i) sh.slots.raw[i] = Slot{};
    sh.meta.raw[0] = 0;
    sh.meta.raw[1] = 0;
    shards_.push_back(sh);
  }
}

void KvStore::note_probe(int rank, std::uint64_t n) {
  stats_.probes += n;
  HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.probe", rank, n);
}

void KvStore::note_retry(int rank) {
  ++stats_.retries;
  HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.retry", rank);
}

KvPath KvStore::resolve(KvOp op, gas::Thread& t, int shard,
                        KvPath call_override) {
  switch (op) {
    case KvOp::get:
      ++stats_.gets;
      HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.get", t.rank());
      break;
    case KvOp::put:
      ++stats_.puts;
      HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.put", t.rank());
      break;
    case KvOp::erase:
      ++stats_.erases;
      HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.erase", t.rank());
      break;
    case KvOp::update:
      ++stats_.updates;
      HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.update", t.rank());
      break;
  }
  const int owner = map_.owner_of(shard);
  KvPath p = call_override != KvPath::automatic
                 ? call_override
                 : params_.selector.choose(
                       op, rt_->same_supernode(t.rank(), owner));
  if (p == KvPath::automatic) p = KvPath::amo;
  if (p == KvPath::amo) {
    ++stats_.amo_ops;
    HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.path.amo", t.rank());
  } else {
    ++stats_.rpc_ops;
    HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.path.rpc", t.rank());
  }
  return p;
}

sim::Task<KvHit> KvStore::get(gas::Thread& t, std::uint64_t key, KvPath path) {
  const int shard = map_.shard_of(key);
  const KvPath p = resolve(KvOp::get, t, shard, path);
  if (p == KvPath::amo) co_return co_await amo_get(t, shard, key);
  co_return co_await rpc_op(t, KvOp::get, shard, key, 0);
}

sim::Task<bool> KvStore::put(gas::Thread& t, std::uint64_t key,
                             std::uint64_t value, KvPath path) {
  const int shard = map_.shard_of(key);
  const KvPath p = resolve(KvOp::put, t, shard, path);
  if (p == KvPath::amo) co_return co_await amo_put(t, shard, key, value);
  const KvHit r = co_await rpc_op(t, KvOp::put, shard, key, value);
  co_return r.found != 0;
}

sim::Task<bool> KvStore::erase(gas::Thread& t, std::uint64_t key,
                               KvPath path) {
  const int shard = map_.shard_of(key);
  const KvPath p = resolve(KvOp::erase, t, shard, path);
  if (p == KvPath::amo) co_return co_await amo_erase(t, shard, key);
  const KvHit r = co_await rpc_op(t, KvOp::erase, shard, key, 0);
  co_return r.found != 0;
}

sim::Task<KvHit> KvStore::update(gas::Thread& t, std::uint64_t key,
                                 std::uint64_t delta, KvPath path) {
  const int shard = map_.shard_of(key);
  const KvPath p = resolve(KvOp::update, t, shard, path);
  if (p == KvPath::amo) co_return co_await amo_update(t, shard, key, delta);
  co_return co_await rpc_op(t, KvOp::update, shard, key, delta);
}

// --- caller-side AMO protocol -------------------------------------------

sim::Task<KvStore::Claim> KvStore::claim_full_slot(gas::Thread& t,
                                                   const Shard& sh,
                                                   std::size_t idx,
                                                   std::uint64_t key) {
  const std::uint64_t old =
      co_await t.compare_swap(state_ptr(sh, idx), kFull, kBusy);
  if (old != kFull) co_return Claim::lost;
  // Winning the CAS alone does not prove the slot still holds `key`: the
  // claim window between the probe read and the CAS is several round trips
  // wide, and in it the slot can be erased and its tombstone reused for a
  // DIFFERENT key (state cycles full -> tomb -> busy -> full, so the CAS
  // cannot tell — the classic ABA). Re-read the key under the claim; on a
  // mismatch hand the (untouched) slot back and make the caller re-probe.
  const std::uint64_t now = co_await t.get(key_ptr(sh, idx));
  note_probe(t.rank());
  if (now == key) co_return Claim::won;
  co_await t.put(state_ptr(sh, idx), kFull);
  co_return Claim::moved;
}

sim::Task<KvHit> KvStore::amo_get(gas::Thread& t, int shard,
                                  std::uint64_t key) {
  const Shard& sh = shards_[static_cast<std::size_t>(shard)];
  const std::size_t mask = capacity_ - 1;
  std::size_t idx = start_of(key);
  std::size_t walked = 0;
  while (walked < capacity_) {
    const Slot s = co_await t.get(slot_ptr(sh, idx));
    note_probe(t.rank());
    if (s.state == kBusy) {
      // A claimant is mid-publish: back off and re-read the same slot.
      note_retry(t.rank());
      co_await sim::delay(rt_->engine(), sim::from_seconds(kBusyBackoffS));
      continue;
    }
    if (s.state == kEmpty) co_return KvHit{};
    if (s.state == kFull && s.key == key) co_return KvHit{s.value, 1};
    idx = (idx + 1) & mask;
    ++walked;
  }
  co_return KvHit{};
}

sim::Task<bool> KvStore::amo_put(gas::Thread& t, int shard, std::uint64_t key,
                                 std::uint64_t value) {
  const Shard& sh = shards_[static_cast<std::size_t>(shard)];
  const std::size_t mask = capacity_ - 1;
  for (;;) {  // restarted when a claim CAS loses a race
    std::size_t idx = start_of(key);
    std::size_t first_tomb = capacity_;  // sentinel: none seen
    bool restart = false;
    for (std::size_t walked = 0; walked < capacity_;) {
      const Slot s = co_await t.get(slot_ptr(sh, idx));
      note_probe(t.rank());
      if (s.state == kBusy) {
        note_retry(t.rank());
        co_await sim::delay(rt_->engine(), sim::from_seconds(kBusyBackoffS));
        continue;
      }
      if (s.state == kFull && s.key == key) {
        // Assign in place under a claim: full -> busy -> (new value) -> full.
        const Claim c = co_await claim_full_slot(t, sh, idx, key);
        if (c != Claim::won) {
          note_retry(t.rank());
          co_await sim::delay(rt_->engine(), sim::from_seconds(kBusyBackoffS));
          if (c == Claim::lost) continue;  // re-read: a racer claimed first
          restart = true;  // slot now holds another key: rebuild the view
          break;
        }
        co_await t.put(value_ptr(sh, idx), value);
        co_await t.put(state_ptr(sh, idx), kFull);
        co_return true;
      }
      if (s.state == kTomb) {
        if (first_tomb == capacity_) first_tomb = idx;
        idx = (idx + 1) & mask;
        ++walked;
        continue;
      }
      if (s.state == kEmpty) {
        // The chain ends here, so the key is absent: claim the first
        // reusable slot (earliest tombstone, else this empty slot).
        const std::size_t target = first_tomb != capacity_ ? first_tomb : idx;
        const std::uint64_t expected =
            target == idx ? kEmpty : kTomb;
        const std::uint64_t old =
            co_await t.compare_swap(state_ptr(sh, target), expected, kBusy);
        if (old != expected) {
          // Someone re-shaped the chain under us; rebuild the view.
          note_retry(t.rank());
          co_await sim::delay(rt_->engine(), sim::from_seconds(kBusyBackoffS));
          restart = true;
          break;
        }
        co_await t.put(key_ptr(sh, target), key);
        co_await t.put(value_ptr(sh, target), value);
        co_await t.put(state_ptr(sh, target), kFull);
        (void)co_await t.fetch_add(live_ptr(sh), std::uint64_t{1});
        if (expected == kTomb) {
          (void)co_await t.fetch_add(tomb_ptr(sh),
                                     ~std::uint64_t{0});  // -1
        }
        ++stats_.inserts;
        HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.insert", t.rank());
        co_return true;
      }
      idx = (idx + 1) & mask;  // full, other key
      ++walked;
    }
    if (restart) continue;
    // Chain exhausted without an empty slot: reuse the earliest tombstone
    // (the full scan proved the key absent) or report the shard full.
    if (first_tomb == capacity_) co_return false;
    const std::uint64_t old =
        co_await t.compare_swap(state_ptr(sh, first_tomb), kTomb, kBusy);
    if (old != kTomb) {
      note_retry(t.rank());
      co_await sim::delay(rt_->engine(), sim::from_seconds(kBusyBackoffS));
      continue;
    }
    co_await t.put(key_ptr(sh, first_tomb), key);
    co_await t.put(value_ptr(sh, first_tomb), value);
    co_await t.put(state_ptr(sh, first_tomb), kFull);
    (void)co_await t.fetch_add(live_ptr(sh), std::uint64_t{1});
    (void)co_await t.fetch_add(tomb_ptr(sh), ~std::uint64_t{0});
    ++stats_.inserts;
    HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.insert", t.rank());
    co_return true;
  }
}

sim::Task<bool> KvStore::amo_erase(gas::Thread& t, int shard,
                                   std::uint64_t key) {
  const Shard& sh = shards_[static_cast<std::size_t>(shard)];
  const std::size_t mask = capacity_ - 1;
  for (;;) {  // restarted when a claimed slot turned out to hold another key
    std::size_t idx = start_of(key);
    std::size_t walked = 0;
    bool restart = false;
    while (walked < capacity_) {
      const Slot s = co_await t.get(slot_ptr(sh, idx));
      note_probe(t.rank());
      if (s.state == kBusy) {
        note_retry(t.rank());
        co_await sim::delay(rt_->engine(), sim::from_seconds(kBusyBackoffS));
        continue;
      }
      if (s.state == kEmpty) co_return false;
      if (s.state == kFull && s.key == key) {
        const Claim c = co_await claim_full_slot(t, sh, idx, key);
        if (c != Claim::won) {
          note_retry(t.rank());
          co_await sim::delay(rt_->engine(), sim::from_seconds(kBusyBackoffS));
          if (c == Claim::lost) continue;  // re-read: a racer claimed first
          restart = true;  // slot now holds another key: rebuild the view
          break;
        }
        co_await t.put(state_ptr(sh, idx), kTomb);
        (void)co_await t.fetch_add(live_ptr(sh), ~std::uint64_t{0});
        (void)co_await t.fetch_add(tomb_ptr(sh), std::uint64_t{1});
        ++stats_.tombstones;
        HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.tombstone", t.rank());
        co_return true;
      }
      idx = (idx + 1) & mask;
      ++walked;
    }
    if (restart) continue;
    co_return false;
  }
}

sim::Task<KvHit> KvStore::amo_update(gas::Thread& t, int shard,
                                     std::uint64_t key, std::uint64_t delta) {
  const Shard& sh = shards_[static_cast<std::size_t>(shard)];
  const std::size_t mask = capacity_ - 1;
  for (;;) {  // restarted when a claimed slot turned out to hold another key
    std::size_t idx = start_of(key);
    std::size_t walked = 0;
    bool restart = false;
    while (walked < capacity_) {
      const Slot s = co_await t.get(slot_ptr(sh, idx));
      note_probe(t.rank());
      if (s.state == kBusy) {
        note_retry(t.rank());
        co_await sim::delay(rt_->engine(), sim::from_seconds(kBusyBackoffS));
        continue;
      }
      if (s.state == kEmpty) co_return KvHit{};
      if (s.state == kFull && s.key == key) {
        const Claim c = co_await claim_full_slot(t, sh, idx, key);
        if (c != Claim::won) {
          note_retry(t.rank());
          co_await sim::delay(rt_->engine(), sim::from_seconds(kBusyBackoffS));
          if (c == Claim::lost) continue;  // re-read: a racer claimed first
          restart = true;  // slot now holds another key: rebuild the view
          break;
        }
        // The claim serializes writers, so the fetch_add below is the only
        // mutation in flight; its return value is the pre-claim value.
        const std::uint64_t before =
            co_await t.fetch_add(value_ptr(sh, idx), delta);
        co_await t.put(state_ptr(sh, idx), kFull);
        co_return KvHit{before + delta, 1};
      }
      idx = (idx + 1) & mask;
      ++walked;
    }
    if (restart) continue;
    co_return KvHit{};
  }
}

// --- owner-side execution (RPC path) ------------------------------------

sim::Task<KvHit> KvStore::rpc_op(gas::Thread& t, KvOp op, int shard,
                                 std::uint64_t key, std::uint64_t value) {
  const int owner = map_.owner_of(shard);
  if (owner == t.rank()) {
    // Caller owns the shard: run the handler inline, no wire.
    co_return co_await owner_op(t, op, shard, key, value);
  }
  KvStore* self = this;
  auto fut = rpc_->call(
      t, owner,
      [self](gas::Thread& at, int opi, int sh, std::uint64_t k,
             std::uint64_t v) {
        return self->owner_op(at, static_cast<KvOp>(opi), sh, k, v);
      },
      static_cast<int>(op), shard, key, value);
  co_return co_await fut;
}

sim::Task<KvHit> KvStore::owner_op(gas::Thread& at, KvOp op, int shard,
                                   std::uint64_t key, std::uint64_t value) {
  const Shard& sh = shards_[static_cast<std::size_t>(shard)];
  const std::size_t mask = capacity_ - 1;
  for (;;) {
    // One synchronous host walk: the engine is single-threaded, so probing
    // and mutating without a suspension point in between is atomic with
    // respect to every concurrent AMO claim. The walk's local cost is
    // charged right after (the modeled reply already includes it).
    std::size_t idx = start_of(key);
    std::size_t first_tomb = capacity_;
    std::uint64_t walked = 0;
    bool blocked = false;
    bool decided = false;
    KvHit out{};
    for (std::size_t i = 0; i < capacity_;
         ++i, idx = (idx + 1) & mask) {
      Slot& s = sh.slots.raw[idx];
      ++walked;
      if (s.state == kBusy) {
        blocked = true;  // an AMO claimant owns this slot: wait it out
        break;
      }
      if (s.state == kFull && s.key == key) {
        switch (op) {
          case KvOp::get:
            out = KvHit{s.value, 1};
            break;
          case KvOp::put:
            s.value = value;
            out = KvHit{value, 1};
            break;
          case KvOp::erase:
            s.state = kTomb;
            --sh.meta.raw[0];
            ++sh.meta.raw[1];
            ++stats_.tombstones;
            HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.tombstone", at.rank());
            out = KvHit{s.value, 1};
            break;
          case KvOp::update:
            s.value += value;
            out = KvHit{s.value, 1};
            break;
        }
        decided = true;
        break;
      }
      if (s.state == kTomb) {
        if (first_tomb == capacity_) first_tomb = idx;
        continue;
      }
      if (s.state == kEmpty) {
        if (op == KvOp::put) {
          const std::size_t target =
              first_tomb != capacity_ ? first_tomb : idx;
          Slot& tgt = sh.slots.raw[target];
          const bool reused = tgt.state == kTomb;
          tgt.key = key;
          tgt.value = value;
          tgt.state = kFull;
          ++sh.meta.raw[0];
          if (reused) --sh.meta.raw[1];
          ++stats_.inserts;
          HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.insert", at.rank());
          out = KvHit{value, 1};
        }
        decided = true;  // get/erase/update: clean miss
        break;
      }
      // full, other key: keep probing
    }
    note_probe(at.rank(), walked);
    if (blocked) {
      note_retry(at.rank());
      co_await sim::delay(rt_->engine(), sim::from_seconds(kBusyBackoffS));
      continue;
    }
    if (!decided && op == KvOp::put && first_tomb != capacity_) {
      // Chain exhausted: the full scan proved the key absent, reuse the
      // earliest tombstone.
      Slot& tgt = sh.slots.raw[first_tomb];
      tgt.key = key;
      tgt.value = value;
      tgt.state = kFull;
      ++sh.meta.raw[0];
      --sh.meta.raw[1];
      ++stats_.inserts;
      HUPC_TRACE_COUNT(rt_->tracer(), "gas.kv.insert", at.rank());
      out = KvHit{value, 1};
    }
    co_await at.compute(kOwnerBaseS +
                        static_cast<double>(walked) * kOwnerProbeS);
    co_return out;
  }
}

// --- host-side accessors -------------------------------------------------

std::uint64_t KvStore::shard_live(int shard) const {
  return shards_[static_cast<std::size_t>(shard)].meta.raw[0];
}

std::uint64_t KvStore::shard_live_recount(int shard) const {
  const Shard& sh = shards_[static_cast<std::size_t>(shard)];
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < capacity_; ++i) {
    if (sh.slots.raw[i].state == kFull) ++n;
  }
  return n;
}

std::uint64_t KvStore::live() const {
  std::uint64_t n = 0;
  for (int s = 0; s < map_.shards(); ++s) n += shard_live(s);
  return n;
}

std::uint64_t KvStore::max_shard_slots_used() const {
  std::uint64_t best = 0;
  for (const Shard& sh : shards_) {
    std::uint64_t used = 0;
    for (std::size_t i = 0; i < capacity_; ++i) {
      const std::uint64_t st = sh.slots.raw[i].state;
      if (st == kFull || st == kTomb) ++used;
    }
    if (used > best) best = used;
  }
  return best;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> KvStore::snapshot()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const Shard& sh : shards_) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      const Slot& s = sh.slots.raw[i];
      if (s.state == kFull) out.emplace_back(s.key, s.value);
    }
  }
  return out;
}

}  // namespace hupc::kv
