// Team-aware shard map: which rank owns which shard, and which shard owns
// which key.
//
// The key→shard mapping is a pure function of the key and the shard count
// (a splitmix64 finalizer scatters the key, the low bits pick the shard),
// so it is DETERMINISTIC ACROSS RANK COUNTS: re-deploying the same store
// over 8 or 256 ranks moves shards between owners but never moves a key
// between shards. Shards are dealt round-robin over the owning team's
// members in team-rank order, so ownership is also a pure function of
// (shard count, member list) — the property the rank-count determinism
// test pins.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/team.hpp"
#include "gas/runtime.hpp"

namespace hupc::kv {

/// Finalizer of splitmix64: a full-avalanche 64-bit mix, the same scatter
/// quality the RNG relies on, with zero state.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class ShardMap {
 public:
  /// `owners` lists the global ranks that hold shards, in team-rank order;
  /// `shards` must be a power of two (0 picks the smallest power of two
  /// >= 2x the owner count, so every rank owns at least one shard and
  /// round-robin stays balanced).
  explicit ShardMap(std::vector<int> owners, int shards = 0)
      : owners_(std::move(owners)) {
    if (owners_.empty()) {
      throw std::invalid_argument("kv::ShardMap: empty owner list");
    }
    if (shards == 0) {
      shards = 1;
      while (shards < 2 * static_cast<int>(owners_.size())) shards *= 2;
    }
    if (shards <= 0 || (shards & (shards - 1)) != 0) {
      throw std::invalid_argument(
          "kv::ShardMap: shard count must be a power of two");
    }
    shards_ = shards;
  }

  /// The whole runtime owns shards (rank order 0..threads-1).
  [[nodiscard]] static ShardMap over(const gas::Runtime& rt, int shards = 0) {
    std::vector<int> owners(static_cast<std::size_t>(rt.threads()));
    for (int r = 0; r < rt.threads(); ++r) {
      owners[static_cast<std::size_t>(r)] = r;
    }
    return ShardMap(std::move(owners), shards);
  }

  /// A team owns the shards: members in team-rank order, so splitting the
  /// same parent differently re-deals ownership deterministically.
  [[nodiscard]] static ShardMap over(const core::Team& team, int shards = 0) {
    return ShardMap(team.ranks(), shards);
  }

  [[nodiscard]] int shards() const noexcept { return shards_; }
  [[nodiscard]] const std::vector<int>& owners() const noexcept {
    return owners_;
  }

  /// Key → shard: rank-count independent.
  [[nodiscard]] int shard_of(std::uint64_t key) const noexcept {
    return static_cast<int>(mix64(key) &
                            static_cast<std::uint64_t>(shards_ - 1));
  }

  /// Shard → owning global rank (round-robin deal over the members).
  [[nodiscard]] int owner_of(int shard) const noexcept {
    return owners_[static_cast<std::size_t>(shard) % owners_.size()];
  }

  [[nodiscard]] int owner_of_key(std::uint64_t key) const noexcept {
    return owner_of(shard_of(key));
  }

 private:
  std::vector<int> owners_;
  int shards_ = 0;
};

}  // namespace hupc::kv
