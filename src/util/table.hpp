// Plain-text table printer used by the benchmark harnesses to emit
// paper-style tables (fixed column widths, right-aligned numerics) plus a
// CSV emitter so results can be post-processed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hupc::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; missing trailing cells render empty, extra cells throw.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hupc::util
