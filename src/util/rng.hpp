// Deterministic pseudo-random number generators used throughout the
// simulator. We avoid std::mt19937 in hot paths and anywhere determinism
// across standard-library versions matters: splitmix64 and xoshiro256** have
// fixed, documented output sequences.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hupc::util {

/// SplitMix64: tiny, statistically solid, and *splittable* — ideal for
/// seeding and for per-entity streams derived from a parent seed.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Derive an independent child stream (used to give each simulated thread
  /// its own deterministic stream regardless of interleaving).
  constexpr SplitMix64 split() noexcept { return SplitMix64(next()); }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose generator for workload generation.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified: rejection loop on the multiply-shift range).
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace hupc::util
