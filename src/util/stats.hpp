// Small descriptive-statistics helpers for benchmark harnesses: the paper
// reports medians of repeated microbenchmark trials and means of application
// timings, so both are provided along with spread measures.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace hupc::util {

/// THE percentile definition for the whole suite: linear interpolation
/// between closest ranks (rank = p * (n-1)) over an ALREADY SORTED span,
/// `p01` in [0, 1]. util::Stats and perf::summarize (median, MAD,
/// bootstrap CI) call this directly; util::LogHistogram::percentile
/// approximates it from bucket counts with a midpoint-rank convention
/// (rank k of a c-count bucket sits at (k - 0.5)/c of the bucket span),
/// so histogram estimates are centered on this definition rather than
/// upper-edge bounds of it.
[[nodiscard]] inline double percentile_sorted(std::span<const double> sorted,
                                              double p01) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double p = std::clamp(p01, 0.0, 1.0);
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// Accumulates samples; queries are O(n log n) at most (sorting for
/// percentiles) and do not mutate the stored samples.
class Stats {
 public:
  void add(double x) { samples_.push_back(x); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double sum() const noexcept {
    double s = 0;
    for (double x : samples_) s += x;
    return s;
  }

  [[nodiscard]] double mean() const noexcept {
    return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double min() const noexcept {
    return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const noexcept {
    return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const noexcept {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0;
    for (double x : samples_) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  /// Percentile via linear interpolation between closest ranks; p in [0,100].
  [[nodiscard]] double percentile(double p) const {
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    return percentile_sorted(sorted, p / 100.0);
  }

  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] std::span<const double> samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace hupc::util
