#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace hupc::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      flags_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      flags_.emplace(std::string(arg), argv[++i]);
    } else {
      flags_.emplace(std::string(arg), "true");
    }
  }
}

bool Cli::has(const std::string& name) const {
  read_.insert(name);
  return flags_.contains(name);
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  read_.insert(name);
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  read_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  read_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  read_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Cli::unread_flags() const {
  std::vector<std::string> unread;
  for (const auto& [name, value] : flags_) {
    if (!read_.contains(name)) unread.push_back(name);
  }
  return unread;
}

void Cli::reject_unread(const char* program) const {
  const auto unread = unread_flags();
  if (unread.empty()) return;
  for (const auto& name : unread) {
    std::fprintf(stderr, "%s: error: unknown flag --%s\n", program,
                 name.c_str());
  }
  std::exit(2);
}

}  // namespace hupc::util
