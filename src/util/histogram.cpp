#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace hupc::util {

Histogram::Histogram(int max_log2)
    : counts_(static_cast<std::size_t>(max_log2) + 1, 0) {}

void Histogram::add(double value, std::uint64_t weight) {
  int index = 0;
  if (value >= 1.0) {
    index = 1 + static_cast<int>(std::floor(std::log2(value)));
  }
  index = std::clamp(index, 0, buckets() - 1);
  counts_[static_cast<std::size_t>(index)] += weight;
  total_ += weight;
}

double Histogram::bucket_floor(int index) {
  if (index <= 0) return 0.0;
  return std::ldexp(1.0, index - 1);
}

double Histogram::percentile_ceiling(double p) const {
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(std::clamp(p, 0.0, 1.0) * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (int i = 0; i < buckets(); ++i) {
    seen += counts_[static_cast<std::size_t>(i)];
    if (seen >= target) return bucket_floor(i + 1);
  }
  return bucket_floor(buckets());
}

void Histogram::print(std::ostream& os, const std::string& unit) const {
  std::uint64_t max_count = 0;
  for (auto c : counts_) max_count = std::max(max_count, c);
  if (max_count == 0) {
    os << "(empty)\n";
    return;
  }
  for (int i = 0; i < buckets(); ++i) {
    const auto c = counts_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    const int bar = static_cast<int>(40 * c / max_count);
    os << "[" << bucket_floor(i) << ", " << bucket_floor(i + 1) << ") " << unit
       << ": " << c << " " << std::string(static_cast<std::size_t>(bar), '#')
       << "\n";
  }
}

}  // namespace hupc::util
