#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace hupc::util {

LogHistogram::LogHistogram(double unit, int sub_bits, int max_log2)
    : unit_(unit), sub_bits_(sub_bits), max_log2_(max_log2) {
  if (!(unit > 0.0)) {
    throw std::invalid_argument("LogHistogram: unit must be positive");
  }
  if (sub_bits < 0 || sub_bits > 8) {
    throw std::invalid_argument("LogHistogram: sub_bits must be in [0, 8]");
  }
  if (max_log2 < 1) {
    throw std::invalid_argument("LogHistogram: max_log2 must be >= 1");
  }
  counts_.assign(
      1 + (static_cast<std::size_t>(max_log2) << static_cast<unsigned>(
               sub_bits)),
      0);
}

int LogHistogram::index_of(double value) const {
  const double scaled = value / unit_;
  if (!(scaled >= 1.0)) return 0;  // also catches NaN
  int major = static_cast<int>(std::floor(std::log2(scaled)));
  const int subs = 1 << static_cast<unsigned>(sub_bits_);
  if (major >= max_log2_) return buckets() - 1;
  // Linear position within the octave [2^major, 2^(major+1)).
  const double frac = scaled / std::ldexp(1.0, major) - 1.0;
  const int sub = std::clamp(static_cast<int>(frac * subs), 0, subs - 1);
  return 1 + major * subs + sub;
}

void LogHistogram::add(double value, std::uint64_t weight) {
  if (weight == 0) return;
  if (total_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  counts_[static_cast<std::size_t>(index_of(value))] += weight;
  total_ += weight;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.unit_ != unit_ || other.sub_bits_ != sub_bits_ ||
      other.max_log2_ != max_log2_) {
    throw std::invalid_argument("LogHistogram::merge: geometry mismatch");
  }
  if (other.total_ == 0) return;
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double LogHistogram::bucket_floor(int index) const {
  if (index <= 0) return 0.0;
  const int subs = 1 << static_cast<unsigned>(sub_bits_);
  const int major = (index - 1) / subs;
  const int sub = (index - 1) % subs;
  const double base = unit_ * std::ldexp(1.0, major);
  return base * (1.0 + static_cast<double>(sub) / subs);
}

double LogHistogram::percentile_ceiling(double p) const {
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(std::clamp(p, 0.0, 1.0) * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (int i = 0; i < buckets(); ++i) {
    seen += counts_[static_cast<std::size_t>(i)];
    if (seen >= target) return bucket_floor(i + 1);
  }
  return bucket_floor(buckets());
}

double LogHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(
             std::clamp(p, 0.0, 1.0) * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (int i = 0; i < buckets(); ++i) {
    const std::uint64_t c = counts_[static_cast<std::size_t>(i)];
    if (seen + c >= target) {
      const double lo = bucket_floor(i);
      const double hi = bucket_floor(i + 1);
      // Midpoint-rank convention: the k-th of the bucket's c samples sits
      // at the CENTER of its 1/c sliver, not its upper edge, so estimates
      // are centered on percentile_sorted's rank interpolation instead of
      // biased high by up to one rank's width.
      const double within = (static_cast<double>(target - seen) - 0.5) /
                            static_cast<double>(c);
      const double est = lo + within * (hi - lo);
      return std::clamp(est, min_, max_);
    }
    seen += c;
  }
  return max_;
}

void LogHistogram::print(std::ostream& os,
                         const std::string& unit_label) const {
  std::uint64_t max_count = 0;
  for (auto c : counts_) max_count = std::max(max_count, c);
  if (max_count == 0) {
    os << "(empty)\n";
    return;
  }
  for (int i = 0; i < buckets(); ++i) {
    const auto c = counts_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    const int bar = static_cast<int>(40 * c / max_count);
    os << "[" << bucket_floor(i) << ", " << bucket_floor(i + 1) << ") "
       << unit_label << ": " << c << " "
       << std::string(static_cast<std::size_t>(bar), '#') << "\n";
  }
}

Histogram::Histogram(int max_log2) : log_(1.0, 0, max_log2) {}

void Histogram::add(double value, std::uint64_t weight) {
  log_.add(value, weight);
}

double Histogram::bucket_floor(int index) {
  if (index <= 0) return 0.0;
  return std::ldexp(1.0, index - 1);
}

double Histogram::percentile_ceiling(double p) const {
  return log_.percentile_ceiling(p);
}

void Histogram::print(std::ostream& os, const std::string& unit) const {
  log_.print(os, unit);
}

}  // namespace hupc::util
