// Power-of-two bucket histogram: message-size and latency distributions in
// benches and network diagnostics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hupc::util {

class Histogram {
 public:
  /// Buckets: [0,1), [1,2), [2,4), ..., doubling; values above the top
  /// bucket clamp into it. `max_log2` buckets above the unit bucket.
  explicit Histogram(int max_log2 = 32);

  void add(double value, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(int index) const {
    return counts_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] int buckets() const noexcept {
    return static_cast<int>(counts_.size());
  }
  /// Lower bound of bucket `index` (0, 1, 2, 4, ...).
  [[nodiscard]] static double bucket_floor(int index);

  /// Smallest value v such that at least `p` (0..1) of the weight is <= v's
  /// bucket ceiling. Returns 0 for an empty histogram.
  [[nodiscard]] double percentile_ceiling(double p) const;

  /// Text rendering: one line per non-empty bucket with a proportional bar.
  void print(std::ostream& os, const std::string& unit = "") const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hupc::util
