// Log-bucketed histograms: message-size and latency distributions in
// benches, network diagnostics, and the kv serving harness's percentile
// reporting (DESIGN.md §16).
//
// LogHistogram generalizes the original power-of-two Histogram with two
// knobs: a `unit` scale (bucket 0 absorbs [0, unit), so microsecond-scale
// latencies do not all collapse into one bucket) and `sub_bits` linear
// sub-buckets per octave (HDR-histogram style: 2^sub_bits sub-buckets keep
// the relative quantization error below 2^-sub_bits everywhere). Histogram
// is now a thin wrapper over LogHistogram(unit=1, sub_bits=0) — the same
// buckets, totals, and percentile_ceiling values as before, computed by the
// one shared implementation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hupc::util {

class LogHistogram {
 public:
  /// Bucket 0 holds [0, unit). Octave m >= 0 covers
  /// [unit*2^m, unit*2^(m+1)) split into 2^sub_bits equal sub-buckets;
  /// `max_log2` octaves are tracked and values above the top clamp into
  /// its last sub-bucket.
  explicit LogHistogram(double unit = 1.0, int sub_bits = 0,
                        int max_log2 = 32);

  void add(double value, std::uint64_t weight = 1);
  /// Fold another histogram in; geometries must match (per-rank merge).
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(int index) const {
    return counts_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] int buckets() const noexcept {
    return static_cast<int>(counts_.size());
  }
  [[nodiscard]] double unit() const noexcept { return unit_; }
  [[nodiscard]] int sub_bits() const noexcept { return sub_bits_; }

  /// Exact extrema of everything added (percentile estimates clamp here).
  [[nodiscard]] double min_value() const noexcept { return min_; }
  [[nodiscard]] double max_value() const noexcept { return max_; }

  /// Lower bound of bucket `index`.
  [[nodiscard]] double bucket_floor(int index) const;

  /// Smallest bucket ceiling covering at least fraction `p` (0..1) of the
  /// weight. Returns 0 for an empty histogram.
  [[nodiscard]] double percentile_ceiling(double p) const;

  /// Percentile estimate: locates the bucket covering rank ceil(p*total),
  /// interpolates linearly within it placing each rank at the midpoint of
  /// its 1/count sliver (approximating util::percentile_sorted without the
  /// upper-edge bias), and clamps to the exact [min, max]. Returns 0 for
  /// an empty histogram.
  [[nodiscard]] double percentile(double p) const;

  /// Text rendering: one line per non-empty bucket with a proportional bar.
  void print(std::ostream& os, const std::string& unit_label = "") const;

 private:
  [[nodiscard]] int index_of(double value) const;

  double unit_ = 1.0;
  int sub_bits_ = 0;
  int max_log2_ = 32;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double min_ = 0;
  double max_ = 0;
};

class Histogram {
 public:
  /// Buckets: [0,1), [1,2), [2,4), ..., doubling; values above the top
  /// bucket clamp into it. `max_log2` buckets above the unit bucket.
  explicit Histogram(int max_log2 = 32);

  void add(double value, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const noexcept { return log_.total(); }
  [[nodiscard]] std::uint64_t bucket(int index) const {
    return log_.bucket(index);
  }
  [[nodiscard]] int buckets() const noexcept { return log_.buckets(); }
  /// Lower bound of bucket `index` (0, 1, 2, 4, ...).
  [[nodiscard]] static double bucket_floor(int index);

  /// Smallest value v such that at least `p` (0..1) of the weight is <= v's
  /// bucket ceiling. Returns 0 for an empty histogram.
  [[nodiscard]] double percentile_ceiling(double p) const;

  /// Text rendering: one line per non-empty bucket with a proportional bar.
  void print(std::ostream& os, const std::string& unit = "") const;

 private:
  LogHistogram log_;
};

}  // namespace hupc::util
