// Minimal command-line flag parser for the benchmark/example binaries.
// Supports `--name=value`, `--name value` and boolean `--flag` forms.
//
// Every accessor (has/get/get_*) marks the flag it names as *read*. After a
// binary has pulled all the flags it understands, calling reject_unread()
// turns any leftover flag — a typo, or an option this binary does not take —
// into a hard error instead of silently ignoring it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace hupc::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Flags present on the command line that no accessor has asked about yet
  /// — i.e. flags this binary does not understand (assuming it has already
  /// read everything it does).
  [[nodiscard]] std::vector<std::string> unread_flags() const;

  /// Hard error on unknown flags: if unread_flags() is non-empty, print
  /// each offending `--flag` to stderr (prefixed with `program`) and
  /// exit(2). Call after all known flags have been read.
  void reject_unread(const char* program) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> read_;
};

}  // namespace hupc::util
