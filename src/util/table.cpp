#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace hupc::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("Table::add_row: more cells than headers");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = cells[c];
      os << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  line();
  emit(headers_);
  line();
  for (const auto& row : rows_) emit(row);
  line();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace hupc::util
