// Portable SHA-1 (FIPS 180-1), used as the splittable deterministic RNG of
// the UTS benchmark — the reference UTS implementation derives each child's
// 20-byte state by hashing the parent's state with the child index, which
// makes tree shape a pure function of the root seed regardless of the
// parallel schedule. (SHA-1 is cryptographically broken; here it is only a
// high-quality deterministic mixer, exactly as in UTS.)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace hupc::uts {

using Digest = std::array<std::uint8_t, 20>;

/// One-shot SHA-1 of an arbitrary message.
[[nodiscard]] Digest sha1(std::span<const std::uint8_t> message);

/// Hex rendering (for known-answer tests and debugging).
[[nodiscard]] std::string to_hex(const Digest& digest);

/// The UTS state-split operation: digest of parent_state || child_index
/// (child index as 4 big-endian bytes, per the reference implementation).
[[nodiscard]] Digest split_state(const Digest& parent, std::uint32_t child_index);

/// Interpret the leading 4 bytes of a state as a uniform in [0, 1).
[[nodiscard]] double uniform_from(const Digest& state);

}  // namespace hupc::uts
