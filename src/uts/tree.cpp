#include "uts/tree.hpp"

#include <cmath>

namespace hupc::uts {

Node root_node(const TreeParams& params) {
  const std::uint8_t seed_bytes[4] = {
      static_cast<std::uint8_t>(params.root_seed >> 24),
      static_cast<std::uint8_t>(params.root_seed >> 16),
      static_cast<std::uint8_t>(params.root_seed >> 8),
      static_cast<std::uint8_t>(params.root_seed)};
  return Node{sha1(std::span<const std::uint8_t>(seed_bytes, 4)), 0};
}

int num_children(const TreeParams& params, const Node& node) {
  switch (params.shape) {
    case Shape::binomial: {
      if (node.depth == 0) return params.b0;
      return uniform_from(node.state) < params.q ? params.m : 0;
    }
    case Shape::geometric: {
      if (node.depth >= params.max_depth) return 0;
      // Geometric with mean geo_b: P(k) = p(1-p)^k, p = 1/(1+b).
      const double p = 1.0 / (1.0 + params.geo_b);
      const double u = uniform_from(node.state);
      // Inverse CDF; clamp the open interval to avoid log(0).
      const double v = u >= 1.0 ? 0.9999999999 : u;
      return static_cast<int>(std::floor(std::log(1.0 - v) / std::log(1.0 - p)));
    }
  }
  return 0;
}

Node child_of(const Node& parent, std::uint32_t i) {
  return Node{split_state(parent.state, i), parent.depth + 1};
}

void expand(const TreeParams& params, const Node& node, std::vector<Node>& out) {
  const int n = num_children(params, node);
  for (int i = 0; i < n; ++i) {
    out.push_back(child_of(node, static_cast<std::uint32_t>(i)));
  }
}

TreeStats enumerate(const TreeParams& params) {
  return enumerate(params, [](const Node&) {});
}

TreeStats enumerate(const TreeParams& params,
                    const std::function<void(const Node&)>& visit) {
  TreeStats stats;
  std::vector<Node> stack;
  stack.push_back(root_node(params));
  while (!stack.empty()) {
    const Node node = stack.back();
    stack.pop_back();
    ++stats.nodes;
    if (node.depth > stats.max_depth) stats.max_depth = node.depth;
    visit(node);
    const std::size_t before = stack.size();
    expand(params, node, stack);
    if (stack.size() == before) ++stats.leaves;
  }
  return stats;
}

}  // namespace hupc::uts
