#include "uts/sha1.hpp"

#include <cstring>

namespace hupc::uts {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

struct Sha1Ctx {
  std::uint32_t h[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                        0xC3D2E1F0u};

  void process_block(const std::uint8_t* block) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t(block[4 * i]) << 24) |
             (std::uint32_t(block[4 * i + 1]) << 16) |
             (std::uint32_t(block[4 * i + 2]) << 8) |
             std::uint32_t(block[4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
      std::uint32_t f, k;
      if (i < 20) {
        f = (b & c) | ((~b) & d);
        k = 0x5A827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const std::uint32_t temp = rotl(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = rotl(b, 30);
      b = a;
      a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
};

}  // namespace

Digest sha1(std::span<const std::uint8_t> message) {
  Sha1Ctx ctx;
  const std::size_t n = message.size();
  std::size_t off = 0;
  while (n - off >= 64) {
    ctx.process_block(message.data() + off);
    off += 64;
  }
  // Final padded block(s).
  std::uint8_t tail[128] = {};
  const std::size_t rem = n - off;
  std::memcpy(tail, message.data() + off, rem);
  tail[rem] = 0x80;
  const std::size_t total = rem + 1 + 8 <= 64 ? 64 : 128;
  const std::uint64_t bits = static_cast<std::uint64_t>(n) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[total - 1 - i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  ctx.process_block(tail);
  if (total == 128) ctx.process_block(tail + 64);

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(ctx.h[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(ctx.h[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(ctx.h[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(ctx.h[i]);
  }
  return out;
}

std::string to_hex(const Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s;
  s.reserve(40);
  for (std::uint8_t b : digest) {
    s.push_back(kHex[b >> 4]);
    s.push_back(kHex[b & 0xF]);
  }
  return s;
}

Digest split_state(const Digest& parent, std::uint32_t child_index) {
  std::uint8_t buf[24];
  std::memcpy(buf, parent.data(), 20);
  buf[20] = static_cast<std::uint8_t>(child_index >> 24);
  buf[21] = static_cast<std::uint8_t>(child_index >> 16);
  buf[22] = static_cast<std::uint8_t>(child_index >> 8);
  buf[23] = static_cast<std::uint8_t>(child_index);
  return sha1(std::span<const std::uint8_t>(buf, 24));
}

double uniform_from(const Digest& state) {
  const std::uint32_t v = (std::uint32_t(state[0]) << 24) |
                          (std::uint32_t(state[1]) << 16) |
                          (std::uint32_t(state[2]) << 8) | std::uint32_t(state[3]);
  return static_cast<double>(v) / 4294967296.0;
}

}  // namespace hupc::uts
