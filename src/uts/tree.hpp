// UTS tree shapes (Prins/Huan/Pugh; thesis §3.3.2).
//
// A tree node is its 20-byte SHA-1 state plus depth. Child count is a pure
// function of the node's state:
//   binomial  — root spawns b0 children; every other node spawns m children
//               with probability q, else 0 (m*q < 1 keeps the tree finite;
//               sizes are heavy-tailed, the source of the load imbalance);
//   geometric — child count geometric with mean b0, truncated at max_depth.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "uts/sha1.hpp"

namespace hupc::uts {

struct Node {
  Digest state;
  std::uint32_t depth = 0;
};

enum class Shape { binomial, geometric };

struct TreeParams {
  Shape shape = Shape::binomial;
  std::uint32_t root_seed = 42;
  // Binomial parameters (UTS T3-class workload: ~4.1 M nodes in the thesis).
  int b0 = 2000;
  int m = 8;
  double q = 0.124875;
  // Geometric parameters.
  double geo_b = 4.0;
  std::uint32_t max_depth = 10;
};

/// The thesis workload: the binomial tree "with total 4.1 million nodes"
/// (§3.3.2.2). With our state derivation, root seed 28 yields 4,576,257
/// nodes (max depth 1160) — the closest 4-million-class tree in the first
/// 60 seeds; benches report the actual count alongside.
[[nodiscard]] inline TreeParams paper_tree() {
  TreeParams p;
  p.root_seed = 28;
  return p;
}

/// Root node for a given seed (SHA-1 of the 4-byte big-endian seed).
[[nodiscard]] Node root_node(const TreeParams& params);

/// Number of children of `node` under `params`.
[[nodiscard]] int num_children(const TreeParams& params, const Node& node);

/// The i-th child.
[[nodiscard]] Node child_of(const Node& parent, std::uint32_t i);

/// Expand in place: appends all children of `node` to `out`.
void expand(const TreeParams& params, const Node& node, std::vector<Node>& out);

struct TreeStats {
  std::uint64_t nodes = 0;
  std::uint64_t leaves = 0;
  std::uint32_t max_depth = 0;
};

/// Sequential depth-first enumeration (the verification oracle).
[[nodiscard]] TreeStats enumerate(const TreeParams& params);

/// Enumerate while invoking `visit` on every node (tests use this to build
/// order-independent checksums).
[[nodiscard]] TreeStats enumerate(const TreeParams& params,
                                  const std::function<void(const Node&)>& visit);

}  // namespace hupc::uts
