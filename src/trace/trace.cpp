#include "trace/trace.hpp"

#include <algorithm>
#include <cstring>

namespace hupc::trace {

const char* to_string(Category cat) noexcept {
  switch (cat) {
    case Category::engine: return "engine";
    case Category::gas: return "gas";
    case Category::net: return "net";
    case Category::sched: return "sched";
    case Category::core: return "core";
    case Category::user: return "user";
  }
  return "?";
}

bool operator==(const TraceEvent& a, const TraceEvent& b) {
  return a.ts == b.ts && a.rank == b.rank && a.cat == b.cat &&
         a.phase == b.phase && std::strcmp(a.name, b.name) == 0 &&
         a.a0 == b.a0 && a.a1 == b.a1;
}

std::uint64_t Summary::counter_total(const std::string& name) const {
  const auto it = counters.find(name);
  if (it == counters.end()) return 0;
  std::uint64_t total = 0;
  for (std::uint64_t v : it->second) total += v;
  return total;
}

std::uint64_t Summary::counter(const std::string& name, int rank) const {
  const auto it = counters.find(name);
  const auto idx = static_cast<std::size_t>(rank + 1);
  if (it == counters.end() || idx >= it->second.size()) return 0;
  return it->second[idx];
}

VTime Summary::category_time(Category cat) const {
  VTime total = 0;
  for (const auto& per_rank : rank_time) {
    total += per_rank[static_cast<std::size_t>(cat)];
  }
  return total;
}

Tracer::Tracer(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void Tracer::record(Category cat, char phase, const char* name, int rank,
                    std::uint64_t a0, std::uint64_t a1) {
  if (!enabled_) return;
  TraceEvent ev{clock_ ? clock_() : 0,
                rank,
                cat,
                phase,
                name,
                a0,
                a1};
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[static_cast<std::size_t>(recorded_ % capacity_)] = ev;
  }
  ++recorded_;
}

void Tracer::begin(Category cat, const char* name, int rank, std::uint64_t a0,
                   std::uint64_t a1) {
  record(cat, 'B', name, rank, a0, a1);
}

void Tracer::end(Category cat, const char* name, int rank) {
  record(cat, 'E', name, rank, 0, 0);
}

void Tracer::instant(Category cat, const char* name, int rank,
                     std::uint64_t a0, std::uint64_t a1) {
  record(cat, 'i', name, rank, a0, a1);
}

void Tracer::count(const char* name, int rank, std::uint64_t delta) {
  if (!enabled_) return;
  auto& per_rank = counters_[name];
  const auto idx = static_cast<std::size_t>(rank < kEngineRank ? 0 : rank + 1);
  if (per_rank.size() <= idx) per_rank.resize(idx + 1, 0);
  per_rank[idx] += delta;
}

std::uint64_t Tracer::counter(const std::string& name, int rank) const {
  const auto it = counters_.find(name);
  const auto idx = static_cast<std::size_t>(rank + 1);
  if (it == counters_.end() || idx >= it->second.size()) return 0;
  return it->second[idx];
}

std::uint64_t Tracer::counter_total(const std::string& name) const {
  const auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  std::uint64_t total = 0;
  for (std::uint64_t v : it->second) total += v;
  return total;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  if (recorded_ <= capacity_) {
    out.assign(ring_.begin(), ring_.end());
  } else {
    // The ring wrapped: the oldest surviving record sits at the write head.
    const auto head = static_cast<std::size_t>(recorded_ % capacity_);
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

Summary Tracer::summary() const {
  Summary s;
  s.recorded = recorded_;
  s.dropped = dropped();
  s.counters = counters_;

  const auto events = snapshot();
  const std::size_t lanes = static_cast<std::size_t>(ranks()) + 1;
  s.rank_time.assign(std::max<std::size_t>(lanes, 1), {});

  // Per-lane stack of open begins; LIFO matching mirrors scope nesting.
  struct Open {
    Category cat;
    const char* name;
    VTime ts;
  };
  std::vector<std::vector<Open>> open(s.rank_time.size());
  VTime last_ts = 0;

  auto lane_of = [&](int rank) -> std::size_t {
    const auto idx = static_cast<std::size_t>(rank < 0 ? 0 : rank + 1);
    if (idx >= s.rank_time.size()) {
      s.rank_time.resize(idx + 1);
      open.resize(idx + 1);
    }
    return idx;
  };

  for (const auto& ev : events) {
    last_ts = std::max(last_ts, ev.ts);
    const std::size_t lane = lane_of(ev.rank);
    const auto cat = static_cast<std::size_t>(ev.cat);
    switch (ev.phase) {
      case 'B':
        ++s.events[cat];
        open[lane].push_back(Open{ev.cat, ev.name, ev.ts});
        break;
      case 'E':
        if (!open[lane].empty()) {
          const Open b = open[lane].back();
          open[lane].pop_back();
          s.rank_time[lane][static_cast<std::size_t>(b.cat)] +=
              std::max<VTime>(ev.ts - b.ts, 0);
        }
        break;
      default:  // instants
        ++s.events[cat];
        break;
    }
  }
  // Close begins whose ends fell outside the retained window (or are still
  // open) at the last retained timestamp so totals stay non-negative.
  for (std::size_t lane = 0; lane < open.size(); ++lane) {
    for (const Open& b : open[lane]) {
      s.rank_time[lane][static_cast<std::size_t>(b.cat)] +=
          std::max<VTime>(last_ts - b.ts, 0);
    }
  }
  return s;
}

void Tracer::clear() {
  ring_.clear();
  recorded_ = 0;
  counters_.clear();
}

}  // namespace hupc::trace
