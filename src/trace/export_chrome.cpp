// Exporters: chrome://tracing JSON and the machine-readable summary.
#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace hupc::trace {

namespace {

// Names are string literals from instrumentation sites, but escape anyway
// so a hostile literal cannot corrupt the JSON document.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      const char* hex = "0123456789abcdef";
      os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
    } else {
      os << c;
    }
  }
}

void write_event(std::ostream& os, const TraceEvent& ev, int pid, int tid,
                 const char* name, bool* first) {
  if (!*first) os << ",\n";
  *first = false;
  // Chrome's ts unit is microseconds; our ticks are nanoseconds.
  os << R"({"name":")";
  write_escaped(os, name);
  // ts is microseconds in the trace format; emit ns-exact fixed point.
  const VTime ns = ev.ts < 0 ? 0 : ev.ts;
  const VTime frac = ns % 1000;
  os << R"(","cat":")" << to_string(ev.cat) << R"(","ph":")" << ev.phase
     << R"(","ts":)" << ns / 1000 << '.' << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10) << R"(,"pid":)" << pid
     << R"(,"tid":)" << tid;
  if (ev.phase != 'E') {
    os << R"(,"args":{"a0":)" << ev.a0 << R"(,"a1":)" << ev.a1 << '}';
  }
  if (ev.phase == 'i') os << R"(,"s":"t")";
  os << '}';
}

}  // namespace

void Tracer::export_chrome(std::ostream& os) const {
  const auto events = snapshot();
  const int nranks = ranks();
  // The engine lane sits one past the last rank on pid 0.
  const int engine_tid = nranks;

  os << "{\"traceEvents\":[\n";
  bool first = true;

  // A ring that wrapped may retain an E whose B was evicted, or a B whose E
  // is still pending; balance per lane so every exported stream nests.
  struct Open {
    const char* name;
    TraceEvent ev;
  };
  std::vector<std::vector<Open>> open(static_cast<std::size_t>(nranks) + 1);
  VTime last_ts = 0;

  for (const auto& ev : events) {
    last_ts = std::max(last_ts, ev.ts);
    const int tid = ev.rank < 0 ? engine_tid : ev.rank;
    const int pid = ev.rank < 0 ? 0 : node_of(ev.rank);
    auto& lane = open[static_cast<std::size_t>(
        tid >= 0 && tid <= nranks ? tid : engine_tid)];
    if (ev.phase == 'B') {
      lane.push_back(Open{ev.name, ev});
      write_event(os, ev, pid, tid, ev.name, &first);
    } else if (ev.phase == 'E') {
      if (lane.empty()) continue;  // begin fell off the ring: drop the end
      const char* bname = lane.back().name;
      lane.pop_back();
      write_event(os, ev, pid, tid, bname, &first);
    } else {
      write_event(os, ev, pid, tid, ev.name, &first);
    }
  }
  // Close any still-open begins at the last retained timestamp.
  for (std::size_t tid = 0; tid < open.size(); ++tid) {
    for (auto it = open[tid].rbegin(); it != open[tid].rend(); ++it) {
      TraceEvent ev = it->ev;
      ev.ts = last_ts;
      ev.phase = 'E';
      const int out_tid = static_cast<int>(tid);
      const int pid = out_tid == engine_tid ? 0 : node_of(out_tid);
      write_event(os, ev, pid, out_tid, it->name, &first);
    }
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void Tracer::export_summary(std::ostream& os) const {
  const Summary s = summary();
  os << "trace recorded " << s.recorded << " dropped " << s.dropped << "\n";
  for (int c = 0; c < kCategories; ++c) {
    os << "events " << to_string(static_cast<Category>(c)) << ' '
       << s.events[static_cast<std::size_t>(c)] << "\n";
  }
  // One line per (rank, category) with nonzero accumulated time; rank -1
  // is the engine lane.
  for (std::size_t lane = 0; lane < s.rank_time.size(); ++lane) {
    for (int c = 0; c < kCategories; ++c) {
      const VTime t = s.rank_time[lane][static_cast<std::size_t>(c)];
      if (t == 0) continue;
      os << "time " << static_cast<int>(lane) - 1 << ' '
         << to_string(static_cast<Category>(c)) << ' ' << t << "\n";
    }
  }
  for (const auto& [name, per_rank] : s.counters) {
    for (std::size_t i = 0; i < per_rank.size(); ++i) {
      if (per_rank[i] == 0) continue;
      os << "counter " << name << ' ' << static_cast<int>(i) - 1 << ' '
         << per_rank[i] << "\n";
    }
  }
}

}  // namespace hupc::trace
