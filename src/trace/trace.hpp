// Structured event tracing and named counters for the simulated runtime.
//
// A Tracer owns a fixed-capacity ring of TraceEvent records (virtual
// timestamp, rank, category, name, two integer args) plus a named-counter
// registry. Instrumentation sites across the stack — engine dispatch, GAS
// accesses and barriers, network inject/deliver, steal attempts, sub-thread
// regions — record through the HUPC_TRACE_* macros, which compile to
// nothing (arguments unevaluated) when the translation unit is built with
// HUPC_TRACE=0. Recording never charges virtual time, so an attached
// tracer cannot perturb a simulation.
//
// Two exporters:
//   export_chrome  — chrome://tracing / Perfetto "Trace Event Format" JSON
//                    (pid = node, tid = rank; engine events get their own
//                    lane one past the last rank);
//   export_summary — compact machine-readable text: per-category event
//                    counts, per-rank per-category virtual-time totals, and
//                    every named counter.
//
// This layer sits below hupc::sim so every library can link it: timestamps
// are raw nanosecond counts (the same representation as sim::Time) supplied
// by a clock callback the owner installs, keeping the subsystem free of
// upward dependencies.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

// Compile-time trace level: 0 compiles every HUPC_TRACE_* macro out
// (arguments are not evaluated); >= 1 enables recording. Override per
// build with -DHUPC_TRACE=<level> (see the HUPC_TRACE_LEVEL CMake option).
#ifndef HUPC_TRACE
#define HUPC_TRACE 1
#endif

namespace hupc::trace {

// Internal linkage (namespace-scope constexpr) on purpose: translation
// units may legitimately compile at different HUPC_TRACE levels.
constexpr int kTraceLevel = HUPC_TRACE;
constexpr bool kEnabled = kTraceLevel != 0;

/// Virtual timestamp in nanoseconds; same representation as sim::Time.
using VTime = std::int64_t;

enum class Category : std::uint8_t { engine, gas, net, sched, core, user };
inline constexpr int kCategories = 6;

[[nodiscard]] const char* to_string(Category cat) noexcept;

/// Rank value for events that belong to the simulation as a whole (engine
/// dispatch) rather than to one SPMD rank.
inline constexpr int kEngineRank = -1;

struct TraceEvent {
  VTime ts = 0;
  std::int32_t rank = kEngineRank;
  Category cat = Category::user;
  char phase = 'i';   // 'B' begin, 'E' end, 'i' instant
  const char* name = "";  // must be a string literal (stored by pointer)
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;

  friend bool operator==(const TraceEvent& a, const TraceEvent& b);
};

/// Aggregated view of a trace (the machine-readable exporter's content).
struct Summary {
  /// Events recorded per category (instants and begins; ends not counted
  /// separately so a B/E pair is one logical event).
  std::array<std::uint64_t, kCategories> events{};
  /// rank_time[rank][category]: total virtual nanoseconds spent inside
  /// matched B/E pairs. Index 0 is the engine lane (rank -1); SPMD rank r
  /// is at index r + 1.
  std::vector<std::array<VTime, kCategories>> rank_time;
  /// Named counters, per rank (same +1 index shift as rank_time).
  std::map<std::string, std::vector<std::uint64_t>> counters;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;

  [[nodiscard]] std::uint64_t counter_total(const std::string& name) const;
  [[nodiscard]] std::uint64_t counter(const std::string& name, int rank) const;
  [[nodiscard]] VTime category_time(Category cat) const;
};

class Tracer {
 public:
  /// `capacity` — ring size in events; once full, the oldest records are
  /// overwritten (counted in dropped()).
  explicit Tracer(std::size_t capacity = std::size_t{1} << 20);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Install the virtual-clock source (e.g. the owning engine's now()).
  /// Without a clock every event is stamped 0.
  void set_clock(std::function<VTime()> clock) { clock_ = std::move(clock); }

  /// Rank -> node mapping used by the exporters (pid = node of rank).
  void set_rank_nodes(std::vector<int> node_of_rank) {
    rank_nodes_ = std::move(node_of_rank);
  }
  [[nodiscard]] int ranks() const noexcept {
    return static_cast<int>(rank_nodes_.size());
  }
  [[nodiscard]] int node_of(int rank) const noexcept {
    return rank >= 0 && rank < ranks()
               ? rank_nodes_[static_cast<std::size_t>(rank)]
               : 0;
  }

  /// Runtime toggle: a disabled tracer records nothing (counters included).
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // --- recording --------------------------------------------------------
  void begin(Category cat, const char* name, int rank, std::uint64_t a0 = 0,
             std::uint64_t a1 = 0);
  void end(Category cat, const char* name, int rank);
  void instant(Category cat, const char* name, int rank, std::uint64_t a0 = 0,
               std::uint64_t a1 = 0);
  /// Bump the named counter for `rank` (kEngineRank allowed).
  void count(const char* name, int rank, std::uint64_t delta = 1);

  // --- inspection -------------------------------------------------------
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return recorded_ < capacity_ ? static_cast<std::size_t>(recorded_)
                                 : capacity_;
  }
  [[nodiscard]] std::uint64_t counter(const std::string& name, int rank) const;
  [[nodiscard]] std::uint64_t counter_total(const std::string& name) const;

  /// Retained events in chronological order (oldest surviving first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Aggregate retained events + counters. Durations come from matched
  /// B/E pairs per (rank, category); an unmatched B is closed at the last
  /// retained timestamp.
  [[nodiscard]] Summary summary() const;

  /// Drop all recorded events and counters (the clock and topology stay).
  void clear();

  // --- exporters --------------------------------------------------------
  void export_chrome(std::ostream& os) const;
  void export_summary(std::ostream& os) const;

 private:
  void record(Category cat, char phase, const char* name, int rank,
              std::uint64_t a0, std::uint64_t a1);

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::uint64_t recorded_ = 0;
  bool enabled_ = true;
  std::function<VTime()> clock_;
  std::vector<int> rank_nodes_;
  std::map<std::string, std::vector<std::uint64_t>> counters_;
};

/// RAII begin/end pair; safe across co_await suspension points (the end
/// timestamp is read when the enclosing scope — coroutine frame — exits).
class Scope {
 public:
  Scope(Tracer* tracer, Category cat, const char* name, int rank,
        std::uint64_t a0 = 0, std::uint64_t a1 = 0)
      : tracer_(tracer), cat_(cat), name_(name), rank_(rank) {
    if (tracer_ != nullptr) tracer_->begin(cat_, name_, rank_, a0, a1);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  ~Scope() {
    if (tracer_ != nullptr) tracer_->end(cat_, name_, rank_);
  }

 private:
  Tracer* tracer_;
  Category cat_;
  const char* name_;
  int rank_;
};

}  // namespace hupc::trace

// --- instrumentation macros ------------------------------------------------
//
// Every site takes a `Tracer*` expression that may be null. With
// HUPC_TRACE=0 the macros expand to `((void)0)` and NO argument is
// evaluated — the compiled-out configuration has zero per-event cost.
#if HUPC_TRACE
#define HUPC_TRACE_CONCAT_IMPL_(a, b) a##b
#define HUPC_TRACE_CONCAT_(a, b) HUPC_TRACE_CONCAT_IMPL_(a, b)
#define HUPC_TRACE_SCOPE(tracer, cat, name, rank, ...)                  \
  ::hupc::trace::Scope HUPC_TRACE_CONCAT_(hupc_trace_scope_, __LINE__)( \
      (tracer), (cat), (name), (rank)__VA_OPT__(, ) __VA_ARGS__)
#define HUPC_TRACE_BEGIN(tracer, cat, name, rank, ...)                       \
  do {                                                                       \
    if (::hupc::trace::Tracer* hupc_tr_ = (tracer))                          \
      hupc_tr_->begin((cat), (name), (rank)__VA_OPT__(, ) __VA_ARGS__);      \
  } while (0)
#define HUPC_TRACE_END(tracer, cat, name, rank)                              \
  do {                                                                       \
    if (::hupc::trace::Tracer* hupc_tr_ = (tracer))                          \
      hupc_tr_->end((cat), (name), (rank));                                  \
  } while (0)
#define HUPC_TRACE_INSTANT(tracer, cat, name, rank, ...)                     \
  do {                                                                       \
    if (::hupc::trace::Tracer* hupc_tr_ = (tracer))                          \
      hupc_tr_->instant((cat), (name), (rank)__VA_OPT__(, ) __VA_ARGS__);    \
  } while (0)
#define HUPC_TRACE_COUNT(tracer, name, rank, ...)                            \
  do {                                                                       \
    if (::hupc::trace::Tracer* hupc_tr_ = (tracer))                          \
      hupc_tr_->count((name), (rank)__VA_OPT__(, ) __VA_ARGS__);             \
  } while (0)
#else
#define HUPC_TRACE_SCOPE(tracer, cat, name, rank, ...) ((void)0)
#define HUPC_TRACE_BEGIN(tracer, cat, name, rank, ...) ((void)0)
#define HUPC_TRACE_END(tracer, cat, name, rank) ((void)0)
#define HUPC_TRACE_INSTANT(tracer, cat, name, rank, ...) ((void)0)
#define HUPC_TRACE_COUNT(tracer, name, rank, ...) ((void)0)
#endif
