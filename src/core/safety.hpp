// Thread-safety levels for GAS calls made from user-spawned sub-threads,
// mirroring the MPI-2 taxonomy the thesis adopts (§4.2.3):
//
//   single     — only the master thread exists; any sub-thread GAS call is
//                an error (the crash the thesis reports against stock
//                Berkeley UPC, bug 2808);
//   funneled   — sub-threads may exist but only the master may make GAS
//                calls;
//   serialized — sub-threads may call, one at a time (a per-process gate);
//   multiple   — unrestricted; contention surfaces in the shared network
//                connection instead.
#pragma once

#include <stdexcept>
#include <string>

namespace hupc::core {

enum class ThreadSafety { single, funneled, serialized, multiple };

[[nodiscard]] constexpr const char* to_string(ThreadSafety s) noexcept {
  switch (s) {
    case ThreadSafety::single: return "THREAD_SINGLE";
    case ThreadSafety::funneled: return "THREAD_FUNNELED";
    case ThreadSafety::serialized: return "THREAD_SERIALIZED";
    case ThreadSafety::multiple: return "THREAD_MULTIPLE";
  }
  return "?";
}

/// Thrown when a sub-thread makes a GAS call the configured safety level
/// forbids — the simulator's version of the runtime crash on missing
/// per-thread data the thesis describes.
class ThreadSafetyViolation : public std::logic_error {
 public:
  explicit ThreadSafetyViolation(ThreadSafety level)
      : std::logic_error(std::string("GAS call from sub-thread violates ") +
                         to_string(level)) {}
};

}  // namespace hupc::core
