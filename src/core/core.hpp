// Umbrella header for the hierarchical-parallelism layer (the paper's
// contribution): thread groups, privatization, sub-threads, safety levels.
#pragma once

#include "core/safety.hpp"     // IWYU pragma: export
#include "core/subthread.hpp"  // IWYU pragma: export
#include "core/team.hpp"       // IWYU pragma: export
