#include "core/subthread.hpp"

#include <algorithm>
#include <stdexcept>

#include "trace/trace.hpp"

namespace hupc::core {

SubModelParams params_for(SubModel model) {
  switch (model) {
    case SubModel::openmp:
      // GCC libgomp-class fork/join; fitted so hybrid FT tracks the
      // thesis's "OpenMP performs best" ordering (§4.3.3.3).
      return SubModelParams{2.0e-6, 0.3e-6, 1.0, 0.0};
    case SubModel::thread_pool:
      // The in-house prototype: central task queue costs a bit more per
      // task than static OpenMP worksharing.
      return SubModelParams{2.5e-6, 0.6e-6, 1.0, 0.0};
    case SubModel::cilk:
      // Cilk++ build 8503: ~10% kernel slowdown + a constant ~0.2 s lag
      // observed on single-sub-thread configurations (§4.3.3.3).
      return SubModelParams{3.0e-6, 0.8e-6, 1.10, 0.2};
  }
  return SubModelParams{2.0e-6, 0.3e-6, 1.0, 0.0};
}

SubPool::SubPool(gas::Thread& master, int width, SubModel model,
                 ThreadSafety safety)
    : master_(&master),
      model_(model),
      params_(params_for(model)),
      safety_(safety) {
  if (width < 1) {
    throw std::invalid_argument("SubPool: width must be >= 1 (got " +
                                std::to_string(width) + ")");
  }
  auto& rt = master.runtime();
  // Fault injection: a spawn-throttle hook can clamp the pool below the
  // requested width (slot exhaustion / a crowded node). The pool still
  // works at the reduced width; callers observe it via width().
  if (fault::SpawnHook* throttle = rt.fault_hooks().spawn) {
    const int clamped = throttle->clamp_spawn_width(width);
    if (clamped >= 1 && clamped < width) {
      HUPC_TRACE_COUNT(rt.tracer(), "fault.spawn.throttle", master.rank());
      width = clamped;
    }
  }
  serialize_gate_ = std::make_unique<sim::Mutex>(rt.engine());
  contexts_.reserve(static_cast<std::size_t>(width));
  // Context 0 runs on the master's own slot (the master *becomes* worker 0
  // inside a region, as in OpenMP).
  contexts_.push_back(std::make_unique<SubContext>(*this, 0, master.loc()));
  for (int i = 1; i < width; ++i) {
    const topo::HwLoc slot = rt.slots().allocate_near(master.loc());
    allocated_.push_back(slot);
    contexts_.push_back(std::make_unique<SubContext>(*this, i, slot));
  }
}

SubPool::~SubPool() {
  auto& slots = master_->runtime().slots();
  for (const auto& loc : allocated_) slots.unbind(loc);
}

sim::Task<void> SubPool::region_prologue() {
  auto& engine = master_->runtime().engine();
  if (!started_) {
    started_ = true;
    co_await sim::delay(engine, sim::from_seconds(params_.startup_lag_s));
  }
  co_await sim::delay(engine, sim::from_seconds(params_.region_overhead_s));
}

sim::Task<void> SubPool::parallel_for(std::size_t n, Schedule schedule,
                                      ForBody body, std::size_t chunk) {
  // Region fork at B, implicit join at E (scope exit after the joins).
  HUPC_TRACE_SCOPE(master_->runtime().tracer(), trace::Category::core,
                   "region", master_->rank(), n,
                   static_cast<std::uint64_t>(width()));
  HUPC_TRACE_COUNT(master_->runtime().tracer(), "core.region",
                   master_->rank());
  co_await region_prologue();
  if (n == 0) co_return;
  live_bodies_.push_back(std::move(body));
  const ForBody& fn = live_bodies_.back();

  auto& engine = master_->runtime().engine();
  const auto width = static_cast<std::size_t>(this->width());
  const double task_cost = params_.task_overhead_s;

  // Shared trip counter for dynamic/guided scheduling.
  auto next = std::make_shared<std::size_t>(0);

  std::vector<sim::Process> workers;
  workers.reserve(width);
  for (std::size_t w = 0; w < width; ++w) {
    SubContext& ctx = *contexts_[w];
    switch (schedule) {
      case Schedule::static_chunks: {
        // Contiguous near-equal ranges, like OpenMP schedule(static).
        const std::size_t lo = n * w / width;
        const std::size_t hi = n * (w + 1) / width;
        if (lo == hi) break;
        workers.push_back(sim::spawn(
            engine, [](SubContext& c, const ForBody& f, std::size_t a,
                       std::size_t b, double oh) -> sim::Task<void> {
              HUPC_TRACE_COUNT(c.master().runtime().tracer(), "core.task",
                               c.master().rank());
              co_await sim::delay(c.master().runtime().engine(),
                                  sim::from_seconds(oh));
              co_await f(c, a, b);
            }(ctx, fn, lo, hi, task_cost)));
        break;
      }
      case Schedule::dynamic:
      case Schedule::guided: {
        const std::size_t base_chunk =
            chunk != 0 ? chunk : std::max<std::size_t>(1, n / (width * 8));
        workers.push_back(sim::spawn(
            engine,
            [](SubContext& c, const ForBody& f, std::shared_ptr<std::size_t> nx,
               std::size_t total, std::size_t chunk_sz, bool guided,
               std::size_t nworkers, double oh) -> sim::Task<void> {
              auto& eng = c.master().runtime().engine();
              for (;;) {
                const std::size_t lo = *nx;
                if (lo >= total) break;
                std::size_t len = chunk_sz;
                if (guided) {
                  len = std::max<std::size_t>(chunk_sz,
                                              (total - lo) / (2 * nworkers));
                }
                const std::size_t hi = std::min(total, lo + len);
                *nx = hi;
                HUPC_TRACE_COUNT(c.master().runtime().tracer(), "core.task",
                                 c.master().rank());
                co_await sim::delay(eng, sim::from_seconds(oh));
                co_await f(c, lo, hi);
              }
            }(ctx, fn, next, n, base_chunk, schedule == Schedule::guided,
              width, task_cost)));
        break;
      }
    }
  }
  for (auto& w : workers) co_await w.join();
}

sim::Task<void> SubPool::spawn_all(std::vector<TaskFn> tasks) {
  HUPC_TRACE_SCOPE(master_->runtime().tracer(), trace::Category::core,
                   "region.spawn_all", master_->rank(), tasks.size(),
                   static_cast<std::uint64_t>(width()));
  HUPC_TRACE_COUNT(master_->runtime().tracer(), "core.region",
                   master_->rank());
  HUPC_TRACE_COUNT(master_->runtime().tracer(), "core.task", master_->rank(),
                   tasks.size());
  co_await region_prologue();
  if (tasks.empty()) co_return;
  live_tasks_.push_back(std::move(tasks));
  const auto& fns = live_tasks_.back();

  auto& engine = master_->runtime().engine();
  const auto width = static_cast<std::size_t>(this->width());
  auto next = std::make_shared<std::size_t>(0);

  std::vector<sim::Process> workers;
  workers.reserve(width);
  for (std::size_t w = 0; w < width && w < fns.size(); ++w) {
    workers.push_back(sim::spawn(
        engine,
        [](SubContext& c, const std::vector<TaskFn>& fs,
           std::shared_ptr<std::size_t> nx, double oh) -> sim::Task<void> {
          auto& eng = c.master().runtime().engine();
          for (;;) {
            const std::size_t i = (*nx)++;
            if (i >= fs.size()) break;
            co_await sim::delay(eng, sim::from_seconds(oh));
            co_await fs[i](c);
          }
        }(*contexts_[w], fns, next, params_.task_overhead_s)));
  }
  for (auto& w : workers) co_await w.join();
}

gas::Thread& SubContext::master() noexcept { return pool_->master(); }

sim::Task<void> SubContext::compute(double single_thread_seconds) {
  auto& rt = master().runtime();
  co_await rt.memory().compute(
      rt.slots(), loc_, single_thread_seconds * pool_->params().compute_inflation);
}

sim::Task<void> SubContext::compute_flops(double flops, double efficiency) {
  auto& rt = master().runtime();
  co_await rt.memory().compute_flops(
      rt.slots(), loc_, flops * pool_->params().compute_inflation, efficiency);
}

sim::Task<void> SubContext::stream_master_data(double bytes) {
  auto& rt = master().runtime();
  co_await rt.memory().stream(loc_, master().loc(), bytes);
}

sim::Task<void> SubContext::stream_local(double bytes) {
  auto& rt = master().runtime();
  co_await rt.memory().stream(loc_, loc_, bytes);
}

sim::Task<void> SubContext::gas_gate() {
  switch (pool_->safety()) {
    case ThreadSafety::single:
      throw ThreadSafetyViolation(ThreadSafety::single);
    case ThreadSafety::funneled:
      if (!is_master()) throw ThreadSafetyViolation(ThreadSafety::funneled);
      break;
    case ThreadSafety::serialized:
      co_await pool_->serialize_gate_->lock();
      break;
    case ThreadSafety::multiple:
      break;
  }
  co_return;
}

void SubContext::gas_release() {
  if (pool_->safety() == ThreadSafety::serialized) {
    pool_->serialize_gate_->unlock();
  }
}

}  // namespace hupc::core
