#include "core/team.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace hupc::core {

namespace {
int ceil_log2(int n) {
  if (n <= 1) return 0;
  return std::bit_width(static_cast<unsigned>(n - 1));
}
}  // namespace

Team::Team(gas::Runtime& rt, std::vector<int> ranks)
    : rt_(&rt), ranks_(std::move(ranks)) {
  if (ranks_.empty()) throw std::invalid_argument("Team: empty rank set");
  if (!std::is_sorted(ranks_.begin(), ranks_.end()) ||
      std::adjacent_find(ranks_.begin(), ranks_.end()) != ranks_.end()) {
    throw std::invalid_argument("Team: ranks must be sorted and unique");
  }
  for (int r : ranks_) {
    if (r < 0 || r >= rt.threads()) {
      throw std::invalid_argument("Team: rank out of range");
    }
  }
  barrier_ = std::make_unique<sim::Barrier>(rt.engine(), size());
  spans_nodes_ = false;
  for (int r : ranks_) {
    if (rt.node_of(r) != rt.node_of(ranks_.front())) {
      spans_nodes_ = true;
      break;
    }
  }
}

Team Team::node_team(gas::Runtime& rt, int node) {
  std::vector<int> members;
  for (int r = 0; r < rt.threads(); ++r) {
    if (rt.node_of(r) == node) members.push_back(r);
  }
  return Team(rt, std::move(members));
}

Team Team::socket_team(gas::Runtime& rt, int node, int socket) {
  std::vector<int> members;
  for (int r = 0; r < rt.threads(); ++r) {
    const auto loc = rt.loc_of(r);
    if (loc.node == node && loc.socket == socket) members.push_back(r);
  }
  return Team(rt, std::move(members));
}

std::vector<Team> Team::all_node_teams(gas::Runtime& rt) {
  std::vector<Team> teams;
  teams.reserve(static_cast<std::size_t>(rt.nodes_used()));
  for (int n = 0; n < rt.nodes_used(); ++n) {
    teams.push_back(node_team(rt, n));
  }
  return teams;
}

int Team::team_rank(int global) const {
  const auto it = std::lower_bound(ranks_.begin(), ranks_.end(), global);
  if (it == ranks_.end() || *it != global) return -1;
  return static_cast<int>(it - ranks_.begin());
}

sim::Time Team::barrier_cost() const {
  const auto& costs = rt_->config().costs;
  double seconds = costs.barrier_hop_s * ceil_log2(size());
  if (spans_nodes_) {
    const auto& c = rt_->config().conduit;
    seconds += (c.send_overhead_s + c.latency_s + c.recv_overhead_s) *
               ceil_log2(rt_->nodes_used());
  }
  return sim::from_seconds(seconds);
}

sim::Task<void> Team::barrier([[maybe_unused]] gas::Thread& self) {
  assert(contains(self.rank()) && "barrier by non-member");
  co_await barrier_->arrive_and_wait();
  co_await sim::delay(rt_->engine(), barrier_cost());
}

}  // namespace hupc::core
