#include "core/team.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>
#include <stdexcept>
#include <utility>

namespace hupc::core {

namespace {
int ceil_log2(int n) {
  if (n <= 1) return 0;
  return std::bit_width(static_cast<unsigned>(n - 1));
}
}  // namespace

Team::Team(gas::Runtime& rt, std::vector<int> ranks)
    : rt_(&rt), ranks_(std::move(ranks)) {
  if (ranks_.empty()) throw std::invalid_argument("Team: empty rank set");
  for (int r : ranks_) {
    if (r < 0 || r >= rt.threads()) {
      throw std::invalid_argument("Team: rank out of range");
    }
  }
  // Any order is allowed (split() emits key-ordered teams); only
  // duplicates are rejected.
  std::vector<int> sorted = ranks_;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("Team: ranks must be unique");
  }
  barrier_ = std::make_unique<sim::Barrier>(rt.engine(), size());
  spans_nodes_ = false;
  for (int r : ranks_) {
    if (rt.node_of(r) != rt.node_of(ranks_.front())) {
      spans_nodes_ = true;
      break;
    }
  }
}

Team Team::node_team(gas::Runtime& rt, int node) {
  std::vector<int> members;
  for (int r = 0; r < rt.threads(); ++r) {
    if (rt.node_of(r) == node) members.push_back(r);
  }
  return Team(rt, std::move(members));
}

Team Team::socket_team(gas::Runtime& rt, int node, int socket) {
  std::vector<int> members;
  for (int r = 0; r < rt.threads(); ++r) {
    const auto loc = rt.loc_of(r);
    if (loc.node == node && loc.socket == socket) members.push_back(r);
  }
  return Team(rt, std::move(members));
}

std::vector<Team> Team::all_node_teams(gas::Runtime& rt) {
  std::vector<Team> teams;
  teams.reserve(static_cast<std::size_t>(rt.nodes_used()));
  for (int n = 0; n < rt.nodes_used(); ++n) {
    teams.push_back(node_team(rt, n));
  }
  return teams;
}

int Team::team_rank(int global) const {
  // Linear scan: member order is arbitrary (key-ordered after split), and
  // teams are hardware-domain sized.
  const auto it = std::find(ranks_.begin(), ranks_.end(), global);
  if (it == ranks_.end()) return -1;
  return static_cast<int>(it - ranks_.begin());
}

std::vector<Team> Team::split(const std::vector<int>& colors,
                              const std::vector<int>& keys) const {
  if (colors.size() != ranks_.size()) {
    throw std::invalid_argument("Team::split: one color per member required");
  }
  if (!keys.empty() && keys.size() != ranks_.size()) {
    throw std::invalid_argument(
        "Team::split: keys must be empty or one per member");
  }
  // color -> [(key, parent team rank)], std::map for ascending color order.
  std::map<int, std::vector<std::pair<int, int>>> buckets;
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    if (colors[i] < 0) continue;  // negative color: joins no subteam
    buckets[colors[i]].emplace_back(keys.empty() ? 0 : keys[i],
                                    static_cast<int>(i));
  }
  std::vector<Team> teams;
  teams.reserve(buckets.size());
  for (auto& [color, members] : buckets) {
    (void)color;
    std::sort(members.begin(), members.end());  // (key, parent team rank)
    std::vector<int> sub;
    sub.reserve(members.size());
    for (const auto& [key, tr] : members) {
      (void)key;
      sub.push_back(ranks_[static_cast<std::size_t>(tr)]);
    }
    teams.emplace_back(Team(*rt_, std::move(sub)));
  }
  return teams;
}

std::vector<Team> Team::split_by_node() const {
  std::vector<int> colors;
  colors.reserve(ranks_.size());
  for (int r : ranks_) colors.push_back(rt_->node_of(r));
  return split(colors);
}

std::vector<Team> Team::split_by_socket() const {
  // Color = dense index of the (node, socket) pair, ascending.
  std::map<std::pair<int, int>, int> domain_color;
  for (int r : ranks_) {
    const auto loc = rt_->loc_of(r);
    domain_color.emplace(std::make_pair(loc.node, loc.socket), 0);
  }
  int next = 0;
  for (auto& [domain, color] : domain_color) {
    (void)domain;
    color = next++;
  }
  std::vector<int> colors;
  colors.reserve(ranks_.size());
  for (int r : ranks_) {
    const auto loc = rt_->loc_of(r);
    colors.push_back(domain_color.at({loc.node, loc.socket}));
  }
  return split(colors);
}

Team Team::leader_team() const {
  std::map<int, int> first_on_node;  // node -> global rank of first member
  for (int r : ranks_) {
    first_on_node.emplace(rt_->node_of(r), r);
  }
  std::vector<int> leaders;
  leaders.reserve(first_on_node.size());
  for (const auto& [node, rank] : first_on_node) {
    (void)node;
    leaders.push_back(rank);
  }
  return Team(*rt_, std::move(leaders));
}

sim::Time Team::barrier_cost() const {
  const auto& costs = rt_->config().costs;
  double seconds = costs.barrier_hop_s * ceil_log2(size());
  if (spans_nodes_) {
    const auto& c = rt_->config().conduit;
    seconds += (c.send_overhead_s + c.latency_s + c.recv_overhead_s) *
               ceil_log2(rt_->nodes_used());
  }
  return sim::from_seconds(seconds);
}

sim::Task<void> Team::barrier([[maybe_unused]] gas::Thread& self) {
  assert(contains(self.rank()) && "barrier by non-member");
  co_await barrier_->arrive_and_wait();
  co_await sim::delay(rt_->engine(), barrier_cost());
}

}  // namespace hupc::core
