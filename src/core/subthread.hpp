// Hierarchical sub-threads under a master UPC thread (thesis Chapter 4).
//
// A SubPool attaches to one gas::Thread (the master) and owns `width`
// execution contexts placed on the master's socket (sub-threads inherit the
// master's affinity mask, §4.3.2). Context 0 reuses the master's hardware
// slot — a parallel region uses the master's core plus width-1 extra slots,
// like an OpenMP team of `width` threads.
//
// Three runtime models differ only in overhead constants (fork/join region
// cost, per-task cost, compute inflation, one-time startup lag), calibrated
// to the thesis observations: OpenMP fastest, the in-house thread pool
// close behind, Cilk++ ~10% slower kernels plus a constant startup lag
// (§4.3.3.3).
//
// Sub-threads may access the global address space directly — the PGAS
// convenience the thesis highlights over MPI+threads — subject to the
// configured ThreadSafety level.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/safety.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"
#include "topo/machine.hpp"

namespace hupc::core {

enum class SubModel { openmp, thread_pool, cilk };

struct SubModelParams {
  double region_overhead_s;  // fork+join cost of one parallel region
  double task_overhead_s;    // per spawned task/chunk
  double compute_inflation;  // multiplier on compute time (runtime overhead)
  double startup_lag_s;      // one-time cost at first region
};

[[nodiscard]] SubModelParams params_for(SubModel model);

class SubPool;

/// Execution context of one sub-thread. GAS operations route through the
/// master's runtime identity but charge compute at the sub-thread's own
/// hardware location, and are gated by the pool's ThreadSafety level.
class SubContext {
 public:
  SubContext(SubPool& pool, int id, topo::HwLoc loc)
      : pool_(&pool), id_(id), loc_(loc) {}

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] bool is_master() const noexcept { return id_ == 0; }
  [[nodiscard]] topo::HwLoc loc() const noexcept { return loc_; }
  [[nodiscard]] SubPool& pool() noexcept { return *pool_; }
  [[nodiscard]] gas::Thread& master() noexcept;

  // --- local work at this sub-thread's location -------------------------
  [[nodiscard]] sim::Task<void> compute(double single_thread_seconds);
  [[nodiscard]] sim::Task<void> compute_flops(double flops, double efficiency);
  /// Memory traffic against the master's home socket (shared arrays are
  /// first-touched by the master — §4.3.2's placement lesson).
  [[nodiscard]] sim::Task<void> stream_master_data(double bytes);
  /// Memory traffic homed wherever this sub-thread sits.
  [[nodiscard]] sim::Task<void> stream_local(double bytes);

  // --- GAS access from a sub-thread (safety-gated) ----------------------
  template <class T>
  [[nodiscard]] sim::Task<void> memput(gas::GlobalPtr<T> dst, const T* src,
                                       std::size_t count) {
    co_await gas_gate();
    co_await master().copy_raw_from(loc_, dst.owner, dst.raw, src,
                                    count * sizeof(T));
    gas_release();
  }
  template <class T>
  [[nodiscard]] sim::Task<void> memget(T* dst, gas::GlobalPtr<const T> src,
                                       std::size_t count) {
    co_await gas_gate();
    co_await master().copy_raw_from(loc_, src.owner, dst, src.raw,
                                    count * sizeof(T));
    gas_release();
  }
  template <class T>
  [[nodiscard]] sim::Task<void> memget(T* dst, gas::GlobalPtr<T> src,
                                       std::size_t count) {
    co_await memget(dst, gas::to_const(src), count);
  }
  template <class T>
  [[nodiscard]] sim::Future<> memput_async(gas::GlobalPtr<T> dst, const T* src,
                                           std::size_t count) {
    return master().start_async(memput(dst, src, count));
  }

 private:
  friend class SubPool;
  [[nodiscard]] sim::Task<void> gas_gate();
  void gas_release();

  SubPool* pool_;
  int id_;
  topo::HwLoc loc_;
};

/// Loop-scheduling policies for parallel_for.
enum class Schedule { static_chunks, dynamic, guided };

class SubPool {
 public:
  /// Acquire `width` contexts (context 0 = the master's own slot; width-1
  /// new slots allocated on the master's socket).
  SubPool(gas::Thread& master, int width, SubModel model = SubModel::openmp,
          ThreadSafety safety = ThreadSafety::funneled);
  ~SubPool();
  SubPool(const SubPool&) = delete;
  SubPool& operator=(const SubPool&) = delete;

  [[nodiscard]] int width() const noexcept {
    return static_cast<int>(contexts_.size());
  }
  [[nodiscard]] gas::Thread& master() noexcept { return *master_; }
  [[nodiscard]] SubModel model() const noexcept { return model_; }
  [[nodiscard]] ThreadSafety safety() const noexcept { return safety_; }
  [[nodiscard]] const SubModelParams& params() const noexcept { return params_; }
  [[nodiscard]] SubContext& context(int i) {
    return *contexts_[static_cast<std::size_t>(i)];
  }

  using ForBody =
      std::function<sim::Task<void>(SubContext&, std::size_t, std::size_t)>;
  using TaskFn = std::function<sim::Task<void>(SubContext&)>;

  /// Fork-join parallel loop over [0, n): every context runs chunks per the
  /// schedule; returns when all iterations complete (implicit join).
  [[nodiscard]] sim::Task<void> parallel_for(std::size_t n, Schedule schedule,
                                             ForBody body,
                                             std::size_t chunk = 0);

  /// Cilk-style: spawn the given tasks onto the pool, join all.
  [[nodiscard]] sim::Task<void> spawn_all(std::vector<TaskFn> tasks);

 private:
  friend class SubContext;
  [[nodiscard]] sim::Task<void> region_prologue();

  gas::Thread* master_;
  SubModel model_;
  SubModelParams params_;
  ThreadSafety safety_;
  std::vector<std::unique_ptr<SubContext>> contexts_;
  std::vector<topo::HwLoc> allocated_;  // slots to release (excludes ctx 0)
  std::unique_ptr<sim::Mutex> serialize_gate_;
  bool started_ = false;
  // Keeps region bodies alive while their coroutines run.
  std::vector<ForBody> live_bodies_;
  std::vector<std::vector<TaskFn>> live_tasks_;
};

}  // namespace hupc::core
