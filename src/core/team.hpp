// Thread groups (thesis Chapter 3).
//
// A Team is an ordered set of UPC ranks — typically all ranks sharing a
// hardware domain (node, socket), but arbitrary and *overlapping* groups
// are allowed (§3.2.1 argues for concurrent exploitation of multiple
// hierarchies). Teams carry their own barrier and translate between team
// ranks and global ranks.
//
// Teams are plain shared objects: construct them (host-side or on one
// rank) before use and share by reference, the way the thesis programs
// hand-code thread groups from topology queries at startup.
#pragma once

#include <memory>
#include <vector>

#include "gas/collectives.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"

namespace hupc::core {

class Team {
 public:
  /// `ranks` must be non-empty, unique and in range. Any ORDER is allowed —
  /// member index is the position in `ranks` (split() emits key-ordered
  /// teams, so sortedness is not a Team invariant).
  Team(gas::Runtime& rt, std::vector<int> ranks);

  // --- hardware-driven factories (the topology queries of §3.2.1) -------
  [[nodiscard]] static Team node_team(gas::Runtime& rt, int node);
  [[nodiscard]] static Team socket_team(gas::Runtime& rt, int node, int socket);
  /// One team per node, index = node id.
  [[nodiscard]] static std::vector<Team> all_node_teams(gas::Runtime& rt);

  // --- splitting (the MPI_Comm_split-shaped teams API of §3.2.1) --------

  /// Partition this team by color: member i (team rank) joins the subteam
  /// of every other member with `colors[i]`; a negative color joins no
  /// team. Within a subteam, members are ordered by ascending
  /// (`keys[i]`, parent team rank) — so subteam rank 0 is the smallest
  /// key, NOT necessarily the smallest global rank. Returns the subteams
  /// in ascending color order. `colors` (and `keys`, when non-empty) must
  /// have exactly size() entries; omitted keys default to 0 (order by
  /// parent team rank).
  [[nodiscard]] std::vector<Team> split(const std::vector<int>& colors,
                                        const std::vector<int>& keys = {}) const;

  /// split() with color = the node hosting each member: one subteam per
  /// node this team touches, in ascending node order.
  [[nodiscard]] std::vector<Team> split_by_node() const;

  /// split() with color = (node, socket) of each member, ascending.
  [[nodiscard]] std::vector<Team> split_by_socket() const;

  /// Cross-node leaders subteam: the first member (lowest team rank) on
  /// each node this team touches, in ascending node order — the "one
  /// representative per supernode" team the two-level collective
  /// algorithms route through.
  [[nodiscard]] Team leader_team() const;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] const std::vector<int>& ranks() const noexcept { return ranks_; }
  [[nodiscard]] int global_rank(int team_rank) const {
    return ranks_[static_cast<std::size_t>(team_rank)];
  }
  /// Team rank of a global rank, or -1 if not a member.
  [[nodiscard]] int team_rank(int global) const;
  [[nodiscard]] bool contains(int global) const { return team_rank(global) >= 0; }

  /// Barrier across team members only; costs scale with the team's span
  /// (intra-node teams pay no network rounds).
  [[nodiscard]] sim::Task<void> barrier(gas::Thread& self);

  /// Team-scoped collectives (the GASNet-teams facility of §3.2.1):
  /// broadcast/reduce/exchange restricted to this team's members, with
  /// buffers indexed by team rank. Create once, share among members. The
  /// optional selector pins or tunes the per-operation algorithm choice
  /// (gas/coll_algo.hpp).
  [[nodiscard]] gas::Collectives make_collectives(
      gas::CollectiveSelector selector = {}) const {
    return gas::Collectives(*rt_, ranks_, selector);
  }

  /// Pre-cast pointer table (§3.3): raw base pointers of each member's
  /// slice of `arr`, nullptr where not castable from `self`. Building it
  /// is free at runtime scale — the expensive mapping happened at startup.
  template <class T>
  [[nodiscard]] std::vector<T*> pointer_table(const gas::Thread& self,
                                              const gas::SharedArray<T>& arr) const {
    std::vector<T*> table;
    table.reserve(ranks_.size());
    for (int r : ranks_) {
      table.push_back(self.castable(r) ? arr.slice(r) : nullptr);
    }
    return table;
  }

 private:
  [[nodiscard]] sim::Time barrier_cost() const;

  gas::Runtime* rt_;
  std::vector<int> ranks_;
  std::unique_ptr<sim::Barrier> barrier_;
  bool spans_nodes_;
};

}  // namespace hupc::core
