// Thread groups (thesis Chapter 3).
//
// A Team is an ordered set of UPC ranks — typically all ranks sharing a
// hardware domain (node, socket), but arbitrary and *overlapping* groups
// are allowed (§3.2.1 argues for concurrent exploitation of multiple
// hierarchies). Teams carry their own barrier and translate between team
// ranks and global ranks.
//
// Teams are plain shared objects: construct them (host-side or on one
// rank) before use and share by reference, the way the thesis programs
// hand-code thread groups from topology queries at startup.
#pragma once

#include <memory>
#include <vector>

#include "gas/collectives.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"

namespace hupc::core {

class Team {
 public:
  /// `ranks` must be non-empty, sorted, unique.
  Team(gas::Runtime& rt, std::vector<int> ranks);

  // --- hardware-driven factories (the topology queries of §3.2.1) -------
  [[nodiscard]] static Team node_team(gas::Runtime& rt, int node);
  [[nodiscard]] static Team socket_team(gas::Runtime& rt, int node, int socket);
  /// One team per node, index = node id.
  [[nodiscard]] static std::vector<Team> all_node_teams(gas::Runtime& rt);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] const std::vector<int>& ranks() const noexcept { return ranks_; }
  [[nodiscard]] int global_rank(int team_rank) const {
    return ranks_[static_cast<std::size_t>(team_rank)];
  }
  /// Team rank of a global rank, or -1 if not a member.
  [[nodiscard]] int team_rank(int global) const;
  [[nodiscard]] bool contains(int global) const { return team_rank(global) >= 0; }

  /// Barrier across team members only; costs scale with the team's span
  /// (intra-node teams pay no network rounds).
  [[nodiscard]] sim::Task<void> barrier(gas::Thread& self);

  /// Team-scoped collectives (the GASNet-teams facility of §3.2.1):
  /// broadcast/reduce/exchange restricted to this team's members, with
  /// buffers indexed by team rank. Create once, share among members.
  [[nodiscard]] gas::Collectives make_collectives() const {
    return gas::Collectives(*rt_, ranks_);
  }

  /// Pre-cast pointer table (§3.3): raw base pointers of each member's
  /// slice of `arr`, nullptr where not castable from `self`. Building it
  /// is free at runtime scale — the expensive mapping happened at startup.
  template <class T>
  [[nodiscard]] std::vector<T*> pointer_table(const gas::Thread& self,
                                              const gas::SharedArray<T>& arr) const {
    std::vector<T*> table;
    table.reserve(ranks_.size());
    for (int r : ranks_) {
      table.push_back(self.castable(r) ? arr.slice(r) : nullptr);
    }
    return table;
  }

 private:
  [[nodiscard]] sim::Time barrier_cost() const;

  gas::Runtime* rt_;
  std::vector<int> ranks_;
  std::unique_ptr<sim::Barrier> barrier_;
  bool spans_nodes_;
};

}  // namespace hupc::core
