#include "async/rpc.hpp"

#include "sim/process.hpp"
#include "sim/time.hpp"

namespace hupc::async {

RpcDomain::RpcDomain(gas::Runtime& rt) : rt_(&rt) {
  personas_.reserve(static_cast<std::size_t>(rt.threads()));
  for (int r = 0; r < rt.threads(); ++r) {
    personas_.push_back(std::make_unique<sim::ProgressQueue>(rt.engine()));
  }
}

sim::Task<void> RpcDomain::transport(int from_rank, int to_rank,
                                     double bytes) {
  gas::Runtime& rt = *rt_;
  const auto& costs = rt.config().costs;
  if (from_rank == to_rank) {
    // Self-RPC: an in-process handoff; the persona hop sequences it, the
    // charge is one software dispatch.
    co_await sim::delay(rt.engine(),
                        sim::from_seconds(costs.shm_copy_overhead_s));
  } else if (rt.same_supernode(from_rank, to_rank)) {
    // Cross-rank within a supernode: plain stores into the peer's inbox.
    co_await sim::delay(rt.engine(),
                        sim::from_seconds(costs.shm_copy_overhead_s));
    co_await rt.memory().stream(rt.loc_of(from_rank), rt.loc_of(to_rank),
                                bytes);
  } else if (rt.node_of(from_rank) == rt.node_of(to_rank)) {
    // Same node, segments not cross-mapped: the loopback channel.
    co_await rt.network().loopback({.src_node = rt.node_of(from_rank),
                                    .src_ep = rt.endpoint_of(from_rank),
                                    .dst_node = rt.node_of(to_rank),
                                    .bytes = bytes},
                                   costs.loopback_bw);
  } else {
    co_await rt.network().rma({.src_node = rt.node_of(from_rank),
                               .src_ep = rt.endpoint_of(from_rank),
                               .dst_node = rt.node_of(to_rank),
                               .bytes = bytes});
  }
}

sim::Task<void> RpcDomain::completion_delay(int rank) {
  if (fault::CompletionHook* hook = rt_->fault_hooks().completion) {
    const std::int64_t extra = hook->delay_completion(rank);
    if (extra > 0) co_await sim::delay(rt_->engine(), extra);
  }
}

void RpcDomain::note_sent(int rank, std::size_t wire_bytes) {
  ++stats_.sent;
  stats_.wire_bytes += static_cast<double>(wire_bytes);
  HUPC_TRACE_COUNT(rt_->tracer(), "async.rpc.sent", rank);
  HUPC_TRACE_COUNT(rt_->tracer(), "async.rpc.bytes", rank, wire_bytes);
}

void RpcDomain::note_executed(int rank) {
  ++stats_.executed;
  HUPC_TRACE_COUNT(rt_->tracer(), "async.rpc.executed", rank);
}

void RpcDomain::note_completed(int rank) {
  ++stats_.completed;
  HUPC_TRACE_COUNT(rt_->tracer(), "async.rpc.completed", rank);
}

}  // namespace hupc::async
