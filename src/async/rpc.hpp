// Remote procedure calls over the simulated runtime (DESIGN.md §13).
//
// async::rpc ships a callable plus bound arguments to the rank that owns
// the data and returns a chainable future for the result. The mechanics
// mirror UPC++/GASNet active messages:
//
//   * the bound arguments are SERIALIZED into a net::RpcMessage buffer at
//     the caller and decoded at the target — values genuinely round-trip
//     through the wire buffer; only trivially-copyable argument and result
//     types are accepted. Code (the callable) travels by value through the
//     shared address space, as it would through a symmetric binary.
//   * the request is charged to the network as an ordinary transfer of
//     wire_bytes() (header + payload), flowing through the same injection
//     FIFOs, fault seams and counters as every other message; same-node
//     targets ride the loopback/shm paths like bulk copies do.
//   * delivery enqueues the invocation on the TARGET rank's persona — a
//     sim::ProgressQueue drained by the engine — so handlers start in
//     strict delivery order per rank, one progress context per rank.
//     Handlers are coroutines executing in the target's gas::Thread
//     context: they may co_await GAS operations and issue nested RPCs.
//   * the reply (serialized result) is charged back to the caller, then
//     the future resolves — after any installed fault::CompletionHook
//     delay, so completion storms reorder observations, never effects.
//
// Trace counters: async.rpc.sent / executed / completed (and .bytes for
// wire volume), cross-checked by fault::check_async_ordering.
//
// An RpcDomain must outlive the engine run it participates in; construct
// it next to the Runtime, before spmd().
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "async/future.hpp"
#include "gas/runtime.hpp"
#include "net/rpc_message.hpp"
#include "sim/progress.hpp"
#include "trace/trace.hpp"

namespace hupc::async {

namespace detail {

/// Handlers may return a plain value, void, or sim::Task<R> (coroutine in
/// the target's context); this strips the Task wrapper.
template <class T>
struct rpc_result {
  using type = T;
};
template <class T>
struct rpc_result<sim::Task<T>> {
  using type = T;
};
template <class T>
using rpc_result_t = typename rpc_result<T>::type;

template <class T>
inline constexpr bool is_task = false;
template <class T>
inline constexpr bool is_task<sim::Task<T>> = true;

}  // namespace detail

class RpcDomain {
 public:
  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t executed = 0;
    std::uint64_t completed = 0;
    double wire_bytes = 0.0;
  };

  explicit RpcDomain(gas::Runtime& rt);

  RpcDomain(const RpcDomain&) = delete;
  RpcDomain& operator=(const RpcDomain&) = delete;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Invocations delivered to `rank`'s persona but not yet started.
  [[nodiscard]] std::size_t inbox_depth(int rank) const {
    return personas_[static_cast<std::size_t>(rank)]->depth();
  }

  /// Ship `fn(target_thread, args...)` to `target`; returns the future of
  /// its result. `fn` may return R, void, or sim::Task<R>. `from` is the
  /// issuing rank's context (identity + charge attribution).
  template <class Fn, class... Args>
  [[nodiscard]] auto call(gas::Thread& from, int target, Fn fn, Args... args)
      -> future<detail::rpc_result_t<
          std::invoke_result_t<Fn, gas::Thread&, std::decay_t<Args>&...>>> {
    using Raw =
        std::invoke_result_t<Fn, gas::Thread&, std::decay_t<Args>&...>;
    using R = detail::rpc_result_t<Raw>;
    static_assert((std::is_trivially_copyable_v<std::decay_t<Args>> && ...),
                  "async::rpc bound arguments must be trivially copyable "
                  "(they are serialized onto the wire)");
    static_assert(std::is_void_v<R> || std::is_trivially_copyable_v<R>,
                  "async::rpc results must be void or trivially copyable "
                  "(the reply is serialized onto the wire)");

    net::RpcMessage msg(net::RpcKind::request, next_id_++, from.rank(),
                        target);
    (msg.put(static_cast<std::decay_t<Args>>(args)), ...);
    note_sent(from.rank(), msg.wire_bytes());

    promise<R> done(rt_->engine());
    future<R> fut = done.get_future();
    sim::spawn(rt_->engine(),
               deliver<Fn, R, std::decay_t<Args>...>(std::move(msg),
                                                     std::move(fn),
                                                     std::move(done)));
    return fut;
  }

 private:
  /// Request leg: charge the transport, then enqueue the invocation on the
  /// target's persona (FIFO start order per rank).
  template <class Fn, class R, class... As>
  [[nodiscard]] sim::Task<void> deliver(net::RpcMessage msg, Fn fn,
                                        promise<R> done) {
    const int caller = msg.src_rank();
    const int target = msg.dst_rank();
    co_await transport(caller, target,
                       static_cast<double>(msg.wire_bytes()));
    personas_[static_cast<std::size_t>(target)]->post(
        [this, msg = std::move(msg), fn = std::move(fn),
         done = std::move(done)]() mutable {
          sim::spawn(rt_->engine(),
                     execute<Fn, R, As...>(std::move(msg), std::move(fn),
                                           std::move(done)));
        });
  }

  /// Target-side execution + reply leg. Runs as its own root process so a
  /// handler that suspends (GAS ops, nested RPC — including back to this
  /// rank) never wedges the persona.
  template <class Fn, class R, class... As>
  [[nodiscard]] sim::Task<void> execute(net::RpcMessage msg, Fn fn,
                                        promise<R> done) {
    const int caller = msg.src_rank();
    const int target = msg.dst_rank();
    note_executed(target);
    msg.rewind();
    // Braced-init guarantees left-to-right decode, matching put() order.
    std::tuple<As...> args{msg.get<As>()...};
    gas::Thread& at = rt_->thread(target);
    net::RpcMessage reply(net::RpcKind::reply, msg.id(), target, caller);
    std::exception_ptr error;  // co_await is illegal inside a catch block
    try {
      if constexpr (std::is_void_v<R>) {
        if constexpr (detail::is_task<std::invoke_result_t<
                          Fn, gas::Thread&, As&...>>) {
          co_await std::apply(
              [&](As&... a) { return fn(at, a...); }, args);
        } else {
          std::apply([&](As&... a) { fn(at, a...); }, args);
        }
      } else {
        R result = co_await [&]() -> sim::Task<R> {
          if constexpr (detail::is_task<std::invoke_result_t<
                            Fn, gas::Thread&, As&...>>) {
            co_return co_await std::apply(
                [&](As&... a) { return fn(at, a...); }, args);
          } else {
            co_return std::apply([&](As&... a) { return fn(at, a...); },
                                 args);
          }
        }();
        reply.put(result);
      }
    } catch (...) {
      error = std::current_exception();
    }
    // Exceptions travel by shared state, not by wire: a failed reply still
    // pays its (header-only) transport so the completion schedule stays
    // modeled.
    co_await transport(target, caller,
                       static_cast<double>(reply.wire_bytes()));
    if (error) {
      done.set_exception(error);
      co_return;
    }
    co_await completion_delay(caller);
    note_completed(caller);
    if constexpr (std::is_void_v<R>) {
      done.set_value();
    } else {
      reply.rewind();
      done.set_value(reply.get<R>());  // the value that crossed the wire
    }
  }

  /// Modeled cost of moving `bytes` from `from_rank`'s node to
  /// `to_rank`'s: rma cross-node, loopback intra-node, shm handoff within
  /// a supernode, fixed software cost to self.
  [[nodiscard]] sim::Task<void> transport(int from_rank, int to_rank,
                                          double bytes);
  /// Awaitable fault::CompletionHook consultation for `rank` (no-op when
  /// no hook is installed or it returns no delay).
  [[nodiscard]] sim::Task<void> completion_delay(int rank);

  void note_sent(int rank, std::size_t wire_bytes);
  void note_executed(int rank);
  void note_completed(int rank);

  gas::Runtime* rt_;
  std::vector<std::unique_ptr<sim::ProgressQueue>> personas_;
  Stats stats_;
  std::uint64_t next_id_ = 0;
};

/// Free-function spelling: `async::rpc(domain, self, target, fn, args...)`.
template <class Fn, class... Args>
[[nodiscard]] auto rpc(RpcDomain& domain, gas::Thread& from, int target,
                       Fn fn, Args&&... args) {
  return domain.call(from, target, std::move(fn),
                     std::forward<Args>(args)...);
}

}  // namespace hupc::async
