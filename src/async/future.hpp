// Chainable asynchronous completion objects for the simulated runtime
// (DESIGN.md §13) — the UPC++-style `future`/`promise` pair the GAS layer
// returns from non-blocking operations.
//
// Unlike sim::Future (a bare waitsync handle), async::future composes:
//   fut.then(f)          — attach a continuation; returns a future for f's
//                          result (futures returned by f are unwrapped);
//   when_all(futs)       — one future that resolves after every input, with
//                          values in INPUT order regardless of completion
//                          order (and the lowest-index exception, so the
//                          result is independent of completion order);
//   make_ready_future(v) — an already-resolved future;
//   co_await fut         — suspend a sim::Task until resolution.
//
// Completion-ordering rule (the property the test battery hammers): when a
// shared state carries an engine, EVERY callback fires as a same-instant
// engine event — never inline from set_value() or then(). Continuations of
// one future therefore run in attach (FIFO) order, whether attached before
// or after fulfilment, and resume stacks stay flat. Engine-less states
// (make_ready_future, unit tests without a simulation) run callbacks
// inline at attach/fulfil time instead.
//
// This header is deliberately header-only and depends only on sim/: the
// GAS layer returns async::future<> from copy_async without linking the
// (gas-dependent) hupc_async RPC library above it.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace hupc::async {

template <class T>
class future;
template <class T>
class promise;

namespace detail {

/// Counter-balanced shared-state census for the leak property tests: every
/// State construction increments, every destruction decrements. A balanced
/// program returns to its starting count once all futures/promises die.
[[nodiscard]] inline std::int64_t& live_state_count() noexcept {
  static std::int64_t count = 0;
  return count;
}

template <class T>
struct StateValue {
  std::optional<T> value;
};
template <>
struct StateValue<void> {};

template <class T>
struct State : StateValue<T> {
  sim::Engine* engine = nullptr;  // null => inline callback execution
  bool ready = false;
  std::exception_ptr exception{};
  std::vector<std::function<void()>> callbacks;  // FIFO while pending

  State() { ++live_state_count(); }
  State(const State&) = delete;
  State& operator=(const State&) = delete;
  ~State() { --live_state_count(); }

  /// Run `cb` exactly once, per the completion-ordering rule above.
  void dispatch(std::function<void()> cb) {
    if (engine != nullptr) {
      engine->schedule_in(0, std::move(cb));
    } else {
      cb();
    }
  }

  /// Attach a continuation: queued while pending, dispatched once ready.
  /// Late attachments still honour FIFO — with an engine they land behind
  /// the callbacks the fulfilment already scheduled at the same instant.
  void attach(std::function<void()> cb) {
    if (ready) {
      dispatch(std::move(cb));
    } else {
      callbacks.push_back(std::move(cb));
    }
  }

  /// Flip to ready and dispatch every queued callback in attach order.
  /// Each callback leaves the queue before it can run, so no callback can
  /// ever fire twice (the property async_future_test asserts).
  void resolve() {
    assert(!ready && "async::promise: double fulfilment");
    ready = true;
    std::vector<std::function<void()>> cbs = std::move(callbacks);
    callbacks.clear();
    for (auto& cb : cbs) dispatch(std::move(cb));
  }
};

template <class T>
struct is_future : std::false_type {};
template <class T>
struct is_future<future<T>> : std::true_type {};

/// Result type of invoking continuation F on a future<T>'s value (lazy
/// two-specialization form: std::conditional_t would instantiate the
/// invalid branch for the other arity).
template <class F, class T>
struct then_result {
  using type = std::invoke_result_t<F, T&>;
};
template <class F>
struct then_result<F, void> {
  using type = std::invoke_result_t<F>;
};
template <class F, class T>
using then_raw_t = typename then_result<F, T>::type;

template <class R>
struct unwrap {
  using type = R;
};
template <class R>
struct unwrap<future<R>> {
  using type = R;
};

}  // namespace detail

/// Number of live shared states (promise/future pairs not yet destroyed).
/// Test hook for the counter-balanced leak check.
[[nodiscard]] inline std::int64_t debug_live_states() noexcept {
  return detail::live_state_count();
}

/// Shared-state future with continuations. Copyable (shared semantics):
/// every copy observes the same resolution, get() may be called repeatedly,
/// and any number of continuations may be attached.
template <class T = void>
class future {
 public:
  using value_type = T;

  future() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool ready() const noexcept { return state_ && state_->ready; }
  [[nodiscard]] bool failed() const noexcept {
    return state_ && state_->ready && state_->exception != nullptr;
  }

  /// Value access once ready; rethrows a captured exception.
  template <class U = T>
    requires(!std::is_void_v<U>)
  [[nodiscard]] const U& get() const {
    assert(ready() && "async::future::get before resolution");
    if (state_->exception) std::rethrow_exception(state_->exception);
    return *state_->value;
  }
  template <class U = T>
    requires(std::is_void_v<U>)
  void get() const {
    assert(ready() && "async::future::get before resolution");
    if (state_->exception) std::rethrow_exception(state_->exception);
  }

  /// Attach a continuation; returns the future of its result. `f` takes
  /// the resolved value (nothing for future<>) and may return a plain
  /// value, void, or another future (unwrapped). An exceptional input
  /// future propagates its exception to the result WITHOUT invoking `f`.
  template <class F>
  auto then(F f) const {
    using Raw = detail::then_raw_t<F, T>;
    using R = typename detail::unwrap<Raw>::type;
    assert(valid() && "async::future::then on an invalid future");
    promise<R> next = state_->engine != nullptr ? promise<R>(*state_->engine)
                                                : promise<R>();
    future<R> result = next.get_future();
    state_->attach(
        [state = state_, f = std::move(f), next = std::move(next)]() mutable {
          if (state->exception) {
            next.set_exception(state->exception);
            return;
          }
          try {
            if constexpr (detail::is_future<Raw>::value) {
              // f returned a future: chain the result promise onto it.
              auto inner = [&] {
                if constexpr (std::is_void_v<T>) {
                  return f();
                } else {
                  return f(*state->value);
                }
              }();
              inner.forward_into(std::move(next));
            } else if constexpr (std::is_void_v<Raw>) {
              if constexpr (std::is_void_v<T>) {
                f();
              } else {
                f(*state->value);
              }
              next.set_value();
            } else {
              if constexpr (std::is_void_v<T>) {
                next.set_value(f());
              } else {
                next.set_value(f(*state->value));
              }
            }
          } catch (...) {
            next.set_exception(std::current_exception());
          }
        });
    return result;
  }

  /// Awaitable resolution (the upc_waitsync analogue): suspends the
  /// awaiting coroutine until the future resolves, then yields the value
  /// or rethrows. Identical spelling to sim::Future so call sites migrate
  /// without edits: `co_await fut.wait()`.
  [[nodiscard]] auto wait() const {
    struct Awaiter {
      std::shared_ptr<detail::State<T>> state;
      bool await_ready() const noexcept { return !state || state->ready; }
      void await_suspend(std::coroutine_handle<> h) {
        state->attach([h] { h.resume(); });
      }
      T await_resume() const {
        if (state && state->exception) std::rethrow_exception(state->exception);
        if constexpr (!std::is_void_v<T>) {
          return *state->value;
        }
      }
    };
    return Awaiter{state_};
  }

  /// `co_await fut` is shorthand for `co_await fut.wait()`.
  [[nodiscard]] auto operator co_await() const { return wait(); }

  /// Attach a callback invoked once this future resolves, value OR
  /// exception (the combinator primitive: then() skips continuations of
  /// exceptional futures, finally() never does). Returns void — inspect
  /// the future inside the callback.
  template <class F>
  void finally(F f) const {
    assert(valid() && "async::future::finally on an invalid future");
    state_->attach(std::move(f));
  }

  /// Forward this future's eventual resolution into `p` (chain collapse
  /// for future-returning then() continuations).
  void forward_into(promise<T> p) const {
    assert(valid());
    state_->attach([state = state_, p = std::move(p)]() mutable {
      if (state->exception) {
        p.set_exception(state->exception);
      } else if constexpr (std::is_void_v<T>) {
        p.set_value();
      } else {
        p.set_value(*state->value);
      }
    });
  }

 private:
  friend class promise<T>;
  explicit future(std::shared_ptr<detail::State<T>> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::State<T>> state_;
};

template <class T = void>
class promise {
 public:
  /// Engine-less promise: callbacks run inline (tests, ready futures).
  promise() : state_(std::make_shared<detail::State<T>>()) {}
  /// Engine-backed promise: callbacks defer as same-instant events.
  explicit promise(sim::Engine& engine) : promise() {
    state_->engine = &engine;
  }

  [[nodiscard]] future<T> get_future() const { return future<T>(state_); }

  template <class U = T>
    requires(!std::is_void_v<U>)
  void set_value(U value) {
    state_->value = std::move(value);
    state_->resolve();
  }
  template <class U = T>
    requires(std::is_void_v<U>)
  void set_value() {
    state_->resolve();
  }
  void set_exception(std::exception_ptr e) {
    state_->exception = std::move(e);
    state_->resolve();
  }

 private:
  std::shared_ptr<detail::State<T>> state_;
};

/// An already-resolved future (engine-less: continuations run inline).
template <class T>
[[nodiscard]] future<std::decay_t<T>> make_ready_future(T&& value) {
  promise<std::decay_t<T>> p;
  p.set_value(std::forward<T>(value));
  return p.get_future();
}
[[nodiscard]] inline future<> make_ready_future() {
  promise<> p;
  p.set_value();
  return p.get_future();
}

namespace detail {

/// Gather node shared by the when_all overloads: counts arrivals (via
/// finally, so exceptional inputs count too) and settles the result once
/// every input resolved. The LOWEST-INDEX exception wins, making the
/// outcome invariant under completion-order shuffles.
template <class T, class Result>
struct Gather {
  promise<Result> result;
  std::vector<future<T>> inputs;
  std::size_t remaining = 0;

  void arrive() {
    if (--remaining > 0) return;
    for (auto& f : inputs) {
      if (f.failed()) {
        try {
          f.get();
        } catch (...) {
          result.set_exception(std::current_exception());
          return;
        }
      }
    }
    if constexpr (std::is_void_v<T>) {
      result.set_value();
    } else {
      Result values;
      values.reserve(inputs.size());
      for (auto& f : inputs) values.push_back(f.get());
      result.set_value(std::move(values));
    }
  }
};

}  // namespace detail

/// Resolve after every input future, collecting values in INPUT order (so
/// the result is invariant under completion-order shuffles — the property
/// async_future_test sweeps). Exceptions: the LOWEST-INDEX exceptional
/// input wins, again independent of completion order. An empty vector
/// yields an immediately-ready result.
template <class T>
[[nodiscard]] future<std::vector<T>> when_all(std::vector<future<T>> futures) {
  auto g = std::make_shared<detail::Gather<T, std::vector<T>>>();
  g->inputs = std::move(futures);
  g->remaining = g->inputs.size();
  future<std::vector<T>> out = g->result.get_future();
  if (g->inputs.empty()) {
    g->result.set_value({});
    return out;
  }
  for (auto& f : g->inputs) {
    f.finally([g] { g->arrive(); });
  }
  return out;
}

/// when_all over void futures: resolves once all inputs resolved; the
/// lowest-index exception (if any) propagates.
[[nodiscard]] inline future<> when_all(std::vector<future<>> futures) {
  auto g = std::make_shared<detail::Gather<void, void>>();
  g->inputs = std::move(futures);
  g->remaining = g->inputs.size();
  future<> out = g->result.get_future();
  if (g->inputs.empty()) {
    g->result.set_value();
    return out;
  }
  for (auto& f : g->inputs) {
    f.finally([g] { g->arrive(); });
  }
  return out;
}

}  // namespace hupc::async
