// The UTS steal-stack (thesis §3.3.2): a per-thread work deque living in
// that thread's shared space. The owner works depth-first on a private
// portion (lock-free pushes/pops at the top); surplus work is released to a
// lock-protected shared portion, from which thieves steal the oldest items
// (closest to the root — the largest subtrees).
//
// All remote interactions charge realistic costs: the lock is a
// gas::GlobalLock (cheap within the supernode, an RTT across nodes) and the
// stolen payload moves via the runtime copy paths.
#pragma once

#include <deque>
#include <vector>

#include "gas/gas.hpp"
#include "sim/sim.hpp"
#include "trace/trace.hpp"

namespace hupc::sched {

template <class T>
class StealStack {
 public:
  StealStack(gas::Runtime& rt, int owner, int chunk)
      : rt_(&rt),
        owner_(owner),
        chunk_(chunk),
        lock_(rt, owner),
        // The shared portion's size lives at a real shared address so
        // thief probes have a line to cache (shared_probe_cost with an
        // address); kept in sync host-side on every mutation, free.
        count_(rt.heap().alloc<std::uint64_t>(owner, 1)) {
    *count_.raw = 0;
  }

  [[nodiscard]] int owner() const noexcept { return owner_; }
  [[nodiscard]] int chunk() const noexcept { return chunk_; }

  // --- owner-side (private portion; no lock) ----------------------------
  void push(T item) { local_.push_back(std::move(item)); }
  [[nodiscard]] bool pop(T& out) {
    if (local_.empty()) return false;
    out = std::move(local_.back());
    local_.pop_back();
    return true;
  }
  [[nodiscard]] std::size_t local_count() const noexcept { return local_.size(); }

  /// Owner moves one chunk from the private to the shared portion when the
  /// private portion holds at least two chunks (keeps one for itself).
  [[nodiscard]] sim::Task<void> maybe_release(gas::Thread& self) {
    if (local_.size() < 2 * static_cast<std::size_t>(chunk_)) co_return;
    HUPC_TRACE_COUNT(rt_->tracer(), "sched.release", self.rank());
    co_await lock_.acquire(self);
    for (int i = 0; i < chunk_; ++i) {
      shared_.push_back(std::move(local_.front()));
      local_.pop_front();
    }
    sync_count();
    ++releases_;
    co_await lock_.release(self);
  }

  /// Owner pulls work back from its own shared portion (cheap local lock).
  [[nodiscard]] sim::Task<bool> reacquire(gas::Thread& self) {
    if (shared_.empty()) co_return false;
    co_await lock_.acquire(self);
    bool got = false;
    const int take = static_cast<int>(
        std::min<std::size_t>(shared_.size(), static_cast<std::size_t>(chunk_)));
    for (int i = 0; i < take; ++i) {
      local_.push_back(std::move(shared_.back()));
      shared_.pop_back();
      got = true;
    }
    sync_count();
    co_await lock_.release(self);
    co_return got;
  }

  // --- thief-side --------------------------------------------------------
  /// Remote metadata probe: how much stealable work is visible? Charges a
  /// fine-grained shared read of the owner's count cell from the thief's
  /// position; inside a read-cache epoch repeated probes of the same
  /// victim hit the cached line (invalidated again by the thief's own
  /// lock acquires and bulk steals).
  [[nodiscard]] sim::Task<std::size_t> probe(gas::Thread& thief) {
    co_await thief.shared_probe_cost(owner_, count_.raw);
    co_return shared_.size();
  }

  /// Steal up to `granularity` items — or half of the shared portion when
  /// `steal_half` (rapid diffusion) and at least two chunks are available.
  /// The payload transfer is charged at `bytes_per_item`.
  /// `test_split_off_by_one` plants a deliberate boundary bug in the
  /// diffusion split (the boundary item lands on both sides) — a fuzzer
  /// validation target only, never enable outside tests.
  [[nodiscard]] sim::Task<std::size_t> steal(gas::Thread& thief,
                                             std::vector<T>& out,
                                             int granularity, bool steal_half,
                                             double bytes_per_item,
                                             bool test_split_off_by_one = false) {
    co_await lock_.acquire(thief);
    std::size_t take = std::min<std::size_t>(
        shared_.size(), static_cast<std::size_t>(granularity));
    bool diffused = false;
    if (steal_half && shared_.size() >= 2 * static_cast<std::size_t>(chunk_)) {
      take = shared_.size() / 2;
      diffused = true;
      // Rapid diffusion fired: the thief walks away with half the surplus.
      HUPC_TRACE_INSTANT(rt_->tracer(), trace::Category::sched, "diffusion",
                         thief.rank(), take,
                         static_cast<std::uint64_t>(owner_));
      HUPC_TRACE_COUNT(rt_->tracer(), "sched.diffusion.split", thief.rank());
    }
    if (take > 0) {
      // One bulk transfer for the stolen items.
      co_await thief.copy_raw(owner_, nullptr, nullptr,
                              static_cast<std::size_t>(
                                  static_cast<double>(take) * bytes_per_item));
      for (std::size_t i = 0; i < take; ++i) {
        out.push_back(std::move(shared_.front()));
        shared_.pop_front();
      }
      sync_count();
      if (diffused && test_split_off_by_one) {
        // Planted bug: the split boundary is copied instead of moved, so
        // the boundary item is now owned by both sides of the split.
        out.push_back(out.back());
      }
    }
    co_await lock_.release(thief);
    co_return take;
  }

  [[nodiscard]] std::size_t shared_count() const noexcept {
    return shared_.size();
  }
  [[nodiscard]] std::uint64_t releases() const noexcept { return releases_; }

 private:
  void sync_count() noexcept { *count_.raw = shared_.size(); }

  gas::Runtime* rt_;
  int owner_;
  int chunk_;
  gas::GlobalLock lock_;
  gas::GlobalPtr<std::uint64_t> count_;
  std::deque<T> local_;
  std::deque<T> shared_;
  std::uint64_t releases_ = 0;
};

}  // namespace hupc::sched
