// The parallel work-stealing engine driving UTS (thesis §3.3.2).
//
// Every rank runs the Fig 3.2 state machine:
//
//     Working -> (stack empty) -> Local Work Discovery -> Local Work
//     Stealing -> (failed) -> Remote Work Discovery -> Remote Work
//     Stealing -> (failed) -> back off / terminate
//
// Victim policies:
//   random      — the original benchmark: victims drawn uniformly from all
//                 ranks (locality-oblivious);
//   local_first — the thesis optimization: prioritized discovery/stealing
//                 within the thief's shared-memory node team, falling back
//                 to remote victims only when no local work exists.
// Rapid diffusion (steal-half above a threshold) composes with either.
//
// Termination uses an exact outstanding-work counter (single-threaded
// simulator, so it is race-free): items are counted when pushed and
// decremented when fully processed; zero outstanding means the whole tree
// is exhausted.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "comm/coalescer.hpp"
#include "comm/read_cache.hpp"
#include "fault/hooks.hpp"
#include "gas/gas.hpp"
#include "sched/steal_stack.hpp"
#include "sim/sim.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace hupc::sched {

enum class VictimPolicy { random, local_first };

struct StealParams {
  VictimPolicy policy = VictimPolicy::random;
  bool rapid_diffusion = false;
  int granularity = 8;        // items per steal (thesis: 8 on IB, 20 on Eth)
  int chunk = 8;              // release chunk of the steal stacks
  double item_cost_s = 0.5e-6;   // compute per item (~2 Mnodes/s/core)
  double bytes_per_item = 24.0;  // payload per stolen item
  int batch = 64;                // items processed per virtual-time charge
  std::uint64_t seed = 0x5EED;
  /// Run each discovery sweep's remote probe reads inside a coalescing
  /// epoch: the 8-byte work-counter peeks at every victim on one node
  /// aggregate into a single metadata message instead of one API call per
  /// probe. The epoch always closes before an actual steal transfer, so
  /// stolen payloads still ship on the bulk path.
  bool coalesce_probes = false;
  comm::Params coalesce{};
  /// Serve the discovery sweeps' probe reads through a read-cache epoch
  /// held open for the whole run(): re-probing a victim whose count line
  /// is still cached costs a local access instead of a round trip. The
  /// thief's own lock acquires and bulk steal transfers invalidate its
  /// cache, so every successful steal re-fetches fresh counts. Composes
  /// with coalesce_probes (the cache is consulted first).
  bool cache_probes = false;
  comm::CacheParams cache{};
  /// Test-only: plant an off-by-one in the rapid-diffusion split (the
  /// boundary item is duplicated across the split). Exists so fuzz tests
  /// can prove fault::Fuzzer catches real conservation bugs; never enable
  /// outside tests.
  bool test_split_off_by_one = false;
};

struct RankStats {
  std::uint64_t processed = 0;
  std::uint64_t local_steals = 0;
  std::uint64_t remote_steals = 0;
  std::uint64_t failed_probes = 0;
  std::uint64_t releases = 0;
};

template <class T>
class WorkStealing {
 public:
  /// `process(item, emit)` does the real per-item work and appends any
  /// generated child items to `emit`.
  using Process = std::function<void(const T&, std::vector<T>&)>;

  WorkStealing(gas::Runtime& rt, StealParams params, Process process)
      : rt_(&rt),
        params_(params),
        process_(std::move(process)),
        steal_fault_(rt.fault_hooks().steal) {
    stacks_.reserve(static_cast<std::size_t>(rt.threads()));
    for (int r = 0; r < rt.threads(); ++r) {
      stacks_.push_back(
          std::make_unique<StealStack<T>>(rt, r, params_.chunk));
    }
    stats_.resize(static_cast<std::size_t>(rt.threads()));
  }

  /// Seed rank `rank`'s stack before the run (typically the root at rank 0).
  void seed_work(int rank, std::vector<T> items) {
    outstanding_ += static_cast<std::int64_t>(items.size());
    for (auto& item : items) {
      stacks_[static_cast<std::size_t>(rank)]->push(std::move(item));
    }
  }

  /// The SPMD kernel body: call from every rank, co_await to completion.
  [[nodiscard]] sim::Task<void> run(gas::Thread& self) {
    const int me = self.rank();
    auto& stack = *stacks_[static_cast<std::size_t>(me)];
    auto& stats = stats_[static_cast<std::size_t>(me)];
    util::Xoshiro256ss rng(params_.seed ^
                           (0x9E3779B97F4A7C15ULL * (me + 1)));
    std::vector<T> children;
    sim::Time backoff = 2 * sim::kMicrosecond;
    // One epoch spans the whole state machine: coherence events inside
    // (locks, bulk steals) invalidate as they happen, and the guard's
    // destructor closes the epoch on every exit path, including unwinds.
    std::optional<gas::CachedEpoch> cache_epoch;
    if (params_.cache_probes) cache_epoch.emplace(self, params_.cache);

    while (outstanding_ > 0) {
      // --- Working ------------------------------------------------------
      if (stack.local_count() > 0) {
        HUPC_TRACE_SCOPE(rt_->tracer(), trace::Category::sched, "work", me);
        int done = 0;
        T item;
        while (done < params_.batch && stack.pop(item)) {
          children.clear();
          process_(item, children);
          for (auto& c : children) stack.push(std::move(c));
          outstanding_ += static_cast<std::int64_t>(children.size()) - 1;
          ++done;
        }
        stats.processed += static_cast<std::uint64_t>(done);
        HUPC_TRACE_COUNT(rt_->tracer(), "sched.processed", me,
                         static_cast<std::uint64_t>(done));
        co_await self.compute(params_.item_cost_s * done);
        co_await stack.maybe_release(self);
        backoff = 2 * sim::kMicrosecond;
        continue;
      }
      // --- Local reacquire (own shared portion) --------------------------
      if (co_await stack.reacquire(self)) continue;
      // --- Discovery + stealing per policy -------------------------------
      if (co_await try_steal(self, rng, stats)) {
        backoff = 2 * sim::kMicrosecond;
        continue;
      }
      if (outstanding_ <= 0) break;
      HUPC_TRACE_COUNT(rt_->tracer(), "sched.backoff", me);
      co_await sim::delay(rt_->engine(), backoff);
      backoff = std::min<sim::Time>(backoff * 2, 100 * sim::kMicrosecond);
    }
    HUPC_TRACE_INSTANT(rt_->tracer(), trace::Category::sched, "terminate", me,
                       stats.processed);
    HUPC_TRACE_COUNT(rt_->tracer(), "sched.terminated", me);
    co_return;
  }

  [[nodiscard]] const RankStats& stats(int rank) const {
    return stats_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::uint64_t total_processed() const {
    std::uint64_t total = 0;
    for (const auto& s : stats_) total += s.processed;
    return total;
  }
  [[nodiscard]] double local_steal_ratio() const {
    std::uint64_t local = 0, all = 0;
    for (const auto& s : stats_) {
      local += s.local_steals;
      all += s.local_steals + s.remote_steals;
    }
    return all == 0 ? 0.0 : static_cast<double>(local) / static_cast<double>(all);
  }
  [[nodiscard]] StealStack<T>& stack(int rank) {
    return *stacks_[static_cast<std::size_t>(rank)];
  }
  /// Work-conservation counter: seeded + generated - fully processed. Zero
  /// after a clean run; nonzero (or stacks left non-empty) flags a lost or
  /// duplicated item — what fault::check_steal_conservation asserts on.
  [[nodiscard]] std::int64_t outstanding() const noexcept {
    return outstanding_;
  }

 private:
  /// One discovery sweep. Returns true if work was stolen.
  [[nodiscard]] sim::Task<bool> try_steal(gas::Thread& self,
                                          util::Xoshiro256ss& rng,
                                          RankStats& stats) {
    const int me = self.rank();
    const int nthreads = rt_->threads();
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(nthreads) - 1);
    if (params_.policy == VictimPolicy::local_first) {
      // Local candidates first (random order), then remote (random order).
      std::vector<int> local, remote;
      for (int r = 0; r < nthreads; ++r) {
        if (r == me) continue;
        (rt_->node_of(r) == rt_->node_of(me) ? local : remote).push_back(r);
      }
      shuffle(local, rng);
      shuffle(remote, rng);
      order.insert(order.end(), local.begin(), local.end());
      order.insert(order.end(), remote.begin(), remote.end());
    } else {
      for (int r = 0; r < nthreads; ++r) {
        if (r != me) order.push_back(r);
      }
      shuffle(order, rng);
    }

    std::vector<T> loot;
    if (params_.coalesce_probes) self.begin_coalesce(params_.coalesce);
    for (int victim : order) {
      const bool victim_local = rt_->node_of(victim) == rt_->node_of(me);
      auto& vstack = *stacks_[static_cast<std::size_t>(victim)];
      HUPC_TRACE_COUNT(rt_->tracer(), "sched.steal.attempt", me);
      // Fault injection: a transient steal failure (contention storm) makes
      // the victim look empty without even probing.
      if (steal_fault_ != nullptr && steal_fault_->fail_steal(me, victim)) {
        ++stats.failed_probes;
        HUPC_TRACE_COUNT(rt_->tracer(), "fault.steal.fail", me);
        HUPC_TRACE_COUNT(rt_->tracer(), "sched.steal.fail", me);
        continue;
      }
      const std::size_t visible = co_await vstack.probe(self);
      if (visible == 0) {
        ++stats.failed_probes;
        HUPC_TRACE_COUNT(rt_->tracer(), "sched.steal.fail", me);
        continue;
      }
      // Close the epoch before the steal itself: the stolen payload is a
      // bulk transfer and must not queue behind buffered probe charges.
      if (params_.coalesce_probes) co_await self.end_coalesce();
      const std::size_t got = co_await vstack.steal(
          self, loot, params_.granularity, params_.rapid_diffusion,
          params_.bytes_per_item, params_.test_split_off_by_one);
      if (got > 0) {
        auto& mine = *stacks_[static_cast<std::size_t>(me)];
        for (auto& item : loot) mine.push(std::move(item));
        // a0 = victim chosen, a1 = items stolen.
        HUPC_TRACE_INSTANT(rt_->tracer(), trace::Category::sched, "steal", me,
                           static_cast<std::uint64_t>(victim), got);
        HUPC_TRACE_COUNT(rt_->tracer(), "sched.steal.success", me);
        HUPC_TRACE_COUNT(rt_->tracer(),
                         victim_local ? "sched.steal.local"
                                      : "sched.steal.remote",
                         me);
        if (victim_local) {
          ++stats.local_steals;
        } else {
          ++stats.remote_steals;
        }
        stats.releases = stacks_[static_cast<std::size_t>(me)]->releases();
        co_return true;
      }
      ++stats.failed_probes;
      HUPC_TRACE_COUNT(rt_->tracer(), "sched.steal.fail", me);
      // The failed steal closed the epoch; reopen for the remaining probes.
      if (params_.coalesce_probes) self.begin_coalesce(params_.coalesce);
    }
    if (params_.coalesce_probes) co_await self.end_coalesce();
    co_return false;
  }

  static void shuffle(std::vector<int>& v, util::Xoshiro256ss& rng) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[rng.below(i)]);
    }
  }

  gas::Runtime* rt_;
  StealParams params_;
  Process process_;
  fault::StealHook* steal_fault_;
  std::vector<std::unique_ptr<StealStack<T>>> stacks_;
  std::vector<RankStats> stats_;
  std::int64_t outstanding_ = 0;
};

}  // namespace hupc::sched
