// RandomAccess (HPCC GUPS) — the second thread-group application class the
// thesis names (§4.4: "the thread group approach would fit better in these
// cases, such as UTS, Random Access, etc.").
//
// A power-of-two table of 64-bit words is block-distributed over UPC
// threads; each thread performs `updates` read-xor-write operations at
// pseudo-random global indices (the HPCC LCG sequence).
//
// Variants:
//   naive    — every update is a fine-grained remote AMO: latency-bound,
//              THREADS x updates round trips;
//   grouped  — the thread-group optimization: updates destined for the
//              local supernode apply through privatized pointers; remote
//              updates are bucketed per target node and shipped in bulk to
//              a proxy member that applies them locally;
//   coalesced — the same fine-grained program as naive, run inside a
//              comm::Coalescer epoch: the runtime aggregates per
//              destination node transparently, amortizing the per-message
//              API cost without restructuring the application loop.
//
// A read-dominated companion workload (run_gather) reads random bursts of
// CONSECUTIVE table elements instead of updating random single words —
// the access shape where fine-grained UPC gets lose hardest to per-access
// latency, and where the runtime's read cache (comm::ReadCache, epoch
// opened when GatherParams::cached is set) collapses each remote burst to
// one line fill per cache line instead of one round trip per element.
//
// Verification follows HPCC: applying the same update stream twice must
// restore the table to its initial contents (xor is an involution); the
// gather variant xor-folds every value read into an order-independent
// checksum that must be identical with the cache on and off.
#pragma once

#include <cstdint>

#include "comm/coalescer.hpp"
#include "comm/read_cache.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"

namespace hupc::stream {

enum class GupsVariant { naive, grouped, coalesced };

struct GupsResult {
  double seconds = 0;
  double gups = 0;  // giga-updates per second
  std::uint64_t updates = 0;
  std::uint64_t local = 0;   // applied through privatized pointers
  std::uint64_t remote = 0;  // fine-grained AMOs or bucketed shipments
};

/// The read-dominated gather workload: every rank reads `bursts` random
/// bursts of `burst_len` consecutive table elements per pass.
struct GatherParams {
  std::uint64_t bursts = 32;
  std::uint64_t burst_len = 64;
  int passes = 1;
  /// Serve remote gets through a read-cache epoch (comm::ReadCache).
  bool cached = false;
  comm::CacheParams cache{};
  std::uint64_t seed = 0x9A7E5ULL;
};

struct GatherResult {
  double seconds = 0;
  double mreads = 0;  // million reads per second
  std::uint64_t reads = 0;
  std::uint64_t remote = 0;    // reads of non-castable (off-supernode) data
  std::uint64_t checksum = 0;  // xor-fold of every value read; cache-invariant
};

class RandomAccess {
 public:
  /// `log2_table`: total table size is 2^log2_table words, distributed with
  /// equal blocks (THREADS must divide the table size).
  RandomAccess(gas::Runtime& rt, int log2_table);

  /// Run `updates_per_thread` updates on every rank; `passes` repetitions
  /// of the same stream (2 passes restore the table — verification).
  /// `coalesce` tunes the aggregation buffers of the coalesced variant and
  /// is ignored by the other two.
  [[nodiscard]] GupsResult run(GupsVariant variant,
                               std::uint64_t updates_per_thread,
                               int passes = 1,
                               const comm::Params& coalesce = {});

  /// Run the read-dominated gather workload (one use per Runtime, like
  /// run()). The checksum depends only on the table contents and the
  /// gather stream — never on GatherParams::cached, which changes the
  /// modeled cost schedule and nothing else.
  [[nodiscard]] GatherResult run_gather(const GatherParams& params = {});

  /// True when the table equals its initial contents (HPCC verification).
  [[nodiscard]] bool verify() const;

  [[nodiscard]] const gas::SharedArray<std::uint64_t>& table() const {
    return table_;
  }

  /// The HPCC RandomAccess pseudo-random sequence: x <- (x << 1) ^ (poly
  /// if the shifted-out bit was set), seeded per starting position.
  [[nodiscard]] static std::uint64_t hpcc_next(std::uint64_t x) {
    return (x << 1) ^ (static_cast<std::int64_t>(x) < 0 ? 0x7ULL : 0ULL);
  }

 private:
  gas::Runtime* rt_;
  int log2_table_;
  std::uint64_t mask_;
  gas::SharedArray<std::uint64_t> table_;
};

}  // namespace hupc::stream
