// RandomAccess (HPCC GUPS) — the second thread-group application class the
// thesis names (§4.4: "the thread group approach would fit better in these
// cases, such as UTS, Random Access, etc.").
//
// A power-of-two table of 64-bit words is block-distributed over UPC
// threads; each thread performs `updates` read-xor-write operations at
// pseudo-random global indices (the HPCC LCG sequence).
//
// Variants:
//   naive    — every update is a fine-grained remote AMO: latency-bound,
//              THREADS x updates round trips;
//   grouped  — the thread-group optimization: updates destined for the
//              local supernode apply through privatized pointers; remote
//              updates are bucketed per target node and shipped in bulk to
//              a proxy member that applies them locally;
//   coalesced — the same fine-grained program as naive, run inside a
//              comm::Coalescer epoch: the runtime aggregates per
//              destination node transparently, amortizing the per-message
//              API cost without restructuring the application loop.
//
// Verification follows HPCC: applying the same update stream twice must
// restore the table to its initial contents (xor is an involution).
#pragma once

#include <cstdint>

#include "comm/coalescer.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"

namespace hupc::stream {

enum class GupsVariant { naive, grouped, coalesced };

struct GupsResult {
  double seconds = 0;
  double gups = 0;  // giga-updates per second
  std::uint64_t updates = 0;
  std::uint64_t local = 0;   // applied through privatized pointers
  std::uint64_t remote = 0;  // fine-grained AMOs or bucketed shipments
};

class RandomAccess {
 public:
  /// `log2_table`: total table size is 2^log2_table words, distributed with
  /// equal blocks (THREADS must divide the table size).
  RandomAccess(gas::Runtime& rt, int log2_table);

  /// Run `updates_per_thread` updates on every rank; `passes` repetitions
  /// of the same stream (2 passes restore the table — verification).
  /// `coalesce` tunes the aggregation buffers of the coalesced variant and
  /// is ignored by the other two.
  [[nodiscard]] GupsResult run(GupsVariant variant,
                               std::uint64_t updates_per_thread,
                               int passes = 1,
                               const comm::Params& coalesce = {});

  /// True when the table equals its initial contents (HPCC verification).
  [[nodiscard]] bool verify() const;

  [[nodiscard]] const gas::SharedArray<std::uint64_t>& table() const {
    return table_;
  }

  /// The HPCC RandomAccess pseudo-random sequence: x <- (x << 1) ^ (poly
  /// if the shifted-out bit was set), seeded per starting position.
  [[nodiscard]] static std::uint64_t hpcc_next(std::uint64_t x) {
    return (x << 1) ^ (static_cast<std::int64_t>(x) < 0 ? 0x7ULL : 0ULL);
  }

 private:
  gas::Runtime* rt_;
  int log2_table_;
  std::uint64_t mask_;
  gas::SharedArray<std::uint64_t> table_;
};

}  // namespace hupc::stream
