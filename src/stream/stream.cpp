#include "stream/stream.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>

namespace hupc::stream {

namespace {
constexpr double kTriadBytesPerElement = 24.0;  // read b, read c, write a
}

TriadResult twisted_triad(gas::Runtime& rt, std::size_t elements_per_thread,
                          TriadVariant variant) {
  if (rt.nodes_used() != 1) {
    throw std::invalid_argument("twisted_triad: single-node study");
  }
  if (rt.threads() % 2 != 0) {
    throw std::invalid_argument("twisted_triad: even thread count required");
  }
  const double n = static_cast<double>(elements_per_thread);

  rt.spmd([&rt, n, variant](gas::Thread& t) -> sim::Task<void> {
    const int partner = t.rank() ^ 1;
    auto& mem = rt.memory();
    co_await t.barrier();
    switch (variant) {
      case TriadVariant::upc_baseline: {
        // One un-privatized shared access per element (the remote operand;
        // Berkeley's translator privatizes provably-local accesses): the
        // translation overhead serializes with the memory stream.
        co_await t.shared_loop(partner, static_cast<std::uint64_t>(n),
                               kTriadBytesPerElement, /*privatized=*/false);
        break;
      }
      case TriadVariant::upc_relocalize: {
        // Bulk-copy the partner's b and c slices into private buffers
        // (upc_memget), then run the triad locally at full speed.
        co_await t.copy_raw(partner, nullptr, nullptr,
                            static_cast<std::size_t>(16.0 * n));
        co_await t.stream_local(kTriadBytesPerElement * n);
        break;
      }
      case TriadVariant::upc_cast:
      case TriadVariant::openmp: {
        // Plain loads/stores: reads stream from the partner's socket,
        // writes to the local one, overlapped (hardware prefetch).
        auto reads = mem.stream_async(t.loc(), rt.loc_of(partner), 16.0 * n);
        auto writes = mem.stream_async(t.loc(), t.loc(), 8.0 * n);
        co_await reads.wait();
        co_await writes.wait();
        break;
      }
    }
    co_await t.barrier();
  });
  rt.run_to_completion();

  TriadResult res;
  res.seconds = sim::to_seconds(rt.engine().now());
  const double total_bytes =
      kTriadBytesPerElement * n * static_cast<double>(rt.threads());
  res.gbytes_per_s = total_bytes / res.seconds / 1e9;
  return res;
}

TriadResult hybrid_triad(gas::Runtime& rt, std::size_t elements_per_thread,
                         int subs, core::SubModel model) {
  const double n = static_cast<double>(elements_per_thread);

  rt.spmd([n, subs, model](gas::Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    if (subs <= 1) {
      co_await t.stream_local(kTriadBytesPerElement * n);
    } else {
      core::SubPool pool(t, subs, model);
      const double share = kTriadBytesPerElement * n / subs;
      co_await pool.parallel_for(
          static_cast<std::size_t>(subs), core::Schedule::static_chunks,
          [share](core::SubContext& c, std::size_t lo,
                  std::size_t hi) -> sim::Task<void> {
            co_await c.stream_master_data(share * static_cast<double>(hi - lo));
          });
    }
    co_await t.barrier();
  });
  rt.run_to_completion();

  TriadResult res;
  res.seconds = sim::to_seconds(rt.engine().now());
  const double total_bytes =
      kTriadBytesPerElement * n * static_cast<double>(rt.threads());
  res.gbytes_per_s = total_bytes / res.seconds / 1e9;
  return res;
}

}  // namespace hupc::stream
