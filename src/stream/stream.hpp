// STREAM triad study (thesis §3.3.1 Table 3.1 and §4.3.2 Table 4.1).
//
// The "twisted" triad gives every thread an odd/even-exchange access
// pattern: thread 2k reads its data from thread 2k+1's shared slice and
// vice versa — harmless for a shared-memory model, catastrophic for UPC
// when every access drags a shared-pointer translation along.
//
// Variants (Table 3.1):
//   upc_baseline       — fine-grained shared accesses, translation per
//                        element;
//   upc_relocalize     — bulk upc_memget of the partner slices into private
//                        buffers, then a local triad;
//   upc_cast           — pointer privatization via the castability
//                        extension: plain loads/stores;
//   openmp             — the shared-memory reference (no translation).
//
// The hybrid placement study (Table 4.1) runs the plain triad under
// UPC x sub-thread configurations with socket-aware binding.
#pragma once

#include <cstddef>

#include "core/core.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"

namespace hupc::stream {

enum class TriadVariant { upc_baseline, upc_relocalize, upc_cast, openmp };

struct TriadResult {
  double seconds = 0;
  double gbytes_per_s = 0;  // triad bytes moved (24 B/element) over time
};

/// Twisted triad over `elements_per_thread` doubles per rank; returns the
/// aggregate throughput. Must be run on a single-node runtime (the twisted
/// pattern pairs adjacent ranks).
[[nodiscard]] TriadResult twisted_triad(gas::Runtime& rt,
                                        std::size_t elements_per_thread,
                                        TriadVariant variant);

/// Plain (local-data) triad under UPC x sub-thread execution: every master
/// first-touches its arrays (home = the master's socket) and `subs`
/// sub-threads stream them. Masters are socket-bound by the runtime's
/// placement; sub-threads inherit the master's socket — so a 1x8
/// configuration funnels all traffic through one socket (Table 4.1's
/// 13.9 GB/s collapse) while 2x4 and 4x2 use both.
[[nodiscard]] TriadResult hybrid_triad(gas::Runtime& rt,
                                       std::size_t elements_per_thread,
                                       int subs, core::SubModel model);

}  // namespace hupc::stream
