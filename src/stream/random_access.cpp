#include "stream/random_access.hpp"

#include <cassert>
#include <optional>
#include <stdexcept>
#include <vector>

namespace hupc::stream {

RandomAccess::RandomAccess(gas::Runtime& rt, int log2_table)
    : rt_(&rt), log2_table_(log2_table) {
  const std::uint64_t size = 1ULL << log2_table_;
  mask_ = size - 1;
  if (size % static_cast<std::uint64_t>(rt.threads()) != 0) {
    throw std::invalid_argument("RandomAccess: THREADS must divide 2^m");
  }
  const std::uint64_t block = size / static_cast<std::uint64_t>(rt.threads());
  table_ = rt.heap().all_alloc<std::uint64_t>(size, block);
  for (std::uint64_t i = 0; i < size; ++i) *table_.at(i).raw = i;
}

GatherResult RandomAccess::run_gather(const GatherParams& params) {
  auto& rt = *rt_;
  GatherResult result;
  result.reads = params.bursts * params.burst_len *
                 static_cast<std::uint64_t>(rt.threads()) *
                 static_cast<std::uint64_t>(params.passes);

  std::uint64_t remote_total = 0, checksum = 0;

  rt.spmd([&, params](gas::Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    // The epoch (if any) spans every pass; barriers inside would fence it,
    // and the guard's destructor closes it on any unwind.
    std::optional<gas::CachedEpoch> epoch;
    if (params.cached) epoch.emplace(t, params.cache);
    std::uint64_t x =
        params.seed + 0x9E3779B97F4A7C15ULL *
                          static_cast<std::uint64_t>(t.rank() + 1);
    std::uint64_t sum = 0;
    for (int pass = 0; pass < params.passes; ++pass) {
      for (std::uint64_t b = 0; b < params.bursts; ++b) {
        x = hpcc_next(x);
        const std::uint64_t start = x & mask_;
        for (std::uint64_t k = 0; k < params.burst_len; ++k) {
          const std::uint64_t idx = (start + k) & mask_;
          if (!t.castable(table_.owner_of(idx))) ++remote_total;
          sum ^= co_await t.get(table_.at(idx));
        }
      }
    }
    checksum ^= sum;  // xor-fold: order-independent across ranks
    if (epoch) epoch->end();
    co_await t.barrier();
  });
  rt.run_to_completion();

  result.seconds = sim::to_seconds(rt.engine().now());
  result.mreads = static_cast<double>(result.reads) / result.seconds / 1e6;
  result.remote = remote_total;
  result.checksum = checksum;
  return result;
}

bool RandomAccess::verify() const {
  for (std::uint64_t i = 0; i <= mask_; ++i) {
    if (*table_.at(i).raw != i) return false;
  }
  return true;
}

GupsResult RandomAccess::run(GupsVariant variant,
                             std::uint64_t updates_per_thread, int passes,
                             const comm::Params& coalesce) {
  auto& rt = *rt_;
  const int T = rt.threads();
  GupsResult result;
  result.updates =
      updates_per_thread * static_cast<std::uint64_t>(T) * passes;

  // Grouped variant staging: per-rank inbox with one slice per sender.
  // Expected fill per slice is 2*updates/T (u64 pairs); give each slice
  // 4x headroom plus a constant so Poisson variance never overflows.
  const std::uint64_t slot_cap =
      8 * updates_per_thread / static_cast<std::uint64_t>(T) + 128;
  std::vector<gas::GlobalPtr<std::uint64_t>> inbox;
  if (variant == GupsVariant::grouped) {
    inbox.reserve(static_cast<std::size_t>(T));
    for (int r = 0; r < T; ++r) {
      inbox.push_back(rt.heap().alloc<std::uint64_t>(
          r, static_cast<std::size_t>(slot_cap) *
                 static_cast<std::size_t>(T)));
    }
  }

  std::uint64_t local_total = 0, remote_total = 0;

  rt.spmd([&, updates_per_thread, passes, variant, coalesce](gas::Thread& t)
              -> sim::Task<void> {
    co_await t.barrier();
    for (int pass = 0; pass < passes; ++pass) {
      std::uint64_t x =
          0x123456789ULL + 0x9E3779B97F4A7C15ULL *
                               static_cast<std::uint64_t>(t.rank() + 1);
      if (variant != GupsVariant::grouped) {
        // Every update is a fine-grained shared AMO. The coalesced variant
        // runs the IDENTICAL loop inside an epoch: the runtime batches the
        // per-update network charges per destination node and the epoch end
        // (plus the trailing barrier) fences everything out.
        if (variant == GupsVariant::coalesced) t.begin_coalesce(coalesce);
        for (std::uint64_t u = 0; u < updates_per_thread; ++u) {
          x = hpcc_next(x);
          const std::uint64_t idx = x & mask_;
          if (t.castable(table_.owner_of(idx))) {
            ++local_total;
          } else {
            ++remote_total;
          }
          (void)co_await t.fetch_xor(table_.at(idx), x);
        }
        if (variant == GupsVariant::coalesced) co_await t.end_coalesce();
      } else {
        // Thread-group optimization: privatized local updates + bucketed
        // remote shipments applied by the owner.
        std::vector<std::vector<std::uint64_t>> buckets(
            static_cast<std::size_t>(t.threads()));
        std::uint64_t applied_locally = 0;
        for (std::uint64_t u = 0; u < updates_per_thread; ++u) {
          x = hpcc_next(x);
          const std::uint64_t idx = x & mask_;
          const int owner = table_.owner_of(idx);
          if (t.castable(owner)) {
            *t.cast(table_.at(idx)) ^= x;  // direct store
            ++applied_locally;
          } else {
            auto& b = buckets[static_cast<std::size_t>(owner)];
            b.push_back(idx);
            b.push_back(x);
          }
        }
        local_total += applied_locally;
        // Charge the local burst: ~a handful of ns per cache-missing xor.
        co_await t.compute(static_cast<double>(applied_locally) * 4e-9);
        co_await t.stream_local(static_cast<double>(applied_locally) * 16.0);

        // Ship each bucket into the owner's inbox slice for this sender.
        std::vector<async::future<>> pending;
        for (int owner = 0; owner < t.threads(); ++owner) {
          const auto& b = buckets[static_cast<std::size_t>(owner)];
          if (b.empty()) continue;
          remote_total += b.size() / 2;
          if (b.size() > slot_cap) {
            throw std::runtime_error("RandomAccess: inbox slot overflow");
          }
          auto dst = inbox[static_cast<std::size_t>(owner)] +
                     static_cast<std::ptrdiff_t>(
                         static_cast<std::uint64_t>(t.rank()) * slot_cap);
          pending.push_back(t.copy_async(dst, b.data(), b.size()));
        }
        for (auto& f : pending) co_await f.wait();
        co_await t.barrier();

        // Apply everything that landed in my inbox (senders wrote disjoint
        // slices; a zero value terminates each slice since x is never 0).
        std::uint64_t* mine = inbox[static_cast<std::size_t>(t.rank())].raw;
        std::uint64_t applied = 0;
        for (int sender = 0; sender < t.threads(); ++sender) {
          const std::uint64_t* slice =
              mine + static_cast<std::uint64_t>(sender) * slot_cap;
          for (std::uint64_t i = 0; i + 1 < slot_cap; i += 2) {
            if (slice[i + 1] == 0) break;
            *table_.at(slice[i]).raw ^= slice[i + 1];
            ++applied;
          }
        }
        co_await t.compute(static_cast<double>(applied) * 4e-9);
        co_await t.stream_local(static_cast<double>(applied) * 16.0);
        // Reset my inbox for the next pass.
        for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(t.threads()) *
                                          slot_cap;
             ++i) {
          mine[i] = 0;
        }
        co_await t.barrier();
      }
    }
    co_await t.barrier();
  });
  rt.run_to_completion();

  result.seconds = sim::to_seconds(rt.engine().now());
  result.gups = static_cast<double>(result.updates) / result.seconds / 1e9;
  result.local = local_total;
  result.remote = remote_total;
  return result;
}

}  // namespace hupc::stream
