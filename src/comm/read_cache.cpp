#include "comm/read_cache.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hupc::comm {

void ReadCache::configure(const CacheParams& params) {
  if (params.line_bytes == 0 ||
      (params.line_bytes & (params.line_bytes - 1)) != 0) {
    throw std::invalid_argument(
        "comm::CacheParams: line_bytes must be a power of two >= 1");
  }
  if (params.lines == 0 || params.ways == 0 ||
      params.lines % params.ways != 0) {
    throw std::invalid_argument(
        "comm::CacheParams: lines and ways must be >= 1 with lines divisible "
        "by ways");
  }
  if (params.api_scale <= 0.0) {
    throw std::invalid_argument("comm::CacheParams: api_scale must be > 0");
  }
  params_ = params;
  sets_ = params.lines / params.ways;
  lines_.assign(params.lines, Line{});
  tick_ = 0;
}

std::size_t ReadCache::set_index(int owner,
                                 std::uint64_t line_no) const noexcept {
  // Mix the owner in with a golden-ratio multiple so different ranks'
  // identical line numbers spread over distinct sets, while same-owner
  // aliasing stays predictable (line_no + k*sets maps to the same set —
  // the property the eviction tests lean on).
  const auto mix = line_no + static_cast<std::uint64_t>(owner) *
                                 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>(mix % static_cast<std::uint64_t>(sets_));
}

int ReadCache::find(int owner, std::uint64_t line_no) const noexcept {
  const std::size_t base = set_index(owner, line_no) * params_.ways;
  for (std::size_t w = 0; w < params_.ways; ++w) {
    const Line& ln = lines_[base + w];
    if (ln.valid && ln.owner == owner && ln.line_no == line_no) {
      return static_cast<int>(w);
    }
  }
  return -1;
}

sim::Task<bool> ReadCache::read(int owner, int dst_node, std::int64_t offset,
                                std::size_t bytes) {
  assert(offset >= 0 && bytes > 0 && sets_ != 0 &&
         "configure() the cache and resolve the offset before read()");
  const auto lb = static_cast<std::uint64_t>(params_.line_bytes);
  const auto first = static_cast<std::uint64_t>(offset) / lb;
  const auto last =
      (static_cast<std::uint64_t>(offset) + bytes - 1) / lb;
  bool all_hit = true;
  for (std::uint64_t line_no = first; line_no <= last; ++line_no) {
    const int way = find(owner, line_no);
    if (way >= 0) {
      // The fault seam may force the hit into a refill — an invalidation
      // storm. Values cannot change (the cache holds no data); only the
      // modeled cost schedule shifts, deterministically per plan seed.
      if (fault_ != nullptr && fault_->drop_cached_line(rank_)) {
        const std::size_t idx =
            set_index(owner, line_no) * params_.ways +
            static_cast<std::size_t>(way);
        lines_[idx].valid = false;
        ++stats_.invalidations;
        HUPC_TRACE_COUNT(tracer_, "gas.cache.invalidations", rank_);
      } else {
        lines_[set_index(owner, line_no) * params_.ways +
               static_cast<std::size_t>(way)]
            .tick = ++tick_;
        ++stats_.hits;
        HUPC_TRACE_COUNT(tracer_, "gas.cache.hits", rank_);
        continue;
      }
    }
    all_hit = false;
    co_await fill(owner, dst_node, line_no, bytes);
  }
  co_return all_hit;
}

void ReadCache::install(int owner, std::uint64_t line_no) {
  const std::size_t base = set_index(owner, line_no) * params_.ways;
  std::size_t victim = base;
  for (std::size_t w = 0; w < params_.ways; ++w) {
    if (!lines_[base + w].valid) {
      victim = base + w;
      break;
    }
    if (lines_[base + w].tick < lines_[victim].tick) victim = base + w;
  }
  if (lines_[victim].valid) {
    ++stats_.evictions;
    HUPC_TRACE_COUNT(tracer_, "gas.cache.evictions", rank_);
  }
  lines_[victim] = Line{true, owner, line_no, ++tick_};
  ++stats_.misses;
  stats_.fetched_bytes += static_cast<double>(params_.line_bytes);
  HUPC_TRACE_COUNT(tracer_, "gas.cache.misses", rank_);
}

sim::Task<void> ReadCache::fill(int owner, int dst_node,
                                std::uint64_t line_no,
                                std::size_t access_bytes) {
  install(owner, line_no);
  // One round trip fetches the whole line; count how many accesses of
  // this size it amortizes, so the net.aggregated/net.coalesced_ops
  // counters expose the line-fill batching exactly like coalescer
  // flushes do (accounting only — never timing).
  const std::uint64_t amortized = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(params_.line_bytes /
                                    std::max<std::size_t>(1, access_bytes)));
  co_await net_->rma(net::Transfer{
      .src_node = src_node_,
      .src_ep = src_ep_,
      .dst_node = dst_node,
      .bytes = static_cast<double>(params_.line_bytes),
      .api_scale = params_.api_scale,
      .coalesced_count = amortized});
}

sim::Task<std::size_t> ReadCache::prefetch(int owner, int dst_node,
                                           const Range* ranges,
                                           std::size_t count) {
  assert(sets_ != 0 && "configure() the cache before prefetch()");
  const auto lb = static_cast<std::uint64_t>(params_.line_bytes);
  // The footprint's distinct lines, ascending (deterministic fill order).
  std::vector<std::uint64_t> touched;
  for (std::size_t i = 0; i < count; ++i) {
    if (ranges[i].bytes == 0 || ranges[i].offset < 0) continue;
    const auto off = static_cast<std::uint64_t>(ranges[i].offset);
    const std::uint64_t first = off / lb;
    const std::uint64_t last = (off + ranges[i].bytes - 1) / lb;
    for (std::uint64_t line_no = first; line_no <= last; ++line_no) {
      touched.push_back(line_no);
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  std::size_t filled = 0;
  for (const std::uint64_t line_no : touched) {
    const int way = find(owner, line_no);
    if (way >= 0) {
      const std::size_t idx = set_index(owner, line_no) * params_.ways +
                              static_cast<std::size_t>(way);
      if (fault_ != nullptr && fault_->drop_cached_line(rank_)) {
        lines_[idx].valid = false;
        ++stats_.invalidations;
        HUPC_TRACE_COUNT(tracer_, "gas.cache.invalidations", rank_);
      } else {
        lines_[idx].tick = ++tick_;
        ++stats_.hits;
        HUPC_TRACE_COUNT(tracer_, "gas.cache.hits", rank_);
        continue;
      }
    }
    install(owner, line_no);
    ++filled;
  }
  if (filled == 0) co_return 0;
  // One packed message fetches every missing line the footprint touches:
  // regions/coalesced_count expose the batching to the counters and the
  // vis trace events, exactly like a coalescer flush (accounting only).
  HUPC_TRACE_COUNT(tracer_, "gas.cache.prefetch", rank_,
                   static_cast<std::uint64_t>(filled));
  const double payload =
      static_cast<double>(filled) * static_cast<double>(params_.line_bytes);
  co_await net_->rma(net::Transfer{
      .src_node = src_node_,
      .src_ep = src_ep_,
      .dst_node = dst_node,
      .bytes = payload,
      .api_scale = params_.api_scale,
      .coalesced_count = static_cast<std::uint64_t>(filled),
      .regions = static_cast<std::uint64_t>(filled),
      .payload_bytes = payload});
  co_return filled;
}

void ReadCache::invalidate_range(int owner, std::int64_t offset,
                                 std::size_t bytes) {
  if (sets_ == 0 || offset < 0 || bytes == 0) return;
  const auto lb = static_cast<std::uint64_t>(params_.line_bytes);
  const auto first = static_cast<std::uint64_t>(offset) / lb;
  const auto last =
      (static_cast<std::uint64_t>(offset) + bytes - 1) / lb;
  for (std::uint64_t line_no = first; line_no <= last; ++line_no) {
    const int way = find(owner, line_no);
    if (way < 0) continue;
    lines_[set_index(owner, line_no) * params_.ways +
           static_cast<std::size_t>(way)]
        .valid = false;
    ++stats_.invalidations;
    HUPC_TRACE_COUNT(tracer_, "gas.cache.invalidations", rank_);
  }
}

void ReadCache::invalidate_all() {
  std::uint64_t dropped = 0;
  for (Line& ln : lines_) {
    if (!ln.valid) continue;
    ln.valid = false;
    ++dropped;
  }
  if (dropped == 0) return;
  stats_.invalidations += dropped;
  HUPC_TRACE_COUNT(tracer_, "gas.cache.invalidations", rank_, dropped);
}

}  // namespace hupc::comm
