#include "comm/coalescer.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace hupc::comm {

namespace {

[[nodiscard]] const char* cause_name(FlushCause cause) noexcept {
  switch (cause) {
    case FlushCause::capacity:
      return "comm.flush.capacity";
    case FlushCause::conflict:
      return "comm.flush.conflict";
    case FlushCause::fence:
      return "comm.flush.fence";
  }
  return "comm.flush.fence";
}

}  // namespace

void Coalescer::configure(const Params& params) {
  if (buffered_ops_ != 0) {
    throw std::logic_error(
        "comm::Coalescer::configure: previous epoch still holds buffered "
        "operations (await end_coalesce() first)");
  }
  if (params.max_bytes == 0 || params.max_ops == 0) {
    throw std::invalid_argument(
        "comm::Params: max_bytes and max_ops must be >= 1");
  }
  if (params.per_op_header_bytes < 0.0 || params.api_scale <= 0.0) {
    throw std::invalid_argument(
        "comm::Params: per_op_header_bytes must be >= 0 and api_scale > 0");
  }
  params_ = params;
}

bool Coalescer::conflicts(const Buffer& buf, const void* addr,
                          std::size_t bytes) {
  if (addr == nullptr || bytes == 0) return false;
  const auto* lo = static_cast<const std::byte*>(addr);
  const auto* hi = lo + bytes;
  for (const PendingPut& p : buf.puts) {
    const auto* plo = static_cast<const std::byte*>(p.dst);
    const auto* phi = plo + p.len;
    if (plo < hi && lo < phi) return true;
  }
  return false;
}

bool Coalescer::over_capacity(const Buffer& buf) const noexcept {
  const double gross =
      buf.payload_bytes +
      static_cast<double>(buf.ops) * params_.per_op_header_bytes;
  return buf.ops >= params_.max_ops ||
         gross >= static_cast<double>(params_.max_bytes);
}

sim::Task<void> Coalescer::put(int dst_node, void* dst, const void* value,
                               std::size_t bytes) {
  assert(dst_node != src_node_ &&
         "coalescing is for remote destinations; local accesses take the "
         "memory path");
  Buffer& buf = buffers_[dst_node];
  const std::size_t offset = buf.arena.size();
  buf.arena.resize(offset + bytes);
  std::memcpy(buf.arena.data() + offset, value, bytes);
  buf.puts.push_back(PendingPut{dst, offset, bytes});
  ++buf.ops;
  buf.payload_bytes += static_cast<double>(bytes);
  ++buffered_ops_;
  ++stats_.ops_absorbed;
  ++stats_.puts_deferred;
  HUPC_TRACE_COUNT(tracer_, "comm.op.put", rank_);
  if (over_capacity(buf)) {
    co_await drain(dst_node, buf, FlushCause::capacity);
  }
}

sim::Task<void> Coalescer::put_regions(int dst_node, void* dst_base,
                                       const void* src_base,
                                       const net::Region* regions,
                                       std::size_t count) {
  auto* dst = static_cast<std::byte*>(dst_base);
  const auto* src = static_cast<const std::byte*>(src_base);
  HUPC_TRACE_COUNT(tracer_, "comm.vis.packed", rank_,
                   static_cast<std::uint64_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    if (regions[i].bytes == 0) continue;
    co_await put(dst_node, dst + regions[i].dst_off, src + regions[i].src_off,
                 regions[i].bytes);
  }
}

sim::Task<void> Coalescer::read(int dst_node, const void* addr,
                                std::size_t bytes) {
  assert(dst_node != src_node_ &&
         "coalescing is for remote destinations; local accesses take the "
         "memory path");
  Buffer& buf = buffers_[dst_node];
  if (conflicts(buf, addr, bytes)) {
    // Read-your-writes: the buffered put to this range must be observed,
    // so the destination drains before the value is read.
    co_await drain(dst_node, buf, FlushCause::conflict);
  }
  ++buf.ops;
  buf.payload_bytes += static_cast<double>(bytes);
  ++buffered_ops_;
  ++stats_.ops_absorbed;
  HUPC_TRACE_COUNT(tracer_, "comm.op.read", rank_);
  if (over_capacity(buf)) {
    co_await drain(dst_node, buf, FlushCause::capacity);
  }
}

bool Coalescer::has_conflicting_put(int dst_node, const void* addr,
                                    std::size_t bytes) const {
  const auto it = buffers_.find(dst_node);
  return it != buffers_.end() && conflicts(it->second, addr, bytes);
}

sim::Task<void> Coalescer::flush(int dst_node, FlushCause cause) {
  auto it = buffers_.find(dst_node);
  if (it == buffers_.end() || it->second.ops == 0) co_return;
  co_await drain(dst_node, it->second, cause);
}

sim::Task<void> Coalescer::flush_all(FlushCause cause) {
  // std::map iteration order == ascending node order: deterministic.
  for (auto& [node, buf] : buffers_) {
    if (buf.ops == 0) continue;
    co_await drain(node, buf, cause);
  }
}

sim::Task<void> Coalescer::drain(int dst_node, Buffer& buf, FlushCause cause) {
  assert(buf.ops > 0);
  // Apply deferred puts in append order at flush initiation; the issuing
  // rank blocks on the aggregated rma below before touching anything else,
  // so no later operation of this rank can observe the window.
  for (const PendingPut& p : buf.puts) {
    std::memcpy(p.dst, buf.arena.data() + p.offset, p.len);
  }
  const std::uint64_t ops = buf.ops;
  const double gross =
      buf.payload_bytes +
      static_cast<double>(ops) * params_.per_op_header_bytes;
  buffered_ops_ -= ops;
  buf.puts.clear();
  buf.arena.clear();
  buf.ops = 0;
  buf.payload_bytes = 0.0;

  ++stats_.flush_messages;
  stats_.flushed_bytes += gross;
  switch (cause) {
    case FlushCause::capacity:
      ++stats_.flushes_capacity;
      break;
    case FlushCause::conflict:
      ++stats_.flushes_conflict;
      break;
    case FlushCause::fence:
      ++stats_.flushes_fence;
      break;
  }
  HUPC_TRACE_SCOPE(tracer_, trace::Category::net, "coalesce.flush", rank_, ops,
                   static_cast<std::uint64_t>(dst_node));
  HUPC_TRACE_COUNT(tracer_, "comm.flush.msgs", rank_);
  HUPC_TRACE_COUNT(tracer_, "comm.flush.ops", rank_, ops);
  HUPC_TRACE_COUNT(tracer_, "comm.flush.bytes", rank_,
                   static_cast<std::uint64_t>(gross));
  HUPC_TRACE_COUNT(tracer_, cause_name(cause), rank_);
  co_await net_->rma(net::Transfer{.src_node = src_node_,
                                   .src_ep = src_ep_,
                                   .dst_node = dst_node,
                                   .bytes = gross,
                                   .api_scale = params_.api_scale,
                                   .coalesced_count = ops});
}

void Coalescer::abandon() {
  for (auto& [node, buf] : buffers_) {
    (void)node;
    if (buf.ops == 0) continue;
    for (const PendingPut& p : buf.puts) {
      std::memcpy(p.dst, buf.arena.data() + p.offset, p.len);
    }
    stats_.abandoned_ops += buf.ops;
    HUPC_TRACE_COUNT(tracer_, "comm.abandoned", rank_, buf.ops);
    buffered_ops_ -= buf.ops;
    buf.puts.clear();
    buf.arena.clear();
    buf.ops = 0;
    buf.payload_bytes = 0.0;
  }
}

}  // namespace hupc::comm
