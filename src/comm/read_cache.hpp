// Per-rank software read cache for fine-grained remote gets (the classic
// UPC-runtime answer to per-access shared-pointer latency; cf. the MuPC
// and Cray X1 UPC runtimes' reference caching).
//
// A ReadCache belongs to one rank. Inside an explicit epoch (opened by
// gas::Thread::begin_read_cache), fine-grained remote GETs are served
// through a set-associative, line-granularity tag store: a miss fetches
// one aligned line in a single round trip (charged as ONE aggregated
// net::Network::rma carrying the full line), and subsequent gets falling
// into that line cost only the local memory access. Spatially local read
// sweeps — gathers, reductions, probe loops — collapse from one network
// round trip per element to one per line.
//
// The cache holds NO data, only tags. Host memory is the single ground
// truth for values (the simulation really reads it), so a cached access
// can never return stale bytes — what the cache changes is purely the
// MODELED cost schedule. Coherence therefore only has to keep the cost
// model honest, and is epoch-scoped:
//
//   fences     — barriers / wait() invalidate everything (epoch-relaxed
//                visibility, same contract as the coalescer's puts);
//   locks      — GlobalLock::acquire invalidates everything (lock-protected
//                data must be re-fetched at lock cost);
//   AMOs       — read-modify-write accesses bypass the cache and invalidate
//                their own line (an AMO must see the remote value);
//   own writes — a put or bulk copy by this rank invalidates the covered
//                lines (read-your-writes: a later get re-fetches);
//   conflicts  — gas::Thread consults the coalescer's deferred-put buffer
//                before serving a cached line, flushing first on overlap.
//
// Determinism: lines are keyed by (owner rank, virtual segment offset) —
// never by raw host addresses, which vary run to run under ASLR and would
// leak nondeterminism into the modeled hit/miss schedule. Offsets come
// from gas::SharedHeap::offset_of (bump-allocation order, run-stable).
// Two runs with the same seed produce bit-identical schedules; with no
// epoch open every path is bit-identical to a build without the cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fault/hooks.hpp"
#include "net/network.hpp"
#include "sim/task.hpp"
#include "trace/trace.hpp"

namespace hupc::comm {

/// Tuning knobs for one cached epoch.
struct CacheParams {
  /// Line size in bytes (power of two). One miss fetches this much.
  std::size_t line_bytes = 64;
  /// Total number of lines in the tag store.
  std::size_t lines = 256;
  /// Set associativity (lines % ways must be 0). 1 = direct-mapped.
  std::size_t ways = 4;
  /// Shared-API cost scale for the line-fill message (1.0 = a normal
  /// message; the win comes from paying it once per line, not per word).
  double api_scale = 1.0;
};

/// Lifetime statistics (accumulated across epochs of one rank).
struct CacheStats {
  std::uint64_t hits = 0;           // gets served at local cost
  std::uint64_t misses = 0;         // line fills (one rma each)
  std::uint64_t evictions = 0;      // valid lines displaced by fills
  std::uint64_t invalidations = 0;  // lines dropped by coherence events
  std::uint64_t bypasses = 0;       // cacheable-path accesses that fell
                                    // through (no segment offset / AMO)
  double fetched_bytes = 0.0;       // line-fill payload, as charged
};

class ReadCache {
 public:
  /// `rank` is the owning rank (trace attribution); `src_node`/`src_ep`
  /// identify its network endpoint for the line-fill messages.
  ReadCache(net::Network& net, int rank, int src_node, int src_ep,
            trace::Tracer* tracer)
      : net_(&net),
        rank_(rank),
        src_node_(src_node),
        src_ep_(src_ep),
        tracer_(tracer) {}

  ReadCache(const ReadCache&) = delete;
  ReadCache& operator=(const ReadCache&) = delete;

  /// (Re)open an epoch with fresh parameters: validates them, drops every
  /// tag and rebuilds the store. Throws std::invalid_argument on nonsense
  /// (non-power-of-two line size, lines not divisible by ways, ...).
  void configure(const CacheParams& params);

  [[nodiscard]] const CacheParams& params() const noexcept { return params_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Attach a cache-pressure fault hook (non-owning, may be null): each
  /// hit consults it and demotes to a refill when it fires — a forced
  /// invalidation storm that stresses the coherence accounting without
  /// ever changing values (the cache holds no data).
  void set_fault(fault::CacheHook* hook) noexcept { fault_ = hook; }

  /// Serve a fine-grained get of [offset, offset+bytes) in `owner`'s
  /// segment (`offset` from gas::SharedHeap::offset_of; `dst_node` is the
  /// owner's home node). Touches every covered line: hits cost nothing
  /// here (the caller charges the local memory access); each miss charges
  /// one aggregated line-fill rma. Returns true when ALL covered lines
  /// hit (pure local service).
  [[nodiscard]] sim::Task<bool> read(int owner, int dst_node,
                                     std::int64_t offset, std::size_t bytes);

  /// One (segment offset, bytes) range of a strided/indexed GET footprint.
  struct Range {
    std::int64_t offset = 0;
    std::size_t bytes = 0;
  };

  /// Serve a whole VIS GET footprint at once: compute the distinct lines
  /// the ranges touch, serve hits for free, and fetch ALL missing lines
  /// with ONE packed rma (`regions` = lines fetched) — prefetching every
  /// line a stride touches instead of round-tripping per element or per
  /// line. Returns the number of lines filled (0 = pure local service).
  [[nodiscard]] sim::Task<std::size_t> prefetch(int owner, int dst_node,
                                                const Range* ranges,
                                                std::size_t count);

  /// Drop any lines overlapping [offset, offset+bytes) in `owner`'s
  /// segment (own-write / AMO coherence). Host-side, free.
  void invalidate_range(int owner, std::int64_t offset, std::size_t bytes);

  /// Drop everything (fence / lock coherence). Host-side, free.
  void invalidate_all();

  /// Account a cacheable-path access that could not be cached (no segment
  /// offset for the address, e.g. an addressless metadata probe).
  void count_bypass() noexcept { ++stats_.bypasses; }

 private:
  struct Line {
    bool valid = false;
    int owner = 0;
    std::uint64_t line_no = 0;  // offset / line_bytes
    std::uint64_t tick = 0;     // LRU stamp (monotone per touch)
  };

  [[nodiscard]] std::size_t set_index(int owner,
                                      std::uint64_t line_no) const noexcept;
  /// Look up (owner, line_no) in its set; returns the way index or -1.
  [[nodiscard]] int find(int owner, std::uint64_t line_no) const noexcept;
  /// Install (owner, line_no) over its set's LRU victim and account the
  /// miss — the tag-store half of a fill; the caller charges the rma.
  void install(int owner, std::uint64_t line_no);
  /// Fill (owner, line_no) into its set (LRU victim), charging one rma of
  /// `line_bytes` to `dst_node`; `access_bytes` sizes the aggregation
  /// accounting (how many same-size accesses the line amortizes).
  [[nodiscard]] sim::Task<void> fill(int owner, int dst_node,
                                     std::uint64_t line_no,
                                     std::size_t access_bytes);

  net::Network* net_;
  int rank_;
  int src_node_;
  int src_ep_;
  trace::Tracer* tracer_;
  fault::CacheHook* fault_ = nullptr;
  CacheParams params_{};
  CacheStats stats_{};
  std::uint64_t tick_ = 0;
  std::size_t sets_ = 0;
  // sets_ * ways lines, set-major: set s occupies [s*ways, (s+1)*ways).
  std::vector<Line> lines_;
};

}  // namespace hupc::comm
