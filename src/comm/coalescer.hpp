// Per-destination message coalescing (Berkeley-UPC / GASNet-VIS-style
// software aggregation).
//
// A Coalescer belongs to one rank. Inside an explicit epoch (opened by
// gas::Thread::begin_coalesce), fine-grained remote puts, gets and AMOs
// are appended to bounded per-destination-node buffers instead of each
// paying a full small-message round trip. A buffer is flushed — applied
// to memory and charged as ONE aggregated net::Network::rma carrying the
// summed payload plus per-operation aggregation headers — when any of
// the following fires:
//
//   capacity  — the buffer reaches Params::max_bytes or Params::max_ops;
//   conflict  — a read-class access (get / AMO / bulk get) overlaps the
//               address range of a buffered put: the put must be observed
//               (read-your-writes), so the destination buffer drains first;
//   fence     — a barrier, a bulk copy to the same destination, an explicit
//               flush, or the epoch end.
//
// Memory semantics: puts are DEFERRED — the value bytes are captured at
// append time and written to the target at flush time, so a conflicting
// read really would observe stale data without the conflict flush (the
// property the tests pin). Gets and AMOs apply to memory immediately
// (their value is needed by the caller) and only their network cost is
// absorbed into the aggregate. Cross-rank visibility of buffered puts is
// epoch-relaxed: other ranks may not observe them until a flush — the
// same contract GASNet's access regions give Berkeley UPC.
//
// Determinism: buffers are keyed by destination node and flush-all walks
// them in ascending node order; within a buffer, puts apply in append
// order. Two runs with the same seed produce bit-identical schedules.
//
// Cost model: one flush charges one rma of
//   sum(payload bytes) + ops * Params::per_op_header_bytes
// at Params::api_scale — one shared-API traversal for the whole batch,
// which is precisely the amortization the thesis's §3.2/§4.3.1 analysis
// says fine-grained UPC lacks. Flushes pass through the normal network
// fault seam (blackouts / latency plans apply per aggregated message)
// and the normal counters, so byte conservation holds unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "net/network.hpp"
#include "sim/task.hpp"
#include "trace/trace.hpp"

namespace hupc::comm {

/// Tuning knobs for one coalescing epoch.
struct Params {
  /// Per-destination payload threshold (bytes, headers included): the
  /// buffer flushes before growing past this.
  std::size_t max_bytes = 4096;
  /// Per-destination operation-count threshold.
  std::size_t max_ops = 512;
  /// Modeled aggregation header per fine-grained operation (address +
  /// opcode + length in the packed message).
  double per_op_header_bytes = 8.0;
  /// Shared-API cost scale for the aggregated message (1.0 = a normal
  /// message; the win comes from paying it once per flush, not per op).
  double api_scale = 1.0;
};

/// Lifetime statistics (accumulated across epochs of one rank).
struct Stats {
  std::uint64_t ops_absorbed = 0;    // fine-grained ops that skipped rma
  std::uint64_t puts_deferred = 0;   // subset of ops_absorbed with payload
  std::uint64_t flush_messages = 0;  // aggregated rma messages issued
  double flushed_bytes = 0.0;        // payload + headers, as charged
  std::uint64_t flushes_capacity = 0;
  std::uint64_t flushes_conflict = 0;
  std::uint64_t flushes_fence = 0;  // epoch end / barrier / bulk / explicit
  std::uint64_t abandoned_ops = 0;  // applied uncharged (guard teardown)
};

/// Why a flush fired (accounting + trace annotation).
enum class FlushCause : std::uint8_t { capacity, conflict, fence };

class Coalescer {
 public:
  /// `rank` is the owning rank (trace attribution); `src_node`/`src_ep`
  /// identify its network endpoint for the aggregated messages.
  Coalescer(net::Network& net, int rank, int src_node, int src_ep,
            trace::Tracer* tracer)
      : net_(&net),
        rank_(rank),
        src_node_(src_node),
        src_ep_(src_ep),
        tracer_(tracer) {}

  Coalescer(const Coalescer&) = delete;
  Coalescer& operator=(const Coalescer&) = delete;

  /// (Re)open an epoch with fresh parameters. Buffers must be empty
  /// (end/flush the previous epoch first).
  void configure(const Params& params);

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool empty() const noexcept { return buffered_ops_ == 0; }
  [[nodiscard]] std::uint64_t buffered_ops() const noexcept {
    return buffered_ops_;
  }

  /// Append a deferred fine-grained put: `bytes` of `value` will be
  /// written to `dst` when the destination buffer flushes. May flush
  /// first (capacity). Only call for genuinely remote destinations.
  [[nodiscard]] sim::Task<void> put(int dst_node, void* dst,
                                    const void* value, std::size_t bytes);

  /// Pack a lowered VIS descriptor (gas::copy_strided / copy_irregular
  /// inside a coalescing epoch) into the destination's buffer: one
  /// deferred put per packed region, value bytes captured now, applied at
  /// flush — exactly put() semantics region by region, so capacity flushes
  /// interleave and the conflict machinery sees every region. Zero-length
  /// regions are skipped.
  [[nodiscard]] sim::Task<void> put_regions(int dst_node, void* dst_base,
                                            const void* src_base,
                                            const net::Region* regions,
                                            std::size_t count);

  /// Absorb a read-class access (get / AMO / metadata probe) of
  /// [addr, addr+bytes): flushes the destination buffer first when the
  /// range overlaps a buffered put (read-your-writes), then appends the
  /// access cost. `addr == nullptr` marks an addressless metadata probe
  /// (no conflict possible). The caller reads/updates memory directly
  /// afterwards.
  [[nodiscard]] sim::Task<void> read(int dst_node, const void* addr,
                                     std::size_t bytes);

  /// True when a buffered (deferred) put to `dst_node` overlaps
  /// [addr, addr+bytes) — the read-your-writes query the read cache asks
  /// before serving a line without routing the access through read().
  [[nodiscard]] bool has_conflicting_put(int dst_node, const void* addr,
                                         std::size_t bytes) const;

  /// Flush one destination's buffer (applies deferred puts, charges one
  /// aggregated rma). No-op when that buffer is empty.
  [[nodiscard]] sim::Task<void> flush(int dst_node,
                                      FlushCause cause = FlushCause::fence);

  /// Flush every destination in ascending node order (fence semantics).
  [[nodiscard]] sim::Task<void> flush_all(
      FlushCause cause = FlushCause::fence);

  /// Teardown path (RAII guard destruction, rank teardown): apply all
  /// deferred puts to memory WITHOUT charging network time, so host data
  /// stays verifiable even when an epoch is abandoned mid-flight. Counted
  /// in Stats::abandoned_ops; proper code awaits end_coalesce() instead.
  void abandon();

 private:
  struct PendingPut {
    void* dst;
    std::size_t offset;  // into Buffer::arena
    std::size_t len;
  };
  struct Buffer {
    std::vector<PendingPut> puts;
    std::vector<std::byte> arena;  // deferred put payloads, append order
    std::uint64_t ops = 0;         // all absorbed ops (puts + reads)
    double payload_bytes = 0.0;    // excluding per-op headers
  };

  /// True when [addr, addr+bytes) overlaps any buffered put in `buf`.
  [[nodiscard]] static bool conflicts(const Buffer& buf, const void* addr,
                                      std::size_t bytes);

  /// Charge for and account one aggregated message for `buf`, then reset
  /// it. Deferred puts are applied to memory at flush initiation (the
  /// issuing rank blocks until remote delivery anyway).
  [[nodiscard]] sim::Task<void> drain(int dst_node, Buffer& buf,
                                      FlushCause cause);

  /// Capacity check after appending an op of `payload` bytes.
  [[nodiscard]] bool over_capacity(const Buffer& buf) const noexcept;

  net::Network* net_;
  int rank_;
  int src_node_;
  int src_ep_;
  trace::Tracer* tracer_;
  Params params_{};
  Stats stats_{};
  std::uint64_t buffered_ops_ = 0;
  // Ordered map: flush_all walks destinations in ascending node order,
  // which keeps multi-destination flush schedules deterministic.
  std::map<int, Buffer> buffers_;
};

}  // namespace hupc::comm
