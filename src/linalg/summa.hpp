// Distributed dense matrix multiply (SUMMA) over 2-D blocked shared arrays
// and *overlapping* thread groups — the showcase for two thesis claims:
// multidimensional blocking composes with hierarchical parallelism
// (conclusion, future work), and thread groups "should be allowed to
// overlap with each other, therefore multiple hardware hierarchies could
// be exploited concurrently" (§3.2.1). Every thread belongs to one row
// team and one column team of the process grid simultaneously.
//
// C (m x n) += A (m x k) * B (k x n), all three distributed on a pr x pc
// process grid with one tile per thread (block sizes m/pr etc.). At step s
// the owners of A's s-th tile column broadcast along their row teams, the
// owners of B's s-th tile row broadcast along their column teams, and
// every thread multiplies its received pair into its local C tile.
#pragma once

#include <vector>

#include "core/team.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"

namespace hupc::linalg {

/// Process-grid description: THREADS = pr * pc, thread (i, j) = i * pc + j.
struct ProcessGrid {
  int pr = 1;
  int pc = 1;

  [[nodiscard]] int rank_of(int i, int j) const noexcept { return i * pc + j; }
  [[nodiscard]] int row_of(int rank) const noexcept { return rank / pc; }
  [[nodiscard]] int col_of(int rank) const noexcept { return rank % pc; }
};

class Summa {
 public:
  /// C = A * B with square tile distribution: A is (m x k), B (k x n),
  /// C (m x n); grid.pr must divide m and k, grid.pc must divide n and k.
  /// `vis` switches the panel exchange to VIS descriptor pulls: each rank
  /// fetches the step's A/B panels straight out of the owners' tiles with
  /// packed strided messages (column blocks of the tile) instead of the
  /// owner-load + team-broadcast pipeline. Panel contents — and therefore
  /// C — are bit-identical either way; only the modeled communication
  /// schedule changes.
  Summa(gas::Runtime& rt, ProcessGrid grid, std::size_t m, std::size_t n,
        std::size_t k, bool vis = false);

  /// Fill A and B deterministically (tests regenerate the same matrices).
  void fill(std::uint64_t seed);

  /// The SPMD kernel: run from every rank.
  [[nodiscard]] sim::Task<void> run(gas::Thread& self);

  /// Dense copies for verification (host-side).
  [[nodiscard]] std::vector<double> dense_a() const;
  [[nodiscard]] std::vector<double> dense_b() const;
  [[nodiscard]] std::vector<double> dense_c() const;

  [[nodiscard]] const ProcessGrid& grid() const noexcept { return grid_; }

 private:
  [[nodiscard]] double* tile_a(int i, int j) const;
  [[nodiscard]] double* tile_b(int i, int j) const;
  [[nodiscard]] double* tile_c(int i, int j) const;

  gas::Runtime* rt_;
  ProcessGrid grid_;
  bool vis_;
  std::size_t m_, n_, k_;
  std::size_t tm_, tn_, tk_;  // tile dims: m/pr, n/pc, k is tiled both ways
  gas::SharedArray2D<double> a_, b_, c_;
  std::vector<core::Team> row_teams_, col_teams_;
  std::vector<std::unique_ptr<gas::Collectives>> row_colls_, col_colls_;
  // Per-rank receive buffers for the broadcast panels.
  std::vector<gas::GlobalPtr<double>> panel_a_, panel_b_;
};

}  // namespace hupc::linalg
