#include "linalg/summa.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "util/rng.hpp"

namespace hupc::linalg {

Summa::Summa(gas::Runtime& rt, ProcessGrid grid, std::size_t m, std::size_t n,
             std::size_t k, bool vis)
    : rt_(&rt), grid_(grid), vis_(vis), m_(m), n_(n), k_(k) {
  if (grid.pr != grid.pc) {
    throw std::invalid_argument("Summa: square process grids only");
  }
  if (grid.pr * grid.pc != rt.threads()) {
    throw std::invalid_argument("Summa: grid must cover THREADS exactly");
  }
  const auto p = static_cast<std::size_t>(grid.pr);
  if (m % p != 0 || n % p != 0 || k % p != 0) {
    throw std::invalid_argument("Summa: dimensions must divide by grid size");
  }
  tm_ = m / p;
  tn_ = n / p;
  tk_ = k / p;

  // Tile grids are exactly pr x pc, so round-robin tile dealing maps tile
  // (i, j) to process-grid rank (i, j) — the distribution SUMMA needs.
  a_ = rt.heap().all_alloc_2d<double>(m_, k_, tm_, tk_);
  b_ = rt.heap().all_alloc_2d<double>(k_, n_, tk_, tn_);
  c_ = rt.heap().all_alloc_2d<double>(m_, n_, tm_, tn_);

  for (int i = 0; i < grid.pr; ++i) {
    std::vector<int> members;
    for (int j = 0; j < grid.pc; ++j) members.push_back(grid.rank_of(i, j));
    row_teams_.emplace_back(rt, members);
    row_colls_.push_back(
        std::make_unique<gas::Collectives>(rt, std::move(members)));
  }
  for (int j = 0; j < grid.pc; ++j) {
    std::vector<int> members;
    for (int i = 0; i < grid.pr; ++i) members.push_back(grid.rank_of(i, j));
    col_teams_.emplace_back(rt, members);
    col_colls_.push_back(
        std::make_unique<gas::Collectives>(rt, std::move(members)));
  }

  panel_a_.reserve(static_cast<std::size_t>(rt.threads()));
  panel_b_.reserve(static_cast<std::size_t>(rt.threads()));
  for (int r = 0; r < rt.threads(); ++r) {
    panel_a_.push_back(rt.heap().alloc<double>(r, tm_ * tk_));
    panel_b_.push_back(rt.heap().alloc<double>(r, tk_ * tn_));
  }
}

double* Summa::tile_a(int i, int j) const {
  return a_.tile_base(static_cast<std::size_t>(i) * tm_,
                      static_cast<std::size_t>(j) * tk_)
      .raw;
}
double* Summa::tile_b(int i, int j) const {
  return b_.tile_base(static_cast<std::size_t>(i) * tk_,
                      static_cast<std::size_t>(j) * tn_)
      .raw;
}
double* Summa::tile_c(int i, int j) const {
  return c_.tile_base(static_cast<std::size_t>(i) * tm_,
                      static_cast<std::size_t>(j) * tn_)
      .raw;
}

void Summa::fill(std::uint64_t seed) {
  util::Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < k_; ++j) {
      *a_.at(i, j).raw = rng.uniform() - 0.5;
    }
  }
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      *b_.at(i, j).raw = rng.uniform() - 0.5;
    }
  }
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      *c_.at(i, j).raw = 0.0;
    }
  }
}

sim::Task<void> Summa::run(gas::Thread& self) {
  const int me = self.rank();
  const int mi = grid_.row_of(me);
  const int mj = grid_.col_of(me);
  const int p = grid_.pr;

  // Team-indexed panel buffer views for the two broadcasts.
  std::vector<gas::GlobalPtr<double>> row_bufs, col_bufs;
  for (int j = 0; j < p; ++j) {
    row_bufs.push_back(panel_a_[static_cast<std::size_t>(grid_.rank_of(mi, j))]);
  }
  for (int i = 0; i < p; ++i) {
    col_bufs.push_back(panel_b_[static_cast<std::size_t>(grid_.rank_of(i, mj))]);
  }

  double* my_c = tile_c(mi, mj);
  co_await self.barrier();

  for (int s = 0; s < p; ++s) {
    if (vis_) {
      // VIS panel exchange: pull the step's panels straight out of the
      // owners' tiles with packed strided messages — column blocks of the
      // tile, each a rows(width, nrows, row_stride) footprint — into my
      // panel buffers at the same layout. A and B are never written during
      // run(), so direct pulls need no extra synchronization; the panels
      // (and C) come out bit-identical to the broadcast pipeline.
      std::vector<async::future<>> pulls;
      const gas::GlobalPtr<double> pa_dst =
          panel_a_[static_cast<std::size_t>(me)];
      const gas::GlobalPtr<double> a_src = a_.tile_base(
          static_cast<std::size_t>(mi) * tm_, static_cast<std::size_t>(s) * tk_);
      const std::size_t nb_a = std::max<std::size_t>(1, tk_ / 4);
      for (std::size_t c0 = 0; c0 < tk_; c0 += nb_a) {
        const std::size_t w = std::min(nb_a, tk_ - c0);
        const auto spec = gas::StridedSpec::rows(w, tm_, tk_);
        pulls.push_back(self.copy_strided_async(
            gas::GlobalPtr<double>{pa_dst.owner, pa_dst.raw + c0}, spec,
            gas::GlobalPtr<double>{a_src.owner, a_src.raw + c0}, spec));
      }
      const gas::GlobalPtr<double> pb_dst =
          panel_b_[static_cast<std::size_t>(me)];
      const gas::GlobalPtr<double> b_src = b_.tile_base(
          static_cast<std::size_t>(s) * tk_, static_cast<std::size_t>(mj) * tn_);
      const std::size_t nb_b = std::max<std::size_t>(1, tn_ / 4);
      for (std::size_t c0 = 0; c0 < tn_; c0 += nb_b) {
        const std::size_t w = std::min(nb_b, tn_ - c0);
        const auto spec = gas::StridedSpec::rows(w, tk_, tn_);
        pulls.push_back(self.copy_strided_async(
            gas::GlobalPtr<double>{pb_dst.owner, pb_dst.raw + c0}, spec,
            gas::GlobalPtr<double>{b_src.owner, b_src.raw + c0}, spec));
      }
      for (auto& f : pulls) co_await f.wait();
    } else {
      // Owners load their tiles into the panel buffers.
      if (mj == s) {
        std::memcpy(panel_a_[static_cast<std::size_t>(me)].raw, tile_a(mi, s),
                    tm_ * tk_ * sizeof(double));
        co_await self.stream_local(
            static_cast<double>(tm_ * tk_ * sizeof(double)) * 2.0);
      }
      if (mi == s) {
        std::memcpy(panel_b_[static_cast<std::size_t>(me)].raw, tile_b(s, mj),
                    tk_ * tn_ * sizeof(double));
        co_await self.stream_local(
            static_cast<double>(tk_ * tn_ * sizeof(double)) * 2.0);
      }
      // Row-wise broadcast of the A panel, column-wise of the B panel.
      co_await row_colls_[static_cast<std::size_t>(mi)]->broadcast(
          self, row_bufs, tm_ * tk_, /*team root=*/s);
      co_await col_colls_[static_cast<std::size_t>(mj)]->broadcast(
          self, col_bufs, tk_ * tn_, /*team root=*/s);
    }

    // Local rank-tk update: C += Apanel * Bpanel (really computed).
    const double* pa = panel_a_[static_cast<std::size_t>(me)].raw;
    const double* pb = panel_b_[static_cast<std::size_t>(me)].raw;
    for (std::size_t i = 0; i < tm_; ++i) {
      for (std::size_t kk = 0; kk < tk_; ++kk) {
        const double aik = pa[i * tk_ + kk];
        for (std::size_t j = 0; j < tn_; ++j) {
          my_c[i * tn_ + j] += aik * pb[kk * tn_ + j];
        }
      }
    }
    co_await self.compute_flops(
        2.0 * static_cast<double>(tm_) * tn_ * tk_, /*efficiency=*/0.85);
    co_await self.barrier();
  }
  co_return;
}

std::vector<double> Summa::dense_a() const {
  std::vector<double> out(m_ * k_);
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < k_; ++j) out[i * k_ + j] = *a_.at(i, j).raw;
  }
  return out;
}

std::vector<double> Summa::dense_b() const {
  std::vector<double> out(k_ * n_);
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) out[i * n_ + j] = *b_.at(i, j).raw;
  }
  return out;
}

std::vector<double> Summa::dense_c() const {
  std::vector<double> out(m_ * n_);
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) out[i * n_ + j] = *c_.at(i, j).raw;
  }
  return out;
}

}  // namespace hupc::linalg
