#include "sim/engine.hpp"

#include <utility>

namespace hupc::sim {

void Engine::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) at = now_;
  if (fault_ != nullptr) {
    at = fault_->perturb_schedule(now_, at);
    if (at < now_) at = now_;  // a hook can delay events, never reorder past
  }
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();  // std::function targets are copyable by contract
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  // Each dispatch resumes one logical process (a context switch in the
  // cooperative scheduler); a0 carries the scheduling sequence number.
  HUPC_TRACE_INSTANT(tracer_, trace::Category::engine, "dispatch",
                     trace::kEngineRank, ev.seq, queue_.size());
  HUPC_TRACE_COUNT(tracer_, "engine.dispatch", trace::kEngineRank);
  ev.fn();
  return true;
}

Time Engine::run() {
  while (step()) {
  }
  return now_;
}

Time Engine::run_until(Time deadline) {
  // If everything finishes early the clock stays where the last event ran;
  // callers that need an exact advance can schedule a no-op at the deadline.
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  return now_;
}

}  // namespace hupc::sim
