// Serial progress contexts ("personas") for the discrete-event engine.
//
// A ProgressQueue is the progress hook the asynchronous completion layer
// (src/async) drives its per-rank RPC execution through: thunks posted
// from anywhere in the simulation run as same-instant engine events in
// strict FIFO *post* order. FIFO holds even under fault-injection schedule
// jitter — a perturbed drain tick may run late, but every tick pops the
// queue's front, so post order is execution order by construction (the
// engine event only decides WHEN the next front runs, never WHICH).
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "sim/engine.hpp"

namespace hupc::sim {

class ProgressQueue {
 public:
  explicit ProgressQueue(Engine& engine) : engine_(&engine) {}

  ProgressQueue(const ProgressQueue&) = delete;
  ProgressQueue& operator=(const ProgressQueue&) = delete;

  /// Enqueue `fn` for serial execution on this context. Never runs inline:
  /// the caller's stack unwinds first (flat stacks, deterministic order).
  void post(std::function<void()> fn) {
    queue_.push_back(std::move(fn));
    ++posted_;
    engine_->schedule_in(0, [this] { drain_one(); });
  }

  [[nodiscard]] std::uint64_t posted() const noexcept { return posted_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }
  /// Thunks posted but not yet run (inbox depth).
  [[nodiscard]] std::size_t depth() const noexcept { return queue_.size(); }

 private:
  void drain_one() {
    assert(!queue_.empty() && "ProgressQueue: tick without a queued thunk");
    std::function<void()> fn = std::move(queue_.front());
    queue_.pop_front();
    ++executed_;
    fn();
  }

  Engine* engine_;
  std::deque<std::function<void()>> queue_;
  std::uint64_t posted_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hupc::sim
