// Virtual-time representation for the discrete-event simulator.
//
// Time is a signed 64-bit count of *nanoseconds* — wide enough for ~292
// simulated years, fine enough that a single cache miss is representable.
// Cost models compute in double-precision seconds and convert once per
// charge, so quantization error never accumulates per-element.
#pragma once

#include <cstdint>

namespace hupc::sim {

using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Convert seconds (as produced by analytic cost models) to virtual time,
/// rounding to the nearest nanosecond. Negative durations are clamped to 0:
/// a cost model can never make time flow backwards.
[[nodiscard]] constexpr Time from_seconds(double s) noexcept {
  if (s <= 0.0) return 0;
  return static_cast<Time>(s * 1e9 + 0.5);
}

[[nodiscard]] constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) * 1e-9;
}

[[nodiscard]] constexpr double to_micros(Time t) noexcept {
  return static_cast<double>(t) * 1e-3;
}

}  // namespace hupc::sim
