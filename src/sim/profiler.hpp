// Lightweight phase profiler for simulated programs: named accumulating
// timers and counters per rank, with aligned-table and CSV reports. The FT
// drivers use ad-hoc timing structs; this is the general-purpose facility
// for user applications (and the ablation benches).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace hupc::sim {

class Profiler {
 public:
  Profiler(Engine& engine, int ranks);

  /// Start/stop a named phase for `rank`. Phases may not nest with the
  /// same name; different names may overlap.
  void begin(int rank, const std::string& phase);
  void end(int rank, const std::string& phase);

  /// Bump a named counter.
  void count(int rank, const std::string& counter, std::uint64_t delta = 1);

  /// Accumulated virtual seconds of `phase` at `rank` (0 if unknown).
  [[nodiscard]] double seconds(int rank, const std::string& phase) const;
  /// Sum over all ranks.
  [[nodiscard]] double total_seconds(const std::string& phase) const;
  [[nodiscard]] std::uint64_t counter(int rank, const std::string& name) const;

  /// All phase names seen, sorted.
  [[nodiscard]] std::vector<std::string> phases() const;

  /// Record a completed interval explicitly (retroactive accounting); it
  /// counts toward the phase totals and is retained for trace export.
  void record(int rank, const std::string& phase, Time begin, Time end);

  /// chrome://tracing ("Trace Event Format") JSON of every *recorded*
  /// interval — load in a browser's tracing UI to see the virtual-time
  /// schedule. Only intervals added via record() appear (begin/end pairs
  /// fold into accumulated totals and are not individually retained).
  void export_chrome_trace(std::ostream& os) const;

  /// Per-rank table: one row per rank, one column per phase (seconds).
  void report(std::ostream& os) const;
  void report_csv(std::ostream& os) const;

 private:
  struct Cell {
    Time accumulated = 0;
    Time open_since = -1;  // -1 = not running
  };
  struct Interval {
    int rank;
    std::string phase;
    Time begin;
    Time end;
  };

  Engine* engine_;
  int ranks_;
  std::vector<Interval> intervals_;
  std::vector<std::map<std::string, Cell>> timers_;
  std::vector<std::map<std::string, std::uint64_t>> counters_;
};

/// RAII phase scope: begins at construction, ends at destruction.
class ScopedPhase {
 public:
  ScopedPhase(Profiler& profiler, int rank, std::string phase)
      : profiler_(&profiler), rank_(rank), phase_(std::move(phase)) {
    profiler_->begin(rank_, phase_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() { profiler_->end(rank_, phase_); }

 private:
  Profiler* profiler_;
  int rank_;
  std::string phase_;
};

}  // namespace hupc::sim
