// Coroutine-based logical processes for the discrete-event simulator.
//
// sim::Task<T> is a lazily-started coroutine whose awaiter chains the
// caller as its continuation (symmetric transfer, so arbitrarily deep call
// chains use O(1) stack). A Task is single-shot: it is either co_awaited by
// exactly one parent or handed to Engine-level spawn() (see process.hpp).
//
// Everything runs on the single simulation thread, so promises need no
// synchronization (C++ Core Guidelines CP.1 caveat: this library is
// explicitly single-threaded by design; the *simulated* concurrency is in
// virtual time).
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

namespace hupc::sim {

template <class T>
class Task;

namespace detail {

class PromiseBase {
 public:
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <class Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <class T>
class Promise final : public PromiseBase {
 public:
  Task<T> get_return_object() noexcept;
  void return_value(T value) noexcept { value_ = std::move(value); }
  T take_value() {
    if (this->exception) std::rethrow_exception(this->exception);
    return std::move(value_);
  }

 private:
  T value_{};
};

template <>
class Promise<void> final : public PromiseBase {
 public:
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
  void take_value() {
    if (this->exception) std::rethrow_exception(this->exception);
  }
};

}  // namespace detail

/// A lazily-started simulation coroutine returning T.
template <class T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(handle_type h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return handle_ && handle_.done(); }

  /// Awaiting a Task starts it and suspends the awaiter until it completes;
  /// the result (or exception) of the child is propagated.
  auto operator co_await() && noexcept {
    struct Awaiter {
      handle_type handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;  // symmetric transfer: start the child immediately
      }
      T await_resume() { return handle.promise().take_value(); }
    };
    return Awaiter{handle_};
  }

  /// Release ownership of the coroutine frame (used by the spawn machinery,
  /// which takes over lifetime management).
  handle_type release() noexcept { return std::exchange(handle_, {}); }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  handle_type handle_{};
};

namespace detail {

template <class T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace hupc::sim
