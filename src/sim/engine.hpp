// The discrete-event simulation engine.
//
// A single Engine owns a priority queue of timestamped events. Events are
// plain callbacks; coroutine-based logical processes (sim::Task) schedule
// their own resumption through it. The entire simulation runs on one OS
// thread: determinism comes from strict (time, sequence) ordering, and the
// design is data-race-free by construction (C++ Core Guidelines CP.2).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "fault/hooks.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace hupc::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time. Monotonically non-decreasing during run().
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute virtual time `at` (clamped to now()).
  /// Events scheduled for the same instant run in scheduling order.
  void schedule_at(Time at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` from now.
  void schedule_in(Time delay, std::function<void()> fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Run until the event queue is empty. Returns the final virtual time.
  Time run();

  /// Run until the event queue is empty or virtual time would exceed
  /// `deadline`; events after the deadline remain queued.
  Time run_until(Time deadline);

  /// Execute a single event. Returns false if the queue was empty.
  bool step();

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed so far (useful for tests and perf counters).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Attach a tracer (non-owning, may be null): every dispatched event is
  /// recorded as an engine-category instant. Recording never charges
  /// virtual time, so attaching a tracer cannot change a simulation.
  void set_tracer(trace::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] trace::Tracer* tracer() const noexcept { return tracer_; }

  /// Attach a fault-injection hook (non-owning, may be null): every
  /// scheduled event's timestamp may be perturbed (delayed) by the hook.
  /// The result is clamped to now(), so monotonicity is preserved. Null —
  /// the default — leaves scheduling untouched.
  void set_fault(fault::ScheduleHook* hook) noexcept { fault_ = hook; }
  [[nodiscard]] fault::ScheduleHook* fault() const noexcept { return fault_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  trace::Tracer* tracer_ = nullptr;
  fault::ScheduleHook* fault_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace hupc::sim
