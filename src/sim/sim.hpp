// Umbrella header for the discrete-event simulation engine.
#pragma once

#include "sim/engine.hpp"    // IWYU pragma: export
#include "sim/process.hpp"   // IWYU pragma: export
#include "sim/profiler.hpp"  // IWYU pragma: export
#include "sim/resource.hpp"  // IWYU pragma: export
#include "sim/sync.hpp"      // IWYU pragma: export
#include "sim/task.hpp"      // IWYU pragma: export
#include "sim/time.hpp"      // IWYU pragma: export
