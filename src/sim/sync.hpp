// Virtual-time synchronization primitives for simulation coroutines.
//
// All waits are condition-based (C++ Core Guidelines CP.42): a coroutine
// suspends on a primitive and is resumed by the event that satisfies it.
// Wakeups are posted as same-instant engine events, which keeps resume
// stacks flat and ordering deterministic (FIFO per primitive).
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace hupc::sim {

/// One-shot broadcast event. Once triggered, all current and future waiters
/// proceed immediately.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(&engine) {}

  [[nodiscard]] bool triggered() const noexcept { return triggered_; }

  void trigger() {
    if (triggered_) return;
    triggered_ = true;
    for (auto h : waiters_) {
      engine_->schedule_in(0, [h] { h.resume(); });
    }
    waiters_.clear();
  }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Event& ev;
      bool await_ready() const noexcept { return ev.triggered_; }
      void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine* engine_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore in virtual time; FIFO wakeup order.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::int64_t initial)
      : engine_(&engine), count_(initial) {
    assert(initial >= 0);
  }

  [[nodiscard]] std::int64_t available() const noexcept { return count_; }

  [[nodiscard]] auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() {
        if (sem.count_ > 0) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release(std::int64_t n = 1) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (!waiters_.empty()) {
        auto h = waiters_.front();
        waiters_.pop_front();
        // The permit is handed directly to the waiter; count_ unchanged.
        engine_->schedule_in(0, [h] { h.resume(); });
      } else {
        ++count_;
      }
    }
  }

 private:
  Engine* engine_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// FIFO mutex. Use ScopedLock for RAII-style sections (CP.20).
class Mutex {
 public:
  explicit Mutex(Engine& engine) : sem_(engine, 1) {}

  [[nodiscard]] auto lock() { return sem_.acquire(); }
  void unlock() { sem_.release(); }

  /// Non-blocking acquisition attempt.
  [[nodiscard]] bool try_lock() {
    if (sem_.available() > 0) {
      // Safe: available()>0 implies acquire() completes synchronously.
      auto aw = sem_.acquire();
      const bool ok = aw.await_ready();
      assert(ok);
      return ok;
    }
    return false;
  }

 private:
  Semaphore sem_;
};

/// RAII unlock guard; pairs with `co_await mutex.lock()`.
class ScopedLock {
 public:
  explicit ScopedLock(Mutex& m) noexcept : mutex_(&m) {}
  ScopedLock(ScopedLock&& o) noexcept : mutex_(std::exchange(o.mutex_, nullptr)) {}
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;
  ScopedLock& operator=(ScopedLock&&) = delete;
  ~ScopedLock() {
    if (mutex_) mutex_->unlock();
  }

 private:
  Mutex* mutex_;
};

namespace detail {

template <class T>
struct FutureState {
  Engine* engine;
  bool ready = false;
  std::optional<T> value;
  std::exception_ptr exception{};
  std::vector<std::coroutine_handle<>> waiters;

  void wake_all() {
    for (auto h : waiters) {
      engine->schedule_in(0, [h] { h.resume(); });
    }
    waiters.clear();
  }
};

template <>
struct FutureState<void> {
  Engine* engine;
  bool ready = false;
  std::exception_ptr exception{};
  std::vector<std::coroutine_handle<>> waiters;

  void wake_all() {
    for (auto h : waiters) {
      engine->schedule_in(0, [h] { h.resume(); });
    }
    waiters.clear();
  }
};

}  // namespace detail

template <class T>
class Promise;

/// Shared-state future usable any number of times from any coroutine; the
/// GAS layer returns these from non-blocking operations (upc_memput_async
/// analogue: issue returns a Future, upc_waitsync is `co_await fut.wait()`).
template <class T = void>
class Future {
 public:
  Future() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool ready() const noexcept { return state_ && state_->ready; }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      std::shared_ptr<detail::FutureState<T>> state;
      bool await_ready() const noexcept { return !state || state->ready; }
      void await_suspend(std::coroutine_handle<> h) {
        state->waiters.push_back(h);
      }
      T await_resume() const {
        if (state && state->exception) std::rethrow_exception(state->exception);
        if constexpr (!std::is_void_v<T>) {
          return *state->value;
        }
      }
    };
    return Awaiter{state_};
  }

  /// Value access once ready (tests / host-side inspection).
  template <class U = T>
    requires(!std::is_void_v<U>)
  [[nodiscard]] const U& get() const {
    assert(ready());
    return *state_->value;
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <class T = void>
class Promise {
 public:
  explicit Promise(Engine& engine)
      : state_(std::make_shared<detail::FutureState<T>>()) {
    state_->engine = &engine;
  }

  [[nodiscard]] Future<T> get_future() const { return Future<T>(state_); }

  template <class U = T>
    requires(!std::is_void_v<U>)
  void set_value(U value) {
    assert(!state_->ready);
    state_->value = std::move(value);
    state_->ready = true;
    state_->wake_all();
  }

  template <class U = T>
    requires(std::is_void_v<U>)
  void set_value() {
    assert(!state_->ready);
    state_->ready = true;
    state_->wake_all();
  }

  void set_exception(std::exception_ptr e) {
    assert(!state_->ready);
    state_->exception = std::move(e);
    state_->ready = true;
    state_->wake_all();
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Reusable cyclic barrier for N participants. Models the UPC barrier
/// semantics including the split-phase notify/wait pair.
class Barrier {
 public:
  Barrier(Engine& engine, int parties)
      : engine_(&engine), parties_(parties), arrived_(0), phase_(0) {
    assert(parties >= 1);
  }

  [[nodiscard]] int parties() const noexcept { return parties_; }
  [[nodiscard]] std::uint64_t phase() const noexcept { return phase_; }

  /// Full barrier: notify + wait.
  [[nodiscard]] auto arrive_and_wait() {
    struct Awaiter {
      Barrier& bar;
      bool await_ready() {
        if (bar.arrived_ + 1 == bar.parties_) {
          bar.complete_phase();
          return true;  // last arriver does not suspend
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ++bar.arrived_;
        bar.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Split-phase: notify() records arrival without blocking...
  void notify() {
    ++arrived_;
    if (arrived_ == parties_) complete_phase();
  }

  /// ...and wait(phase) blocks until the phase that `notify` contributed to
  /// has completed. Callers capture `phase()` before notify().
  [[nodiscard]] auto wait_phase(std::uint64_t phase) {
    struct Awaiter {
      Barrier& bar;
      std::uint64_t phase;
      bool await_ready() const noexcept { return bar.phase_ > phase; }
      void await_suspend(std::coroutine_handle<> h) {
        bar.phase_waiters_.emplace_back(phase, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, phase};
  }

 private:
  void complete_phase() {
    arrived_ = 0;
    ++phase_;
    for (auto h : waiters_) {
      engine_->schedule_in(0, [h] { h.resume(); });
    }
    waiters_.clear();
    // Release split-phase waiters whose phase has now completed.
    std::vector<std::pair<std::uint64_t, std::coroutine_handle<>>> keep;
    keep.reserve(phase_waiters_.size());
    for (auto& [ph, h] : phase_waiters_) {
      if (phase_ > ph) {
        engine_->schedule_in(0, [h2 = h] { h2.resume(); });
      } else {
        keep.emplace_back(ph, h);
      }
    }
    phase_waiters_ = std::move(keep);
  }

  Engine* engine_;
  int parties_;
  int arrived_;
  std::uint64_t phase_;
  std::vector<std::coroutine_handle<>> waiters_;
  std::vector<std::pair<std::uint64_t, std::coroutine_handle<>>> phase_waiters_;
};

/// Await completion of a dynamic set of futures (upc_waitsync_all analogue).
inline Task<void> wait_all(std::vector<Future<>> futures) {
  for (auto& f : futures) {
    co_await f.wait();
  }
}

}  // namespace hupc::sim
