// Contention-modeling resources.
//
// FifoServer — a serially-reusable resource (e.g. one network connection's
// injection path, a lock-protected steal-stack): requests are serviced one
// at a time in FIFO order, each holding the server for a caller-specified
// virtual duration.
//
// FluidLink — a processor-sharing bandwidth resource (e.g. a NIC, a socket's
// memory controller): concurrent transfers progress simultaneously at
// water-filling fair-share rates, optionally capped per transfer (models a
// per-connection bandwidth limit below the aggregate link capacity). Rates
// are recomputed exactly on every arrival and departure, so the model is a
// piecewise-linear fluid approximation with no time-stepping error.
#pragma once

#include <coroutine>
#include <cstdint>
#include <list>
#include <memory>

#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace hupc::sim {

class FifoServer {
 public:
  explicit FifoServer(Engine& engine) : engine_(&engine), mutex_(engine) {}

  /// Occupy the server for `service` virtual time, after waiting in FIFO
  /// order behind earlier requests.
  Task<void> serve(Time service) {
    co_await mutex_.lock();
    ScopedLock guard(mutex_);
    busy_ += service;
    ++served_;
    co_await delay(*engine_, service);
  }

  /// Total busy time and request count (utilization diagnostics).
  [[nodiscard]] Time busy_time() const noexcept { return busy_; }
  [[nodiscard]] std::uint64_t served() const noexcept { return served_; }

 private:
  Engine* engine_;
  Mutex mutex_;
  Time busy_ = 0;
  std::uint64_t served_ = 0;
};

/// Processor-sharing link with capacity in bytes/second.
class FluidLink {
 public:
  FluidLink(Engine& engine, double capacity_bytes_per_sec);
  FluidLink(const FluidLink&) = delete;
  FluidLink& operator=(const FluidLink&) = delete;

  /// Move `bytes` through the link; completes when the transfer's share of
  /// the capacity has carried all bytes. `max_rate` (bytes/sec) caps this
  /// transfer's share; <=0 means uncapped.
  [[nodiscard]] Task<void> transfer(double bytes, double max_rate = 0.0);

  /// Start a transfer immediately and return a Future that becomes ready on
  /// completion — lets a caller drive several links in parallel and await
  /// the slowest (e.g. a cross-socket stream occupying memory bus + QPI).
  [[nodiscard]] Future<> transfer_async(double bytes, double max_rate = 0.0);

  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t active_transfers() const noexcept {
    return transfers_.size();
  }
  [[nodiscard]] double total_bytes() const noexcept { return total_bytes_; }

 private:
  struct Xfer {
    double remaining;
    double cap;   // per-transfer rate cap (or huge)
    double rate;  // current assigned rate
    Promise<> done;
  };

  void advance_progress();
  void assign_rates();
  void schedule_next_completion();
  void on_completion_event(std::uint64_t generation);

  Engine* engine_;
  double capacity_;
  double total_bytes_ = 0.0;
  Time last_update_ = 0;
  std::uint64_t generation_ = 0;  // invalidates stale completion events
  std::list<Xfer> transfers_;
};

}  // namespace hupc::sim
