#include "sim/profiler.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <set>

#include "util/table.hpp"

namespace hupc::sim {

Profiler::Profiler(Engine& engine, int ranks)
    : engine_(&engine),
      ranks_(ranks),
      timers_(static_cast<std::size_t>(ranks)),
      counters_(static_cast<std::size_t>(ranks)) {
  assert(ranks >= 1);
}

void Profiler::begin(int rank, const std::string& phase) {
  auto& cell = timers_[static_cast<std::size_t>(rank)][phase];
  assert(cell.open_since < 0 && "Profiler: phase already running");
  cell.open_since = engine_->now();
}

void Profiler::end(int rank, const std::string& phase) {
  auto& cell = timers_[static_cast<std::size_t>(rank)][phase];
  assert(cell.open_since >= 0 && "Profiler: phase not running");
  cell.accumulated += engine_->now() - cell.open_since;
  cell.open_since = -1;
}

void Profiler::count(int rank, const std::string& counter,
                     std::uint64_t delta) {
  counters_[static_cast<std::size_t>(rank)][counter] += delta;
}

double Profiler::seconds(int rank, const std::string& phase) const {
  const auto& map = timers_[static_cast<std::size_t>(rank)];
  const auto it = map.find(phase);
  return it == map.end() ? 0.0 : to_seconds(it->second.accumulated);
}

double Profiler::total_seconds(const std::string& phase) const {
  double total = 0;
  for (int r = 0; r < ranks_; ++r) total += seconds(r, phase);
  return total;
}

std::uint64_t Profiler::counter(int rank, const std::string& name) const {
  const auto& map = counters_[static_cast<std::size_t>(rank)];
  const auto it = map.find(name);
  return it == map.end() ? 0 : it->second;
}

std::vector<std::string> Profiler::phases() const {
  std::set<std::string> names;
  for (const auto& map : timers_) {
    for (const auto& [name, cell] : map) names.insert(name);
  }
  return {names.begin(), names.end()};
}

void Profiler::report(std::ostream& os) const {
  const auto names = phases();
  std::vector<std::string> headers{"rank"};
  headers.insert(headers.end(), names.begin(), names.end());
  util::Table table(std::move(headers));
  for (int r = 0; r < ranks_; ++r) {
    std::vector<std::string> row{std::to_string(r)};
    for (const auto& name : names) {
      row.push_back(util::Table::num(seconds(r, name) * 1e3, 3));  // ms
    }
    table.add_row(std::move(row));
  }
  table.print(os);
}

void Profiler::record(int rank, const std::string& phase, Time begin,
                      Time end) {
  assert(end >= begin);
  timers_[static_cast<std::size_t>(rank)][phase].accumulated += end - begin;
  intervals_.push_back(Interval{rank, phase, begin, end});
}

void Profiler::export_chrome_trace(std::ostream& os) const {
  // Trace Event Format: "X" complete events, microsecond timestamps.
  os << "[";
  bool first = true;
  for (const auto& iv : intervals_) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"" << iv.phase << "\", \"ph\": \"X\", \"pid\": 0, "
       << "\"tid\": " << iv.rank
       << ", \"ts\": " << static_cast<double>(iv.begin) / 1000.0
       << ", \"dur\": " << static_cast<double>(iv.end - iv.begin) / 1000.0
       << "}";
  }
  os << "\n]\n";
}

void Profiler::report_csv(std::ostream& os) const {
  const auto names = phases();
  os << "rank";
  for (const auto& name : names) os << ',' << name;
  os << '\n';
  for (int r = 0; r < ranks_; ++r) {
    os << r;
    for (const auto& name : names) os << ',' << seconds(r, name);
    os << '\n';
  }
}

}  // namespace hupc::sim
