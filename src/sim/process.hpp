// Spawning logical processes and awaiting virtual-time delays.
//
// spawn() turns a Task<void> into an engine-driven root process: it starts
// at the current virtual time, runs to completion, and self-destroys. The
// returned Process handle supports joining both from other coroutines
// (co_await p.join(e)) and from host code (drive the engine, then rethrow()).
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace hupc::sim {

/// Awaitable that suspends the current coroutine for `d` virtual time.
/// `co_await delay(engine, 5 * kMicrosecond);`
struct DelayAwaiter {
  Engine& engine;
  Time duration;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.schedule_in(duration, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

[[nodiscard]] inline DelayAwaiter delay(Engine& engine, Time d) {
  return DelayAwaiter{engine, d};
}

namespace detail {

struct ProcState {
  bool done = false;
  std::exception_ptr exception{};
  std::vector<std::coroutine_handle<>> joiners;
};

/// Root coroutine type: auto-destroyed at completion (final_suspend never
/// suspends); completion status lives in the shared ProcState, never in the
/// frame. The engine must be run to completion before destruction, otherwise
/// in-flight frames are unreachable.
struct RootTask {
  struct promise_type {
    RootTask get_return_object() noexcept {
      return RootTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    // The root body catches everything; reaching here means a logic error.
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle;
};

inline RootTask run_root(Engine& engine, std::shared_ptr<ProcState> state,
                         Task<void> body) {
  try {
    co_await std::move(body);
  } catch (...) {
    state->exception = std::current_exception();
  }
  state->done = true;
  // Wake joiners as same-instant events: keeps the resume stack flat and the
  // ordering deterministic.
  for (auto h : state->joiners) {
    engine.schedule_in(0, [h] { h.resume(); });
  }
  state->joiners.clear();
}

}  // namespace detail

/// Handle to a spawned logical process.
class Process {
 public:
  Process() = default;

  [[nodiscard]] bool done() const noexcept { return state_ && state_->done; }
  [[nodiscard]] bool failed() const noexcept {
    return state_ && state_->exception != nullptr;
  }

  /// Rethrow the process's exception, if any. Host-side use after run().
  void rethrow() const {
    if (state_ && state_->exception) std::rethrow_exception(state_->exception);
  }

  /// Awaitable join for use inside other coroutines. Propagates exceptions.
  [[nodiscard]] auto join() {
    struct Awaiter {
      std::shared_ptr<detail::ProcState> state;
      bool await_ready() const noexcept { return !state || state->done; }
      void await_suspend(std::coroutine_handle<> h) const {
        state->joiners.push_back(h);
      }
      void await_resume() const {
        if (state && state->exception) std::rethrow_exception(state->exception);
      }
    };
    return Awaiter{state_};
  }

 private:
  friend Process spawn(Engine&, Task<void>);
  explicit Process(std::shared_ptr<detail::ProcState> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::ProcState> state_;
};

/// Start `body` as a root process at the current virtual time.
inline Process spawn(Engine& engine, Task<void> body) {
  auto state = std::make_shared<detail::ProcState>();
  detail::RootTask root = detail::run_root(engine, state, std::move(body));
  // run_root is suspended at initial_suspend; kick it off as an engine event
  // so processes begin in spawn order once the engine runs.
  engine.schedule_in(0, [h = root.handle] { h.resume(); });
  return Process(state);
}

namespace detail {
// NB: fully qualified — detail::Promise (the coroutine promise type in
// task.hpp) would otherwise shadow the Future/Promise pair from sync.hpp.
inline Task<void> complete_into(Task<void> body,
                                ::hupc::sim::Promise<> promise) {
  try {
    co_await std::move(body);
    promise.set_value();
  } catch (...) {
    promise.set_exception(std::current_exception());
  }
}
}  // namespace detail

/// Start `body` as a root process and return a Future that becomes ready
/// (or carries the exception) when it completes. This is the bridge from
/// Task-returning APIs to fire-and-forget-then-waitsync usage patterns
/// (upc_memput_async / upc_waitsync analogues in the GAS layer).
inline Future<> start(Engine& engine, Task<void> body) {
  Promise<> promise(engine);
  Future<> future = promise.get_future();
  spawn(engine, detail::complete_into(std::move(body), std::move(promise)));
  return future;
}

}  // namespace hupc::sim
