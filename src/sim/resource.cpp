#include "sim/resource.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace hupc::sim {

namespace {
// Bytes below this are considered delivered (absorbs float rounding at
// completion-event boundaries).
constexpr double kEpsilonBytes = 1e-6;
}  // namespace

FluidLink::FluidLink(Engine& engine, double capacity_bytes_per_sec)
    : engine_(&engine), capacity_(capacity_bytes_per_sec) {
  assert(capacity_ > 0.0);
}

Future<> FluidLink::transfer_async(double bytes, double max_rate) {
  total_bytes_ += bytes;
  Promise<> done(*engine_);
  Future<> fut = done.get_future();
  if (bytes <= kEpsilonBytes) {
    done.set_value();
    return fut;
  }
  advance_progress();
  transfers_.push_back(Xfer{
      bytes,
      max_rate > 0.0 ? max_rate : std::numeric_limits<double>::infinity(),
      0.0, std::move(done)});
  assign_rates();
  schedule_next_completion();
  return fut;
}

Task<void> FluidLink::transfer(double bytes, double max_rate) {
  Future<> fut = transfer_async(bytes, max_rate);
  co_await fut.wait();
}

void FluidLink::advance_progress() {
  const Time now = engine_->now();
  const double elapsed = to_seconds(now - last_update_);
  last_update_ = now;
  if (elapsed <= 0.0) return;
  for (auto& t : transfers_) {
    t.remaining = std::max(0.0, t.remaining - elapsed * t.rate);
  }
}

void FluidLink::assign_rates() {
  // Water-filling with per-transfer caps: repeatedly give every uncapped
  // transfer an equal share of the leftover capacity; transfers whose cap is
  // below the share get exactly their cap and are removed from the pool.
  std::vector<Xfer*> pool;
  pool.reserve(transfers_.size());
  for (auto& t : transfers_) pool.push_back(&t);
  std::sort(pool.begin(), pool.end(),
            [](const Xfer* a, const Xfer* b) { return a->cap < b->cap; });

  double remaining_cap = capacity_;
  std::size_t remaining_n = pool.size();
  for (Xfer* t : pool) {
    const double fair = remaining_cap / static_cast<double>(remaining_n);
    t->rate = std::min(t->cap, fair);
    remaining_cap -= t->rate;
    --remaining_n;
  }
}

void FluidLink::schedule_next_completion() {
  ++generation_;
  if (transfers_.empty()) return;

  double min_finish = std::numeric_limits<double>::infinity();
  for (const auto& t : transfers_) {
    if (t.rate <= 0.0) continue;
    min_finish = std::min(min_finish, t.remaining / t.rate);
  }
  if (!std::isfinite(min_finish)) return;  // all rates zero: stalled link

  // Round up to the next nanosecond so remaining provably reaches ~0.
  const Time dt = std::max<Time>(1, from_seconds(min_finish) +
                                        (min_finish > 0.0 ? 1 : 0));
  const std::uint64_t gen = generation_;
  engine_->schedule_in(dt, [this, gen] { on_completion_event(gen); });
}

void FluidLink::on_completion_event(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a newer state
  advance_progress();
  bool removed = false;
  for (auto it = transfers_.begin(); it != transfers_.end();) {
    if (it->remaining <= kEpsilonBytes) {
      it->done.set_value();
      it = transfers_.erase(it);
      removed = true;
    } else {
      ++it;
    }
  }
  if (removed) assign_rates();
  schedule_next_completion();
}

}  // namespace hupc::sim
