#include "net/network.hpp"

#include <cassert>

namespace hupc::net {

Network::Network(sim::Engine& engine, const topo::MachineSpec& machine,
                 ConduitSpec conduit, ConnectionMode mode,
                 int endpoints_per_node)
    : engine_(&engine),
      conduit_(std::move(conduit)),
      mode_(mode),
      endpoints_per_node_(endpoints_per_node),
      counters_(static_cast<std::size_t>(machine.nodes)) {
  assert(endpoints_per_node_ >= 1);
  nics_.reserve(static_cast<std::size_t>(machine.nodes));
  for (int n = 0; n < machine.nodes; ++n) {
    nics_.push_back(std::make_unique<sim::FluidLink>(engine, conduit_.nic_bw));
  }
  const int conns_per_node =
      mode_ == ConnectionMode::per_process ? endpoints_per_node_ : 1;
  connections_.reserve(
      static_cast<std::size_t>(machine.nodes * conns_per_node));
  for (int i = 0; i < machine.nodes * conns_per_node; ++i) {
    connections_.push_back(std::make_unique<sim::Mutex>(engine));
  }
  endpoints_.reserve(
      static_cast<std::size_t>(machine.nodes * endpoints_per_node_));
  for (int i = 0; i < machine.nodes * endpoints_per_node_; ++i) {
    endpoints_.push_back(std::make_unique<sim::Mutex>(engine));
  }
  api_queues_.reserve(static_cast<std::size_t>(machine.nodes));
  for (int n = 0; n < machine.nodes; ++n) {
    api_queues_.push_back(std::make_unique<sim::FifoServer>(engine));
  }
}

sim::Mutex& Network::connection(int node, int endpoint) {
  const int conns_per_node =
      mode_ == ConnectionMode::per_process ? endpoints_per_node_ : 1;
  const int local =
      mode_ == ConnectionMode::per_process ? endpoint % endpoints_per_node_ : 0;
  return *connections_[static_cast<std::size_t>(node * conns_per_node + local)];
}

sim::Task<void> Network::rma(Transfer t) {
  assert(t.src_node != t.dst_node &&
         "intra-node traffic takes the shared-memory path in hupc::gas");
  const int rank = trace_rank(t.src_node, t.src_ep);
  HUPC_TRACE_SCOPE(tracer_, trace::Category::net, "rma", rank,
                   static_cast<std::uint64_t>(t.bytes),
                   static_cast<std::uint64_t>(t.dst_node));
  HUPC_TRACE_INSTANT(tracer_, trace::Category::net, "inject", rank,
                     static_cast<std::uint64_t>(t.bytes),
                     static_cast<std::uint64_t>(t.dst_node));
  HUPC_TRACE_COUNT(tracer_, "net.msg", rank);
  HUPC_TRACE_COUNT(tracer_, "net.bytes", rank,
                   static_cast<std::uint64_t>(t.bytes));
  auto& src_counters = counters_[static_cast<std::size_t>(t.src_node)];
  ++src_counters.messages;
  src_counters.bytes += t.bytes;
  if (t.coalesced_count > 1) {
    ++src_counters.aggregated;
    src_counters.coalesced_ops += t.coalesced_count;
    HUPC_TRACE_COUNT(tracer_, "net.aggregated", rank);
    HUPC_TRACE_COUNT(tracer_, "net.coalesced_ops", rank, t.coalesced_count);
  }
  if (t.regions > 1) {
    // Packed VIS footprint: the trace carries region count and bytes per
    // region so a Chrome-trace view distinguishes 1x64KiB from 4096x16B
    // (the "rma" scope above only shows the total).
    ++src_counters.vis_messages;
    src_counters.vis_regions += t.regions;
    src_counters.vis_payload_bytes += t.payload_bytes;
    src_counters.vis_bytes += t.bytes;
    HUPC_TRACE_INSTANT(tracer_, trace::Category::net, "vis", rank, t.regions,
                       static_cast<std::uint64_t>(
                           t.payload_bytes / static_cast<double>(t.regions)));
    HUPC_TRACE_COUNT(tracer_, "net.vis.msg", rank);
    HUPC_TRACE_COUNT(tracer_, "net.vis.regions", rank, t.regions);
    HUPC_TRACE_COUNT(tracer_, "net.vis.bytes", rank,
                     static_cast<std::uint64_t>(t.payload_bytes));
  }

  // Fault injection: one consultation per message. The mutation can hold
  // the message (a dark link buffers it until recovery) and/or degrade its
  // wire rate; it never drops or duplicates payload bytes.
  double wire_cap = conduit_.conn_bw;
  if (fault_ != nullptr) {
    const fault::MessageMutation mut =
        fault_->on_message(t.src_node, t.dst_node, t.bytes);
    if (mut.hold_s > 0.0) {
      HUPC_TRACE_COUNT(tracer_, "fault.msg.hold", rank);
      co_await sim::delay(*engine_, sim::from_seconds(mut.hold_s));
    }
    if (mut.bw_scale < 1.0) {
      HUPC_TRACE_COUNT(tracer_, "fault.msg.degrade", rank);
      // Floor at 1e-4x: a zero-rate flow would never complete (blackouts
      // are modeled as holds, not zero bandwidth).
      wire_cap *= mut.bw_scale < 1e-4 ? 1e-4 : mut.bw_scale;
    }
  }

  // Shared network-API path: every message serializes briefly through the
  // node's HCA/driver; independent process endpoints contend harder than
  // threads multiplexed over one connection.
  const double api = mode_ == ConnectionMode::per_process
                         ? conduit_.api_overhead_process_s
                         : conduit_.api_overhead_shared_s;
  {
    // Queue wait + service on the node's software path: the per-connection
    // queueing the thesis blames for pthreads' small-message gap.
    HUPC_TRACE_SCOPE(tracer_, trace::Category::net, "api_queue", rank);
    co_await api_queues_[static_cast<std::size_t>(t.src_node)]->serve(
        sim::from_seconds(api * t.api_scale));
  }

  // Injection: the connection is held for the send overhead plus the
  // staging copy; the wire legs start as soon as staging begins (pipelined),
  // so a lone large message is wire-bound while senders sharing a
  // connection still serialize on the staging path.
  // The endpoint pipeline: one thread's messages occupy the wire one at a
  // time (each at most conn_bw), so a lone rank per node tops out at the
  // single-flow ceiling while additional ranks add concurrent flows until
  // the NIC saturates.
  {
    auto& endpoint = *endpoints_[static_cast<std::size_t>(
        t.src_node * endpoints_per_node_ + t.src_ep % endpoints_per_node_)];
    co_await endpoint.lock();
    sim::ScopedLock pipeline(endpoint);
    sim::Future<> src_leg, dst_leg;
    {
      auto& conn = connection(t.src_node, t.src_ep);
      co_await conn.lock();
      sim::ScopedLock guard(conn);
      co_await sim::delay(*engine_,
                          sim::from_seconds(conduit_.send_overhead_s));
      src_leg = nic(t.src_node).transfer_async(t.bytes, wire_cap);
      dst_leg = nic(t.dst_node).transfer_async(t.bytes, wire_cap);
      co_await sim::delay(*engine_,
                          sim::from_seconds(t.bytes / conduit_.stage_bw));
    }
    co_await src_leg.wait();
    co_await dst_leg.wait();
  }

  // Delivery: propagation latency plus receive-side software overhead.
  // The endpoint is released first — propagation occupies the wire, not
  // the sender, so an endpoint's next message can begin injecting while
  // this one is in flight (LogGP: back-to-back sends pay the gap, and only
  // the last one's latency is exposed). Blocking callers still observe the
  // full delivery because they await this coroutine to completion; it is
  // the split-phase/async callers that get the pipelining.
  co_await sim::delay(
      *engine_,
      sim::from_seconds(conduit_.latency_s + conduit_.recv_overhead_s));
  HUPC_TRACE_INSTANT(tracer_, trace::Category::net, "deliver", rank,
                     static_cast<std::uint64_t>(t.bytes),
                     static_cast<std::uint64_t>(t.dst_node));
  HUPC_TRACE_COUNT(tracer_, "net.delivered", rank);
}

sim::Task<void> Network::loopback(Transfer t, double loopback_bw) {
  const int rank = trace_rank(t.src_node, t.src_ep);
  HUPC_TRACE_SCOPE(tracer_, trace::Category::net, "loopback", rank,
                   static_cast<std::uint64_t>(t.bytes));
  HUPC_TRACE_COUNT(tracer_, "net.loopback", rank);
  const double api = mode_ == ConnectionMode::per_process
                         ? conduit_.api_overhead_process_s
                         : conduit_.api_overhead_shared_s;
  {
    HUPC_TRACE_SCOPE(tracer_, trace::Category::net, "api_queue", rank);
    co_await api_queues_[static_cast<std::size_t>(t.src_node)]->serve(
        sim::from_seconds(api * t.api_scale));
  }

  auto& endpoint = *endpoints_[static_cast<std::size_t>(
      t.src_node * endpoints_per_node_ + t.src_ep % endpoints_per_node_)];
  co_await endpoint.lock();
  sim::ScopedLock pipeline(endpoint);
  {
    auto& conn = connection(t.src_node, t.src_ep);
    co_await conn.lock();
    sim::ScopedLock guard(conn);
    co_await sim::delay(*engine_, sim::from_seconds(conduit_.send_overhead_s));
    co_await sim::delay(*engine_,
                        sim::from_seconds(t.bytes / conduit_.stage_bw));
  }
  co_await sim::delay(*engine_, sim::from_seconds(t.bytes / loopback_bw +
                                                  conduit_.recv_overhead_s));
}

sim::Future<> Network::rma_async(Transfer t) {
  return sim::start(*engine_, rma(t));
}

std::uint64_t Network::total_messages() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counters_) total += c.messages;
  return total;
}

double Network::total_bytes() const noexcept {
  double total = 0;
  for (const auto& c : counters_) total += c.bytes;
  return total;
}

std::uint64_t Network::total_aggregated() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counters_) total += c.aggregated;
  return total;
}

std::uint64_t Network::total_coalesced_ops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counters_) total += c.coalesced_ops;
  return total;
}

std::uint64_t Network::total_vis_messages() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counters_) total += c.vis_messages;
  return total;
}

std::uint64_t Network::total_vis_regions() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counters_) total += c.vis_regions;
  return total;
}

double Network::total_vis_payload_bytes() const noexcept {
  double total = 0;
  for (const auto& c : counters_) total += c.vis_payload_bytes;
  return total;
}

double Network::total_vis_bytes() const noexcept {
  double total = 0;
  for (const auto& c : counters_) total += c.vis_bytes;
  return total;
}

}  // namespace hupc::net
