// Network conduit parameter sets (the GASNet term for a network backend).
//
// A message of S bytes from an endpoint on node A to node B costs, in
// LogGP-like terms:
//
//   [injection]  o_send + S/stage_bw   serialized per *connection* (FIFO) —
//                this is the CPU/queue-pair path; sharing one connection
//                among many threads (pthreads backend) serializes here;
//   [wire]       S carried by both NICs' fluid-shared capacity, each flow
//                individually capped at conn_bw (one flow cannot saturate
//                the NIC: Fig 4.2b's 1-link ceiling);
//   [delivery]   latency + o_recv.
//
// Presets are calibrated to the thesis microbenchmark endpoints (Fig 4.2)
// and platform descriptions (Figs 2.1/2.2): see DESIGN.md §6.
#pragma once

#include <string>

namespace hupc::net {

struct ConduitSpec {
  std::string name;
  double send_overhead_s;  // o_send: CPU cost to issue one message
  double recv_overhead_s;  // o_recv: delivery-side software cost
  double latency_s;        // L: wire latency
  double stage_bw;         // injection staging bandwidth (bytes/s)
  double conn_bw;          // per-flow wire cap (bytes/s)
  double nic_bw;           // per-node NIC aggregate (bytes/s)
  // Per-message CPU service through the node's network-software path
  // (doorbells, completion processing, GASNet polling). Serialized per
  // node. Threads multiplexed over one shared connection pay *more* per
  // message (internal runtime locking — why pthread link-pairs extract
  // less small-message throughput in Fig 4.2) even though they contend
  // less at the HCA level (captured separately by the NIC-efficiency
  // model in gas::Runtime).
  double api_overhead_process_s = 1.0e-6;
  double api_overhead_shared_s = 1.6e-6;
};

/// Mellanox ConnectX QDR InfiniBand (Lehman). Fig 4.2: 1-link flood peaks
/// ~1.5 GB/s, multi-link ~2.4 GB/s, small-message round trip ~3-4 us.
[[nodiscard]] inline ConduitSpec ib_qdr() {
  return ConduitSpec{"ib-qdr", 0.3e-6, 0.25e-6, 0.85e-6, 6.0e9, 1.55e9, 2.45e9,
                     /*api process/shared:*/ 0.6e-6, 1.0e-6};
}

/// Mellanox DDR InfiniBand (Pyramid). Fig 2.1: 1.5 GB/s unidirectional.
[[nodiscard]] inline ConduitSpec ib_ddr() {
  return ConduitSpec{"ib-ddr", 0.5e-6, 0.4e-6, 2.5e-6, 5.0e9, 1.2e9, 1.5e9};
}

/// Gigabit Ethernet over the UDP conduit (Pyramid's second network): high
/// software overhead, ~50 us latency, ~117 MB/s line rate.
[[nodiscard]] inline ConduitSpec gige() {
  return ConduitSpec{"gige", 6.0e-6, 6.0e-6, 45.0e-6, 0.5e9, 0.117e9, 0.117e9};
}

/// Which endpoints own network connections.
///   per_process — every UPC rank has its own connection (process backend:
///                 N connections per node);
///   per_node    — all ranks of a node share one connection (pthreads
///                 backend / sub-threads: 1 connection per node).
enum class ConnectionMode { per_process, per_node };

}  // namespace hupc::net
