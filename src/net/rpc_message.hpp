// Wire format for remote-procedure-call messages (the async layer's
// transport payload).
//
// An RpcMessage is what actually travels when async::rpc ships a closure to
// the owning rank: a fixed-size header followed by the bound arguments
// serialized as raw bytes. The simulation is one address space, so code
// travels by pointer — but the ARGUMENT VALUES genuinely round-trip through
// this buffer (encoded at the caller, decoded at the target), keeping the
// modeled wire size honest and catching accidental reliance on shared
// memory. The message's network cost is charged as an ordinary
// net::Transfer of wire_bytes() (see as_transfer), flowing through the
// same injection FIFOs, fault seams and counters as every other message.
//
// Encoding is in-memory little-endian host order (the simulation never
// crosses a real wire); only trivially-copyable argument types are
// accepted, mirroring the restriction real PGAS RPC layers place on bound
// arguments.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "net/network.hpp"

namespace hupc::net {

enum class RpcKind : std::uint32_t { request = 0, reply = 1 };

/// Fixed per-message overhead modeled for an RPC: the header fields below
/// plus active-message dispatch metadata (handler index, token).
inline constexpr std::size_t kRpcHeaderBytes = 32;

class RpcMessage {
 public:
  RpcMessage() = default;
  RpcMessage(RpcKind kind, std::uint64_t id, int src_rank, int dst_rank)
      : kind_(kind), id_(id), src_rank_(src_rank), dst_rank_(dst_rank) {}

  [[nodiscard]] RpcKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] int src_rank() const noexcept { return src_rank_; }
  [[nodiscard]] int dst_rank() const noexcept { return dst_rank_; }

  /// Append one trivially-copyable value to the payload.
  template <class T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const std::size_t at = payload_.size();
    payload_.resize(at + sizeof(T));
    std::memcpy(payload_.data() + at, &value, sizeof(T));
  }

  /// Read back the next value in put() order. Throws std::out_of_range on
  /// overrun (a framing bug, not a user error).
  template <class T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T get() {
    if (cursor_ + sizeof(T) > payload_.size()) {
      throw std::out_of_range("net::RpcMessage: payload overrun");
    }
    T value;
    std::memcpy(&value, payload_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  /// Reset the read cursor (the target decodes from the start).
  void rewind() noexcept { cursor_ = 0; }

  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return payload_.size();
  }
  /// Modeled on-wire size: header + serialized arguments.
  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return kRpcHeaderBytes + payload_.size();
  }

  /// The network-cost descriptor for shipping this message. RPCs ride the
  /// standard one-sided machinery (GASNet AM-over-RDMA style), so no
  /// api_scale discount applies.
  [[nodiscard]] Transfer as_transfer(int src_node, int src_ep,
                                     int dst_node) const noexcept {
    return Transfer{.src_node = src_node,
                    .src_ep = src_ep,
                    .dst_node = dst_node,
                    .bytes = static_cast<double>(wire_bytes())};
  }

 private:
  RpcKind kind_ = RpcKind::request;
  std::uint64_t id_ = 0;
  int src_rank_ = -1;
  int dst_rank_ = -1;
  std::vector<std::uint8_t> payload_;
  std::size_t cursor_ = 0;
};

}  // namespace hupc::net
