// The simulated cluster interconnect.
//
// Owns one NIC fluid link per node plus one injection FIFO per connection
// (connection granularity chosen by ConnectionMode). rma() performs a
// one-sided bulk transfer and completes when the payload is remotely
// delivered; rma_async() is its non-blocking form.
//
// Every transfer is described by a net::Transfer descriptor instead of a
// growing positional-parameter list; aggregated (coalesced) messages carry
// the number of fine-grained operations they absorbed so the counters can
// reconcile message rates with logical access rates.
//
// Counters record message/byte volumes per endpoint so benches can report
// messaging rates and verify communication schedules.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/hooks.hpp"
#include "net/conduit.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "topo/machine.hpp"
#include "trace/trace.hpp"

namespace hupc::net {

/// One contiguous run of a packed (VIS) transfer footprint, in bytes
/// relative to the transfer's destination and source bases. The descriptor
/// lowering in hupc::gas flattens strided/indexed specs into these runs;
/// the network only ever sees their count and summed payload.
struct Region {
  std::size_t dst_off = 0;
  std::size_t src_off = 0;
  std::size_t bytes = 0;
};

/// One-sided transfer descriptor (the argument to rma / rma_async /
/// loopback). `src_ep` is the node-local endpoint index of the issuing
/// rank; `api_scale` scales the per-message shared-API service cost —
/// tuned collective engines batch doorbells/completions and pay a fraction
/// of the per-message cost independent endpoints do. `coalesced_count > 1`
/// marks an aggregated message carrying that many fine-grained operations
/// (one comm::Coalescer flush); `regions > 1` marks a packed VIS message
/// carrying that many non-contiguous regions totalling `payload_bytes` of
/// real data (`bytes` additionally carries per-region metadata headers).
/// Both footprint fields affect accounting and trace only, never timing.
struct Transfer {
  int src_node = -1;
  int src_ep = 0;
  int dst_node = -1;
  double bytes = 0.0;
  double api_scale = 1.0;
  std::uint64_t coalesced_count = 1;
  std::uint64_t regions = 1;
  double payload_bytes = 0.0;  // set (payload sans headers) when regions > 1
};

class Network {
 public:
  struct Counters {
    std::uint64_t messages = 0;
    double bytes = 0.0;
    /// Aggregated messages (Transfer::coalesced_count > 1) injected from
    /// this node, and the fine-grained operations they carried.
    std::uint64_t aggregated = 0;
    std::uint64_t coalesced_ops = 0;
    /// Packed VIS messages (Transfer::regions > 1) injected from this
    /// node: message count, regions carried, payload bytes (sans headers)
    /// and gross bytes (headers included) — check_vis_conservation's view.
    std::uint64_t vis_messages = 0;
    std::uint64_t vis_regions = 0;
    double vis_payload_bytes = 0.0;
    double vis_bytes = 0.0;
  };

  /// `endpoints_per_node` — how many distinct endpoints (UPC ranks) may
  /// issue traffic per node; defines connection count in per_process mode.
  Network(sim::Engine& engine, const topo::MachineSpec& machine,
          ConduitSpec conduit, ConnectionMode mode, int endpoints_per_node);

  /// One-sided transfer of `t.bytes` from endpoint `t.src_ep` (node-local
  /// index) on `t.src_node` to `t.dst_node`. Completes at remote delivery.
  [[nodiscard]] sim::Task<void> rma(Transfer t);

  [[nodiscard]] sim::Future<> rma_async(Transfer t);

  /// Intra-node transfer through the network stack (the no-PSHM loopback
  /// path): pays API, injection and endpoint-pipeline costs like a real
  /// message — contending with genuine network traffic — but moves at
  /// `loopback_bw` instead of crossing the wire. This contention is what
  /// PSHM eliminates (thesis §3.1, Fig 3.4). `t.dst_node` is ignored (the
  /// message never leaves `t.src_node`).
  [[nodiscard]] sim::Task<void> loopback(Transfer t, double loopback_bw);

  [[nodiscard]] const ConduitSpec& conduit() const noexcept { return conduit_; }
  [[nodiscard]] ConnectionMode mode() const noexcept { return mode_; }
  [[nodiscard]] const Counters& node_counters(int node) const {
    return counters_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] std::uint64_t total_messages() const noexcept;
  [[nodiscard]] double total_bytes() const noexcept;
  [[nodiscard]] std::uint64_t total_aggregated() const noexcept;
  [[nodiscard]] std::uint64_t total_coalesced_ops() const noexcept;
  [[nodiscard]] std::uint64_t total_vis_messages() const noexcept;
  [[nodiscard]] std::uint64_t total_vis_regions() const noexcept;
  [[nodiscard]] double total_vis_payload_bytes() const noexcept;
  [[nodiscard]] double total_vis_bytes() const noexcept;

  [[nodiscard]] sim::FluidLink& nic(int node) {
    return *nics_[static_cast<std::size_t>(node)];
  }

  /// Attach a tracer (non-owning, may be null): message inject/deliver
  /// instants plus per-connection queueing scopes are recorded.
  void set_tracer(trace::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Install the actual (node, endpoint) -> global rank attribution table,
  /// flattened as `table[node * endpoints_per_node + ep]` with -1 for
  /// unused endpoint slots. The owning runtime derives it from its real
  /// placement table; without one trace_rank falls back to assuming
  /// blockwise placement (exact for every current preset, wrong in
  /// general — the documented inaccuracy this table removes).
  void set_endpoint_ranks(std::vector<int> table) {
    endpoint_ranks_ = std::move(table);
  }

  /// Attach a fault-injection hook (non-owning, may be null): every rma()
  /// consults it once at injection and applies the returned mutation —
  /// an extra hold before entering the API queue (latency spikes, link
  /// blackouts) and/or a scaled per-flow wire cap (bandwidth dips). The
  /// payload itself is never mutated, so byte conservation must survive
  /// any plan. Aggregated (coalesced) flush messages pass through the
  /// same seam: one consultation per flush, like any other message.
  void set_fault(fault::MessageHook* hook) noexcept { fault_ = hook; }

 private:
  [[nodiscard]] sim::Mutex& connection(int node, int endpoint);
  /// Global rank the exporters attribute endpoint traffic to: looked up in
  /// the placement-derived endpoint table when installed, else the
  /// blockwise-placement guess.
  [[nodiscard]] int trace_rank(int node, int endpoint) const noexcept {
    const std::size_t slot = static_cast<std::size_t>(
        node * endpoints_per_node_ + endpoint % endpoints_per_node_);
    if (slot < endpoint_ranks_.size() && endpoint_ranks_[slot] >= 0) {
      return endpoint_ranks_[slot];
    }
    return static_cast<int>(slot);
  }

  sim::Engine* engine_;
  ConduitSpec conduit_;
  ConnectionMode mode_;
  int endpoints_per_node_;
  trace::Tracer* tracer_ = nullptr;
  fault::MessageHook* fault_ = nullptr;
  std::vector<int> endpoint_ranks_;  // (node, ep) -> rank; empty = blockwise
  std::vector<std::unique_ptr<sim::FluidLink>> nics_;
  std::vector<std::unique_ptr<sim::Mutex>> connections_;
  // One per logical endpoint: a thread's wire transfers pipeline serially
  // at conn_bw (a single thread cannot saturate the NIC — the 1-link
  // ceiling of Fig 4.2b and the 2-threads-per-node knee of Fig 4.4).
  std::vector<std::unique_ptr<sim::Mutex>> endpoints_;
  std::vector<std::unique_ptr<sim::FifoServer>> api_queues_;  // per node
  std::vector<Counters> counters_;
};

}  // namespace hupc::net
