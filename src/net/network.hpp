// The simulated cluster interconnect.
//
// Owns one NIC fluid link per node plus one injection FIFO per connection
// (connection granularity chosen by ConnectionMode). rma() performs a
// one-sided bulk transfer and completes when the payload is remotely
// delivered; rma_async() is its non-blocking form.
//
// Counters record message/byte volumes per endpoint so benches can report
// messaging rates and verify communication schedules.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/hooks.hpp"
#include "net/conduit.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "topo/machine.hpp"
#include "trace/trace.hpp"

namespace hupc::net {

class Network {
 public:
  struct Counters {
    std::uint64_t messages = 0;
    double bytes = 0.0;
  };

  /// `endpoints_per_node` — how many distinct endpoints (UPC ranks) may
  /// issue traffic per node; defines connection count in per_process mode.
  Network(sim::Engine& engine, const topo::MachineSpec& machine,
          ConduitSpec conduit, ConnectionMode mode, int endpoints_per_node);

  /// One-sided transfer of `bytes` from endpoint `src_ep` (node-local
  /// index) on `src_node` to `dst_node`. Completes at remote delivery.
  /// `api_scale` scales the per-message shared-API service cost — tuned
  /// collective engines batch doorbells/completions and pay a fraction of
  /// the per-message cost independent endpoints do.
  [[nodiscard]] sim::Task<void> rma(int src_node, int src_ep, int dst_node,
                                    double bytes, double api_scale = 1.0);

  [[nodiscard]] sim::Future<> rma_async(int src_node, int src_ep, int dst_node,
                                        double bytes, double api_scale = 1.0);

  /// Intra-node transfer through the network stack (the no-PSHM loopback
  /// path): pays API, injection and endpoint-pipeline costs like a real
  /// message — contending with genuine network traffic — but moves at
  /// `loopback_bw` instead of crossing the wire. This contention is what
  /// PSHM eliminates (thesis §3.1, Fig 3.4).
  [[nodiscard]] sim::Task<void> loopback(int node, int src_ep, double bytes,
                                         double loopback_bw);

  [[nodiscard]] const ConduitSpec& conduit() const noexcept { return conduit_; }
  [[nodiscard]] ConnectionMode mode() const noexcept { return mode_; }
  [[nodiscard]] const Counters& node_counters(int node) const {
    return counters_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] std::uint64_t total_messages() const noexcept;
  [[nodiscard]] double total_bytes() const noexcept;

  [[nodiscard]] sim::FluidLink& nic(int node) {
    return *nics_[static_cast<std::size_t>(node)];
  }

  /// Attach a tracer (non-owning, may be null): message inject/deliver
  /// instants plus per-connection queueing scopes are recorded.
  void set_tracer(trace::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attach a fault-injection hook (non-owning, may be null): every rma()
  /// consults it once at injection and applies the returned mutation —
  /// an extra hold before entering the API queue (latency spikes, link
  /// blackouts) and/or a scaled per-flow wire cap (bandwidth dips). The
  /// payload itself is never mutated, so byte conservation must survive
  /// any plan.
  void set_fault(fault::MessageHook* hook) noexcept { fault_ = hook; }

 private:
  [[nodiscard]] sim::Mutex& connection(int node, int endpoint);
  /// Global rank the exporters attribute endpoint traffic to; exact under
  /// the blockwise node placement every preset uses.
  [[nodiscard]] int trace_rank(int node, int endpoint) const noexcept {
    return node * endpoints_per_node_ + endpoint % endpoints_per_node_;
  }

  sim::Engine* engine_;
  ConduitSpec conduit_;
  ConnectionMode mode_;
  int endpoints_per_node_;
  trace::Tracer* tracer_ = nullptr;
  fault::MessageHook* fault_ = nullptr;
  std::vector<std::unique_ptr<sim::FluidLink>> nics_;
  std::vector<std::unique_ptr<sim::Mutex>> connections_;
  // One per logical endpoint: a thread's wire transfers pipeline serially
  // at conn_bw (a single thread cannot saturate the NIC — the 1-link
  // ceiling of Fig 4.2b and the 2-threads-per-node knee of Fig 4.4).
  std::vector<std::unique_ptr<sim::Mutex>> endpoints_;
  std::vector<std::unique_ptr<sim::FifoServer>> api_queues_;  // per node
  std::vector<Counters> counters_;
};

}  // namespace hupc::net
