// Fault-injection seams.
//
// Pure-virtual hook interfaces consulted at the runtime's perturbation
// points: engine event scheduling (sim::Engine), per-message network
// mutation (net::Network), steal attempts (sched::WorkStealing), shared-heap
// allocation (gas::SharedHeap) and sub-thread spawning (core::SubPool).
//
// This header is dependency-free (like trace/) so every layer can declare a
// hook pointer without linking against the fault library; the concrete
// implementation (fault::FaultPlan) lives at the top of the stack. Every
// seam is a single raw-pointer null check, off by default — with no plan
// installed the simulation is bit-identical to a build without the seams.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hupc::fault {

/// Perturbs engine event scheduling. `now`/`at` are sim::Time nanoseconds;
/// the returned time is clamped to `now` by the engine, so a hook can delay
/// events (legal reordering between causally unrelated events) but never
/// violate virtual-time monotonicity.
struct ScheduleHook {
  virtual ~ScheduleHook() = default;
  [[nodiscard]] virtual std::int64_t perturb_schedule(
      std::int64_t now, std::int64_t at) noexcept = 0;
};

/// Per-message mutation applied at network injection time.
struct MessageMutation {
  double hold_s = 0.0;    // delay before the message enters the API queue
  double bw_scale = 1.0;  // scales the per-flow wire cap for this message
};

struct MessageHook {
  virtual ~MessageHook() = default;
  [[nodiscard]] virtual MessageMutation on_message(int src_node, int dst_node,
                                                   double bytes) noexcept = 0;
};

/// Transient steal-attempt failure (contention storms): a true return makes
/// the thief treat `victim` as empty without even probing.
struct StealHook {
  virtual ~StealHook() = default;
  [[nodiscard]] virtual bool fail_steal(int thief, int victim) noexcept = 0;
};

/// Heap-pressure injection: a true return makes the allocation throw
/// std::bad_alloc. `allocated` is the heap's total bytes handed out so far.
struct AllocHook {
  virtual ~AllocHook() = default;
  [[nodiscard]] virtual bool fail_alloc(int owner, std::size_t bytes,
                                        std::size_t allocated) noexcept = 0;
};

/// Sub-thread spawn throttling: clamps a SubPool's requested width (models
/// slot exhaustion / a crowded node). Must return a value in [1, requested].
struct SpawnHook {
  virtual ~SpawnHook() = default;
  [[nodiscard]] virtual int clamp_spawn_width(int requested) noexcept = 0;
};

/// Read-cache pressure (invalidation storms): a true return makes a cache
/// hit in `rank`'s read cache demote to a line refill. The cache holds no
/// data (tags only), so this can never change values — only the modeled
/// cost schedule, deterministically per plan seed.
struct CacheHook {
  virtual ~CacheHook() = default;
  [[nodiscard]] virtual bool drop_cached_line(int rank) noexcept = 0;
};

/// Asynchronous-completion delay (completion storms): the returned value
/// (nanoseconds, >= 0) is extra virtual time injected between an async
/// operation finishing its work and its completion firing on `rank` — a
/// copy_async future resolving, or an RPC reply being delivered. Data
/// movement and invalidation have already happened when the seam is
/// consulted, so a hook can reorder COMPLETIONS against unrelated work
/// but never values: exactly the window the check_async_ordering
/// invariant patrols.
struct CompletionHook {
  virtual ~CompletionHook() = default;
  [[nodiscard]] virtual std::int64_t delay_completion(int rank) noexcept = 0;
};

/// The full hook set a plan installs on a gas::Runtime. All pointers are
/// non-owning and may be null (that seam stays untouched).
struct Hooks {
  ScheduleHook* schedule = nullptr;
  MessageHook* message = nullptr;
  StealHook* steal = nullptr;
  AllocHook* alloc = nullptr;
  SpawnHook* spawn = nullptr;
  CacheHook* cache = nullptr;
  CompletionHook* completion = nullptr;
};

}  // namespace hupc::fault
