// Reusable invariant checkers registered with a fault-plan run.
//
// Every checker appends human-readable violation strings to a Violations
// list; an empty list is a pass. Checkers assert properties that must
// survive ANY legal perturbation a FaultPlan can inject — faults change
// timing and schedules, never payloads or counts:
//
//   byte conservation      — every rma puts its payload on exactly two NIC
//                            fluid links (src + dst legs), so NIC traffic
//                            must equal 2x the per-message byte counters;
//   steal conservation     — the work-stealing engine neither loses nor
//                            duplicates items: processed == expected,
//                            outstanding == 0, all stacks drained;
//   barrier linearizability— every rank observed the same number of
//                            completed phases;
//   monotone virtual time  — the run ended at a non-negative time with a
//                            sane dispatch count;
//   trace cross-checks     — the structured-trace counters agree with the
//                            runtime's own counters (net.msg == messages,
//                            sched.processed == RankStats, ...);
//   cache transparency     — the read cache shifts the modeled cost
//                            schedule only: cached and uncached runs of
//                            the same workload compute identical results,
//                            and the cache's own accounting is coherent;
//   team agreement         — every member of a collective team completed
//                            the same number of operations and derived the
//                            same digest, whatever algorithm ran them;
//   kv conservation        — every acknowledged put is readable (store
//                            snapshot == host mirror), shard live counters
//                            match slot recounts, and op/path accounting
//                            balances.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/read_cache.hpp"
#include "gas/runtime.hpp"
#include "kv/store.hpp"
#include "sched/work_stealing.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace hupc::fault {

using Violations = std::vector<std::string>;

/// NIC fluid-link traffic == 2x counted message bytes (src + dst wire legs).
void check_byte_conservation(gas::Runtime& rt, Violations& out);

/// Final virtual time >= 0 and the engine actually dispatched events.
void check_virtual_time(const sim::Engine& engine, Violations& out);

/// Trace counters vs. network counters (no-op when `tracer` is null):
/// net.msg == net.delivered == total_messages(), net.bytes ~ total_bytes().
void check_trace_network(const trace::Tracer* tracer, gas::Runtime& rt,
                         Violations& out);

/// Every rank completed exactly `expected_phases` barrier phases.
void check_barrier(gas::Runtime& rt, std::uint64_t expected_phases,
                   const trace::Tracer* tracer, Violations& out);

/// Read-cache transparency: `cached_result` and `uncached_result` are the
/// same workload's modeled outputs (e.g. a gather checksum) with the cache
/// on and off — they must be bit-identical, because the cache holds tags,
/// not data. `stats` (may be null) is the CACHED run's accounting summed
/// over every rank's Thread::read_cache_stats(): hits+misses must cover
/// the serviced accesses, evictions can never exceed misses, and when the
/// cached run carried a tracer its gas.cache.* counter totals must agree
/// with the stats exactly.
void check_cache_transparency(std::uint64_t cached_result,
                              std::uint64_t uncached_result,
                              const comm::CacheStats* stats,
                              const trace::Tracer* tracer, Violations& out);

/// One tracked asynchronous operation (copy_async / RPC) from an async
/// workload run: when it was issued, when its future resolved, and how many
/// times the completion continuation fired.
struct AsyncOpRecord {
  std::int64_t issued_at = 0;      // engine time at issue
  std::int64_t completed_at = -1;  // engine time at resolution; -1 = never
  int completions = 0;             // continuation firings (must be exactly 1)
};

/// Async completion ordering: every tracked op's future resolved exactly
/// once and never before the op was issued — a fault plan may HOLD a
/// completion (delay when it is observed), never lose, duplicate, or
/// time-travel one. With a tracer attached the async.* counters must also
/// conserve: async.copy.issued == async.copy.completed + async.copy.failed
/// and async.rpc.sent == async.rpc.executed == async.rpc.completed.
void check_async_ordering(const std::vector<AsyncOpRecord>& ops,
                          const trace::Tracer* tracer, Violations& out);

/// The host-side oracle's count of the packed VIS traffic a workload must
/// have injected: how many packed messages (Transfer::regions > 1) crossed
/// node boundaries, how many regions they carried in total, and the summed
/// payload bytes of those regions (headers excluded). Faults may delay or
/// throttle packed messages, never split, merge, lose, or inflate them.
struct VisExpectation {
  std::uint64_t messages = 0;
  std::uint64_t regions = 0;
  double payload_bytes = 0.0;
};

/// VIS footprint conservation: the network's packed-message accounting must
/// match the oracle exactly — message and region counts are integers, and
/// the payload must equal the sum of the oracle's region bytes (the ISSUE's
/// "sum of region bytes equals transferred bytes"). Gross wire bytes can
/// only exceed the payload (per-region headers are never negative). With a
/// tracer attached, net.vis.msg / net.vis.regions must agree exactly and
/// net.vis.bytes must match the payload within the per-message
/// integer-truncation tolerance.
void check_vis_conservation(gas::Runtime& rt, const VisExpectation& expected,
                            const trace::Tracer* tracer, Violations& out);

/// One team member's view of a finished team-collective workload: how many
/// collective operations it completed on that team and the team digest it
/// derived from the values the collectives delivered to it. The digest is
/// produced by a closing allgather of every member's running checksum, so
/// a correct run leaves every member of a team holding the same digest.
struct TeamOpRecord {
  int team = 0;                // team id within the workload
  int member = 0;              // member index within that team
  std::uint64_t ops = 0;       // collective calls this member completed
  std::uint64_t checksum = 0;  // team digest this member derived
};

/// Team collective agreement: within each team, every member completed the
/// same number of collective operations and derived the same digest —
/// fault timing, algorithm choice, and team overlap may reshape the
/// schedule but never WHAT a collective delivers. With a tracer attached,
/// the summed gas.coll.* call counters must equal `expected_coll_calls`
/// (the per-member call total the workload performed).
void check_team_agreement(const std::vector<TeamOpRecord>& records,
                          std::uint64_t expected_coll_calls,
                          const trace::Tracer* tracer, Violations& out);

/// The kv fuzz workload's host-side oracle: the acknowledged operation
/// counts the kernels performed (by op kind, summed over every rank).
struct KvExpectation {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t erases = 0;
  std::uint64_t updates = 0;
};

/// KV store conservation against a host mirror: every acknowledged put is
/// readable (the store's live snapshot equals `mirror` exactly — no lost,
/// extra, or duplicated keys), every shard's fetch_add-maintained live
/// counter matches a slot-walk recount (value-count conservation), and the
/// store's own op accounting matches the oracle's counts. With a tracer
/// attached the gas.kv.* counters must agree too, and every operation must
/// be attributed to exactly one path (amo + rpc == total ops). Faults may
/// stretch claim windows and delay replies, never lose or duplicate an
/// acknowledged mutation.
void check_kv_conservation(
    const kv::KvStore& store,
    const std::unordered_map<std::uint64_t, std::uint64_t>& mirror,
    const KvExpectation& expected, const trace::Tracer* tracer,
    Violations& out);

/// Work conservation for a finished WorkStealing run: processed ==
/// `expected_total`, outstanding == 0, every stack fully drained; when a
/// tracer is attached, sched.processed and steal counters must agree with
/// the RankStats the engine kept.
template <class T>
void check_steal_conservation(sched::WorkStealing<T>& ws, int threads,
                              std::uint64_t expected_total,
                              const trace::Tracer* tracer, Violations& out) {
  const std::uint64_t processed = ws.total_processed();
  if (processed != expected_total) {
    out.push_back("steal conservation: processed " + std::to_string(processed) +
                  " != expected " + std::to_string(expected_total));
  }
  if (ws.outstanding() != 0) {
    out.push_back("steal conservation: outstanding " +
                  std::to_string(ws.outstanding()) + " != 0 after completion");
  }
  std::uint64_t steals = 0;
  for (int r = 0; r < threads; ++r) {
    auto& stack = ws.stack(r);
    if (stack.local_count() != 0 || stack.shared_count() != 0) {
      out.push_back("steal conservation: rank " + std::to_string(r) +
                    " stack not drained (local " +
                    std::to_string(stack.local_count()) + ", shared " +
                    std::to_string(stack.shared_count()) + ")");
    }
    steals += ws.stats(r).local_steals + ws.stats(r).remote_steals;
  }
  if (tracer != nullptr) {
    const std::uint64_t traced = tracer->counter_total("sched.processed");
    if (traced != processed) {
      out.push_back("trace cross-check: sched.processed " +
                    std::to_string(traced) + " != RankStats total " +
                    std::to_string(processed));
    }
    const std::uint64_t traced_steals =
        tracer->counter_total("sched.steal.success");
    if (traced_steals != steals) {
      out.push_back("trace cross-check: sched.steal.success " +
                    std::to_string(traced_steals) + " != RankStats steals " +
                    std::to_string(steals));
    }
  }
}

}  // namespace hupc::fault
