// FaultPlan — a seeded, declarative schedule of perturbations (DESIGN.md §9).
//
// A plan bundles every supported perturbation behind one seed: engine event
// jitter (legal reordering of causally unrelated events), per-message
// latency spikes, transient bandwidth dips, link blackouts with recovery,
// transient steal-attempt failures, sub-thread spawn throttling, and
// heap-pressure (allocation-failure) injection. Installing a plan wires the
// fault::Hooks seams of a gas::Runtime; only the groups a plan enables are
// exposed, so a quiescent plan is indistinguishable from no plan at all.
//
// Everything is deterministic: one Xoshiro stream per seam, derived from
// the plan seed, consumed in the engine's deterministic call order. The
// same (seed, plan, workload) triple replays bit-identically — the property
// fault::Fuzzer's shrinker and the golden-determinism tests rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/hooks.hpp"
#include "gas/runtime.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace hupc::fault {

struct PlanParams {
  std::uint64_t seed = 1;
  std::string name = "custom";

  // Engine event jitter: with probability `p`, delay a scheduled event by
  // uniform(0, max]. Timing-only: ordering constraints enforced by the
  // engine (monotone clamp) and the sync primitives still hold.
  double event_jitter_p = 0.0;
  double event_jitter_max_s = 0.0;

  // Per-message latency spikes: with probability `p`, hold a message for
  // uniform(0, max] before it enters the node's API queue.
  double msg_delay_p = 0.0;
  double msg_delay_max_s = 0.0;

  // Transient link degradation: with probability `p`, scale the message's
  // per-flow wire cap into [floor, 1).
  double msg_bw_degrade_p = 0.0;
  double msg_bw_floor = 1.0;

  // Link blackout with recovery: messages touching `blackout_node` during
  // [start, start+duration) are buffered until the link recovers. -1 = off.
  int blackout_node = -1;
  double blackout_start_s = 0.0;
  double blackout_duration_s = 0.0;

  // Transient steal-attempt failures (contention storm).
  double steal_fail_p = 0.0;

  // Sub-thread spawn throttling: caps every SubPool's width. 0 = off.
  int spawn_width_cap = 0;

  // Heap pressure: once the shared heap has handed out `after_bytes`,
  // each further allocation fails with probability `p`. 0 bytes = off.
  std::size_t alloc_fail_after_bytes = 0;
  double alloc_fail_p = 0.0;

  // Read-cache pressure (invalidation storm): each cache hit demotes to a
  // line refill with probability `p`. Cost-schedule-only — the cache holds
  // tags, not data, so modeled results cannot change. 0 = off.
  double cache_invalidate_p = 0.0;

  // Completion storm: with probability `p`, hold an asynchronous
  // completion (copy_async future resolution, RPC reply) for uniform(0,
  // max] after its work finished. Reorders when completions are OBSERVED
  // against unrelated progress — never data movement, which has already
  // happened when the seam fires (check_async_ordering's contract).
  double completion_delay_p = 0.0;
  double completion_delay_max_s = 0.0;

  /// True when no perturbation group is enabled.
  [[nodiscard]] bool quiescent() const noexcept;
  /// One-line human-readable summary of the active groups.
  [[nodiscard]] std::string describe() const;
};

/// What a plan actually did during a run (diagnostics + test assertions).
struct InjectionStats {
  std::uint64_t events_jittered = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t messages_degraded = 0;
  std::uint64_t messages_held_blackout = 0;
  std::uint64_t steals_failed = 0;
  std::uint64_t allocs_failed = 0;
  std::uint64_t spawns_throttled = 0;
  std::uint64_t cache_lines_dropped = 0;
  std::uint64_t completions_delayed = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return events_jittered + messages_delayed + messages_degraded +
           messages_held_blackout + steals_failed + allocs_failed +
           spawns_throttled + cache_lines_dropped + completions_delayed;
  }
};

/// The installable plan: implements every hook seam, draws decisions from
/// per-seam streams seeded off PlanParams::seed.
class FaultPlan final : public ScheduleHook,
                        public MessageHook,
                        public StealHook,
                        public AllocHook,
                        public SpawnHook,
                        public CacheHook,
                        public CompletionHook {
 public:
  explicit FaultPlan(PlanParams params);

  /// Wire this plan into `rt` (engine, network, heap seams now; steal and
  /// spawn seams are read by WorkStealing/SubPool at their construction, so
  /// install before building those). Only enabled groups are exposed.
  void install(gas::Runtime& rt);
  /// Remove every fault hook from `rt`.
  static void uninstall(gas::Runtime& rt);

  [[nodiscard]] const PlanParams& params() const noexcept { return params_; }
  [[nodiscard]] const InjectionStats& stats() const noexcept { return stats_; }

  // --- hook implementations (called by the runtime seams) ----------------
  [[nodiscard]] std::int64_t perturb_schedule(std::int64_t now,
                                              std::int64_t at) noexcept override;
  [[nodiscard]] MessageMutation on_message(int src_node, int dst_node,
                                           double bytes) noexcept override;
  [[nodiscard]] bool fail_steal(int thief, int victim) noexcept override;
  [[nodiscard]] bool fail_alloc(int owner, std::size_t bytes,
                                std::size_t allocated) noexcept override;
  [[nodiscard]] int clamp_spawn_width(int requested) noexcept override;
  [[nodiscard]] bool drop_cached_line(int rank) noexcept override;
  [[nodiscard]] std::int64_t delay_completion(int rank) noexcept override;

 private:
  PlanParams params_;
  InjectionStats stats_;
  sim::Engine* engine_ = nullptr;  // clock for the blackout window
  util::Xoshiro256ss sched_rng_;
  util::Xoshiro256ss msg_rng_;
  util::Xoshiro256ss steal_rng_;
  util::Xoshiro256ss alloc_rng_;
  util::Xoshiro256ss cache_rng_;
  util::Xoshiro256ss completion_rng_;
};

/// Registered plan-template names ("none", "jitter", "latency-spike",
/// "bw-dip", "blackout", "steal-storm", "spawn-throttle", "heap-pressure",
/// "cache-storm", "completion-storm", "mixed").
[[nodiscard]] const std::vector<std::string>& plan_template_names();

/// Instantiate a template: magnitudes are drawn deterministically from
/// `seed` within per-template sane ranges, so every seed is a different —
/// but reproducible — member of the template family. Throws
/// std::invalid_argument for an unknown name.
[[nodiscard]] PlanParams plan_template(const std::string& name,
                                       std::uint64_t seed);

}  // namespace hupc::fault
