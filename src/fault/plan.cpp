#include "fault/plan.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "sim/time.hpp"

namespace hupc::fault {

namespace {

// Per-seam stream seeds: fixed salts keep the streams independent so
// shrinking one group never shifts another group's decisions.
constexpr std::uint64_t kSchedSalt = 0x5C4ED01EULL;
constexpr std::uint64_t kMsgSalt = 0x4E57F417ULL;
constexpr std::uint64_t kStealSalt = 0x57EA1BADULL;
constexpr std::uint64_t kAllocSalt = 0xA110CBADULL;
constexpr std::uint64_t kCacheSalt = 0xCAC4ED05ULL;
constexpr std::uint64_t kCompletionSalt = 0xC0D97E7EULL;

std::uint64_t salted(std::uint64_t seed, std::uint64_t salt) {
  util::SplitMix64 sm(seed ^ salt);
  return sm.next();
}

template <class... Args>
void append(std::string& out, const char* fmt, Args... args) {
  char buf[96];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

}  // namespace

bool PlanParams::quiescent() const noexcept {
  return event_jitter_p <= 0.0 && msg_delay_p <= 0.0 &&
         msg_bw_degrade_p <= 0.0 && blackout_node < 0 && steal_fail_p <= 0.0 &&
         spawn_width_cap <= 0 && alloc_fail_after_bytes == 0 &&
         cache_invalidate_p <= 0.0 && completion_delay_p <= 0.0;
}

std::string PlanParams::describe() const {
  std::string out = "plan[" + name + " seed=" + std::to_string(seed);
  if (quiescent()) return out + " quiescent]";
  if (event_jitter_p > 0.0) {
    append(out, " jitter=%.2f/%.0fus", event_jitter_p, event_jitter_max_s * 1e6);
  }
  if (msg_delay_p > 0.0) {
    append(out, " delay=%.2f/%.0fus", msg_delay_p, msg_delay_max_s * 1e6);
  }
  if (msg_bw_degrade_p > 0.0) {
    append(out, " bw-dip=%.2f/floor %.2f", msg_bw_degrade_p, msg_bw_floor);
  }
  if (blackout_node >= 0) {
    out += " blackout=node " + std::to_string(blackout_node);
    append(out, " [%.1f,%.1f]ms", blackout_start_s * 1e3,
           (blackout_start_s + blackout_duration_s) * 1e3);
  }
  if (steal_fail_p > 0.0) append(out, " steal-fail=%.2f", steal_fail_p);
  if (spawn_width_cap > 0) {
    out += " spawn-cap=" + std::to_string(spawn_width_cap);
  }
  if (alloc_fail_after_bytes > 0) {
    append(out, " heap-pressure=%.2f after %.0f KiB", alloc_fail_p,
           static_cast<double>(alloc_fail_after_bytes) / 1024.0);
  }
  if (cache_invalidate_p > 0.0) {
    append(out, " cache-storm=%.2f", cache_invalidate_p);
  }
  if (completion_delay_p > 0.0) {
    append(out, " completion-storm=%.2f/%.0fus", completion_delay_p,
           completion_delay_max_s * 1e6);
  }
  return out + "]";
}

FaultPlan::FaultPlan(PlanParams params)
    : params_(std::move(params)),
      sched_rng_(salted(params_.seed, kSchedSalt)),
      msg_rng_(salted(params_.seed, kMsgSalt)),
      steal_rng_(salted(params_.seed, kStealSalt)),
      alloc_rng_(salted(params_.seed, kAllocSalt)),
      cache_rng_(salted(params_.seed, kCacheSalt)),
      completion_rng_(salted(params_.seed, kCompletionSalt)) {}

void FaultPlan::install(gas::Runtime& rt) {
  engine_ = &rt.engine();
  Hooks hooks;
  if (params_.event_jitter_p > 0.0) hooks.schedule = this;
  if (params_.msg_delay_p > 0.0 || params_.msg_bw_degrade_p > 0.0 ||
      params_.blackout_node >= 0) {
    hooks.message = this;
  }
  if (params_.steal_fail_p > 0.0) hooks.steal = this;
  if (params_.alloc_fail_after_bytes > 0) hooks.alloc = this;
  if (params_.spawn_width_cap > 0) hooks.spawn = this;
  if (params_.cache_invalidate_p > 0.0) hooks.cache = this;
  if (params_.completion_delay_p > 0.0) hooks.completion = this;
  rt.install_faults(hooks);
}

void FaultPlan::uninstall(gas::Runtime& rt) { rt.install_faults(Hooks{}); }

std::int64_t FaultPlan::perturb_schedule(std::int64_t /*now*/,
                                         std::int64_t at) noexcept {
  if (sched_rng_.uniform() >= params_.event_jitter_p) return at;
  ++stats_.events_jittered;
  return at + sim::from_seconds(sched_rng_.uniform() *
                                params_.event_jitter_max_s);
}

MessageMutation FaultPlan::on_message(int src_node, int dst_node,
                                      double /*bytes*/) noexcept {
  MessageMutation mut;
  if (params_.blackout_node >= 0 && engine_ != nullptr &&
      (src_node == params_.blackout_node || dst_node == params_.blackout_node)) {
    const double now = sim::to_seconds(engine_->now());
    const double end = params_.blackout_start_s + params_.blackout_duration_s;
    if (now >= params_.blackout_start_s && now < end) {
      // The dark link buffers the message until recovery.
      mut.hold_s = end - now;
      ++stats_.messages_held_blackout;
    }
  }
  if (params_.msg_delay_p > 0.0 &&
      msg_rng_.uniform() < params_.msg_delay_p) {
    mut.hold_s += msg_rng_.uniform() * params_.msg_delay_max_s;
    ++stats_.messages_delayed;
  }
  if (params_.msg_bw_degrade_p > 0.0 &&
      msg_rng_.uniform() < params_.msg_bw_degrade_p) {
    mut.bw_scale =
        params_.msg_bw_floor +
        msg_rng_.uniform() * (1.0 - params_.msg_bw_floor);
    ++stats_.messages_degraded;
  }
  return mut;
}

bool FaultPlan::fail_steal(int /*thief*/, int /*victim*/) noexcept {
  if (steal_rng_.uniform() >= params_.steal_fail_p) return false;
  ++stats_.steals_failed;
  return true;
}

bool FaultPlan::fail_alloc(int /*owner*/, std::size_t /*bytes*/,
                           std::size_t allocated) noexcept {
  if (allocated < params_.alloc_fail_after_bytes) return false;
  if (alloc_rng_.uniform() >= params_.alloc_fail_p) return false;
  ++stats_.allocs_failed;
  return true;
}

int FaultPlan::clamp_spawn_width(int requested) noexcept {
  if (params_.spawn_width_cap <= 0 || requested <= params_.spawn_width_cap) {
    return requested;
  }
  ++stats_.spawns_throttled;
  return params_.spawn_width_cap;
}

bool FaultPlan::drop_cached_line(int /*rank*/) noexcept {
  if (cache_rng_.uniform() >= params_.cache_invalidate_p) return false;
  ++stats_.cache_lines_dropped;
  return true;
}

std::int64_t FaultPlan::delay_completion(int /*rank*/) noexcept {
  if (completion_rng_.uniform() >= params_.completion_delay_p) return 0;
  ++stats_.completions_delayed;
  return sim::from_seconds(completion_rng_.uniform() *
                           params_.completion_delay_max_s);
}

const std::vector<std::string>& plan_template_names() {
  static const std::vector<std::string> names = {
      "none",        "jitter",         "latency-spike",
      "bw-dip",      "blackout",       "steal-storm",
      "spawn-throttle", "heap-pressure", "cache-storm",
      "completion-storm", "team-storm",  "vis-storm",  "kv-storm",
      "mixed"};
  return names;
}

PlanParams plan_template(const std::string& name, std::uint64_t seed) {
  // Magnitudes are drawn from the seed so every seed explores a different
  // member of the template family, reproducibly.
  util::SplitMix64 sm(seed ^ 0x7E3A917EULL);
  auto uniform = [&sm] {
    return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  };
  auto in = [&](double lo, double hi) { return lo + uniform() * (hi - lo); };

  PlanParams p;
  p.seed = seed;
  p.name = name;
  if (name == "none") {
    return p;
  }
  if (name == "jitter") {
    p.event_jitter_p = in(0.05, 0.30);
    p.event_jitter_max_s = in(1e-6, 10e-6);
    return p;
  }
  if (name == "latency-spike") {
    p.msg_delay_p = in(0.10, 0.50);
    p.msg_delay_max_s = in(10e-6, 200e-6);
    return p;
  }
  if (name == "bw-dip") {
    p.msg_bw_degrade_p = in(0.20, 0.80);
    p.msg_bw_floor = in(0.02, 0.30);
    return p;
  }
  if (name == "blackout") {
    p.blackout_node = static_cast<int>(sm.next() % 4);
    p.blackout_start_s = in(0.2e-3, 2e-3);
    p.blackout_duration_s = in(0.5e-3, 3e-3);
    return p;
  }
  if (name == "steal-storm") {
    p.steal_fail_p = in(0.30, 0.80);
    return p;
  }
  if (name == "spawn-throttle") {
    p.spawn_width_cap = 1 + static_cast<int>(sm.next() % 2);
    return p;
  }
  if (name == "heap-pressure") {
    p.alloc_fail_after_bytes = static_cast<std::size_t>(in(1.0, 32.0) * 1024 * 1024);
    p.alloc_fail_p = in(0.20, 1.00);
    return p;
  }
  if (name == "cache-storm") {
    p.cache_invalidate_p = in(0.20, 0.90);
    return p;
  }
  if (name == "completion-storm") {
    p.completion_delay_p = in(0.20, 0.60);
    p.completion_delay_max_s = in(5e-6, 80e-6);
    return p;
  }
  if (name == "team-storm") {
    // Collectives stress: jitter reorders ready events so team members hit
    // a collective in every arrival order, message delays skew the tree
    // levels, and one darkened node forces leader traffic to queue — the
    // combination hierarchical algorithms are most sensitive to.
    p.event_jitter_p = in(0.10, 0.40);
    p.event_jitter_max_s = in(1e-6, 8e-6);
    p.msg_delay_p = in(0.15, 0.50);
    p.msg_delay_max_s = in(10e-6, 150e-6);
    p.blackout_node = static_cast<int>(sm.next() % 2);  // fuzz runs 2 nodes
    p.blackout_start_s = in(0.05e-3, 0.5e-3);
    p.blackout_duration_s = in(0.2e-3, 1.5e-3);
    return p;
  }
  if (name == "vis-storm") {
    // Packed-transfer stress: jitter + delivery delays reorder the region
    // streams of concurrent strided/indexed transfers, bandwidth dips
    // stretch the large packed messages (where a footprint-accounting bug
    // would show as lost or double-counted regions), and cache-line drops
    // force strided prefetches to refill mid-run. Counts and payloads must
    // conserve through all of it.
    p.event_jitter_p = in(0.05, 0.25);
    p.event_jitter_max_s = in(1e-6, 6e-6);
    p.msg_delay_p = in(0.10, 0.40);
    p.msg_delay_max_s = in(10e-6, 120e-6);
    p.msg_bw_degrade_p = in(0.10, 0.50);
    p.msg_bw_floor = in(0.05, 0.40);
    p.cache_invalidate_p = in(0.20, 0.80);
    return p;
  }
  if (name == "kv-storm") {
    // KV serving stress: jitter perturbs the open-loop arrival process and
    // the claim-protocol backoffs (widening busy windows so CAS races and
    // retries actually happen), message delays stretch both the
    // fine-grained AMO round trips and the RPC request/reply pairs,
    // completion holds lean on launch_async's future resolution, and
    // cache-line drops force hot-key reads back to the wire. Acked puts
    // must stay readable and shard counts must conserve through all of it.
    p.event_jitter_p = in(0.10, 0.40);
    p.event_jitter_max_s = in(2e-6, 20e-6);
    p.msg_delay_p = in(0.10, 0.40);
    p.msg_delay_max_s = in(10e-6, 120e-6);
    p.completion_delay_p = in(0.15, 0.50);
    p.completion_delay_max_s = in(5e-6, 60e-6);
    p.cache_invalidate_p = in(0.10, 0.60);
    return p;
  }
  if (name == "mixed") {
    p.event_jitter_p = in(0.05, 0.20);
    p.event_jitter_max_s = in(1e-6, 5e-6);
    p.msg_delay_p = in(0.10, 0.30);
    p.msg_delay_max_s = in(10e-6, 100e-6);
    p.msg_bw_degrade_p = in(0.10, 0.50);
    p.msg_bw_floor = in(0.05, 0.40);
    p.steal_fail_p = in(0.10, 0.50);
    return p;
  }
  throw std::invalid_argument(
      "fault::plan_template: unknown template \"" + name +
      "\" (known: none jitter latency-spike bw-dip blackout steal-storm "
      "spawn-throttle heap-pressure cache-storm completion-storm team-storm "
      "vis-storm kv-storm mixed)");
}

}  // namespace hupc::fault
