#include "fault/fuzzer.hpp"

#include <functional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "async/rpc.hpp"
#include "fft/ft_model.hpp"
#include "gas/runtime.hpp"
#include "net/conduit.hpp"
#include "sched/work_stealing.hpp"
#include "sim/engine.hpp"
#include "stream/random_access.hpp"
#include "topo/machine.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "uts/tree.hpp"

namespace hupc::fault {

namespace {

// Every fuzz workload runs on the same small footprint: 8 ranks over 2
// Lehman nodes (4 ranks/node) — enough to exercise intra- and inter-node
// paths while keeping a single case in the low milliseconds.
constexpr int kFuzzThreads = 8;
constexpr int kFuzzNodes = 2;
constexpr std::size_t kAsyncWords = 16;  // per-slot payload of run_async

gas::Config base_config(const CaseSpec& spec, trace::Tracer* tracer) {
  gas::Config cfg;
  cfg.machine = topo::lehman(kFuzzNodes);
  cfg.threads = kFuzzThreads;
  cfg.backend = spec.backend == "pthreads" ? gas::Backend::pthreads
                                           : gas::Backend::processes;
  if (spec.conduit == "ib-ddr") {
    cfg.conduit = net::ib_ddr();
  } else if (spec.conduit == "gige") {
    cfg.conduit = net::gige();
  } else {
    cfg.conduit = net::ib_qdr();
  }
  cfg.tracer = tracer;
  return cfg;
}

// Trace counters only exist when the instrumentation is compiled in; the
// cross-checking invariants must not fire against all-zero counters in a
// HUPC_TRACE=0 build.
trace::Tracer* effective(trace::Tracer& tracer) {
  return trace::kEnabled ? &tracer : nullptr;
}

void finish(CaseResult& res, const trace::Tracer& tracer,
            const sim::Engine& engine, const FaultPlan& plan) {
  res.virtual_time = engine.now();
  res.injected = plan.stats().total();
  std::ostringstream summary;
  tracer.export_summary(summary);
  res.summary = summary.str();
}

CaseResult run_uts(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);  // before WorkStealing: the steal seam is read at ctor

  // Tree shape and steal policy derive from the case seed, NOT the plan, so
  // the shrinker replays the identical workload under reduced plans.
  util::SplitMix64 sm(spec.seed ^ 0x07155EEDULL);
  uts::TreeParams tree;
  tree.b0 = 40 + static_cast<int>(sm.next() % 41);  // ~200-400 node trees
  tree.m = 8;
  tree.q = 0.1;
  tree.root_seed = static_cast<std::uint32_t>(sm.next() % 1024);
  const uts::TreeStats oracle = uts::enumerate(tree);

  sched::StealParams sp;
  sp.policy = sm.next() % 2 == 0 ? sched::VictimPolicy::random
                                 : sched::VictimPolicy::local_first;
  sp.rapid_diffusion = true;
  sp.granularity = 4;
  sp.chunk = 4;
  sp.batch = 16;
  sp.seed = spec.seed;
  sp.test_split_off_by_one = spec.plant_split_bug;
  sched::WorkStealing<uts::Node> ws(
      rt, sp, [&tree](const uts::Node& n, std::vector<uts::Node>& out) {
        uts::expand(tree, n, out);
      });
  ws.seed_work(0, {uts::root_node(tree)});

  rt.spmd([&ws](gas::Thread& t) { return ws.run(t); });
  try {
    rt.run_to_completion();
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("uts: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  check_steal_conservation(ws, rt.threads(), oracle.nodes, effective(tracer),
                           res.violations);
  check_byte_conservation(rt, res.violations);
  check_trace_network(effective(tracer), rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

CaseResult run_ft(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);

  util::SplitMix64 sm(spec.seed ^ 0x0F75EEDFULL);
  fft::FtConfig fc;
  fc.grid = fft::FtParams{64, 64, 64, 2, "S"};  // class S, trimmed to 2 iters
  fc.variant = sm.next() % 2 == 0 ? fft::CommVariant::split_phase
                                  : fft::CommVariant::overlap;
  fc.subs = sm.next() % 2 == 0 ? 0 : 2;  // pure UPC vs. hybrid sub-threads
  fft::FtModel model(rt, fc);

  rt.spmd([&model](gas::Thread& t) { return model.run(t); });
  try {
    rt.run_to_completion();
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("ft: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  // Phase-timing coherence: every phase non-negative and the disjoint phase
  // measurements can never exceed the rank's wall (virtual) total.
  for (int r = 0; r < rt.threads(); ++r) {
    const fft::FtTimings& tm = model.timings(r);
    const double phases[] = {tm.evolve, tm.fft2d, tm.transpose, tm.comm,
                             tm.fft1d};
    double sum = 0.0;
    for (double p : phases) {
      sum += p;
      if (p < 0.0) {
        res.violations.push_back("ft timings: rank " + std::to_string(r) +
                                 " has a negative phase time");
        break;
      }
    }
    if (sum > tm.total * (1.0 + 1e-9) + 1e-12) {
      res.violations.push_back("ft timings: rank " + std::to_string(r) +
                               " phase sum " + std::to_string(sum) +
                               " exceeds total " + std::to_string(tm.total));
    }
  }
  check_byte_conservation(rt, res.violations);
  check_trace_network(effective(tracer), rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

CaseResult run_barrier(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);

  util::SplitMix64 sm(spec.seed ^ 0xBA221E25ULL);
  const int phases = 10 + static_cast<int>(sm.next() % 7);

  rt.spmd([phases](gas::Thread& t) -> sim::Task<void> {
    for (int i = 0; i < phases; ++i) {
      // Skew the arrivals so a linearizability bug (a rank slipping past a
      // phase) would actually have room to manifest.
      const double skew = 1e-7 * static_cast<double>((t.rank() * 13 + i * 7) %
                                                     23);
      co_await t.compute(skew);
      co_await t.barrier();
    }
  });
  try {
    rt.run_to_completion();
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("barrier: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  check_barrier(rt, static_cast<std::uint64_t>(phases), effective(tracer),
                res.violations);
  check_byte_conservation(rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

// Cache-pressure workload: the read-dominated gather runs with a read-cache
// epoch open on every rank, under whatever plan the case derived (including
// cache-storm invalidation storms). The oracle is the SAME gather stream
// uncached and unfaulted in a fresh runtime: the checksums must match
// bit-for-bit because the cache holds tags, never data.
CaseResult run_gather(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);  // before spmd: the cache seam is read at epoch open

  util::SplitMix64 sm(spec.seed ^ 0x6A74E255ULL);
  stream::GatherParams gp;
  gp.bursts = 4 + (sm.next() % 5);
  gp.burst_len = 16 + (sm.next() % 17);
  gp.cached = true;
  gp.cache.lines = sm.next() % 2 == 0 ? 32 : 256;
  gp.cache.line_bytes = sm.next() % 2 == 0 ? 64 : 256;
  gp.seed = sm.next() | 1;

  stream::RandomAccess ra(rt, 12);
  stream::GatherResult cached;
  try {
    cached = ra.run_gather(gp);
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("gather: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  sim::Engine oracle_engine;
  gas::Runtime oracle_rt(oracle_engine, base_config(spec, nullptr));
  stream::RandomAccess oracle(oracle_rt, 12);
  stream::GatherParams up = gp;
  up.cached = false;
  const stream::GatherResult uncached = oracle.run_gather(up);

  comm::CacheStats total;
  for (int r = 0; r < rt.threads(); ++r) {
    if (const comm::CacheStats* s = rt.thread(r).read_cache_stats()) {
      total.hits += s->hits;
      total.misses += s->misses;
      total.evictions += s->evictions;
      total.invalidations += s->invalidations;
    }
  }
  check_cache_transparency(cached.checksum, uncached.checksum, &total,
                           effective(tracer), res.violations);
  check_byte_conservation(rt, res.violations);
  check_trace_network(effective(tracer), rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

// Async-completion workload: every rank overlaps copy_asyncs into its ring
// neighbour's slot with RPC traffic, recording (issue, resolve) times and a
// firing count for every copy. check_async_ordering then asserts each
// future resolved exactly once and never before its issue — the property a
// completion-storm plan (which HOLDS completions) must preserve — and a
// chained RPC probe asserts read-your-writes: once a copy_async's future
// resolves, the destination rank observes the payload.
CaseResult run_async(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);
  async::RpcDomain domain(rt);

  util::SplitMix64 sm(spec.seed ^ 0xA57C5EEDULL);
  const int rounds = 2 + static_cast<int>(sm.next() % 3);
  

  std::vector<gas::GlobalPtr<std::uint64_t>> slot(
      static_cast<std::size_t>(kFuzzThreads));
  for (int r = 0; r < kFuzzThreads; ++r) {
    slot[static_cast<std::size_t>(r)] = rt.heap().alloc<std::uint64_t>(
        r, kAsyncWords);
  }

  std::vector<std::vector<AsyncOpRecord>> records(
      static_cast<std::size_t>(kFuzzThreads));
  int stale_reads = 0;

  rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
    const int rank = t.rank();
    const auto next = static_cast<std::size_t>((rank + 1) % t.threads());
    std::vector<std::uint64_t> payload(kAsyncWords);
    for (int round = 0; round < rounds; ++round) {
      for (std::size_t w = 0; w < kAsyncWords; ++w) {
        payload[w] = (static_cast<std::uint64_t>(rank) << 32) |
                     static_cast<std::uint64_t>(round) * kAsyncWords | w;
      }
      const std::uint64_t expect = payload[kAsyncWords - 1];

      auto& mine = records[static_cast<std::size_t>(rank)];
      const std::size_t idx = mine.size();
      mine.push_back(AsyncOpRecord{engine.now(), -1, 0});
      auto copied =
          t.copy_async(slot[next], payload.data(), kAsyncWords)
              .then([&records, &engine, rank, idx] {
                AsyncOpRecord& op =
                    records[static_cast<std::size_t>(rank)][idx];
                ++op.completions;
                op.completed_at = engine.now();
              });
      // Read-your-writes probe: chained AFTER the copy resolves, the
      // destination rank reads its own slot — it must see the payload.
      auto probed =
          copied
              .then([&domain, &t, p = slot[next]] {
                return domain.call(t, p.owner, [p](gas::Thread&) {
                  return p.raw[kAsyncWords - 1];
                });
              })
              .then([&stale_reads, expect](const std::uint64_t& got) {
                if (got != expect) ++stale_reads;
              });
      // Unrelated concurrent RPC so completions from different op kinds
      // interleave under the storm.
      auto side = domain
                      .call(t, (rank + 3) % t.threads(),
                            [](gas::Thread& at, int x) { return x + at.rank(); },
                            round)
                      .then([](const int&) {});
      std::vector<async::future<>> pending;
      pending.push_back(std::move(probed));
      pending.push_back(std::move(side));
      co_await async::when_all(std::move(pending)).wait();
      co_await t.barrier();  // slots are reused next round
    }
  });
  try {
    rt.run_to_completion();
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("async: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  std::vector<AsyncOpRecord> all;
  for (const auto& per_rank : records) {
    all.insert(all.end(), per_rank.begin(), per_rank.end());
  }
  check_async_ordering(all, effective(tracer), res.violations);
  if (stale_reads > 0) {
    res.violations.push_back(
        "async read-your-writes: " + std::to_string(stale_reads) +
        " RPC probe(s) observed stale data after copy_async resolution");
  }
  check_byte_conservation(rt, res.violations);
  check_trace_network(effective(tracer), rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

}  // namespace

std::string CaseSpec::replay_command() const {
  std::string cmd = "./hupc_bench --workload fuzz --budget 1 --fuzz-seed " +
                    std::to_string(seed);
  if (plant_split_bug) cmd += " --fuzz-test-bug";
  cmd += "  # equivalently: --fault-seed=" + std::to_string(seed) +
         " --fault-plan=" + plan;
  return cmd;
}

CaseSpec derive_case(std::uint64_t case_seed,
                     const std::vector<std::string>& templates,
                     bool plant_split_bug) {
  util::SplitMix64 sm(case_seed ^ 0xF0225EEDULL);
  CaseSpec spec;
  spec.seed = case_seed;
  // uts is weighted 2x: it exercises the most seams (steal + net + engine).
  static const char* const kWorkloads[] = {"uts", "uts", "ft", "barrier",
                                           "gather", "async"};
  spec.workload = kWorkloads[sm.next() % 6];
  spec.backend = sm.next() % 2 == 0 ? "processes" : "pthreads";
  static const char* const kConduits[] = {"ib-qdr", "ib-ddr", "gige"};
  spec.conduit = kConduits[sm.next() % 3];
  spec.plan = templates.empty()
                  ? "none"
                  : templates[sm.next() % templates.size()];
  spec.plant_split_bug = plant_split_bug && spec.workload == "uts";
  return spec;
}

CaseResult run_case(const CaseSpec& spec, const PlanParams& plan) {
  if (spec.workload == "ft") return run_ft(spec, plan);
  if (spec.workload == "barrier") return run_barrier(spec, plan);
  if (spec.workload == "gather") return run_gather(spec, plan);
  if (spec.workload == "async") return run_async(spec, plan);
  return run_uts(spec, plan);
}

CaseResult run_case(const CaseSpec& spec) {
  return run_case(spec, plan_template(spec.plan, spec.seed));
}

PlanParams Fuzzer::shrink(const CaseSpec& spec, PlanParams failing) {
  const auto still_fails = [&spec](const PlanParams& p) {
    return !run_case(spec, p).ok();
  };

  // Pass 1: drop whole perturbation groups while the failure persists. The
  // per-seam RNG streams are independent, so removing one group never
  // shifts another group's decisions.
  using Reduce = std::function<void(PlanParams&)>;
  const Reduce group_off[] = {
      [](PlanParams& p) { p.event_jitter_p = 0.0; },
      [](PlanParams& p) { p.msg_delay_p = 0.0; },
      [](PlanParams& p) { p.msg_bw_degrade_p = 0.0; },
      [](PlanParams& p) { p.blackout_node = -1; },
      [](PlanParams& p) { p.steal_fail_p = 0.0; },
      [](PlanParams& p) { p.spawn_width_cap = 0; },
      [](PlanParams& p) { p.alloc_fail_after_bytes = 0; },
      [](PlanParams& p) { p.cache_invalidate_p = 0.0; },
      [](PlanParams& p) { p.completion_delay_p = 0.0; },
  };
  for (const Reduce& off : group_off) {
    PlanParams candidate = failing;
    off(candidate);
    if (still_fails(candidate)) failing = candidate;
  }

  // Pass 2: halve the magnitudes of whatever groups survived.
  const Reduce halve[] = {
      [](PlanParams& p) { p.event_jitter_p /= 2; p.event_jitter_max_s /= 2; },
      [](PlanParams& p) { p.msg_delay_p /= 2; p.msg_delay_max_s /= 2; },
      [](PlanParams& p) {
        p.msg_bw_degrade_p /= 2;
        p.msg_bw_floor += (1.0 - p.msg_bw_floor) / 2;  // milder dip
      },
      [](PlanParams& p) { p.blackout_duration_s /= 2; },
      [](PlanParams& p) { p.steal_fail_p /= 2; },
      [](PlanParams& p) { p.cache_invalidate_p /= 2; },
      [](PlanParams& p) {
        p.completion_delay_p /= 2;
        p.completion_delay_max_s /= 2;
      },
  };
  for (int round = 0; round < 3; ++round) {
    bool reduced = false;
    for (const Reduce& h : halve) {
      PlanParams candidate = failing;
      h(candidate);
      if (still_fails(candidate)) {
        failing = candidate;
        reduced = true;
      }
    }
    if (!reduced) break;
  }
  return failing;
}

FuzzReport Fuzzer::run(std::ostream& log) {
  FuzzReport report;
  for (int i = 0; i < opt_.budget; ++i) {
    const std::uint64_t seed = opt_.base_seed + static_cast<std::uint64_t>(i);
    const CaseSpec spec =
        derive_case(seed, opt_.templates, opt_.plant_split_bug);
    const CaseResult res = run_case(spec);
    ++report.cases_run;
    if (opt_.verbose) {
      log << "fuzz: seed=" << seed << " " << spec.workload << "/"
          << spec.backend << "/" << spec.conduit << "/" << spec.plan
          << (res.ok() ? " ok" : " FAIL") << " injected=" << res.injected
          << " t=" << sim::to_seconds(res.virtual_time) << "s\n";
    }
    if (res.ok()) continue;

    FuzzFailure failure;
    failure.spec = spec;
    failure.violations = res.violations;
    failure.shrunk = shrink(spec, plan_template(spec.plan, seed));
    log << "fuzz: FAIL seed=" << seed << " workload=" << spec.workload
        << " backend=" << spec.backend << " conduit=" << spec.conduit
        << " plan=" << spec.plan << "\n";
    for (const std::string& v : failure.violations) {
      log << "  violation: " << v << "\n";
    }
    log << "  shrunk:  " << failure.shrunk.describe() << "\n";
    log << "  replay:  " << spec.replay_command() << "\n";
    report.failures.push_back(std::move(failure));
  }
  log << "fuzz: " << report.cases_run << " cases, "
      << report.failures.size() << " failure(s)\n";
  return report;
}

}  // namespace hupc::fault
