#include "fault/fuzzer.hpp"

#include <cassert>
#include <functional>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "async/rpc.hpp"
#include "fft/ft_model.hpp"
#include "gas/collectives.hpp"
#include "gas/runtime.hpp"
#include "kv/store.hpp"
#include "net/conduit.hpp"
#include "sched/work_stealing.hpp"
#include "sim/engine.hpp"
#include "stream/random_access.hpp"
#include "topo/machine.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "uts/tree.hpp"

namespace hupc::fault {

namespace {

// Every fuzz workload runs on the same small footprint: 8 ranks over 2
// Lehman nodes (4 ranks/node) — enough to exercise intra- and inter-node
// paths while keeping a single case in the low milliseconds.
constexpr int kFuzzThreads = 8;
constexpr int kFuzzNodes = 2;
constexpr std::size_t kAsyncWords = 16;  // per-slot payload of run_async

gas::Config base_config(const CaseSpec& spec, trace::Tracer* tracer) {
  gas::Config cfg;
  cfg.machine = topo::lehman(kFuzzNodes);
  cfg.threads = kFuzzThreads;
  cfg.backend = spec.backend == "pthreads" ? gas::Backend::pthreads
                                           : gas::Backend::processes;
  if (spec.conduit == "ib-ddr") {
    cfg.conduit = net::ib_ddr();
  } else if (spec.conduit == "gige") {
    cfg.conduit = net::gige();
  } else {
    cfg.conduit = net::ib_qdr();
  }
  cfg.tracer = tracer;
  return cfg;
}

// Trace counters only exist when the instrumentation is compiled in; the
// cross-checking invariants must not fire against all-zero counters in a
// HUPC_TRACE=0 build.
trace::Tracer* effective(trace::Tracer& tracer) {
  return trace::kEnabled ? &tracer : nullptr;
}

void finish(CaseResult& res, const trace::Tracer& tracer,
            const sim::Engine& engine, const FaultPlan& plan) {
  res.virtual_time = engine.now();
  res.injected = plan.stats().total();
  std::ostringstream summary;
  tracer.export_summary(summary);
  res.summary = summary.str();
}

CaseResult run_uts(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);  // before WorkStealing: the steal seam is read at ctor

  // Tree shape and steal policy derive from the case seed, NOT the plan, so
  // the shrinker replays the identical workload under reduced plans.
  util::SplitMix64 sm(spec.seed ^ 0x07155EEDULL);
  uts::TreeParams tree;
  tree.b0 = 40 + static_cast<int>(sm.next() % 41);  // ~200-400 node trees
  tree.m = 8;
  tree.q = 0.1;
  tree.root_seed = static_cast<std::uint32_t>(sm.next() % 1024);
  const uts::TreeStats oracle = uts::enumerate(tree);

  sched::StealParams sp;
  sp.policy = sm.next() % 2 == 0 ? sched::VictimPolicy::random
                                 : sched::VictimPolicy::local_first;
  sp.rapid_diffusion = true;
  sp.granularity = 4;
  sp.chunk = 4;
  sp.batch = 16;
  sp.seed = spec.seed;
  sp.test_split_off_by_one = spec.plant_split_bug;
  sched::WorkStealing<uts::Node> ws(
      rt, sp, [&tree](const uts::Node& n, std::vector<uts::Node>& out) {
        uts::expand(tree, n, out);
      });
  ws.seed_work(0, {uts::root_node(tree)});

  rt.spmd([&ws](gas::Thread& t) { return ws.run(t); });
  try {
    rt.run_to_completion();
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("uts: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  check_steal_conservation(ws, rt.threads(), oracle.nodes, effective(tracer),
                           res.violations);
  check_byte_conservation(rt, res.violations);
  check_trace_network(effective(tracer), rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

CaseResult run_ft(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);

  util::SplitMix64 sm(spec.seed ^ 0x0F75EEDFULL);
  fft::FtConfig fc;
  fc.grid = fft::FtParams{64, 64, 64, 2, "S"};  // class S, trimmed to 2 iters
  fc.variant = sm.next() % 2 == 0 ? fft::CommVariant::split_phase
                                  : fft::CommVariant::overlap;
  fc.subs = sm.next() % 2 == 0 ? 0 : 2;  // pure UPC vs. hybrid sub-threads
  fft::FtModel model(rt, fc);

  rt.spmd([&model](gas::Thread& t) { return model.run(t); });
  try {
    rt.run_to_completion();
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("ft: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  // Phase-timing coherence: every phase non-negative and the disjoint phase
  // measurements can never exceed the rank's wall (virtual) total.
  for (int r = 0; r < rt.threads(); ++r) {
    const fft::FtTimings& tm = model.timings(r);
    const double phases[] = {tm.evolve, tm.fft2d, tm.transpose, tm.comm,
                             tm.fft1d};
    double sum = 0.0;
    for (double p : phases) {
      sum += p;
      if (p < 0.0) {
        res.violations.push_back("ft timings: rank " + std::to_string(r) +
                                 " has a negative phase time");
        break;
      }
    }
    if (sum > tm.total * (1.0 + 1e-9) + 1e-12) {
      res.violations.push_back("ft timings: rank " + std::to_string(r) +
                               " phase sum " + std::to_string(sum) +
                               " exceeds total " + std::to_string(tm.total));
    }
  }
  check_byte_conservation(rt, res.violations);
  check_trace_network(effective(tracer), rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

CaseResult run_barrier(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);

  util::SplitMix64 sm(spec.seed ^ 0xBA221E25ULL);
  const int phases = 10 + static_cast<int>(sm.next() % 7);

  rt.spmd([phases](gas::Thread& t) -> sim::Task<void> {
    for (int i = 0; i < phases; ++i) {
      // Skew the arrivals so a linearizability bug (a rank slipping past a
      // phase) would actually have room to manifest.
      const double skew = 1e-7 * static_cast<double>((t.rank() * 13 + i * 7) %
                                                     23);
      co_await t.compute(skew);
      co_await t.barrier();
    }
  });
  try {
    rt.run_to_completion();
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("barrier: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  check_barrier(rt, static_cast<std::uint64_t>(phases), effective(tracer),
                res.violations);
  check_byte_conservation(rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

// Cache-pressure workload: the read-dominated gather runs with a read-cache
// epoch open on every rank, under whatever plan the case derived (including
// cache-storm invalidation storms). The oracle is the SAME gather stream
// uncached and unfaulted in a fresh runtime: the checksums must match
// bit-for-bit because the cache holds tags, never data.
CaseResult run_gather(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);  // before spmd: the cache seam is read at epoch open

  util::SplitMix64 sm(spec.seed ^ 0x6A74E255ULL);
  stream::GatherParams gp;
  gp.bursts = 4 + (sm.next() % 5);
  gp.burst_len = 16 + (sm.next() % 17);
  gp.cached = true;
  gp.cache.lines = sm.next() % 2 == 0 ? 32 : 256;
  gp.cache.line_bytes = sm.next() % 2 == 0 ? 64 : 256;
  gp.seed = sm.next() | 1;

  stream::RandomAccess ra(rt, 12);
  stream::GatherResult cached;
  try {
    cached = ra.run_gather(gp);
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("gather: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  sim::Engine oracle_engine;
  gas::Runtime oracle_rt(oracle_engine, base_config(spec, nullptr));
  stream::RandomAccess oracle(oracle_rt, 12);
  stream::GatherParams up = gp;
  up.cached = false;
  const stream::GatherResult uncached = oracle.run_gather(up);

  comm::CacheStats total;
  for (int r = 0; r < rt.threads(); ++r) {
    if (const comm::CacheStats* s = rt.thread(r).read_cache_stats()) {
      total.hits += s->hits;
      total.misses += s->misses;
      total.evictions += s->evictions;
      total.invalidations += s->invalidations;
    }
  }
  check_cache_transparency(cached.checksum, uncached.checksum, &total,
                           effective(tracer), res.violations);
  check_byte_conservation(rt, res.violations);
  check_trace_network(effective(tracer), rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

// Async-completion workload: every rank overlaps copy_asyncs into its ring
// neighbour's slot with RPC traffic, recording (issue, resolve) times and a
// firing count for every copy. check_async_ordering then asserts each
// future resolved exactly once and never before its issue — the property a
// completion-storm plan (which HOLDS completions) must preserve — and a
// chained RPC probe asserts read-your-writes: once a copy_async's future
// resolves, the destination rank observes the payload.
CaseResult run_async(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);
  async::RpcDomain domain(rt);

  util::SplitMix64 sm(spec.seed ^ 0xA57C5EEDULL);
  const int rounds = 2 + static_cast<int>(sm.next() % 3);
  

  std::vector<gas::GlobalPtr<std::uint64_t>> slot(
      static_cast<std::size_t>(kFuzzThreads));
  for (int r = 0; r < kFuzzThreads; ++r) {
    slot[static_cast<std::size_t>(r)] = rt.heap().alloc<std::uint64_t>(
        r, kAsyncWords);
  }

  std::vector<std::vector<AsyncOpRecord>> records(
      static_cast<std::size_t>(kFuzzThreads));
  int stale_reads = 0;

  rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
    const int rank = t.rank();
    const auto next = static_cast<std::size_t>((rank + 1) % t.threads());
    std::vector<std::uint64_t> payload(kAsyncWords);
    for (int round = 0; round < rounds; ++round) {
      for (std::size_t w = 0; w < kAsyncWords; ++w) {
        payload[w] = (static_cast<std::uint64_t>(rank) << 32) |
                     static_cast<std::uint64_t>(round) * kAsyncWords | w;
      }
      const std::uint64_t expect = payload[kAsyncWords - 1];

      auto& mine = records[static_cast<std::size_t>(rank)];
      const std::size_t idx = mine.size();
      mine.push_back(AsyncOpRecord{engine.now(), -1, 0});
      auto copied =
          t.copy_async(slot[next], payload.data(), kAsyncWords)
              .then([&records, &engine, rank, idx] {
                AsyncOpRecord& op =
                    records[static_cast<std::size_t>(rank)][idx];
                ++op.completions;
                op.completed_at = engine.now();
              });
      // Read-your-writes probe: chained AFTER the copy resolves, the
      // destination rank reads its own slot — it must see the payload.
      auto probed =
          copied
              .then([&domain, &t, p = slot[next]] {
                return domain.call(t, p.owner, [p](gas::Thread&) {
                  return p.raw[kAsyncWords - 1];
                });
              })
              .then([&stale_reads, expect](const std::uint64_t& got) {
                if (got != expect) ++stale_reads;
              });
      // Unrelated concurrent RPC so completions from different op kinds
      // interleave under the storm.
      auto side = domain
                      .call(t, (rank + 3) % t.threads(),
                            [](gas::Thread& at, int x) { return x + at.rank(); },
                            round)
                      .then([](const int&) {});
      std::vector<async::future<>> pending;
      pending.push_back(std::move(probed));
      pending.push_back(std::move(side));
      co_await async::when_all(std::move(pending)).wait();
      co_await t.barrier();  // slots are reused next round
    }
  });
  try {
    rt.run_to_completion();
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("async: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  std::vector<AsyncOpRecord> all;
  for (const auto& per_rank : records) {
    all.insert(all.end(), per_rank.begin(), per_rank.end());
  }
  check_async_ordering(all, effective(tracer), res.violations);
  if (stale_reads > 0) {
    res.violations.push_back(
        "async read-your-writes: " + std::to_string(stale_reads) +
        " RPC probe(s) observed stale data after copy_async resolution");
  }
  check_byte_conservation(rt, res.violations);
  check_trace_network(effective(tracer), rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

// Team-collective workload: three seeded, mutually overlapping teams run a
// seeded schedule of broadcast / reduce / allgather / all-to-all calls with
// seeded algorithm choices (flat, hierarchical, ring, dissemination, or
// selector-driven). Every member folds the values each collective delivers
// to it into a running checksum; a closing allgather turns the per-member
// checksums into a team digest that every member must agree on, and the
// digests are compared against a host-side oracle — faults and algorithm
// choice may reshape the schedule, never the delivered bytes.
CaseResult run_teams(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);

  util::SplitMix64 sm(spec.seed ^ 0x7EA35EEDULL);

  // Shapes over the 8 fuzz ranks: the whole runtime, a contiguous window,
  // and a stride-2 comb. Every shape overlaps the others, so the per-(team,
  // op) matching keys are genuinely exercised by the interleaving.
  std::vector<std::vector<int>> shapes;
  shapes.push_back({0, 1, 2, 3, 4, 5, 6, 7});
  const int w = 3 + static_cast<int>(sm.next() % 4);
  const int at = static_cast<int>(
      sm.next() % static_cast<std::uint64_t>(kFuzzThreads - w + 1));
  std::vector<int> window;
  for (int i = 0; i < w; ++i) window.push_back(at + i);
  shapes.push_back(window);
  std::vector<int> comb;
  for (int r = static_cast<int>(sm.next() % 2); r < kFuzzThreads; r += 2) {
    comb.push_back(r);
  }
  shapes.push_back(comb);

  const int T = static_cast<int>(shapes.size());
  std::vector<std::unique_ptr<gas::Collectives>> colls;
  for (const auto& members : shapes) {
    colls.push_back(std::make_unique<gas::Collectives>(rt, members));
  }

  constexpr std::uint64_t kBasis = 1469598103934665603ULL;  // FNV-1a
  const auto fold = [](std::uint64_t h, std::int64_t v) {
    return (h ^ static_cast<std::uint64_t>(v)) * 1099511628211ULL;
  };
  const auto pat = [](int call, int member, std::size_t i) {
    return static_cast<std::int64_t>(call + 1) * 1000003 +
           static_cast<std::int64_t>(member + 1) * 7919 +
           static_cast<std::int64_t>(i) * 13;
  };

  struct Call {
    int team = 0;
    gas::CollOp op = gas::CollOp::broadcast;
    gas::CollAlgo algo = gas::CollAlgo::automatic;
    std::size_t count = 0;
    int root = 0;
    std::vector<gas::GlobalPtr<std::int64_t>> bufs;
    std::vector<std::vector<std::int64_t>> send;  // all-to-all, per member
  };

  // Derive the schedule and the host-side oracle together: `want[t][m]` is
  // the checksum member m of team t must hold after a faithful run.
  static const gas::CollOp kOps[] = {
      gas::CollOp::broadcast, gas::CollOp::reduce, gas::CollOp::allgather,
      gas::CollOp::alltoall};
  const int rounds = 2 + static_cast<int>(sm.next() % 2);
  std::vector<Call> schedule;
  std::vector<std::vector<std::uint64_t>> want(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    want[static_cast<std::size_t>(t)]
        .assign(shapes[static_cast<std::size_t>(t)].size(), kBasis);
  }
  std::uint64_t expected_calls = 0;
  for (int round = 0; round < rounds; ++round) {
    for (int t = 0; t < T; ++t) {
      const auto& members = shapes[static_cast<std::size_t>(t)];
      const int n = static_cast<int>(members.size());
      Call c;
      c.team = t;
      c.op = kOps[sm.next() % 4];
      std::vector<gas::CollAlgo> algos = {gas::CollAlgo::automatic};
      for (gas::CollAlgo a : {gas::CollAlgo::flat, gas::CollAlgo::hier,
                              gas::CollAlgo::ring, gas::CollAlgo::dissem}) {
        if (gas::coll_algo_supported(c.op, a)) algos.push_back(a);
      }
      c.algo = algos[sm.next() % algos.size()];
      c.count = 2 + static_cast<std::size_t>(sm.next() % 7);
      c.root = static_cast<int>(sm.next() % static_cast<std::uint64_t>(n));
      const int ci = static_cast<int>(schedule.size());
      const std::size_t full = static_cast<std::size_t>(n) * c.count;
      for (int m = 0; m < n; ++m) {
        std::size_t elems = c.count;
        if (c.op == gas::CollOp::allgather || c.op == gas::CollOp::alltoall) {
          elems = full;
        } else if (m == c.root && c.op == gas::CollOp::reduce) {
          elems = full;  // the flat tree stages per-member slots at the root
        }
        auto p = rt.heap().alloc<std::int64_t>(
            members[static_cast<std::size_t>(m)], elems);
        for (std::size_t i = 0; i < elems; ++i) p.raw[i] = 0;
        switch (c.op) {
          case gas::CollOp::broadcast:
            if (m == c.root) {
              for (std::size_t i = 0; i < c.count; ++i) {
                p.raw[i] = pat(ci, m, i);
              }
            }
            break;
          case gas::CollOp::reduce:
            for (std::size_t i = 0; i < c.count; ++i) {
              p.raw[i] = pat(ci, m, i);
            }
            break;
          case gas::CollOp::allgather:
            for (std::size_t i = 0; i < c.count; ++i) {
              p.raw[static_cast<std::size_t>(m) * c.count + i] = pat(ci, m, i);
            }
            break;
          case gas::CollOp::alltoall: {
            std::vector<std::int64_t> s(full);
            for (int dst = 0; dst < n; ++dst) {
              for (std::size_t i = 0; i < c.count; ++i) {
                s[static_cast<std::size_t>(dst) * c.count + i] =
                    pat(ci, m, i) + dst * 31;
              }
            }
            c.send.push_back(std::move(s));
            break;
          }
          case gas::CollOp::gather:
            break;  // never scheduled
        }
        c.bufs.push_back(p);
      }
      for (int m = 0; m < n; ++m) {
        std::uint64_t& h = want[static_cast<std::size_t>(t)]
                               [static_cast<std::size_t>(m)];
        switch (c.op) {
          case gas::CollOp::broadcast:
            for (std::size_t i = 0; i < c.count; ++i) {
              h = fold(h, pat(ci, c.root, i));
            }
            break;
          case gas::CollOp::reduce:
            if (m == c.root) {
              for (std::size_t i = 0; i < c.count; ++i) {
                std::int64_t s = 0;
                for (int mm = 0; mm < n; ++mm) s += pat(ci, mm, i);
                h = fold(h, s);
              }
            }
            break;
          case gas::CollOp::allgather:
            for (int mm = 0; mm < n; ++mm) {
              for (std::size_t i = 0; i < c.count; ++i) {
                h = fold(h, pat(ci, mm, i));
              }
            }
            break;
          case gas::CollOp::alltoall:
            for (int mm = 0; mm < n; ++mm) {
              for (std::size_t i = 0; i < c.count; ++i) {
                h = fold(h, pat(ci, mm, i) + m * 31);
              }
            }
            break;
          case gas::CollOp::gather:
            break;
        }
      }
      expected_calls += static_cast<std::uint64_t>(n);
      schedule.push_back(std::move(c));
    }
  }

  // Digest buffers for the closing per-team checksum allgather.
  std::vector<std::vector<gas::GlobalPtr<std::int64_t>>> dig(
      static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    const auto& members = shapes[static_cast<std::size_t>(t)];
    for (std::size_t m = 0; m < members.size(); ++m) {
      auto p = rt.heap().alloc<std::int64_t>(members[m], members.size());
      for (std::size_t i = 0; i < members.size(); ++i) p.raw[i] = 0;
      dig[static_cast<std::size_t>(t)].push_back(p);
    }
    expected_calls += static_cast<std::uint64_t>(members.size());
  }

  std::vector<std::vector<std::uint64_t>> chk(static_cast<std::size_t>(T));
  std::vector<std::vector<std::uint64_t>> ops(static_cast<std::size_t>(T));
  std::vector<std::vector<std::uint64_t>> digest(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    const std::size_t n = shapes[static_cast<std::size_t>(t)].size();
    chk[static_cast<std::size_t>(t)].assign(n, kBasis);
    ops[static_cast<std::size_t>(t)].assign(n, 0);
    digest[static_cast<std::size_t>(t)].assign(n, 0);
  }

  const auto plus = [](std::int64_t a, std::int64_t b) { return a + b; };
  rt.spmd([&](gas::Thread& th) -> sim::Task<void> {
    for (const Call& c : schedule) {
      const auto tt = static_cast<std::size_t>(c.team);
      const int me = colls[tt]->index_of(th.rank());
      if (me < 0) continue;
      const int n = colls[tt]->size();
      switch (c.op) {
        case gas::CollOp::broadcast:
          co_await colls[tt]->broadcast(th, c.bufs, c.count, c.root, c.algo);
          break;
        case gas::CollOp::reduce:
          co_await colls[tt]->reduce(th, c.bufs, c.count, c.root, plus,
                                     c.algo);
          break;
        case gas::CollOp::allgather:
          co_await colls[tt]->allgather(th, c.bufs, c.count, c.algo);
          break;
        case gas::CollOp::alltoall:
          co_await colls[tt]->exchange(
              th, c.bufs, c.send[static_cast<std::size_t>(me)].data(),
              c.count, /*overlap=*/false, c.algo);
          break;
        case gas::CollOp::gather:
          break;
      }
      std::uint64_t& h = chk[tt][static_cast<std::size_t>(me)];
      const std::int64_t* mine =
          c.bufs[static_cast<std::size_t>(me)].raw;
      switch (c.op) {
        case gas::CollOp::broadcast:
          for (std::size_t i = 0; i < c.count; ++i) h = fold(h, mine[i]);
          break;
        case gas::CollOp::reduce:
          if (me == c.root) {
            for (std::size_t i = 0; i < c.count; ++i) h = fold(h, mine[i]);
          }
          break;
        case gas::CollOp::allgather:
        case gas::CollOp::alltoall:
          for (std::size_t i = 0;
               i < static_cast<std::size_t>(n) * c.count; ++i) {
            h = fold(h, mine[i]);
          }
          break;
        case gas::CollOp::gather:
          break;
      }
      ++ops[tt][static_cast<std::size_t>(me)];
    }
    for (int t = 0; t < T; ++t) {
      const auto tt = static_cast<std::size_t>(t);
      const int me = colls[tt]->index_of(th.rank());
      if (me < 0) continue;
      const int n = colls[tt]->size();
      const auto mm = static_cast<std::size_t>(me);
      dig[tt][mm].raw[me] = static_cast<std::int64_t>(chk[tt][mm]);
      co_await colls[tt]->allgather(th, dig[tt], 1);
      std::uint64_t h = kBasis;
      for (int m = 0; m < n; ++m) h = fold(h, dig[tt][mm].raw[m]);
      digest[tt][mm] = h;
      ++ops[tt][mm];
    }
  });
  try {
    rt.run_to_completion();
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("teams: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  std::vector<TeamOpRecord> records;
  for (int t = 0; t < T; ++t) {
    const auto tt = static_cast<std::size_t>(t);
    for (std::size_t m = 0; m < shapes[tt].size(); ++m) {
      records.push_back(TeamOpRecord{t, static_cast<int>(m), ops[tt][m],
                                     digest[tt][m]});
    }
  }
  check_team_agreement(records, expected_calls, effective(tracer),
                       res.violations);
  for (int t = 0; t < T; ++t) {
    const auto tt = static_cast<std::size_t>(t);
    std::uint64_t h = kBasis;
    for (std::size_t m = 0; m < shapes[tt].size(); ++m) {
      h = fold(h, static_cast<std::int64_t>(want[tt][m]));
    }
    for (std::size_t m = 0; m < shapes[tt].size(); ++m) {
      if (digest[tt][m] != h) {
        res.violations.push_back(
            "teams oracle: team " + std::to_string(t) + " member " +
            std::to_string(m) + " digest " + std::to_string(digest[tt][m]) +
            " != expected " + std::to_string(h));
      }
    }
  }
  check_byte_conservation(rt, res.violations);
  check_trace_network(effective(tracer), rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

// VIS workload: every rank scatters seeded strided/indexed puts into
// disjoint slices of its peers' slabs, barriers, then gathers seeded
// strided/indexed footprints back out and folds a checksum. A host-side
// mirror applies the identical schedule to plain arrays: after the run the
// slabs must match the mirror bit-for-bit and every rank's checksum must
// match the mirror's fold. Alongside the data oracle, the schedule also
// yields a VisExpectation — every cross-node transfer with >= 2 regions
// must appear in the network's packed-message accounting exactly once,
// with its region count and payload bytes conserved (sum of region bytes
// == transferred payload), whatever delays or bandwidth dips the plan
// injects. Strides stay strictly wider than run lengths and indexed
// regions keep one-element gaps, so the lowering never merges runs and
// the expectation is exact.
CaseResult run_vis(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);

  constexpr std::size_t kSlab = 256;  // u64 words per rank's slab
  constexpr std::size_t kSlice = 32;  // per-source slice of every slab
  constexpr std::size_t kSub = 10;    // per-op sub-slice within the slice

  util::SplitMix64 sm(spec.seed ^ 0x0715DEEDULL);

  std::vector<gas::GlobalPtr<std::uint64_t>> slab(
      static_cast<std::size_t>(kFuzzThreads));
  std::vector<std::vector<std::uint64_t>> mirror(
      static_cast<std::size_t>(kFuzzThreads),
      std::vector<std::uint64_t>(kSlab, 0));
  for (int r = 0; r < kFuzzThreads; ++r) {
    slab[static_cast<std::size_t>(r)] =
        rt.heap().alloc<std::uint64_t>(r, kSlab);
    for (std::size_t i = 0; i < kSlab; ++i) {
      slab[static_cast<std::size_t>(r)].raw[i] = 0;
    }
  }

  struct VisOp {
    int peer = 0;
    bool indexed = false;
    std::size_t base = 0;  // element offset into the peer's slab
    gas::StridedSpec sspec;
    gas::IndexedSpec ispec;
    std::vector<std::uint64_t> values;  // puts only: the source payload

    [[nodiscard]] std::size_t regions() const {
      return indexed ? ispec.regions.size() : sspec.regions();
    }
    [[nodiscard]] std::size_t elems() const {
      return indexed ? ispec.elems() : sspec.elems();
    }
    // Walk the footprint in spec order, calling f(slab_element_index).
    void for_each_elem(const std::function<void(std::size_t)>& f) const {
      if (indexed) {
        for (const gas::IndexedSpec::Region& g : ispec.regions) {
          for (std::size_t l = 0; l < g.len; ++l) f(base + g.offset + l);
        }
      } else {
        for (std::size_t j = 0; j < sspec.extents[1]; ++j) {
          for (std::size_t l = 0; l < sspec.extents[0]; ++l) {
            f(base + j * sspec.strides[1] + l);
          }
        }
      }
    }
  };

  const auto draw_shape = [&sm](VisOp& op, std::size_t budget) {
    op.indexed = sm.next() % 2 == 1;
    if (op.indexed) {
      const std::size_t k = 2 + sm.next() % 2;  // 2..3 regions
      std::size_t off = 0;
      for (std::size_t g = 0; g < k; ++g) {
        const std::size_t len = 1 + sm.next() % 2;  // 1..2 elements
        op.ispec.regions.push_back({off, len});
        off += len + 1;  // the gap keeps regions from merging
      }
    } else {
      const std::size_t len = 1 + sm.next() % 2;  // 1..2 elements per run
      const std::size_t n = 2 + sm.next() % 2;    // 2..3 runs
      op.sspec = gas::StridedSpec::rows(len, n, len + 1);  // stride > len
    }
    // Worst-case span is 9 elements; every shape must fit its budget.
    const std::size_t span =
        op.indexed ? op.ispec.regions.back().offset + op.ispec.regions.back().len
                   : (op.sspec.extents[1] - 1) * op.sspec.strides[1] +
                         op.sspec.extents[0];
    (void)budget;
    assert(span <= budget);
  };

  VisExpectation expect;
  const auto note_expected = [&](const VisOp& op, int from) {
    if (rt.node_of(op.peer) == rt.node_of(from)) return;  // shm/loopback
    if (op.regions() < 2) return;  // plain transfer, no vis accounting
    ++expect.messages;
    expect.regions += static_cast<std::uint64_t>(op.regions());
    expect.payload_bytes +=
        static_cast<double>(op.elems()) * sizeof(std::uint64_t);
  };

  // Phase-1 schedule: per-rank puts into the rank's own slice of each
  // peer's slab, one sub-slice per op so footprints never overlap.
  std::vector<std::vector<VisOp>> puts(static_cast<std::size_t>(kFuzzThreads));
  for (int r = 0; r < kFuzzThreads; ++r) {
    const int nops = 2 + static_cast<int>(sm.next() % 2);  // 2..3 ops
    for (int i = 0; i < nops; ++i) {
      VisOp op;
      op.peer = static_cast<int>(
          sm.next() % static_cast<std::uint64_t>(kFuzzThreads - 1));
      if (op.peer >= r) ++op.peer;
      op.base = static_cast<std::size_t>(r) * kSlice +
                static_cast<std::size_t>(i) * kSub;
      draw_shape(op, kSub);
      op.values.resize(op.elems());
      for (std::uint64_t& v : op.values) v = sm.next();
      std::size_t idx = 0;
      op.for_each_elem([&](std::size_t e) {
        mirror[static_cast<std::size_t>(op.peer)][e] = op.values[idx++];
      });
      note_expected(op, r);
      puts[static_cast<std::size_t>(r)].push_back(std::move(op));
    }
  }

  // Phase-2 schedule: gathers over arbitrary slab windows (the mirror is
  // complete, so expected checksums fold host-side in the same order).
  constexpr std::uint64_t kBasis = 1469598103934665603ULL;  // FNV-1a
  const auto fold = [](std::uint64_t h, std::uint64_t v) {
    return (h ^ v) * 1099511628211ULL;
  };
  std::vector<std::vector<VisOp>> gets(static_cast<std::size_t>(kFuzzThreads));
  std::vector<std::uint64_t> want_chk(static_cast<std::size_t>(kFuzzThreads),
                                      kBasis);
  for (int r = 0; r < kFuzzThreads; ++r) {
    const int nops = 1 + static_cast<int>(sm.next() % 2);  // 1..2 ops
    for (int i = 0; i < nops; ++i) {
      VisOp op;
      op.peer = static_cast<int>(
          sm.next() % static_cast<std::uint64_t>(kFuzzThreads - 1));
      if (op.peer >= r) ++op.peer;
      draw_shape(op, kSub);
      op.base = sm.next() % (kSlab - kSub);
      op.for_each_elem([&](std::size_t e) {
        auto& h = want_chk[static_cast<std::size_t>(r)];
        h = fold(h, mirror[static_cast<std::size_t>(op.peer)][e]);
      });
      note_expected(op, r);
      gets[static_cast<std::size_t>(r)].push_back(std::move(op));
    }
  }

  std::vector<std::uint64_t> got_chk(static_cast<std::size_t>(kFuzzThreads),
                                     kBasis);
  rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
    const int r = t.rank();
    for (const VisOp& op : puts[static_cast<std::size_t>(r)]) {
      gas::GlobalPtr<std::uint64_t> dst{
          op.peer, slab[static_cast<std::size_t>(op.peer)].raw + op.base};
      if (op.indexed) {
        co_await t.copy_irregular(dst, op.ispec, op.values.data());
      } else {
        co_await t.copy_strided(dst, op.sspec, op.values.data());
      }
    }
    co_await t.barrier();
    for (const VisOp& op : gets[static_cast<std::size_t>(r)]) {
      std::vector<std::uint64_t> buf(op.elems());
      gas::GlobalPtr<std::uint64_t> src{
          op.peer, slab[static_cast<std::size_t>(op.peer)].raw + op.base};
      if (op.indexed) {
        co_await t.copy_irregular(buf.data(), src, op.ispec);
      } else {
        co_await t.copy_strided(buf.data(), src, op.sspec);
      }
      auto& h = got_chk[static_cast<std::size_t>(r)];
      for (std::uint64_t v : buf) h = fold(h, v);
    }
    co_await t.barrier();
  });
  try {
    rt.run_to_completion();
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("vis: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  for (int r = 0; r < kFuzzThreads; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    for (std::size_t i = 0; i < kSlab; ++i) {
      if (slab[rr].raw[i] != mirror[rr][i]) {
        res.violations.push_back(
            "vis oracle: rank " + std::to_string(r) + " slab[" +
            std::to_string(i) + "] = " + std::to_string(slab[rr].raw[i]) +
            " != mirror " + std::to_string(mirror[rr][i]));
        break;  // one divergence per rank keeps the report readable
      }
    }
    if (got_chk[rr] != want_chk[rr]) {
      res.violations.push_back("vis oracle: rank " + std::to_string(r) +
                               " gather checksum " +
                               std::to_string(got_chk[rr]) + " != expected " +
                               std::to_string(want_chk[rr]));
    }
  }
  check_vis_conservation(rt, expect, effective(tracer), res.violations);
  check_byte_conservation(rt, res.violations);
  check_trace_network(effective(tracer), rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

CaseResult run_kv(const CaseSpec& spec, const PlanParams& plan_params) {
  CaseResult res;
  trace::Tracer tracer(std::size_t{1} << 18);
  sim::Engine engine;
  gas::Runtime rt(engine, base_config(spec, &tracer));
  FaultPlan plan(plan_params);
  plan.install(rt);
  async::RpcDomain rpc(rt);

  // Small shards force probe collisions and tombstone reuse; 64 keys over
  // 16 shards pile several keys onto every probe chain.
  constexpr std::uint64_t kKeys = 64;
  kv::KvStore::Params sp;
  sp.capacity = 32;
  kv::KvStore store(rt, rpc, kv::ShardMap::over(rt, 16), sp);

  // Plan every rank's op sequence host-side. Writers are key-partitioned
  // (key % ranks == rank), so per-rank sequential execution makes the
  // mirror exact whatever the cross-rank interleaving — the one insert
  // race the slot protocol leaves to callers never happens.
  util::SplitMix64 sm(spec.seed ^ 0x6B765EEDULL);
  struct KvPlanned {
    kv::KvOp op = kv::KvOp::get;
    kv::KvPath path = kv::KvPath::automatic;
    std::uint64_t key = 0;
    std::uint64_t value = 0;   // put value / update delta
    std::uint64_t want = 0;    // expected value (get/update)
    bool want_found = false;   // expected hit/ack
  };
  static const kv::KvPath kPaths[] = {kv::KvPath::automatic, kv::KvPath::amo,
                                      kv::KvPath::rpc};
  std::unordered_map<std::uint64_t, std::uint64_t> mirror;
  KvExpectation expect;
  std::vector<std::vector<KvPlanned>> phase_a(
      static_cast<std::size_t>(kFuzzThreads));
  for (int r = 0; r < kFuzzThreads; ++r) {
    const int nops = 16 + static_cast<int>(sm.next() % 17);  // 16..32
    auto& seq = phase_a[static_cast<std::size_t>(r)];
    seq.reserve(static_cast<std::size_t>(nops));
    for (int i = 0; i < nops; ++i) {
      KvPlanned op;
      op.key = static_cast<std::uint64_t>(r) +
               static_cast<std::uint64_t>(kFuzzThreads) *
                   (sm.next() % (kKeys / kFuzzThreads));
      op.path = kPaths[sm.next() % 3];
      const std::uint64_t kind = sm.next() % 100;
      const auto it = mirror.find(op.key);
      if (kind < 35) {
        op.op = kv::KvOp::put;
        op.value = sm.next();
        op.want_found = true;  // ack: chains never fill at this load
        mirror[op.key] = op.value;
        ++expect.puts;
      } else if (kind < 65) {
        op.op = kv::KvOp::get;
        op.want_found = it != mirror.end();
        op.want = op.want_found ? it->second : 0;
        ++expect.gets;
      } else if (kind < 85) {
        op.op = kv::KvOp::update;
        op.value = sm.next() % 1000;
        op.want_found = it != mirror.end();
        if (op.want_found) {
          it->second += op.value;
          op.want = it->second;
        }
        ++expect.updates;
      } else {
        op.op = kv::KvOp::erase;
        op.want_found = it != mirror.end();
        if (op.want_found) mirror.erase(it);
        ++expect.erases;
      }
      seq.push_back(op);
    }
  }

  // Phase B: cross-rank reads of the (now stable) final state, served
  // through a read-cache epoch — any key, any rank, mixed paths.
  std::vector<std::vector<KvPlanned>> phase_b(
      static_cast<std::size_t>(kFuzzThreads));
  for (int r = 0; r < kFuzzThreads; ++r) {
    auto& seq = phase_b[static_cast<std::size_t>(r)];
    for (int i = 0; i < 8; ++i) {
      KvPlanned op;
      op.op = kv::KvOp::get;
      op.key = sm.next() % kKeys;
      op.path = kPaths[sm.next() % 3];
      const auto it = mirror.find(op.key);
      op.want_found = it != mirror.end();
      op.want = op.want_found ? it->second : 0;
      seq.push_back(op);
      ++expect.gets;
    }
  }

  // Per-op observed results, compared host-side after the run.
  struct KvObserved {
    std::uint64_t value = 0;
    bool found = false;
  };
  std::vector<std::vector<KvObserved>> got_a(
      static_cast<std::size_t>(kFuzzThreads));
  std::vector<std::vector<KvObserved>> got_b(
      static_cast<std::size_t>(kFuzzThreads));

  rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
    const auto r = static_cast<std::size_t>(t.rank());
    for (const KvPlanned& op : phase_a[r]) {
      KvObserved got;
      switch (op.op) {
        case kv::KvOp::get: {
          const kv::KvHit h = co_await store.get(t, op.key, op.path);
          got = {h.value, h.found != 0};
          break;
        }
        case kv::KvOp::put:
          got.found = co_await store.put(t, op.key, op.value, op.path);
          break;
        case kv::KvOp::erase:
          got.found = co_await store.erase(t, op.key, op.path);
          break;
        case kv::KvOp::update: {
          const kv::KvHit h = co_await store.update(t, op.key, op.value,
                                                    op.path);
          got = {h.value, h.found != 0};
          break;
        }
      }
      got_a[r].push_back(got);
    }
    co_await t.barrier();
    {
      gas::CachedEpoch epoch(t);
      for (const KvPlanned& op : phase_b[r]) {
        const kv::KvHit h = co_await store.get(t, op.key, op.path);
        got_b[r].push_back({h.value, h.found != 0});
      }
    }
    co_await t.barrier();
  });
  try {
    rt.run_to_completion();
  } catch (const std::exception& e) {
    res.violations.push_back(std::string("kv: exception: ") + e.what());
    finish(res, tracer, engine, plan);
    return res;
  }

  const auto check_phase = [&res](const char* phase,
                                  const std::vector<KvPlanned>& want,
                                  const std::vector<KvObserved>& got, int r) {
    if (got.size() != want.size()) {
      res.violations.push_back(std::string("kv oracle: rank ") +
                               std::to_string(r) + " completed " +
                               std::to_string(got.size()) + "/" +
                               std::to_string(want.size()) + " " + phase +
                               " ops");
      return;
    }
    for (std::size_t i = 0; i < want.size(); ++i) {
      const KvPlanned& w = want[i];
      const bool value_matters =
          w.want_found && (w.op == kv::KvOp::get || w.op == kv::KvOp::update);
      if (got[i].found != w.want_found ||
          (value_matters && got[i].value != w.want)) {
        res.violations.push_back(
            std::string("kv oracle: rank ") + std::to_string(r) + " " +
            phase + " op " + std::to_string(i) + " (" +
            kv::kv_op_name(w.op) + " key " + std::to_string(w.key) +
            ") returned found=" + std::to_string(got[i].found) + " value " +
            std::to_string(got[i].value) + ", expected found=" +
            std::to_string(w.want_found) + " value " +
            std::to_string(w.want));
        break;  // one divergence per rank keeps the report readable
      }
    }
  };
  for (int r = 0; r < kFuzzThreads; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    check_phase("phase-a", phase_a[rr], got_a[rr], r);
    check_phase("phase-b", phase_b[rr], got_b[rr], r);
  }

  check_kv_conservation(store, mirror, expect, effective(tracer),
                        res.violations);
  check_byte_conservation(rt, res.violations);
  check_trace_network(effective(tracer), rt, res.violations);
  check_virtual_time(engine, res.violations);
  finish(res, tracer, engine, plan);
  return res;
}

}  // namespace

std::string CaseSpec::replay_command() const {
  std::string cmd = "./hupc_bench --workload fuzz --budget 1 --fuzz-seed " +
                    std::to_string(seed);
  if (plant_split_bug) cmd += " --fuzz-test-bug";
  cmd += "  # equivalently: --fault-seed=" + std::to_string(seed) +
         " --fault-plan=" + plan;
  return cmd;
}

CaseSpec derive_case(std::uint64_t case_seed,
                     const std::vector<std::string>& templates,
                     bool plant_split_bug) {
  util::SplitMix64 sm(case_seed ^ 0xF0225EEDULL);
  CaseSpec spec;
  spec.seed = case_seed;
  // uts is weighted 2x: it exercises the most seams (steal + net + engine).
  static const char* const kWorkloads[] = {"uts",    "uts",   "ft",
                                           "barrier", "gather", "async",
                                           "teams",  "vis",    "kv"};
  spec.workload = kWorkloads[sm.next() % 9];
  spec.backend = sm.next() % 2 == 0 ? "processes" : "pthreads";
  static const char* const kConduits[] = {"ib-qdr", "ib-ddr", "gige"};
  spec.conduit = kConduits[sm.next() % 3];
  spec.plan = templates.empty()
                  ? "none"
                  : templates[sm.next() % templates.size()];
  spec.plant_split_bug = plant_split_bug && spec.workload == "uts";
  return spec;
}

CaseResult run_case(const CaseSpec& spec, const PlanParams& plan) {
  if (spec.workload == "ft") return run_ft(spec, plan);
  if (spec.workload == "barrier") return run_barrier(spec, plan);
  if (spec.workload == "gather") return run_gather(spec, plan);
  if (spec.workload == "async") return run_async(spec, plan);
  if (spec.workload == "teams") return run_teams(spec, plan);
  if (spec.workload == "vis") return run_vis(spec, plan);
  if (spec.workload == "kv") return run_kv(spec, plan);
  return run_uts(spec, plan);
}

CaseResult run_case(const CaseSpec& spec) {
  return run_case(spec, plan_template(spec.plan, spec.seed));
}

PlanParams Fuzzer::shrink(const CaseSpec& spec, PlanParams failing) {
  const auto still_fails = [&spec](const PlanParams& p) {
    return !run_case(spec, p).ok();
  };

  // Pass 1: drop whole perturbation groups while the failure persists. The
  // per-seam RNG streams are independent, so removing one group never
  // shifts another group's decisions.
  using Reduce = std::function<void(PlanParams&)>;
  const Reduce group_off[] = {
      [](PlanParams& p) { p.event_jitter_p = 0.0; },
      [](PlanParams& p) { p.msg_delay_p = 0.0; },
      [](PlanParams& p) { p.msg_bw_degrade_p = 0.0; },
      [](PlanParams& p) { p.blackout_node = -1; },
      [](PlanParams& p) { p.steal_fail_p = 0.0; },
      [](PlanParams& p) { p.spawn_width_cap = 0; },
      [](PlanParams& p) { p.alloc_fail_after_bytes = 0; },
      [](PlanParams& p) { p.cache_invalidate_p = 0.0; },
      [](PlanParams& p) { p.completion_delay_p = 0.0; },
  };
  for (const Reduce& off : group_off) {
    PlanParams candidate = failing;
    off(candidate);
    if (still_fails(candidate)) failing = candidate;
  }

  // Pass 2: halve the magnitudes of whatever groups survived.
  const Reduce halve[] = {
      [](PlanParams& p) { p.event_jitter_p /= 2; p.event_jitter_max_s /= 2; },
      [](PlanParams& p) { p.msg_delay_p /= 2; p.msg_delay_max_s /= 2; },
      [](PlanParams& p) {
        p.msg_bw_degrade_p /= 2;
        p.msg_bw_floor += (1.0 - p.msg_bw_floor) / 2;  // milder dip
      },
      [](PlanParams& p) { p.blackout_duration_s /= 2; },
      [](PlanParams& p) { p.steal_fail_p /= 2; },
      [](PlanParams& p) { p.cache_invalidate_p /= 2; },
      [](PlanParams& p) {
        p.completion_delay_p /= 2;
        p.completion_delay_max_s /= 2;
      },
  };
  for (int round = 0; round < 3; ++round) {
    bool reduced = false;
    for (const Reduce& h : halve) {
      PlanParams candidate = failing;
      h(candidate);
      if (still_fails(candidate)) {
        failing = candidate;
        reduced = true;
      }
    }
    if (!reduced) break;
  }
  return failing;
}

FuzzReport Fuzzer::run(std::ostream& log) {
  FuzzReport report;
  for (int i = 0; i < opt_.budget; ++i) {
    const std::uint64_t seed = opt_.base_seed + static_cast<std::uint64_t>(i);
    const CaseSpec spec =
        derive_case(seed, opt_.templates, opt_.plant_split_bug);
    const CaseResult res = run_case(spec);
    ++report.cases_run;
    if (opt_.verbose) {
      log << "fuzz: seed=" << seed << " " << spec.workload << "/"
          << spec.backend << "/" << spec.conduit << "/" << spec.plan
          << (res.ok() ? " ok" : " FAIL") << " injected=" << res.injected
          << " t=" << sim::to_seconds(res.virtual_time) << "s\n";
    }
    if (res.ok()) continue;

    FuzzFailure failure;
    failure.spec = spec;
    failure.violations = res.violations;
    failure.shrunk = shrink(spec, plan_template(spec.plan, seed));
    log << "fuzz: FAIL seed=" << seed << " workload=" << spec.workload
        << " backend=" << spec.backend << " conduit=" << spec.conduit
        << " plan=" << spec.plan << "\n";
    for (const std::string& v : failure.violations) {
      log << "  violation: " << v << "\n";
    }
    log << "  shrunk:  " << failure.shrunk.describe() << "\n";
    log << "  replay:  " << spec.replay_command() << "\n";
    report.failures.push_back(std::move(failure));
  }
  log << "fuzz: " << report.cases_run << " cases, "
      << report.failures.size() << " failure(s)\n";
  return report;
}

}  // namespace hupc::fault
