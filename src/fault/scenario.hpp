// Seeded degenerate-scenario catalogue (DESIGN.md §9).
//
// A Scenario is a configuration the runtime must either reject (with a
// diagnostic mentioning `expect_reject_needle`) or accept and then survive
// a micro-workload on: empty transfers that must stay message-free,
// self-messages (puts/gets a rank issues against its own segment), and a
// pair of barriers. The catalogue replaces the ad-hoc failure cases that
// used to live inline in edge_cases_test.cpp: zero-capacity conduit links,
// degenerate machine shapes, negative cost constants, non-positive thread
// counts — with the rejected magnitudes drawn from a seed so every seed
// probes a different member of each family.
//
// Accepted scenarios run their micro-workload under an arbitrary FaultPlan:
// correctness (payload integrity, barrier phases, zero messages for empty
// transfers) must hold under ANY plan; the zero-virtual-time property of
// empty transfers is additionally asserted when the plan is quiescent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/invariants.hpp"
#include "fault/plan.hpp"
#include "gas/runtime.hpp"
#include "sim/time.hpp"

namespace hupc::fault {

struct Scenario {
  std::string name;
  gas::Config config;
  /// Non-empty => constructing a Runtime from `config` must throw
  /// std::invalid_argument whose message contains this needle.
  std::string expect_reject_needle;

  [[nodiscard]] bool expect_rejection() const noexcept {
    return !expect_reject_needle.empty();
  }
};

/// The full catalogue for one seed: every rejection family (threads,
/// machine shape, cost constants, conduit bandwidths) plus the accepted
/// degenerate machines (single core/single thread, more nodes than ranks).
[[nodiscard]] std::vector<Scenario> degenerate_scenarios(std::uint64_t seed);

/// Verify a scenario's accept/reject contract: a rejecting config must
/// throw with the expected needle; an accepted one must construct cleanly.
/// Violations are appended to `out`.
void check_scenario_contract(const Scenario& scenario, Violations& out);

struct ScenarioResult {
  Violations violations;
  sim::Time virtual_time = 0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Run an accepted scenario's micro-workload (empty transfers, self-message
/// roundtrips, two barriers) under `plan` and check the invariants that
/// must survive any perturbation.
[[nodiscard]] ScenarioResult run_scenario(const Scenario& scenario,
                                          const PlanParams& plan);

}  // namespace hupc::fault
