#include "fault/invariants.hpp"

#include <cmath>
#include <map>

namespace hupc::fault {

void check_byte_conservation(gas::Runtime& rt, Violations& out) {
  auto& net = rt.network();
  double nic_bytes = 0.0;
  for (int n = 0; n < rt.config().machine.nodes; ++n) {
    nic_bytes += net.nic(n).total_bytes();
  }
  const double counted = 2.0 * net.total_bytes();  // src + dst wire legs
  const double tol = 1e-6 * (counted + 1.0);
  if (std::abs(nic_bytes - counted) > tol) {
    out.push_back("byte conservation: NIC traffic " +
                  std::to_string(nic_bytes) + " != 2x message bytes " +
                  std::to_string(counted));
  }
}

void check_virtual_time(const sim::Engine& engine, Violations& out) {
  if (engine.now() < 0) {
    out.push_back("virtual time: final time " + std::to_string(engine.now()) +
                  " < 0");
  }
  if (engine.events_executed() == 0) {
    out.push_back("virtual time: engine dispatched no events");
  }
  if (!engine.empty()) {
    out.push_back("virtual time: " + std::to_string(engine.pending()) +
                  " events still pending after run()");
  }
}

void check_trace_network(const trace::Tracer* tracer, gas::Runtime& rt,
                         Violations& out) {
  if (tracer == nullptr) return;
  auto& net = rt.network();
  const std::uint64_t msgs = net.total_messages();
  const std::uint64_t traced = tracer->counter_total("net.msg");
  if (traced != msgs) {
    out.push_back("trace cross-check: net.msg " + std::to_string(traced) +
                  " != network messages " + std::to_string(msgs));
  }
  const std::uint64_t delivered = tracer->counter_total("net.delivered");
  if (delivered != msgs) {
    out.push_back("trace cross-check: net.delivered " +
                  std::to_string(delivered) + " != injected " +
                  std::to_string(msgs) + " (message lost in flight)");
  }
  // The bytes counter truncates each message's byte count to an integer, so
  // it may undercount by < 1 byte per message.
  const double traced_bytes =
      static_cast<double>(tracer->counter_total("net.bytes"));
  const double actual = net.total_bytes();
  if (traced_bytes > actual || actual - traced_bytes >
                                   static_cast<double>(msgs) + 1.0) {
    out.push_back("trace cross-check: net.bytes " +
                  std::to_string(traced_bytes) + " inconsistent with " +
                  std::to_string(actual));
  }
}

void check_cache_transparency(std::uint64_t cached_result,
                              std::uint64_t uncached_result,
                              const comm::CacheStats* stats,
                              const trace::Tracer* tracer, Violations& out) {
  if (cached_result != uncached_result) {
    out.push_back("cache transparency: cached result " +
                  std::to_string(cached_result) + " != uncached result " +
                  std::to_string(uncached_result));
  }
  if (stats == nullptr) return;
  if (stats->evictions > stats->misses) {
    out.push_back("cache accounting: evictions " +
                  std::to_string(stats->evictions) + " > misses " +
                  std::to_string(stats->misses) +
                  " (a line can only be displaced after a fill)");
  }
  if (stats->invalidations > 0 && stats->hits + stats->misses == 0) {
    out.push_back(
        "cache accounting: invalidations without any serviced access");
  }
  if (tracer == nullptr) return;
  const struct {
    const char* name;
    std::uint64_t expected;
  } counters[] = {
      {"gas.cache.hits", stats->hits},
      {"gas.cache.misses", stats->misses},
      {"gas.cache.evictions", stats->evictions},
      {"gas.cache.invalidations", stats->invalidations},
  };
  for (const auto& [name, expected] : counters) {
    const std::uint64_t traced = tracer->counter_total(name);
    if (traced != expected) {
      out.push_back("trace cross-check: " + std::string(name) + " " +
                    std::to_string(traced) + " != CacheStats " +
                    std::to_string(expected));
    }
  }
}

void check_async_ordering(const std::vector<AsyncOpRecord>& ops,
                          const trace::Tracer* tracer, Violations& out) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const AsyncOpRecord& op = ops[i];
    if (op.completions != 1) {
      out.push_back("async ordering: op " + std::to_string(i) +
                    " completed " + std::to_string(op.completions) +
                    " time(s), expected exactly once");
      continue;
    }
    if (op.completed_at < op.issued_at) {
      out.push_back("async ordering: op " + std::to_string(i) +
                    " resolved at t=" + std::to_string(op.completed_at) +
                    " before its issue at t=" + std::to_string(op.issued_at));
    }
  }
  if (tracer == nullptr) return;
  const std::uint64_t issued = tracer->counter_total("async.copy.issued");
  const std::uint64_t copies = tracer->counter_total("async.copy.completed");
  const std::uint64_t failed = tracer->counter_total("async.copy.failed");
  if (issued != copies + failed) {
    out.push_back("async conservation: async.copy.issued " +
                  std::to_string(issued) + " != completed " +
                  std::to_string(copies) + " + failed " +
                  std::to_string(failed));
  }
  const std::uint64_t sent = tracer->counter_total("async.rpc.sent");
  const std::uint64_t executed = tracer->counter_total("async.rpc.executed");
  const std::uint64_t completed = tracer->counter_total("async.rpc.completed");
  if (sent != executed || sent != completed) {
    out.push_back("async conservation: async.rpc sent " +
                  std::to_string(sent) + " / executed " +
                  std::to_string(executed) + " / completed " +
                  std::to_string(completed) + " diverge");
  }
}

void check_vis_conservation(gas::Runtime& rt, const VisExpectation& expected,
                            const trace::Tracer* tracer, Violations& out) {
  auto& net = rt.network();
  const std::uint64_t msgs = net.total_vis_messages();
  if (msgs != expected.messages) {
    out.push_back("vis conservation: packed messages " + std::to_string(msgs) +
                  " != expected " + std::to_string(expected.messages));
  }
  if (net.total_vis_regions() != expected.regions) {
    out.push_back("vis conservation: packed regions " +
                  std::to_string(net.total_vis_regions()) + " != expected " +
                  std::to_string(expected.regions));
  }
  const double payload = net.total_vis_payload_bytes();
  const double tol = 1e-6 * (expected.payload_bytes + 1.0);
  if (std::abs(payload - expected.payload_bytes) > tol) {
    out.push_back("vis conservation: payload " + std::to_string(payload) +
                  " != sum of oracle region bytes " +
                  std::to_string(expected.payload_bytes));
  }
  if (net.total_vis_bytes() + tol < payload) {
    out.push_back("vis conservation: gross wire bytes " +
                  std::to_string(net.total_vis_bytes()) +
                  " < payload " + std::to_string(payload) +
                  " (negative header overhead)");
  }
  if (tracer == nullptr) return;
  const std::uint64_t traced_msgs = tracer->counter_total("net.vis.msg");
  if (traced_msgs != msgs) {
    out.push_back("trace cross-check: net.vis.msg " +
                  std::to_string(traced_msgs) + " != network vis messages " +
                  std::to_string(msgs));
  }
  const std::uint64_t traced_regions =
      tracer->counter_total("net.vis.regions");
  if (traced_regions != net.total_vis_regions()) {
    out.push_back("trace cross-check: net.vis.regions " +
                  std::to_string(traced_regions) + " != network vis regions " +
                  std::to_string(net.total_vis_regions()));
  }
  // net.vis.bytes counts each message's PAYLOAD, truncated to an integer
  // (headers are a model charge, not traffic the descriptors asked for).
  const double traced_bytes =
      static_cast<double>(tracer->counter_total("net.vis.bytes"));
  if (traced_bytes > payload + tol ||
      payload - traced_bytes > static_cast<double>(msgs) + 1.0) {
    out.push_back("trace cross-check: net.vis.bytes " +
                  std::to_string(traced_bytes) + " inconsistent with payload " +
                  std::to_string(payload));
  }
}

void check_team_agreement(const std::vector<TeamOpRecord>& records,
                          std::uint64_t expected_coll_calls,
                          const trace::Tracer* tracer, Violations& out) {
  std::map<int, const TeamOpRecord*> first_of;
  std::uint64_t total_ops = 0;
  for (const TeamOpRecord& rec : records) {
    total_ops += rec.ops;
    const auto [it, fresh] = first_of.emplace(rec.team, &rec);
    if (fresh) continue;
    const TeamOpRecord& head = *it->second;
    if (rec.ops != head.ops) {
      out.push_back("team agreement: team " + std::to_string(rec.team) +
                    " member " + std::to_string(rec.member) + " completed " +
                    std::to_string(rec.ops) + " ops, member " +
                    std::to_string(head.member) + " completed " +
                    std::to_string(head.ops));
    }
    if (rec.checksum != head.checksum) {
      out.push_back("team agreement: team " + std::to_string(rec.team) +
                    " member " + std::to_string(rec.member) + " digest " +
                    std::to_string(rec.checksum) + " != member " +
                    std::to_string(head.member) + " digest " +
                    std::to_string(head.checksum));
    }
  }
  if (total_ops != expected_coll_calls) {
    out.push_back("team agreement: members report " +
                  std::to_string(total_ops) + " collective calls, workload " +
                  "performed " + std::to_string(expected_coll_calls));
  }
  if (tracer == nullptr) return;
  static const char* const kCollCounters[] = {
      "gas.coll.broadcast", "gas.coll.reduce", "gas.coll.gather",
      "gas.coll.allgather", "gas.coll.alltoall"};
  std::uint64_t traced = 0;
  for (const char* name : kCollCounters) traced += tracer->counter_total(name);
  if (traced != expected_coll_calls) {
    out.push_back("trace cross-check: gas.coll.* total " +
                  std::to_string(traced) + " != member calls " +
                  std::to_string(expected_coll_calls) +
                  " (a collective call went uncounted or double-counted)");
  }
}

void check_barrier(gas::Runtime& rt, std::uint64_t expected_phases,
                   const trace::Tracer* tracer, Violations& out) {
  const std::uint64_t phase = rt.global_barrier().phase();
  if (phase != expected_phases) {
    out.push_back("barrier: completed phases " + std::to_string(phase) +
                  " != expected " + std::to_string(expected_phases));
  }
  if (tracer != nullptr && expected_phases > 0) {
    // Linearizability: every rank contributed to every phase exactly once.
    for (int r = 0; r < rt.threads(); ++r) {
      const std::uint64_t arrived = tracer->counter("gas.barrier", r);
      if (arrived != expected_phases) {
        out.push_back("barrier: rank " + std::to_string(r) + " arrived " +
                      std::to_string(arrived) + " times, expected " +
                      std::to_string(expected_phases));
      }
    }
  }
}

void check_kv_conservation(
    const kv::KvStore& store,
    const std::unordered_map<std::uint64_t, std::uint64_t>& mirror,
    const KvExpectation& expected, const trace::Tracer* tracer,
    Violations& out) {
  // Every acked put readable, nothing extra: the live snapshot IS the
  // mirror. Walk the snapshot against the mirror, then compare sizes to
  // catch lost keys and duplicated slots in one pass each.
  const auto snap = store.snapshot();
  std::unordered_map<std::uint64_t, std::uint64_t> seen;
  for (const auto& [key, value] : snap) {
    if (!seen.emplace(key, value).second) {
      out.push_back("kv conservation: key " + std::to_string(key) +
                    " occupies more than one live slot");
      continue;
    }
    const auto it = mirror.find(key);
    if (it == mirror.end()) {
      out.push_back("kv conservation: key " + std::to_string(key) +
                    " live in the store but absent from the mirror");
    } else if (it->second != value) {
      out.push_back("kv conservation: key " + std::to_string(key) +
                    " holds " + std::to_string(value) + ", mirror says " +
                    std::to_string(it->second));
    }
  }
  if (seen.size() != mirror.size()) {
    out.push_back("kv conservation: " + std::to_string(seen.size()) +
                  " distinct live keys != mirror size " +
                  std::to_string(mirror.size()));
  }

  // Shard value-count conservation: the fetch_add-maintained live counter
  // must match a recount of the slot states it claims to summarize.
  for (int s = 0; s < store.shard_map().shards(); ++s) {
    const std::uint64_t counted = store.shard_live(s);
    const std::uint64_t recounted = store.shard_live_recount(s);
    if (counted != recounted) {
      out.push_back("kv conservation: shard " + std::to_string(s) +
                    " live counter " + std::to_string(counted) +
                    " != slot recount " + std::to_string(recounted));
    }
  }

  // Op accounting against the oracle (host-side stats work at any trace
  // level; the tracer cross-check below needs compiled-in counters).
  const kv::KvStats& st = store.stats();
  const auto expect_eq = [&out](const char* what, std::uint64_t got,
                                std::uint64_t want) {
    if (got != want) {
      out.push_back(std::string("kv conservation: ") + what + " " +
                    std::to_string(got) + " != expected " +
                    std::to_string(want));
    }
  };
  expect_eq("gets", st.gets, expected.gets);
  expect_eq("puts", st.puts, expected.puts);
  expect_eq("erases", st.erases, expected.erases);
  expect_eq("updates", st.updates, expected.updates);
  expect_eq("path attributions (amo + rpc)", st.amo_ops + st.rpc_ops,
            st.total_ops());

  if (tracer != nullptr) {
    const auto cross = [&](const char* name, std::uint64_t want) {
      const std::uint64_t traced = tracer->counter_total(name);
      if (traced != want) {
        out.push_back(std::string("trace cross-check: ") + name + " " +
                      std::to_string(traced) + " != store stats " +
                      std::to_string(want));
      }
    };
    cross("gas.kv.get", st.gets);
    cross("gas.kv.put", st.puts);
    cross("gas.kv.erase", st.erases);
    cross("gas.kv.update", st.updates);
    cross("gas.kv.probe", st.probes);
    cross("gas.kv.retry", st.retries);
    cross("gas.kv.insert", st.inserts);
    cross("gas.kv.tombstone", st.tombstones);
    const std::uint64_t traced_paths =
        tracer->counter_total("gas.kv.path.amo") +
        tracer->counter_total("gas.kv.path.rpc");
    if (traced_paths != st.total_ops()) {
      out.push_back("trace cross-check: gas.kv.path.* total " +
                    std::to_string(traced_paths) + " != total ops " +
                    std::to_string(st.total_ops()));
    }
  }
}

}  // namespace hupc::fault
