#include "fault/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "sim/engine.hpp"
#include "topo/machine.hpp"
#include "util/rng.hpp"

namespace hupc::fault {

namespace {

gas::Config sane_config(int threads, int nodes) {
  gas::Config c;
  c.machine = topo::lehman(nodes);
  c.threads = threads;
  return c;
}

Scenario rejected(std::string name, gas::Config config, std::string needle) {
  Scenario s;
  s.name = std::move(name);
  s.config = std::move(config);
  s.expect_reject_needle = std::move(needle);
  return s;
}

Scenario accepted(std::string name, gas::Config config) {
  Scenario s;
  s.name = std::move(name);
  s.config = std::move(config);
  return s;
}

}  // namespace

std::vector<Scenario> degenerate_scenarios(std::uint64_t seed) {
  util::SplitMix64 sm(seed ^ 0xDE6E4EA7ULL);
  // Seeded magnitudes: each seed probes a different member of every
  // rejection family (any negative cost, any non-positive count must be
  // rejected, not just the one value a hand-written test picked).
  const int neg_small = -1 - static_cast<int>(sm.next() % 64);
  const double neg_cost = -1e-9 * static_cast<double>(1 + sm.next() % 1000);
  const double neg_bw = -1e6 * static_cast<double>(1 + sm.next() % 1000);

  std::vector<Scenario> all;

  // --- thread counts -----------------------------------------------------
  {
    gas::Config c = sane_config(0, 2);
    all.push_back(rejected("threads-zero", c, "threads"));
  }
  {
    gas::Config c = sane_config(neg_small, 2);
    all.push_back(rejected("threads-negative", c, "threads"));
  }

  // --- machine shapes ----------------------------------------------------
  {
    gas::Config c = sane_config(4, 2);
    c.machine.nodes = 0;
    all.push_back(rejected("machine-no-nodes", c, "machine shape"));
  }
  {
    gas::Config c = sane_config(4, 2);
    c.machine.sockets_per_node = 0;
    all.push_back(rejected("machine-no-sockets", c, "machine shape"));
  }
  {
    gas::Config c = sane_config(4, 2);
    c.machine.cores_per_socket = neg_small;
    all.push_back(rejected("machine-negative-cores", c, "machine shape"));
  }
  {
    gas::Config c = sane_config(4, 2);
    c.machine.smt_per_core = 0;
    all.push_back(rejected("machine-no-smt", c, "machine shape"));
  }

  // --- cost constants ----------------------------------------------------
  {
    gas::Config c = sane_config(4, 2);
    c.costs.ptr_overhead_s = neg_cost;
    all.push_back(rejected("cost-ptr-overhead", c, "ptr_overhead_s"));
  }
  {
    gas::Config c = sane_config(4, 2);
    c.costs.barrier_hop_s = neg_cost;
    all.push_back(rejected("cost-barrier-hop", c, "barrier_hop_s"));
  }
  {
    gas::Config c = sane_config(4, 2);
    c.costs.lock_local_s = neg_cost;
    all.push_back(rejected("cost-lock-local", c, "lock_local_s"));
  }
  {
    gas::Config c = sane_config(4, 2);
    c.costs.loopback_bw = neg_bw;
    all.push_back(rejected("cost-loopback-bw", c, "loopback_bw"));
  }
  {
    gas::Config c = sane_config(4, 2);
    c.costs.shm_copy_overhead_s = neg_cost;
    all.push_back(rejected("cost-shm-copy", c, "shm_copy_overhead_s"));
  }
  {
    gas::Config c = sane_config(4, 2);
    c.costs.loopback_overhead_s = neg_cost;
    all.push_back(rejected("cost-loopback-overhead", c, "loopback_overhead_s"));
  }

  // --- zero-capacity conduit links ---------------------------------------
  {
    gas::Config c = sane_config(4, 2);
    c.conduit.nic_bw = 0.0;
    all.push_back(rejected("conduit-dead-nic", c, "conduit"));
  }
  {
    gas::Config c = sane_config(4, 2);
    c.conduit.conn_bw = neg_bw;
    all.push_back(rejected("conduit-negative-conn", c, "conduit"));
  }
  {
    gas::Config c = sane_config(4, 2);
    c.conduit.stage_bw = 0.0;
    all.push_back(rejected("conduit-dead-staging", c, "conduit"));
  }

  // --- degenerate but legal machines -------------------------------------
  {
    gas::Config c;
    c.machine = topo::toy(1);
    c.threads = 1;
    all.push_back(accepted("single-core-single-thread", c));
  }
  {
    // 1 rank per node, most of the machine idle.
    all.push_back(accepted("more-nodes-than-threads", sane_config(3, 12)));
  }
  {
    all.push_back(accepted("sane-baseline", sane_config(8, 2)));
  }
  return all;
}

void check_scenario_contract(const Scenario& scenario, Violations& out) {
  try {
    sim::Engine engine;
    gas::Runtime rt(engine, scenario.config);
    if (scenario.expect_rejection()) {
      out.push_back("scenario " + scenario.name +
                    ": config accepted; expected rejection mentioning \"" +
                    scenario.expect_reject_needle + "\"");
    }
  } catch (const std::invalid_argument& err) {
    if (!scenario.expect_rejection()) {
      out.push_back("scenario " + scenario.name +
                    ": sane config rejected: " + err.what());
    } else if (std::string(err.what()).find(scenario.expect_reject_needle) ==
               std::string::npos) {
      out.push_back("scenario " + scenario.name + ": rejection message \"" +
                    err.what() + "\" does not mention \"" +
                    scenario.expect_reject_needle + "\"");
    }
  }
}

ScenarioResult run_scenario(const Scenario& scenario, const PlanParams& plan) {
  ScenarioResult res;
  if (scenario.expect_rejection()) {
    check_scenario_contract(scenario, res.violations);
    return res;
  }

  sim::Engine engine;
  gas::Runtime rt(engine, scenario.config);
  FaultPlan fault(plan);
  fault.install(rt);

  const int n = rt.threads();
  auto cells = rt.heap().all_alloc<int>(static_cast<std::size_t>(n), 1);
  for (int r = 0; r < n; ++r) *cells.at(static_cast<std::size_t>(r)).raw = -1;

  std::vector<int> readback(static_cast<std::size_t>(n), -1);
  rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
    const auto me = static_cast<std::size_t>(t.rank());
    co_await t.barrier();
    // Empty transfer: must move nothing and inject no messages.
    co_await t.copy(cells.at(me), static_cast<const int*>(nullptr), 0);
    // Self-message: a rank writing and reading its own shared cell.
    co_await t.put(cells.at(me), 100 + t.rank());
    readback[me] = co_await t.get(cells.at(me));
    co_await t.barrier();
  });
  try {
    rt.run_to_completion();
  } catch (const std::exception& e) {
    res.violations.push_back("scenario " + scenario.name +
                             ": exception: " + e.what());
    res.virtual_time = engine.now();
    return res;
  }
  res.virtual_time = engine.now();

  for (int r = 0; r < n; ++r) {
    if (readback[static_cast<std::size_t>(r)] != 100 + r) {
      res.violations.push_back(
          "scenario " + scenario.name + ": rank " + std::to_string(r) +
          " self-message readback " +
          std::to_string(readback[static_cast<std::size_t>(r)]) + " != " +
          std::to_string(100 + r));
    }
  }
  // Self-accesses and empty transfers never cross the wire.
  if (rt.network().total_messages() != 0) {
    res.violations.push_back(
        "scenario " + scenario.name + ": " +
        std::to_string(rt.network().total_messages()) +
        " network messages from self/empty transfers (expected 0)");
  }
  check_byte_conservation(rt, res.violations);
  check_barrier(rt, 2, nullptr, res.violations);
  check_virtual_time(engine, res.violations);
  return res;
}

}  // namespace hupc::fault
