// Simulation fuzzing driver (DESIGN.md §9).
//
// fault::Fuzzer sweeps seeds over (workload x backend x conduit x plan
// template): every case is derived entirely from one 64-bit seed, runs a
// small workload under the derived FaultPlan, and checks the registered
// invariants. A failing case is shrunk to a minimal reproducer (disable
// perturbation groups, then halve magnitudes, keeping only changes that
// still fail) and reported with a one-line replay command — replaying the
// printed seed reproduces the failure bit-identically.
//
// Workloads (kept small so hundreds of cases fit in a smoke budget):
//   uts     — parallel UTS count on a tiny binomial tree vs. the sequential
//             oracle (steal + byte conservation, trace cross-checks);
//   ft      — NAS FT class S, 2 iterations (byte conservation, per-rank
//             phase-timing coherence);
//   barrier — a barrier storm with skewed arrivals (linearizability);
//   gather  — read-cached gather vs. an uncached oracle (transparency);
//   async   — overlapped copy_async + RPC ring (completion ordering,
//             read-your-writes after future resolution);
//   teams   — overlapping collective teams running seeded (op, algorithm)
//             sequences vs. a host-side oracle (team agreement, per-(team,
//             op) matching, gas.coll.* counter conservation);
//   vis     — randomized strided/indexed gathers and scatters vs. a
//             host-side mirror oracle (bit-identical data, packed-message /
//             region / payload-byte conservation via
//             check_vis_conservation);
//   kv      — randomized kv-store op sequences (rank-partitioned writers,
//             seeded amo/rpc/auto path per op, cross-rank cached reads) vs.
//             a host-mirror oracle (every acked put readable, shard count
//             conservation via check_kv_conservation).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/invariants.hpp"
#include "fault/plan.hpp"
#include "sim/time.hpp"

namespace hupc::fault {

struct FuzzOptions {
  std::uint64_t base_seed = 1;
  int budget = 32;  // number of seeds to sweep (case i uses base_seed + i)
  /// Plan templates the sweep draws from. Excludes "heap-pressure" by
  /// default: injected allocation failures are *supposed* to throw, which
  /// is a different property than the conservation invariants checked here.
  std::vector<std::string> templates = {"jitter",      "latency-spike",
                                        "bw-dip",      "blackout",
                                        "steal-storm", "completion-storm",
                                        "team-storm",  "vis-storm",
                                        "kv-storm",    "mixed"};
  /// Plant the test-only steal-split off-by-one (UTS cases only): the sweep
  /// must then find a conservation violation — how the fuzzer's own
  /// detection power is regression-tested.
  bool plant_split_bug = false;
  bool verbose = false;  // log every case, not just failures
};

/// One fully-derived fuzz case. Everything — workload, backend, conduit,
/// template, plan magnitudes, tree shape — is a pure function of `seed`.
struct CaseSpec {
  std::uint64_t seed = 0;
  std::string workload;  // "uts" | "ft" | "barrier" | "gather" | "async" |
                         // "teams" | "vis" | "kv"
  std::string backend;   // "processes" | "pthreads"
  std::string conduit;   // "ib-qdr" | "ib-ddr" | "gige"
  std::string plan;      // template name
  bool plant_split_bug = false;

  /// One-line replay command for the bench driver.
  [[nodiscard]] std::string replay_command() const;
};

struct CaseResult {
  Violations violations;
  sim::Time virtual_time = 0;
  std::uint64_t injected = 0;  // InjectionStats::total() of the plan
  std::string summary;         // trace summary export (golden determinism)

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Derive a case from one seed (the i-th sweep case uses base_seed + i).
[[nodiscard]] CaseSpec derive_case(std::uint64_t case_seed,
                                   const std::vector<std::string>& templates,
                                   bool plant_split_bug);

/// Execute one case end-to-end under an explicit plan. Deterministic: the
/// same (spec, plan) pair always produces an identical CaseResult.
[[nodiscard]] CaseResult run_case(const CaseSpec& spec,
                                  const PlanParams& plan);

/// Execute with the plan derived from the spec's own template + seed.
[[nodiscard]] CaseResult run_case(const CaseSpec& spec);

struct FuzzFailure {
  CaseSpec spec;
  Violations violations;
  PlanParams shrunk;  // minimal plan that still reproduces the failure
};

struct FuzzReport {
  int cases_run = 0;
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

class Fuzzer {
 public:
  explicit Fuzzer(FuzzOptions options) : opt_(std::move(options)) {}

  /// Sweep the seed budget; shrink and report failures to `log`.
  [[nodiscard]] FuzzReport run(std::ostream& log);

  [[nodiscard]] const FuzzOptions& options() const noexcept { return opt_; }

 private:
  [[nodiscard]] PlanParams shrink(const CaseSpec& spec, PlanParams failing);

  FuzzOptions opt_;
};

}  // namespace hupc::fault
