#include "topo/placement.hpp"

#include <algorithm>
#include <cassert>

namespace hupc::topo {

namespace {

/// Enumerate the slots of one node in the order a policy fills them.
std::vector<HwLoc> node_fill_order(const MachineSpec& m, int node,
                                   Placement policy) {
  std::vector<HwLoc> order;
  order.reserve(static_cast<std::size_t>(m.hwthreads_per_node()));
  switch (policy) {
    case Placement::cyclic_socket:
      // socket0/core0, socket1/core0, socket0/core1, ... then SMT siblings.
      for (int smt = 0; smt < m.smt_per_core; ++smt) {
        for (int core = 0; core < m.cores_per_socket; ++core) {
          for (int socket = 0; socket < m.sockets_per_node; ++socket) {
            order.push_back(HwLoc{node, socket, core, smt});
          }
        }
      }
      break;
    case Placement::compact:
      // Fill socket 0 completely (cores, then SMT siblings) before socket 1.
      for (int socket = 0; socket < m.sockets_per_node; ++socket) {
        for (int smt = 0; smt < m.smt_per_core; ++smt) {
          for (int core = 0; core < m.cores_per_socket; ++core) {
            order.push_back(HwLoc{node, socket, core, smt});
          }
        }
      }
      break;
    case Placement::block:
      // Contiguous hardware order: socket-major, core, smt.
      for (int socket = 0; socket < m.sockets_per_node; ++socket) {
        for (int core = 0; core < m.cores_per_socket; ++core) {
          for (int smt = 0; smt < m.smt_per_core; ++smt) {
            order.push_back(HwLoc{node, socket, core, smt});
          }
        }
      }
      break;
  }
  return order;
}

}  // namespace

std::vector<HwLoc> place_ranks(const MachineSpec& machine, int nranks,
                               Placement policy) {
  assert(nranks >= 1);
  std::vector<HwLoc> placement(static_cast<std::size_t>(nranks));
  const int per_node = (nranks + machine.nodes - 1) / machine.nodes;
  for (int rank = 0; rank < nranks; ++rank) {
    const int node = rank / per_node;
    const int local = rank % per_node;
    assert(node < machine.nodes);
    const auto order = node_fill_order(machine, node, policy);
    placement[static_cast<std::size_t>(rank)] =
        order[static_cast<std::size_t>(local) % order.size()];
  }
  return placement;
}

SlotAllocator::SlotAllocator(const MachineSpec& machine)
    : machine_(machine),
      occupancy_(static_cast<std::size_t>(machine.total_hwthreads()), 0) {}

std::size_t SlotAllocator::index(const HwLoc& loc) const {
  assert(loc.node >= 0 && loc.node < machine_.nodes);
  assert(loc.socket >= 0 && loc.socket < machine_.sockets_per_node);
  assert(loc.core >= 0 && loc.core < machine_.cores_per_socket);
  assert(loc.smt >= 0 && loc.smt < machine_.smt_per_core);
  return static_cast<std::size_t>(
      ((loc.node * machine_.sockets_per_node + loc.socket) *
           machine_.cores_per_socket +
       loc.core) *
          machine_.smt_per_core +
      loc.smt);
}

void SlotAllocator::bind(const HwLoc& loc) { ++occupancy_[index(loc)]; }

void SlotAllocator::unbind(const HwLoc& loc) {
  auto& o = occupancy_[index(loc)];
  assert(o > 0);
  --o;
}

HwLoc SlotAllocator::allocate_near(const HwLoc& master) {
  HwLoc best{};
  int best_key = -1;
  // Score: fewer contexts on slot, then fewer on core, then lower indices.
  for (int core = 0; core < machine_.cores_per_socket; ++core) {
    for (int smt = 0; smt < machine_.smt_per_core; ++smt) {
      const HwLoc cand{master.node, master.socket, core, smt};
      const int slot_load = contexts_on_slot(cand);
      const int core_load = contexts_on_core(cand);
      // Lexicographic minimization encoded as a single key (loads < 1024).
      const int key = slot_load * 1024 * 1024 + core_load * 1024 +
                      core * machine_.smt_per_core + smt;
      if (best_key < 0 || key < best_key) {
        best_key = key;
        best = cand;
      }
    }
  }
  bind(best);
  return best;
}

int SlotAllocator::contexts_on_slot(const HwLoc& loc) const {
  return occupancy_[index(loc)];
}

int SlotAllocator::contexts_on_core(const HwLoc& loc) const {
  int total = 0;
  for (int smt = 0; smt < machine_.smt_per_core; ++smt) {
    total += occupancy_[index(HwLoc{loc.node, loc.socket, loc.core, smt})];
  }
  return total;
}

int SlotAllocator::contexts_on_socket(int node, int socket) const {
  int total = 0;
  for (int core = 0; core < machine_.cores_per_socket; ++core) {
    for (int smt = 0; smt < machine_.smt_per_core; ++smt) {
      total += occupancy_[index(HwLoc{node, socket, core, smt})];
    }
  }
  return total;
}

double SlotAllocator::speed_factor(const HwLoc& loc) const {
  const int on_core = std::max(1, contexts_on_core(loc));
  if (on_core == 1) return 1.0;
  // A core with >=2 contexts delivers smt_throughput x single-thread total
  // when it has SMT (the two hardware threads co-issue), or exactly 1x when
  // it does not (plain time slicing); either way the contexts share evenly.
  const double core_total =
      machine_.smt_per_core >= 2 ? machine_.smt_throughput : 1.0;
  return core_total / static_cast<double>(on_core);
}

}  // namespace hupc::topo
