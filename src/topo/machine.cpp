#include "topo/machine.hpp"

namespace hupc::topo {

MachineSpec lehman(int nodes) {
  MachineSpec m;
  m.name = "lehman";
  m.nodes = nodes;
  m.sockets_per_node = 2;
  m.cores_per_socket = 4;
  m.smt_per_core = 2;  // Nehalem Hyper-Threading
  m.clock_ghz = 2.27;
  m.flops_per_cycle = 4.0;  // 128-bit SSE: 2 DP mul + 2 DP add per cycle
  m.cache = CacheSpec{32 * 1024, 256 * 1024, 8 * 1024 * 1024};
  // Calibrated to Tables 3.1/4.1: full-node STREAM triad ~24.5 GB/s.
  m.socket_mem_bw = 12.4e9;
  m.interconnect_bw = 11.5e9;  // QPI ~23 GB/s bidirectional
  m.numa_penalty = 1.3;        // thesis §2.1: remote 15-40% slower
  m.smt_throughput = 1.22;     // Fig 4.4: SMT gains 5-30% on kernels
  return m;
}

MachineSpec pyramid(int nodes) {
  MachineSpec m;
  m.name = "pyramid";
  m.nodes = nodes;
  m.sockets_per_node = 2;
  m.cores_per_socket = 4;
  m.smt_per_core = 1;  // Barcelona: no SMT
  m.clock_ghz = 2.2;
  m.flops_per_cycle = 4.0;
  m.cache = CacheSpec{64 * 1024, 512 * 1024, 2 * 1024 * 1024};
  m.socket_mem_bw = 8.0e9;  // DDR2-667 dual channel per socket
  m.interconnect_bw = 3.2e9;  // HyperTransport 6.4 GB/s bidirectional
  m.numa_penalty = 1.35;
  m.smt_throughput = 1.0;
  return m;
}

MachineSpec toy(int nodes) {
  MachineSpec m;
  m.name = "toy";
  m.nodes = nodes;
  m.sockets_per_node = 1;
  m.cores_per_socket = 2;
  m.smt_per_core = 1;
  m.clock_ghz = 1.0;
  m.flops_per_cycle = 1.0;
  m.cache = CacheSpec{32 * 1024, 256 * 1024, 4 * 1024 * 1024};
  m.socket_mem_bw = 10e9;
  m.interconnect_bw = 5e9;
  m.numa_penalty = 1.5;
  m.smt_throughput = 1.0;
  return m;
}

}  // namespace hupc::topo
