// Hardware machine model: a four-level hierarchy
//   machine -> node -> socket -> core -> hardware thread (SMT)
// plus the quantitative parameters the cost models need. The two presets
// mirror the paper's experimental platforms (thesis Table 2.1):
//   Lehman  — 12 nodes, 2x quad-core Intel Xeon E5520 (Nehalem), 2-way SMT,
//             QDR InfiniBand;
//   Pyramid — 128 nodes, 2x quad-core AMD Opteron 2354 (Barcelona), no SMT,
//             DDR InfiniBand and Gigabit Ethernet.
#pragma once

#include <cassert>
#include <cstddef>
#include <string>

namespace hupc::topo {

struct CacheSpec {
  std::size_t l1d_per_core;
  std::size_t l2_per_core;
  std::size_t l3_per_socket;
};

struct MachineSpec {
  std::string name;

  int nodes;
  int sockets_per_node;
  int cores_per_socket;
  int smt_per_core;  // hardware threads per core (1 = no SMT)

  double clock_ghz;
  double flops_per_cycle;  // per core, counting 128-bit SIMD FMA issue

  CacheSpec cache;

  // Memory system (calibrated in DESIGN.md §6).
  double socket_mem_bw;    // bytes/s STREAM-like per socket
  double interconnect_bw;  // QPI / HyperTransport bytes/s per direction
  double numa_penalty;     // remote-socket access slowdown factor (>1)

  // Combined throughput of two SMT threads on one core relative to one
  // thread (paper: computation kernels gain 5-30% from SMT).
  double smt_throughput;

  [[nodiscard]] int cores_per_node() const noexcept {
    return sockets_per_node * cores_per_socket;
  }
  [[nodiscard]] int hwthreads_per_core() const noexcept { return smt_per_core; }
  [[nodiscard]] int hwthreads_per_socket() const noexcept {
    return cores_per_socket * smt_per_core;
  }
  [[nodiscard]] int hwthreads_per_node() const noexcept {
    return sockets_per_node * hwthreads_per_socket();
  }
  [[nodiscard]] int total_cores() const noexcept {
    return nodes * cores_per_node();
  }
  [[nodiscard]] int total_hwthreads() const noexcept {
    return nodes * hwthreads_per_node();
  }
  [[nodiscard]] double core_flops() const noexcept {
    return clock_ghz * 1e9 * flops_per_cycle;
  }
  [[nodiscard]] double node_mem_bw() const noexcept {
    return socket_mem_bw * sockets_per_node;
  }
};

/// Location of one hardware thread slot.
struct HwLoc {
  int node = 0;
  int socket = 0;
  int core = 0;
  int smt = 0;

  friend bool operator==(const HwLoc&, const HwLoc&) = default;

  [[nodiscard]] bool same_node(const HwLoc& o) const noexcept {
    return node == o.node;
  }
  [[nodiscard]] bool same_socket(const HwLoc& o) const noexcept {
    return same_node(o) && socket == o.socket;
  }
  [[nodiscard]] bool same_core(const HwLoc& o) const noexcept {
    return same_socket(o) && core == o.core;
  }
};

/// Hierarchy levels, ordered from innermost sharing domain outwards.
enum class Level { hwthread = 0, core = 1, socket = 2, node = 3, machine = 4 };

/// Smallest hierarchy level at which two locations share a domain:
/// same core -> Level::core, same socket (different core) -> Level::socket...
[[nodiscard]] constexpr Level shared_level(const HwLoc& a, const HwLoc& b) noexcept {
  if (a.node != b.node) return Level::machine;
  if (a.socket != b.socket) return Level::node;
  if (a.core != b.core) return Level::socket;
  if (a.smt != b.smt) return Level::core;
  return Level::hwthread;
}

/// Topological distance: 0 = same hwthread ... 4 = different node.
[[nodiscard]] constexpr int distance(const HwLoc& a, const HwLoc& b) noexcept {
  return static_cast<int>(shared_level(a, b));
}

/// Preset builders. `nodes` overrides the preset node count when the paper
/// uses a subset of the cluster (e.g. NAS FT on 8 Lehman nodes).
[[nodiscard]] MachineSpec lehman(int nodes = 12);
[[nodiscard]] MachineSpec pyramid(int nodes = 128);

/// A deliberately tiny machine for unit tests: 2 nodes x 1 socket x 2 cores.
[[nodiscard]] MachineSpec toy(int nodes = 2);

}  // namespace hupc::topo
