// Placement of execution contexts onto hardware thread slots.
//
// UPC language threads are distributed blockwise across nodes (the layout
// the paper's thread configurations "total/per-node" imply) and bound within
// a node by a policy:
//   cyclic_socket — numactl-style round-robin over sockets (the paper's
//                   default for independent UPC processes, §4.3.2);
//   compact       — fill socket 0 before socket 1 (what happens to 8*n
//                   hybrid configurations that pin the master and all its
//                   sub-threads to one socket, §4.3.3.3);
//   block         — split the node's cores contiguously among ranks.
//
// SlotAllocator additionally hands out slots for dynamically spawned
// sub-threads near their master (same socket first: the paper binds
// sub-threads to the master's affinity mask) and tracks per-core occupancy
// so the compute model can apply SMT / oversubscription factors.
#pragma once

#include <vector>

#include "topo/machine.hpp"

namespace hupc::topo {

enum class Placement { cyclic_socket, compact, block };

/// Map `nranks` ranks onto the machine: ranks are distributed blockwise over
/// nodes (ceil(nranks/nodes) per node, earlier nodes filled first), then
/// bound within the node by `policy`. nranks may exceed hardware threads;
/// slots then wrap (oversubscription), mirroring real oversubscribed runs.
[[nodiscard]] std::vector<HwLoc> place_ranks(const MachineSpec& machine,
                                             int nranks, Placement policy);

/// Tracks how many bound contexts occupy each hardware thread slot.
class SlotAllocator {
 public:
  explicit SlotAllocator(const MachineSpec& machine);

  /// Bind a context to a specific slot (used for placed UPC ranks).
  void bind(const HwLoc& loc);
  void unbind(const HwLoc& loc);

  /// Allocate the least-loaded slot on the given socket for a sub-thread,
  /// preferring empty cores over SMT siblings over oversubscription; ties
  /// break toward lower core/smt indices (deterministic).
  [[nodiscard]] HwLoc allocate_near(const HwLoc& master);

  /// Occupancy queries used by the compute-cost model.
  [[nodiscard]] int contexts_on_slot(const HwLoc& loc) const;
  [[nodiscard]] int contexts_on_core(const HwLoc& loc) const;
  [[nodiscard]] int contexts_on_socket(int node, int socket) const;

  /// Single-thread-relative speed of a context bound at `loc`:
  ///   1.0 alone on its core; smt_throughput/k with k SMT-sharing contexts;
  ///   divided further by slot oversubscription.
  [[nodiscard]] double speed_factor(const HwLoc& loc) const;

  [[nodiscard]] const MachineSpec& machine() const noexcept { return machine_; }

 private:
  [[nodiscard]] std::size_t index(const HwLoc& loc) const;

  MachineSpec machine_;
  std::vector<int> occupancy_;  // flat [node][socket][core][smt]
};

}  // namespace hupc::topo
