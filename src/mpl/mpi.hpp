// A minimal two-sided message-passing layer ("mpl") over the same simulated
// cluster as the PGAS runtime — the MPI baseline of the thesis FT study.
//
// Ranks are the gas::Runtime's threads (process backend); send/recv use
// rendezvous matching by (src, dst, tag) with FIFO per-key ordering, and the
// data leg is charged through exactly the same copy paths as UPC bulk
// operations, so UPC-vs-MPI differences come from *algorithms*, not from
// differently calibrated substrates.
//
// alltoall() implements the optimized collective that lets MPI-Fortran
// outperform the p2p UPC exchange in Fig 4.5: a hierarchical, node-aware
// algorithm (local gather to a node leader, pairwise leader exchange of
// combined buffers — nodes^2 large messages instead of THREADS^2 small
// ones — then local scatter). pairwise_alltoall() is the flat comparator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "gas/gas.hpp"
#include "sim/sim.hpp"

namespace hupc::mpl {

class Mpi {
 public:
  explicit Mpi(gas::Runtime& rt);

  /// Blocking send: completes when the receiver has the data.
  [[nodiscard]] sim::Task<void> send(gas::Thread& self, int dst, int tag,
                                     const void* buf, std::size_t bytes);

  /// Blocking receive from `src` with `tag`.
  [[nodiscard]] sim::Task<void> recv(gas::Thread& self, int src, int tag,
                                     void* buf, std::size_t bytes);

  /// Hierarchical node-aware all-to-all: each rank contributes
  /// `bytes_per_pair` to every rank. Buffers are laid out rank-major.
  [[nodiscard]] sim::Task<void> alltoall(gas::Thread& self, const void* sendbuf,
                                         void* recvbuf,
                                         std::size_t bytes_per_pair);

  /// Flat pairwise-exchange all-to-all (the textbook algorithm), used as
  /// the ablation comparator for the hierarchical one.
  [[nodiscard]] sim::Task<void> pairwise_alltoall(gas::Thread& self,
                                                  const void* sendbuf,
                                                  void* recvbuf,
                                                  std::size_t bytes_per_pair);

  [[nodiscard]] sim::Task<void> barrier(gas::Thread& self) {
    return self.barrier();
  }

  [[nodiscard]] gas::Runtime& runtime() noexcept { return *rt_; }

  /// Messages at or below this size complete eagerly at the sender (the
  /// runtime buffers them), like MPI's eager protocol; larger messages use
  /// rendezvous. Keeps out-of-order small sends deadlock-free.
  static constexpr std::size_t kEagerLimit = 8 * 1024;

  /// Messages issued from inside a collective pay this fraction of the
  /// per-message network-API cost: the tuned engine pre-posts its whole
  /// schedule and batches doorbells/completions (thesis §4.3.3.3 credits
  /// MPI's "optimized collective functionalities" for its FT edge).
  static constexpr double kCollectiveApiScale = 0.3;

 private:
  // Rendezvous shared state. Transfers are *sender-driven* (like RDMA-write
  // rendezvous): the receiver only announces its buffer and waits, so the
  // wire schedule matches the natural per-endpoint staggering of one-sided
  // puts instead of creating receiver-side incast.
  struct Rendezvous {
    const void* sbuf = nullptr;
    std::size_t bytes = 0;
    std::vector<std::byte> eager_data;
    bool eager = false;
    void* rbuf = nullptr;
    bool matched_flag = false;
    std::unique_ptr<sim::Promise<>> matched;    // recv arrived (sender waits)
    std::unique_ptr<sim::Promise<>> recv_done;  // transfer done (recv waits)
  };
  struct PendingRecv {
    void* buf;
    std::size_t bytes;
    sim::Promise<> done;
  };
  using Key = std::tuple<int, int, int>;  // (src, dst, tag)

  // Per-node leader staging areas for the hierarchical alltoall, allocated
  // lazily and reused; sized for the largest request seen.
  struct NodeStage {
    std::vector<std::byte> gather;   // [dst_node][local_src][dst_local]
    std::vector<std::byte> scatter;  // [src_node][src_local][my_local]
    std::unique_ptr<sim::Barrier> node_barrier;
  };

  void ensure_stage(std::size_t bytes_per_pair);
  [[nodiscard]] int leader_of_node(int node) const;

  /// The matched data leg: memcpy plus the cost of moving `bytes` from
  /// `sender` to the other party, driven by `self` (whichever side arrived
  /// second). `api_scale` discounts the per-message API cost for
  /// collective-internal messages.
  [[nodiscard]] sim::Task<void> matched_transfer(gas::Thread& self, int sender,
                                                 int receiver, void* dst,
                                                 const void* src,
                                                 std::size_t bytes,
                                                 double api_scale);
  [[nodiscard]] sim::Task<void> send_impl(gas::Thread& self, int dst, int tag,
                                          const void* buf, std::size_t bytes,
                                          double api_scale);
  [[nodiscard]] sim::Task<void> recv_impl(gas::Thread& self, int src, int tag,
                                          void* buf, std::size_t bytes,
                                          double api_scale);

  gas::Runtime* rt_;
  std::map<Key, std::deque<std::shared_ptr<Rendezvous>>> sends_;
  std::map<Key, std::deque<PendingRecv>> recvs_;
  std::vector<NodeStage> stages_;
  std::size_t stage_capacity_ = 0;
};

}  // namespace hupc::mpl
