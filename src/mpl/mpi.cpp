#include "mpl/mpi.hpp"

#include <cassert>
#include <cstring>

namespace hupc::mpl {

Mpi::Mpi(gas::Runtime& rt) : rt_(&rt) {
  stages_.resize(static_cast<std::size_t>(rt.nodes_used()));
  for (int n = 0; n < rt.nodes_used(); ++n) {
    int parties = 0;
    for (int r = 0; r < rt.threads(); ++r) {
      if (rt.node_of(r) == n) ++parties;
    }
    stages_[static_cast<std::size_t>(n)].node_barrier =
        std::make_unique<sim::Barrier>(rt.engine(), parties);
  }
}

int Mpi::leader_of_node(int node) const { return node * rt_->ranks_per_node(); }

sim::Task<void> Mpi::matched_transfer(gas::Thread& self, int sender,
                                      int receiver, void* dst, const void* src,
                                      std::size_t bytes, double api_scale) {
  auto& rt = *rt_;
  if (rt.node_of(sender) == rt.node_of(receiver)) {
    // Intra-node legs take the shared-memory/loopback path as usual.
    co_await self.copy_raw(sender == self.rank() ? receiver : sender, dst, src,
                           bytes);
    co_return;
  }
  if (dst != nullptr && src != nullptr && bytes > 0) {
    std::memcpy(dst, src, bytes);
  }
  co_await rt.network().rma({.src_node = rt.node_of(sender),
                             .src_ep = rt.endpoint_of(sender),
                             .dst_node = rt.node_of(receiver),
                             .bytes = static_cast<double>(bytes),
                             .api_scale = api_scale});
}

sim::Task<void> Mpi::send_impl(gas::Thread& self, int dst, int tag,
                               const void* buf, std::size_t bytes,
                               double api_scale) {
  const Key key{self.rank(), dst, tag};
  auto& waiting = recvs_[key];
  if (!waiting.empty()) {
    // Receiver already posted: drive the transfer now (sender-driven).
    PendingRecv pending = std::move(waiting.front());
    waiting.pop_front();
    assert(pending.bytes == bytes && "mpl: size mismatch on matched message");
    co_await matched_transfer(self, self.rank(), dst, pending.buf, buf, bytes,
                              api_scale);
    pending.done.set_value();
    co_return;
  }
  if (bytes <= kEagerLimit) {
    // Eager: buffer the payload, charge the wire now, complete immediately.
    // (A null buf means a charge-only "modeled" message; see FtModel.)
    auto record = std::make_shared<Rendezvous>();
    record->bytes = bytes;
    record->eager = true;
    if (buf != nullptr) {
      record->eager_data.resize(bytes);
      std::memcpy(record->eager_data.data(), buf, bytes);
    }
    sends_[key].push_back(std::move(record));
    co_await matched_transfer(self, self.rank(), dst, nullptr, nullptr, bytes,
                              api_scale);
    co_return;
  }
  // Rendezvous: announce, wait for the receiver, then drive the wire
  // ourselves so the transfer schedule stays sender-staggered.
  auto record = std::make_shared<Rendezvous>();
  record->sbuf = buf;
  record->bytes = bytes;
  record->matched = std::make_unique<sim::Promise<>>(rt_->engine());
  record->recv_done = std::make_unique<sim::Promise<>>(rt_->engine());
  sends_[key].push_back(record);
  auto matched = record->matched->get_future();
  co_await matched.wait();
  co_await matched_transfer(self, self.rank(), dst, record->rbuf, buf, bytes,
                            api_scale);
  record->recv_done->set_value();
}

sim::Task<void> Mpi::recv_impl(gas::Thread& self, int src, int tag, void* buf,
                               std::size_t bytes, double api_scale) {
  (void)api_scale;  // the driving side charges the wire
  const Key key{src, self.rank(), tag};
  auto& waiting = sends_[key];
  if (!waiting.empty()) {
    std::shared_ptr<Rendezvous> pending = waiting.front();
    waiting.pop_front();
    assert(pending->bytes == bytes && "mpl: size mismatch on matched message");
    if (pending->eager) {
      // Data already arrived (charged at send time); just unpack.
      if (buf != nullptr && !pending->eager_data.empty()) {
        std::memcpy(buf, pending->eager_data.data(), bytes);
      }
      co_return;
    }
    // Hand our buffer to the sender and wait for it to push the data.
    pending->rbuf = buf;
    auto done = pending->recv_done->get_future();
    pending->matched->set_value();
    co_await done.wait();
    co_return;
  }
  recvs_[key].push_back(PendingRecv{buf, bytes, sim::Promise<>(rt_->engine())});
  auto fut = recvs_[key].back().done.get_future();
  co_await fut.wait();
}

sim::Task<void> Mpi::send(gas::Thread& self, int dst, int tag, const void* buf,
                          std::size_t bytes) {
  co_await send_impl(self, dst, tag, buf, bytes, 1.0);
}

sim::Task<void> Mpi::recv(gas::Thread& self, int src, int tag, void* buf,
                          std::size_t bytes) {
  co_await recv_impl(self, src, tag, buf, bytes, 1.0);
}

sim::Task<void> Mpi::pairwise_alltoall(gas::Thread& self, const void* sendbuf,
                                       void* recvbuf,
                                       std::size_t bytes_per_pair) {
  const int nthreads = self.threads();
  const int me = self.rank();
  const bool modeled = sendbuf == nullptr;  // charge-only (see alltoall)
  const auto* src = static_cast<const std::byte*>(sendbuf);
  auto* dst = static_cast<std::byte*>(recvbuf);
  if (!modeled) {
    // Self block.
    std::memcpy(dst + static_cast<std::size_t>(me) * bytes_per_pair,
                src + static_cast<std::size_t>(me) * bytes_per_pair,
                bytes_per_pair);
  }
  // Step-synchronized pairwise exchange (the textbook tuned algorithm):
  // at step s every rank sendrecv's with disjoint partners (me+s / me-s),
  // so the network sees clean non-overlapping waves — pre-posting the
  // whole schedule instead lets early matches jump the queue and creates
  // receiver-side incast (measurably slower on the fluid NIC model).
  constexpr int kTag = 0x5A5A;
  for (int step = 1; step < nthreads; ++step) {
    const int to = (me + step) % nthreads;
    const int from = (me - step + nthreads) % nthreads;
    auto send_done = sim::start(
        rt_->engine(),
        send_impl(self, to, kTag + step,
                  modeled ? nullptr
                          : src + static_cast<std::size_t>(to) * bytes_per_pair,
                  bytes_per_pair, kCollectiveApiScale));
    co_await recv_impl(self, from, kTag + step,
                       modeled ? nullptr
                               : dst + static_cast<std::size_t>(from) *
                                           bytes_per_pair,
                       bytes_per_pair, kCollectiveApiScale);
    co_await send_done.wait();
  }
}

void Mpi::ensure_stage(std::size_t bytes_per_pair) {
  const auto rpn = static_cast<std::size_t>(rt_->ranks_per_node());
  const auto nodes = static_cast<std::size_t>(rt_->nodes_used());
  const std::size_t needed = nodes * rpn * rpn * bytes_per_pair;
  if (needed <= stage_capacity_) return;
  stage_capacity_ = needed;
  for (auto& s : stages_) {
    s.gather.assign(needed, std::byte{});
    s.scatter.assign(needed, std::byte{});
  }
}

sim::Task<void> Mpi::alltoall(gas::Thread& self, const void* sendbuf,
                              void* recvbuf, std::size_t bytes_per_pair) {
  const int nthreads = self.threads();
  const auto rpn = static_cast<std::size_t>(rt_->ranks_per_node());
  const int nodes = rt_->nodes_used();
  // Algorithm selection, as in real tuned collectives: aggregation pays at
  // small per-pair sizes (injection and latency dominated); once the wire
  // dominates, the flat pairwise exchange keeps every endpoint streaming
  // in parallel and avoids funnelling a node's volume through its leader.
  // Fixed per-message costs (API + injection + latency) are a few us; the
  // leader funnel costs ~rpn x the wire time of the aggregated chunk. The
  // crossover sits around a kilobyte per pair.
  constexpr std::size_t kAggregationLimit = 1024;  // see bench_ablation_alltoall
  if (nodes == 1 || rpn == 1 || bytes_per_pair > kAggregationLimit) {
    co_await pairwise_alltoall(self, sendbuf, recvbuf, bytes_per_pair);
    co_return;
  }
  // Null buffers select "charge-only" mode (the FtModel driver simulates
  // paper-size classes without allocating the grid): all timing paths run,
  // no staging memory is touched.
  const bool modeled = sendbuf == nullptr;
  if (!modeled) ensure_stage(bytes_per_pair);

  const int me = self.rank();
  const int my_node = rt_->node_of(me);
  const auto local = static_cast<std::size_t>(me) - static_cast<std::size_t>(my_node) * rpn;
  const int leader = leader_of_node(my_node);
  auto& stage = stages_[static_cast<std::size_t>(my_node)];
  const auto* src = static_cast<const std::byte*>(sendbuf);
  auto* dst = static_cast<std::byte*>(recvbuf);
  const std::size_t b = bytes_per_pair;
  const std::size_t node_chunk = rpn * rpn * b;  // one node-pair's data

  auto local_count = [&](int node) {
    const int lo = node * static_cast<int>(rpn);
    const int hi = std::min(nthreads, lo + static_cast<int>(rpn));
    return static_cast<std::size_t>(hi - lo);
  };

  // Phase 1 — gather: my blocks for node m (contiguous in sendbuf) go to
  // the leader staging slot [m][local][*]; own-node blocks go straight to
  // the scatter area [my_node][local][*].
  for (int m = 0; m < nodes; ++m) {
    const std::size_t len = local_count(m) * b;
    const std::byte* blocks =
        modeled ? nullptr : src + static_cast<std::size_t>(m) * rpn * b;
    std::byte* target =
        modeled ? nullptr
                : (m == my_node ? stage.scatter.data() : stage.gather.data()) +
                      static_cast<std::size_t>(m == my_node ? my_node : m) *
                          node_chunk +
                      local * rpn * b;
    co_await self.copy_raw(leader, target, blocks, len);
  }
  co_await stage.node_barrier->arrive_and_wait();

  // Phase 2 — leaders exchange combined node chunks; all sends and
  // receives are in flight at once (a tuned collective keeps every flow
  // busy), so the phase is NIC-bound rather than per-flow-cap-bound.
  if (static_cast<int>(local) == 0) {
    constexpr int kTag = 0x417;
    std::vector<sim::Future<>> inflight;
    inflight.reserve(2 * static_cast<std::size_t>(nodes));
    for (int step = 1; step < nodes; ++step) {
      const int to_node = (my_node + step) % nodes;
      const int from_node = (my_node - step + nodes) % nodes;
      inflight.push_back(sim::start(
          rt_->engine(),
          send_impl(self, leader_of_node(to_node), kTag + step,
                    modeled ? nullptr
                            : stage.gather.data() +
                                  static_cast<std::size_t>(to_node) * node_chunk,
                    node_chunk, kCollectiveApiScale)));
      inflight.push_back(sim::start(
          rt_->engine(),
          recv_impl(self, leader_of_node(from_node), kTag + step,
                    modeled ? nullptr
                            : stage.scatter.data() +
                                  static_cast<std::size_t>(from_node) * node_chunk,
                    node_chunk, kCollectiveApiScale)));
    }
    for (auto& f : inflight) co_await f.wait();
  }
  co_await stage.node_barrier->arrive_and_wait();

  // Phase 3 — scatter: pull my column out of every received node chunk.
  for (int m = 0; m < nodes; ++m) {
    const std::size_t senders = local_count(m);
    for (std::size_t i = 0; !modeled && i < senders; ++i) {
      std::memcpy(dst + (static_cast<std::size_t>(m) * rpn + i) * b,
                  stage.scatter.data() + static_cast<std::size_t>(m) * node_chunk +
                      (i * rpn + local) * b,
                  b);
    }
    // One bulk charge per source node for the strided pull above.
    co_await self.copy_raw_from(self.loc(), leader, nullptr, nullptr,
                                senders * b);
  }
  co_await stage.node_barrier->arrive_and_wait();
}

}  // namespace hupc::mpl
