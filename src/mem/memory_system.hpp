// Intra-node memory-system and compute cost model.
//
// Each socket owns a fluid-shared memory-bandwidth pool; each node owns a
// fluid-shared inter-socket interconnect (QPI / HyperTransport). A bulk
// memory stream charges the *home* socket's pool, and additionally the
// node interconnect when the accessing context sits on a different socket
// (ccNUMA). Fine-grained accesses add a per-access latency term with the
// NUMA penalty factor.
//
// Compute charges are expressed as single-thread seconds; the SlotAllocator
// speed factor converts them to this context's effective duration (SMT
// sharing, oversubscription).
#pragma once

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "topo/machine.hpp"
#include "topo/placement.hpp"

namespace hupc::mem {

class MemorySystem {
 public:
  MemorySystem(sim::Engine& engine, const topo::MachineSpec& machine);

  /// Stream `bytes` between the memory of socket `home` and a context at
  /// `at` (same node required). Returns when the slowest involved resource
  /// has carried the bytes.
  [[nodiscard]] sim::Task<void> stream(topo::HwLoc at, topo::HwLoc home,
                                       double bytes);

  /// Start a stream without waiting (overlapped bulk copies).
  [[nodiscard]] sim::Future<> stream_async(topo::HwLoc at, topo::HwLoc home,
                                           double bytes);

  /// Fine-grained access latency for `count` dependent accesses of
  /// `bytes_each` with affinity at `home`: per-access DRAM latency scaled by
  /// the NUMA penalty when crossing sockets, plus bandwidth occupancy.
  [[nodiscard]] sim::Task<void> access(topo::HwLoc at, topo::HwLoc home,
                                       std::uint64_t count, double bytes_each);

  /// Charge `single_thread_seconds` of computation to a context bound at
  /// `at`, slowed by the current SMT/oversubscription speed factor.
  [[nodiscard]] sim::Task<void> compute(const topo::SlotAllocator& slots,
                                        topo::HwLoc at,
                                        double single_thread_seconds);

  /// Charge a floating-point workload at a given efficiency (fraction of
  /// the core's peak FLOP rate actually achieved by the kernel).
  [[nodiscard]] sim::Task<void> compute_flops(const topo::SlotAllocator& slots,
                                              topo::HwLoc at, double flops,
                                              double efficiency);

  [[nodiscard]] const topo::MachineSpec& machine() const noexcept {
    return machine_;
  }

  [[nodiscard]] sim::FluidLink& socket_pool(int node, int socket);
  /// Directional inter-socket link: carries traffic whose *home* is
  /// `from_socket` (QPI/HT are full duplex; each direction has its own
  /// capacity).
  [[nodiscard]] sim::FluidLink& interconnect(int node, int from_socket);

  /// Uncontended DRAM access latency (ns) — a fixed architectural constant.
  static constexpr double kDramLatencyNs = 65.0;

 private:
  sim::Engine* engine_;
  topo::MachineSpec machine_;
  std::vector<std::unique_ptr<sim::FluidLink>> socket_pools_;
  std::vector<std::unique_ptr<sim::FluidLink>> interconnects_;
};

}  // namespace hupc::mem
