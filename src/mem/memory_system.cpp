#include "mem/memory_system.hpp"

#include <cassert>

namespace hupc::mem {

MemorySystem::MemorySystem(sim::Engine& engine, const topo::MachineSpec& machine)
    : engine_(&engine), machine_(machine) {
  const int sockets = machine_.nodes * machine_.sockets_per_node;
  socket_pools_.reserve(static_cast<std::size_t>(sockets));
  for (int s = 0; s < sockets; ++s) {
    socket_pools_.push_back(
        std::make_unique<sim::FluidLink>(engine, machine_.socket_mem_bw));
  }
  // One directional link per (node, home socket).
  interconnects_.reserve(static_cast<std::size_t>(sockets));
  for (int s = 0; s < sockets; ++s) {
    interconnects_.push_back(
        std::make_unique<sim::FluidLink>(engine, machine_.interconnect_bw));
  }
}

sim::FluidLink& MemorySystem::socket_pool(int node, int socket) {
  const auto idx =
      static_cast<std::size_t>(node * machine_.sockets_per_node + socket);
  assert(idx < socket_pools_.size());
  return *socket_pools_[idx];
}

sim::FluidLink& MemorySystem::interconnect(int node, int from_socket) {
  const auto idx =
      static_cast<std::size_t>(node * machine_.sockets_per_node + from_socket);
  assert(idx < interconnects_.size());
  return *interconnects_[idx];
}

sim::Future<> MemorySystem::stream_async(topo::HwLoc at, topo::HwLoc home,
                                         double bytes) {
  assert(at.node == home.node && "cross-node traffic belongs to hupc::net");
  // The home socket's memory controller always carries the bytes. A
  // cross-socket stream also occupies the node interconnect; the transfer
  // completes when the memory pool has delivered everything, and the
  // interconnect occupancy creates back-pressure for concurrent users by
  // capping the memory-pool rate at the interconnect's fair share.
  if (at.socket == home.socket) {
    return socket_pool(home.node, home.socket).transfer_async(bytes);
  }
  // Start the interconnect leg fire-and-forget (its completion coincides
  // with the memory leg under equal rates; awaiting the memory leg is the
  // binding constraint for calibration purposes).
  (void)interconnect(home.node, home.socket).transfer_async(bytes);
  return socket_pool(home.node, home.socket).transfer_async(bytes);
}

sim::Task<void> MemorySystem::stream(topo::HwLoc at, topo::HwLoc home,
                                     double bytes) {
  auto fut = stream_async(at, home, bytes);
  co_await fut.wait();
}

sim::Task<void> MemorySystem::access(topo::HwLoc at, topo::HwLoc home,
                                     std::uint64_t count, double bytes_each) {
  assert(at.node == home.node);
  const double penalty = at.socket == home.socket ? 1.0 : machine_.numa_penalty;
  const double latency_s =
      static_cast<double>(count) * kDramLatencyNs * 1e-9 * penalty;
  // Latency term (dependent access chain) ...
  co_await sim::delay(*engine_, sim::from_seconds(latency_s));
  // ... plus bandwidth occupancy of the touched bytes.
  co_await stream(at, home, static_cast<double>(count) * bytes_each);
}

sim::Task<void> MemorySystem::compute(const topo::SlotAllocator& slots,
                                      topo::HwLoc at,
                                      double single_thread_seconds) {
  const double factor = slots.speed_factor(at);
  assert(factor > 0.0);
  co_await sim::delay(*engine_,
                      sim::from_seconds(single_thread_seconds / factor));
}

sim::Task<void> MemorySystem::compute_flops(const topo::SlotAllocator& slots,
                                            topo::HwLoc at, double flops,
                                            double efficiency) {
  assert(efficiency > 0.0 && efficiency <= 1.0);
  const double seconds = flops / (machine_.core_flops() * efficiency);
  co_await compute(slots, at, seconds);
}

}  // namespace hupc::mem
