#include "fft/kernel.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace hupc::fft {

namespace {

/// Stockham autosort pass structure: ping-pongs between data and scratch,
/// no bit-reversal permutation needed.
void stockham(Complex* x, Complex* y, std::size_t n, int sign) {
  std::size_t l = n / 2, m = 1;
  Complex* src = x;
  Complex* dst = y;
  while (l >= 1) {
    for (std::size_t j = 0; j < l; ++j) {
      const double angle =
          sign * 2.0 * std::numbers::pi * static_cast<double>(j) /
          static_cast<double>(2 * l);
      const Complex w(std::cos(angle), std::sin(angle));
      for (std::size_t k = 0; k < m; ++k) {
        const Complex a = src[k + m * j];
        const Complex b = src[k + m * (j + l)];
        dst[k + m * (2 * j)] = a + b;
        dst[k + m * (2 * j + 1)] = w * (a - b);
      }
    }
    std::swap(src, dst);
    l /= 2;
    m *= 2;
  }
  if (src != x) {
    for (std::size_t i = 0; i < n; ++i) x[i] = src[i];
  }
}

}  // namespace

void fft_inplace(std::span<Complex> data, int sign) {
  const std::size_t n = data.size();
  assert(is_pow2(n));
  assert(sign == 1 || sign == -1);
  if (n <= 1) return;
  thread_local std::vector<Complex> scratch;
  if (scratch.size() < n) scratch.resize(n);
  stockham(data.data(), scratch.data(), n, sign);
}

void fft_strided(Complex* data, std::size_t n, std::size_t stride,
                 std::size_t count, std::size_t batch_stride, int sign) {
  assert(is_pow2(n));
  if (n <= 1) return;
  thread_local std::vector<Complex> gather;
  if (gather.size() < n) gather.resize(n);
  for (std::size_t b = 0; b < count; ++b) {
    Complex* base = data + b * batch_stride;
    if (stride == 1) {
      fft_inplace(std::span<Complex>(base, n), sign);
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) gather[i] = base[i * stride];
    fft_inplace(std::span<Complex>(gather.data(), n), sign);
    for (std::size_t i = 0; i < n; ++i) base[i * stride] = gather[i];
  }
}

void fft_2d(Complex* plane, std::size_t nx, std::size_t ny, int sign) {
  // Rows (contiguous, length ny), then columns (stride ny, length nx).
  fft_strided(plane, ny, 1, nx, ny, sign);
  fft_strided(plane, nx, ny, ny, 1, sign);
}

void fft_3d_serial(Complex* grid, std::size_t nx, std::size_t ny,
                   std::size_t nz, int sign) {
  const std::size_t plane = nx * ny;
  for (std::size_t z = 0; z < nz; ++z) {
    fft_2d(grid + z * plane, nx, ny, sign);
  }
  // Along z: one strided transform per (x, y) site.
  fft_strided(grid, nz, plane, plane, 1, sign);
}

std::vector<Complex> dft_naive(std::span<const Complex> in, int sign) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k * j % n) /
                           static_cast<double>(n);
      acc += in[j] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace hupc::fft
