// Complex FFT kernels (the FFTW stand-in): iterative Stockham autosort
// radix-2, power-of-two sizes, forward and inverse, contiguous and strided
// batched forms — everything the NAS FT pencil/plane decomposition needs.
// A naive DFT is provided as the test oracle.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace hupc::fft {

using Complex = std::complex<double>;

/// True if n is a power of two (and at least 1).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place forward (sign=-1) or inverse (sign=+1) FFT of length-n
/// contiguous data. Inverse is unnormalized (scale by 1/n yourself, as in
/// NAS FT). n must be a power of two.
void fft_inplace(std::span<Complex> data, int sign);

/// Batched strided FFT: `count` transforms of length n, where transform b's
/// element i lives at data[b * batch_stride + i * stride].
void fft_strided(Complex* data, std::size_t n, std::size_t stride,
                 std::size_t count, std::size_t batch_stride, int sign);

/// 2-D FFT of an nx-by-ny row-major plane (contiguous), both dimensions.
void fft_2d(Complex* plane, std::size_t nx, std::size_t ny, int sign);

/// Serial 3-D FFT of a [z][x][y] row-major grid (all dims powers of two):
/// the single-node oracle the distributed transform is verified against.
void fft_3d_serial(Complex* grid, std::size_t nx, std::size_t ny,
                   std::size_t nz, int sign);

/// Naive O(n^2) DFT oracle for tests.
[[nodiscard]] std::vector<Complex> dft_naive(std::span<const Complex> in,
                                             int sign);

/// Analytic operation count for an n-point complex FFT (5 n log2 n), used
/// by the virtual-time cost models.
[[nodiscard]] constexpr double fft_flops(double n) noexcept {
  double log2n = 0;
  for (double m = n; m > 1; m /= 2) log2n += 1;
  return 5.0 * n * log2n;
}

}  // namespace hupc::fft
