#include "fft/ft_real.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "util/rng.hpp"

namespace hupc::fft {

FtReal::FtReal(gas::Runtime& rt, FtParams grid, CommVariant variant, bool vis)
    : rt_(&rt), grid_(grid), variant_(variant), vis_(vis) {
  const int T = rt.threads();
  if (grid_.nz % T != 0 || grid_.nx % T != 0) {
    throw std::invalid_argument("FtReal: NX and NZ must divide by THREADS");
  }
  if (!is_pow2(static_cast<std::size_t>(grid_.nx)) ||
      !is_pow2(static_cast<std::size_t>(grid_.ny)) ||
      !is_pow2(static_cast<std::size_t>(grid_.nz))) {
    throw std::invalid_argument("FtReal: dimensions must be powers of two");
  }
  pz_ = grid_.nz / T;
  px_ = grid_.nx / T;
  const auto plane = static_cast<std::size_t>(grid_.nx) * grid_.ny;
  in_.reserve(static_cast<std::size_t>(T));
  out_.reserve(static_cast<std::size_t>(T));
  for (int r = 0; r < T; ++r) {
    in_.push_back(rt.heap().alloc<Complex>(r, plane * static_cast<std::size_t>(pz_)));
    out_.push_back(rt.heap().alloc<Complex>(
        r, static_cast<std::size_t>(px_) * grid_.nz * grid_.ny));
  }
}

void FtReal::fill_input(std::uint64_t seed) {
  const auto nx = static_cast<std::size_t>(grid_.nx);
  const auto ny = static_cast<std::size_t>(grid_.ny);
  const auto nz = static_cast<std::size_t>(grid_.nz);
  initial_.resize(nx * ny * nz);
  util::Xoshiro256ss rng(seed);
  for (auto& v : initial_) v = Complex(rng.uniform() - 0.5, rng.uniform() - 0.5);
  // Scatter the dense grid into the owners' slabs.
  const std::size_t plane = nx * ny;
  for (std::size_t z = 0; z < nz; ++z) {
    const int owner = static_cast<int>(z) / pz_;
    const std::size_t zl = z % static_cast<std::size_t>(pz_);
    std::memcpy(in_[static_cast<std::size_t>(owner)].raw + zl * plane,
                initial_.data() + z * plane, plane * sizeof(Complex));
  }
}

sim::Task<void> FtReal::run(gas::Thread& self) {
  const int T = self.threads();
  const int me = self.rank();
  const auto nx = static_cast<std::size_t>(grid_.nx);
  const auto ny = static_cast<std::size_t>(grid_.ny);
  const auto nz = static_cast<std::size_t>(grid_.nz);
  const std::size_t plane = nx * ny;
  Complex* slab = in_[static_cast<std::size_t>(me)].raw;

  co_await self.barrier();

  // Phase A: 2-D FFT over (x, y) on each local plane, charging the kernel's
  // analytic cost; overlap variant sends each plane as soon as it is done.
  std::vector<async::future<>> pending;
  auto send_plane = [&](std::size_t zl) {
    // The piece for peer p is x-rows [p*px, (p+1)*px) of plane zl, laid out
    // contiguously (x-major), destined for out_[p] at [x_local][z][y].
    const std::size_t z = static_cast<std::size_t>(me) * pz_ + zl;
    for (int p = 0; p < T; ++p) {
      Complex* dst_base = out_[static_cast<std::size_t>(p)].raw;
      const Complex* src_rows =
          slab + zl * plane + static_cast<std::size_t>(p) * px_ * ny;
      if (vis_) {
        // VIS exchange: the peer's px_ destination rows (strided by nz*ny
        // per x) move as ONE packed strided message per peer per plane.
        gas::GlobalPtr<Complex> dst{p, dst_base + z * ny};
        pending.push_back(self.copy_strided_async(
            dst, gas::StridedSpec::rows(ny, static_cast<std::size_t>(px_), nz * ny),
            src_rows));
        continue;
      }
      // Destination rows are strided by nz*ny per x; one copy per x-row.
      for (int xl = 0; xl < px_; ++xl) {
        gas::GlobalPtr<Complex> dst{
            p, dst_base + (static_cast<std::size_t>(xl) * nz + z) * ny};
        pending.push_back(self.copy_async(dst, src_rows + xl * ny, ny));
      }
    }
  };

  for (std::size_t zl = 0; zl < static_cast<std::size_t>(pz_); ++zl) {
    fft_2d(slab + zl * plane, nx, ny, -1);
    co_await self.compute_flops(fft_flops(static_cast<double>(plane)), 0.22);
    if (variant_ == CommVariant::overlap) send_plane(zl);
  }
  if (variant_ == CommVariant::split_phase) {
    for (std::size_t zl = 0; zl < static_cast<std::size_t>(pz_); ++zl) {
      send_plane(zl);
    }
  }
  for (auto& f : pending) co_await f.wait();
  co_await self.barrier();

  // Phase B: 1-D FFT along z on my x-slab: for each (x_local, y) the z
  // samples are strided by ny in [x_local][z][y].
  Complex* xs = out_[static_cast<std::size_t>(me)].raw;
  for (int xl = 0; xl < px_; ++xl) {
    Complex* base = xs + static_cast<std::size_t>(xl) * nz * ny;
    for (std::size_t y = 0; y < ny; ++y) {
      fft_strided(base + y, nz, ny, 1, 0, -1);
    }
    co_await self.compute_flops(
        static_cast<double>(ny) * fft_flops(static_cast<double>(nz)), 0.22);
  }
  co_await self.barrier();
}

std::vector<Complex> FtReal::gather_result() const {
  const auto nx = static_cast<std::size_t>(grid_.nx);
  const auto ny = static_cast<std::size_t>(grid_.ny);
  const auto nz = static_cast<std::size_t>(grid_.nz);
  std::vector<Complex> dense(nx * ny * nz);
  // out_[r] is [x_local][z][y]; dense is [z][x][y].
  for (int r = 0; r < rt_->threads(); ++r) {
    const Complex* xs = out_[static_cast<std::size_t>(r)].raw;
    for (int xl = 0; xl < px_; ++xl) {
      const std::size_t x = static_cast<std::size_t>(r) * px_ + xl;
      for (std::size_t z = 0; z < nz; ++z) {
        std::memcpy(dense.data() + (z * nx + x) * ny,
                    xs + (static_cast<std::size_t>(xl) * nz + z) * ny,
                    ny * sizeof(Complex));
      }
    }
  }
  return dense;
}

}  // namespace hupc::fft
