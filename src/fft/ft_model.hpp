// NAS FT benchmark driver — cost-model edition.
//
// Reproduces the communication/computation *structure* of the thesis FT
// study (§3.3.3, §4.3.3) at any class size without allocating the grid:
// every phase charges virtual time through the same runtime paths the
// real-data version uses, so contention, overlap and backend effects are
// faithfully simulated while memory stays O(1).
//
//   1-D slab decomposition over THREADS (Fig 4.3): each rank owns
//   NZ/THREADS planes of NX x NY; per iteration:
//     evolve -> 2-D FFTs on local planes -> local transpose ->
//     all-to-all exchange -> 1-D FFTs along Z -> checksum barrier.
//
// Communication variants:
//   split_phase — compute all planes, then exchange in one burst
//                 (non-blocking puts + waitsync), then barrier;
//   overlap     — initiate each plane's puts as soon as that plane's 2-D
//                 FFT finishes (Bell et al.'s overlap algorithm).
//
// Execution variants:
//   pure UPC (process or pthreads backend per the Runtime config),
//   hybrid UPC x sub-threads (subs parallelize the compute phases; the
//   master funnels communication — or subs inject directly under
//   serialized/multiple safety in the overlap variant),
//   MPI (exchange through mpl::Mpi's tuned alltoall).
#pragma once

#include <memory>
#include <vector>

#include "core/core.hpp"
#include "fft/kernel.hpp"
#include "gas/gas.hpp"
#include "mpl/mpi.hpp"
#include "sim/sim.hpp"

namespace hupc::fft {

struct FtParams {
  int nx = 64, ny = 64, nz = 64;
  int iterations = 6;
  const char* name = "S";

  [[nodiscard]] double total_points() const {
    return static_cast<double>(nx) * ny * nz;
  }
  [[nodiscard]] double total_bytes() const {
    return total_points() * static_cast<double>(sizeof(Complex));
  }

  [[nodiscard]] static FtParams class_s() { return {64, 64, 64, 6, "S"}; }
  [[nodiscard]] static FtParams class_a() { return {256, 256, 128, 6, "A"}; }
  [[nodiscard]] static FtParams class_b() { return {512, 256, 256, 20, "B"}; }
};

enum class CommVariant { split_phase, overlap };
enum class FtComm { upc_p2p, mpi_alltoall };

struct FtConfig {
  FtParams grid = FtParams::class_b();
  CommVariant variant = CommVariant::split_phase;
  FtComm comm = FtComm::upc_p2p;
  // Hybrid sub-threads: 0 = pure UPC; otherwise each UPC thread runs its
  // compute phases on `subs` sub-thread contexts.
  int subs = 0;
  core::SubModel sub_model = core::SubModel::openmp;
  core::ThreadSafety safety = core::ThreadSafety::serialized;
  // Fraction of peak FLOP rate the FFT kernels achieve (cache-blocked
  // FFTs typically run at ~20-25% of peak on Nehalem-class cores).
  double fft_efficiency = 0.22;
  // Drain the all-to-all through the promise-based completion layer
  // (async::future + when_all, the pipelined path) instead of the legacy
  // per-handle sim::Future waitsync loop. Same modeled schedule; the async
  // path additionally flows through fault::CompletionHook and the
  // async.copy.* counters. hupc_bench exposes it as --async=on|off.
  bool async = true;
  // All-to-all algorithm for the upc_p2p split-phase exchange: flat
  // staggered (the §4.3.3.1 reference) or the supernode-leader
  // hierarchical schedule (node-local funnel -> one aggregated message
  // per leader pair -> local scatter); `automatic` defers to the
  // size/shape selector. hupc_bench exposes it as --coll-algo=.
  gas::CollAlgo coll_algo = gas::CollAlgo::automatic;
};

struct FtTimings {
  double evolve = 0;
  double fft2d = 0;
  double transpose = 0;
  double comm = 0;  // time in communication calls incl. waits (Fig 4.5)
  double fft1d = 0;
  double total = 0;

  FtTimings& operator+=(const FtTimings& o) {
    evolve += o.evolve;
    fft2d += o.fft2d;
    transpose += o.transpose;
    comm += o.comm;
    fft1d += o.fft1d;
    total += o.total;
    return *this;
  }
};

class FtModel {
 public:
  FtModel(gas::Runtime& rt, FtConfig config);

  /// SPMD kernel: co_await from every rank.
  [[nodiscard]] sim::Task<void> run(gas::Thread& self);

  [[nodiscard]] const FtTimings& timings(int rank) const {
    return timings_[static_cast<std::size_t>(rank)];
  }
  /// Mean across ranks (the per-thread phase times of Fig 4.4/4.5).
  [[nodiscard]] FtTimings mean() const;
  [[nodiscard]] const FtConfig& config() const noexcept { return cfg_; }

 private:
  struct PlaneWork;

  [[nodiscard]] sim::Task<void> compute_planes(gas::Thread& self,
                                               core::SubPool* pool,
                                               double per_plane_seconds,
                                               int planes);
  [[nodiscard]] sim::Task<void> charge_stream(gas::Thread& self,
                                              core::SubPool* pool,
                                              double bytes);
  [[nodiscard]] sim::Task<void> exchange_split(gas::Thread& self);
  [[nodiscard]] sim::Task<void> exchange_hier(gas::Thread& self);
  [[nodiscard]] sim::Task<void> exchange_overlap(gas::Thread& self,
                                                 core::SubPool* pool,
                                                 double per_plane_seconds,
                                                 int planes);

  gas::Runtime* rt_;
  FtConfig cfg_;
  std::unique_ptr<mpl::Mpi> mpi_;
  std::vector<FtTimings> timings_;

  // Derived per-run quantities.
  int planes_per_rank_;       // NZ / THREADS (ceil)
  double plane_bytes_;        // NX * NY * sizeof(Complex)
  double slab_bytes_;         // planes_per_rank * plane_bytes
  double chunk_bytes_;        // per-peer exchange chunk (grid / T^2)
  double fft2d_plane_s_;      // single-thread seconds per 2-D plane FFT
  double fft1d_total_s_;      // single-thread seconds for my 1-D FFT batch
};

}  // namespace hupc::fft
