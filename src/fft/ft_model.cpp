#include "fft/ft_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hupc::fft {

namespace {
// Single-thread seconds for `flops` at `eff` fraction of this machine's
// core peak.
double flops_seconds(const gas::Runtime& rt, double flops, double eff) {
  return flops / (rt.config().machine.core_flops() * eff);
}
}  // namespace

FtModel::FtModel(gas::Runtime& rt, FtConfig config)
    : rt_(&rt), cfg_(config), timings_(static_cast<std::size_t>(rt.threads())) {
  const int T = rt.threads();
  const auto& g = cfg_.grid;
  planes_per_rank_ = (g.nz + T - 1) / T;
  plane_bytes_ = static_cast<double>(g.nx) * g.ny * sizeof(Complex);
  slab_bytes_ = plane_bytes_ * planes_per_rank_;
  chunk_bytes_ = g.total_bytes() / (static_cast<double>(T) * T);

  const double plane_points = static_cast<double>(g.nx) * g.ny;
  fft2d_plane_s_ =
      flops_seconds(rt, fft_flops(plane_points), cfg_.fft_efficiency);
  const double pencils = plane_points / T;
  fft1d_total_s_ = flops_seconds(
      rt, pencils * fft_flops(static_cast<double>(g.nz)), cfg_.fft_efficiency);

  if (cfg_.comm == FtComm::mpi_alltoall) {
    mpi_ = std::make_unique<mpl::Mpi>(rt);
  }
}

FtTimings FtModel::mean() const {
  FtTimings sum;
  for (const auto& t : timings_) sum += t;
  const auto n = static_cast<double>(timings_.size());
  return FtTimings{sum.evolve / n, sum.fft2d / n,  sum.transpose / n,
                   sum.comm / n,   sum.fft1d / n,  sum.total / n};
}

sim::Task<void> FtModel::compute_planes(gas::Thread& self, core::SubPool* pool,
                                        double per_plane_seconds, int planes) {
  if (pool == nullptr) {
    co_await self.compute(per_plane_seconds * planes);
    co_return;
  }
  co_await pool->parallel_for(
      static_cast<std::size_t>(planes), core::Schedule::static_chunks,
      [per_plane_seconds](core::SubContext& c, std::size_t lo,
                          std::size_t hi) -> sim::Task<void> {
        co_await c.compute(per_plane_seconds * static_cast<double>(hi - lo));
      });
}

sim::Task<void> FtModel::charge_stream(gas::Thread& self, core::SubPool* pool,
                                       double bytes) {
  // FT's evolve/transpose work on per-thread slabs that are cache-blocked
  // (a few MB per thread at scale), so they run at a per-core copy rate
  // rather than saturating the socket's DRAM pools — this is why Fig 4.4
  // shows them scaling linearly. Charged as compute so the SMT factor
  // produces the 128-thread kink.
  constexpr double kCoreCopyBw = 4.0e9;  // bytes/s per core, cache-blocked
  const double seconds = bytes / kCoreCopyBw;
  if (pool == nullptr) {
    co_await self.compute(seconds);
    co_return;
  }
  const auto width = static_cast<double>(pool->width());
  co_await pool->parallel_for(
      static_cast<std::size_t>(pool->width()), core::Schedule::static_chunks,
      [share = seconds / width](core::SubContext& c, std::size_t lo,
                                std::size_t hi) -> sim::Task<void> {
        co_await c.compute(share * static_cast<double>(hi - lo));
      });
}

sim::Task<void> FtModel::exchange_split(gas::Thread& self) {
  const int T = self.threads();
  const int me = self.rank();
  if (cfg_.comm == FtComm::mpi_alltoall) {
    co_await mpi_->alltoall(self, nullptr, nullptr,
                            static_cast<std::size_t>(chunk_bytes_));
    co_return;
  }
  gas::CollectiveSelector sel;
  sel.override_algo = cfg_.coll_algo;
  const gas::CollAlgo algo =
      sel.choose(gas::CollOp::alltoall, static_cast<std::size_t>(chunk_bytes_),
                 T, rt_->nodes_used() > 1);
  if (algo == gas::CollAlgo::hier && rt_->nodes_used() > 1) {
    co_await exchange_hier(self);
    co_return;
  }
  // Berkeley-style split phase: issue every peer chunk non-blocking, then
  // wait for all transfers, then a barrier to close the epoch. The async
  // path pipelines through the completion layer (when_all over promise-
  // backed futures); the legacy path drains per-handle sim::Futures.
  if (cfg_.async) {
    std::vector<async::future<>> pending;
    pending.reserve(static_cast<std::size_t>(T - 1));
    for (int step = 1; step < T; ++step) {
      const int peer = (me + step) % T;
      pending.push_back(self.launch_async(self.copy_raw(
          peer, nullptr, nullptr, static_cast<std::size_t>(chunk_bytes_))));
    }
    co_await async::when_all(std::move(pending)).wait();
  } else {
    std::vector<sim::Future<>> pending;
    pending.reserve(static_cast<std::size_t>(T - 1));
    for (int step = 1; step < T; ++step) {
      const int peer = (me + step) % T;
      pending.push_back(self.start_async(self.copy_raw(
          peer, nullptr, nullptr, static_cast<std::size_t>(chunk_bytes_))));
    }
    for (auto& f : pending) co_await f.wait();
  }
  co_await self.barrier();
}

sim::Task<void> FtModel::exchange_hier(gas::Thread& self) {
  // Supernode-leader all-to-all, cost-model edition (mirrors the
  // gas::Collectives hier schedule): intra-node chunks go direct (PSHM),
  // each non-leader funnels its off-node portion through its node leader,
  // leaders exchange ONE aggregated message per ordered node pair, and
  // non-leaders pull their inbound slab back. The wire sees G*(G-1) large
  // messages instead of T*(T-1) small ones.
  const int T = self.threads();
  const int me = self.rank();
  const int my_node = rt_->node_of(me);
  const int G = rt_->nodes_used();
  std::vector<int> node_sizes(static_cast<std::size_t>(G), 0);
  std::vector<int> leaders(static_cast<std::size_t>(G), -1);
  std::vector<int> locals;
  for (int r = 0; r < T; ++r) {
    const int node = rt_->node_of(r);
    if (leaders[static_cast<std::size_t>(node)] < 0) {
      leaders[static_cast<std::size_t>(node)] = r;
    }
    ++node_sizes[static_cast<std::size_t>(node)];
    if (node == my_node) locals.push_back(r);
  }
  const int A = static_cast<int>(locals.size());
  const int leader = leaders[static_cast<std::size_t>(my_node)];
  const auto chunk = [this](double chunks) {
    return static_cast<std::size_t>(chunk_bytes_ * chunks);
  };

  // Phase 1 — node-local: direct chunks to local peers, plus the off-node
  // funnel into the leader's staging.
  for (int peer : locals) {
    if (peer == me) continue;
    co_await self.copy_raw(peer, nullptr, nullptr, chunk(1));
  }
  if (me != leader) {
    co_await self.copy_raw(leader, nullptr, nullptr, chunk(T - A));
  }
  co_await self.barrier();

  // Phase 2 — leader exchange: one aggregated message per other node,
  // staggered by node and pipelined through the completion layer.
  if (me == leader && G > 1) {
    std::vector<async::future<>> pending;
    pending.reserve(static_cast<std::size_t>(G - 1));
    for (int s = 1; s < G; ++s) {
      const int h = (my_node + s) % G;
      pending.push_back(self.launch_async(self.copy_raw(
          leaders[static_cast<std::size_t>(h)], nullptr, nullptr,
          chunk(static_cast<double>(A) * node_sizes[static_cast<std::size_t>(h)]))));
    }
    co_await async::when_all(std::move(pending)).wait();
  }
  co_await self.barrier();

  // Phase 3 — local scatter: non-leaders pull their inbound off-node slab.
  if (me != leader) {
    co_await self.copy_raw(leader, nullptr, nullptr, chunk(T - A));
  }
  co_await self.barrier();
}

sim::Task<void> FtModel::exchange_overlap(gas::Thread& self,
                                          core::SubPool* pool,
                                          double per_plane_seconds,
                                          int planes) {
  // Each plane's contribution to each peer leaves as soon as that plane's
  // 2-D FFT completes; communication rides under the remaining compute.
  const int T = self.threads();
  const int me = self.rank();
  const double piece = chunk_bytes_ / planes_per_rank_;
  const auto expected = static_cast<std::size_t>(planes) *
                        static_cast<std::size_t>(T - 1);
  std::vector<sim::Future<>> pending;
  std::vector<async::future<>> pending_async;
  (cfg_.async ? pending_async.reserve(expected) : pending.reserve(expected));

  auto send_plane = [&](gas::Thread& t) {
    for (int step = 1; step < T; ++step) {
      const int peer = (me + step) % T;
      auto op = t.copy_raw(peer, nullptr, nullptr,
                           static_cast<std::size_t>(piece));
      if (cfg_.async) {
        pending_async.push_back(t.launch_async(std::move(op)));
      } else {
        pending.push_back(t.start_async(std::move(op)));
      }
    }
  };

  if (pool == nullptr) {
    for (int p = 0; p < planes; ++p) {
      co_await self.compute(per_plane_seconds);
      send_plane(self);
    }
  } else {
    // Sub-threads compute planes; the master (context 0) funnels each
    // finished plane into the network. We approximate the thesis's
    // concurrent-injection pattern by having compute proceed region-wise
    // while sends are issued per plane from the master context.
    const int width = pool->width();
    const int rounds = (planes + width - 1) / width;
    for (int r = 0; r < rounds; ++r) {
      const int batch = std::min(width, planes - r * width);
      co_await pool->parallel_for(
          static_cast<std::size_t>(batch), core::Schedule::static_chunks,
          [per_plane_seconds](core::SubContext& c, std::size_t lo,
                              std::size_t hi) -> sim::Task<void> {
            co_await c.compute(per_plane_seconds *
                               static_cast<double>(hi - lo));
          });
      for (int p = 0; p < batch; ++p) send_plane(self);
    }
  }
  if (cfg_.async) {
    co_await async::when_all(std::move(pending_async)).wait();
  } else {
    for (auto& f : pending) co_await f.wait();
  }
  co_await self.barrier();
}

sim::Task<void> FtModel::run(gas::Thread& self) {
  auto& engine = rt_->engine();
  auto& t = timings_[static_cast<std::size_t>(self.rank())];
  std::unique_ptr<core::SubPool> pool;
  if (cfg_.subs > 0) {
    pool = std::make_unique<core::SubPool>(self, cfg_.subs, cfg_.sub_model,
                                           cfg_.safety);
  }
  const auto& g = cfg_.grid;
  const double evolve_flops =
      static_cast<double>(g.nx) * g.ny * planes_per_rank_ * 8.0;
  const double evolve_s = flops_seconds(*rt_, evolve_flops, 0.5);

  const sim::Time start = engine.now();
  co_await self.barrier();
  for (int iter = 0; iter < g.iterations; ++iter) {
    sim::Time mark = engine.now();

    // evolve: elementwise factors — memory bound plus a few flops.
    co_await charge_stream(self, pool.get(), 2.0 * slab_bytes_);
    co_await compute_planes(self, pool.get(), evolve_s / planes_per_rank_,
                            planes_per_rank_);
    t.evolve += sim::to_seconds(engine.now() - mark);
    mark = engine.now();

    // Forward 2-D FFTs on local planes (overlap defers them into the
    // exchange loop).
    if (cfg_.variant == CommVariant::split_phase) {
      co_await compute_planes(self, pool.get(), fft2d_plane_s_,
                              planes_per_rank_);
      t.fft2d += sim::to_seconds(engine.now() - mark);
      mark = engine.now();

      // Local transpose into exchange order.
      co_await charge_stream(self, pool.get(), 2.0 * slab_bytes_);
      t.transpose += sim::to_seconds(engine.now() - mark);
      mark = engine.now();

      co_await exchange_split(self);
      t.comm += sim::to_seconds(engine.now() - mark);
    } else {
      co_await exchange_overlap(self, pool.get(), fft2d_plane_s_,
                                planes_per_rank_);
      // The overlap variant interleaves fft2d with communication; split
      // the elapsed wall into compute (known) and the rest as comm.
      const double elapsed = sim::to_seconds(engine.now() - mark);
      const double compute_part = fft2d_plane_s_ * planes_per_rank_;
      t.fft2d += compute_part;
      t.comm += std::max(0.0, elapsed - compute_part);
      mark = engine.now();
      co_await charge_stream(self, pool.get(), 2.0 * slab_bytes_);
      t.transpose += sim::to_seconds(engine.now() - mark);
    }
    mark = engine.now();

    // 1-D FFTs along Z on my pencil bundle.
    if (pool == nullptr) {
      co_await self.compute(fft1d_total_s_);
    } else {
      co_await pool->parallel_for(
          static_cast<std::size_t>(pool->width()),
          core::Schedule::static_chunks,
          [share = fft1d_total_s_ / pool->width()](
              core::SubContext& c, std::size_t lo,
              std::size_t hi) -> sim::Task<void> {
            co_await c.compute(share * static_cast<double>(hi - lo));
          });
    }
    t.fft1d += sim::to_seconds(engine.now() - mark);

    // Checksum epoch.
    co_await self.barrier();
  }
  t.total = sim::to_seconds(engine.now() - start);
  co_return;
}

}  // namespace hupc::fft
