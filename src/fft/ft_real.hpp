// NAS FT driver — real-data edition.
//
// Runs the distributed 3-D FFT for real on the simulated PGAS runtime:
// slabs live in the shared heap, every exchange moves actual complex
// values, and the result is bit-comparable against the serial 3-D FFT
// oracle. Used by the correctness tests and the fft3d_solver example;
// paper-size classes use FtModel (cost-only) instead.
//
// Layouts:
//   before exchange: rank r owns z-planes [r*Pz, (r+1)*Pz), [z][x][y];
//   after  exchange: rank r owns x-slabs  [r*Px, (r+1)*Px), [x][z][y].
// NX and NZ must be divisible by THREADS.
#pragma once

#include <vector>

#include "fft/ft_model.hpp"
#include "fft/kernel.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"

namespace hupc::fft {

class FtReal {
 public:
  /// `vis` routes the all-to-all transpose exchange through the VIS
  /// descriptor API: ONE strided message per peer per plane instead of
  /// one contiguous copy per x-row. Off (the default) preserves the
  /// pre-VIS per-row exchange bit for bit.
  FtReal(gas::Runtime& rt, FtParams grid, CommVariant variant,
         bool vis = false);

  /// Deterministically fill rank `r`'s slab (call before run).
  void fill_input(std::uint64_t seed);

  /// SPMD kernel: forward 3-D FFT of the distributed grid.
  [[nodiscard]] sim::Task<void> run(gas::Thread& self);

  /// Gather the transformed grid to a dense [z][x][y] array (host-side,
  /// after run) for comparison with the serial oracle.
  [[nodiscard]] std::vector<Complex> gather_result() const;

  /// The initial grid as a dense [z][x][y] array (for the oracle).
  [[nodiscard]] const std::vector<Complex>& initial_grid() const {
    return initial_;
  }

 private:
  gas::Runtime* rt_;
  FtParams grid_;
  CommVariant variant_;
  bool vis_;
  int pz_, px_;  // planes / x-rows per rank
  // in_[r]:  rank r's z-slab, [z_local][x][y];
  // out_[r]: rank r's x-slab after exchange, [x_local][z][y].
  std::vector<gas::GlobalPtr<Complex>> in_;
  std::vector<gas::GlobalPtr<Complex>> out_;
  std::vector<Complex> initial_;
};

}  // namespace hupc::fft
