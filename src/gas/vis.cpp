#include "gas/vis.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hupc::gas::vis {

namespace {

void check_dims(const StridedSpec& spec) {
  if (spec.dims < 1 || spec.dims > 3) {
    throw std::invalid_argument("gas::StridedSpec: dims must be 1..3 (got " +
                                std::to_string(spec.dims) + ")");
  }
}

}  // namespace

std::vector<Run> runs_of(const StridedSpec& spec) {
  check_dims(spec);
  std::vector<Run> out;
  if (spec.elems() == 0) return out;
  const std::size_t n1 = spec.dims >= 2 ? spec.extents[1] : 1;
  const std::size_t n2 = spec.dims >= 3 ? spec.extents[2] : 1;
  out.reserve(n1 * n2);
  for (std::size_t i2 = 0; i2 < n2; ++i2) {
    for (std::size_t i1 = 0; i1 < n1; ++i1) {
      out.push_back(Run{i2 * spec.strides[2] + i1 * spec.strides[1],
                        spec.extents[0]});
    }
  }
  return out;
}

std::vector<Run> runs_of(const IndexedSpec& spec) {
  std::vector<Run> out;
  out.reserve(spec.regions.size());
  for (const IndexedSpec::Region& r : spec.regions) {
    if (r.len == 0) continue;
    out.push_back(Run{r.offset, r.len});
  }
  return out;
}

void require_disjoint(const StridedSpec& spec, const char* what) {
  check_dims(spec);
  if (spec.extents[0] == 0) return;
  // A rectangular footprint overlaps itself exactly when a level's stride
  // is shorter than the span of the level below it (and that level
  // actually repeats).
  if (spec.dims >= 2 && spec.extents[1] > 1 &&
      spec.strides[1] < spec.extents[0]) {
    throw std::invalid_argument(
        std::string("gas::StridedSpec: ") + what +
        " regions overlap (strides[1] < extents[0])");
  }
  if (spec.dims >= 3 && spec.extents[2] > 1) {
    const std::size_t plane_span =
        spec.extents[1] > 0
            ? spec.strides[1] * (spec.extents[1] - 1) + spec.extents[0]
            : 0;
    if (spec.strides[2] < plane_span) {
      throw std::invalid_argument(
          std::string("gas::StridedSpec: ") + what +
          " regions overlap (strides[2] < plane span)");
    }
  }
}

void require_disjoint(const IndexedSpec& spec, const char* what) {
  std::vector<Run> runs = runs_of(spec);
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.offset < b.offset; });
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i - 1].offset + runs[i - 1].len > runs[i].offset) {
      throw std::invalid_argument(
          std::string("gas::IndexedSpec: ") + what +
          " regions overlap (offsets " + std::to_string(runs[i - 1].offset) +
          "+" + std::to_string(runs[i - 1].len) + " and " +
          std::to_string(runs[i].offset) + ")");
    }
  }
}

std::vector<net::Region> pair_runs(const std::vector<Run>& dst,
                                   const std::vector<Run>& src,
                                   std::size_t elem_size) {
  std::vector<net::Region> out;
  std::size_t di = 0, si = 0;     // current run on each side
  std::size_t dused = 0, sused = 0;  // elements consumed of the current run
  while (di < dst.size() && si < src.size()) {
    const std::size_t dleft = dst[di].len - dused;
    const std::size_t sleft = src[si].len - sused;
    const std::size_t take = std::min(dleft, sleft);
    const std::size_t doff = (dst[di].offset + dused) * elem_size;
    const std::size_t soff = (src[si].offset + sused) * elem_size;
    const std::size_t bytes = take * elem_size;
    // Merge runs that turn out adjacent on BOTH sides (stride == extent
    // degenerates to contiguous), so the footprint reflects the real wire
    // shape, not the spec's bookkeeping.
    if (!out.empty() && out.back().dst_off + out.back().bytes == doff &&
        out.back().src_off + out.back().bytes == soff) {
      out.back().bytes += bytes;
    } else {
      out.push_back(net::Region{doff, soff, bytes});
    }
    dused += take;
    sused += take;
    if (dused == dst[di].len) {
      ++di;
      dused = 0;
    }
    if (sused == src[si].len) {
      ++si;
      sused = 0;
    }
  }
  if (di < dst.size() || si < src.size()) {
    throw std::invalid_argument(
        "gas::vis: destination and source specs cover different element "
        "counts");
  }
  return out;
}

std::size_t payload_bytes(const std::vector<net::Region>& regions) {
  std::size_t total = 0;
  for (const net::Region& r : regions) total += r.bytes;
  return total;
}

}  // namespace hupc::gas::vis
