// Collective algorithm identities and the size/shape-keyed selector.
//
// Every gas::Collectives operation can run under more than one algorithm
// (the "group-aware algorithms" second act of the thesis's Chapter 3 teams:
// topology-shaped trees instead of the flat reference patterns). This
// header names the algorithms, says which operation supports which, and
// packages the selection policy — message size, team size, and whether the
// team spans nodes — so call sites can either pin an algorithm
// (`--coll-algo=flat`) or let the selector choose (`auto`).
//
// Selection policy (CollectiveSelector::choose):
//   alltoall   — hierarchical (node-local gather -> leader exchange ->
//                local scatter) when the team spans nodes and the per-pair
//                payload is small enough that per-message costs dominate;
//                flat staggered otherwise (a leader funnel loses once the
//                wire dominates — cf. mpl::Mpi's aggregation crossover).
//   broadcast / reduce — supernode-leader two-level trees whenever the
//                team spans nodes and has enough members to amortize the
//                leader hop; flat (binomial / gather+combine) otherwise.
//   allgather  — dissemination (log rounds, each member forwarding its
//                accumulated blocks) for small blocks; ring (n-1 rounds of
//                single-block nearest-neighbour forwarding, bandwidth
//                optimal) for large ones; flat direct puts as oracle.
//
// Every algorithm moves the same bytes to the same final slots: results
// are bit-identical to the flat reference for any payload, and for reduce
// whenever the combiner is exactly associative + commutative (integer sum,
// min/max, xor — floating-point folds may differ in rounding because the
// combine ORDER differs between trees).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace hupc::gas {

/// Operation kinds with per-(team, op) collective matching (DESIGN.md §14).
enum class CollOp : std::uint8_t {
  broadcast = 0,
  reduce = 1,
  gather = 2,
  allgather = 3,
  alltoall = 4,
};
inline constexpr int kCollOpKinds = 5;

enum class CollAlgo : std::uint8_t {
  automatic = 0,  // defer to the CollectiveSelector
  flat = 1,       // single-level reference algorithm (the oracle)
  hier = 2,       // supernode-leader two-level tree
  ring = 3,       // ring allgather (bandwidth-optimal)
  dissem = 4,     // dissemination allgather (latency-optimal)
};

[[nodiscard]] inline const char* coll_op_name(CollOp op) noexcept {
  switch (op) {
    case CollOp::broadcast: return "broadcast";
    case CollOp::reduce: return "reduce";
    case CollOp::gather: return "gather";
    case CollOp::allgather: return "allgather";
    case CollOp::alltoall: return "alltoall";
  }
  return "?";
}

[[nodiscard]] inline const char* coll_algo_name(CollAlgo a) noexcept {
  switch (a) {
    case CollAlgo::automatic: return "auto";
    case CollAlgo::flat: return "flat";
    case CollAlgo::hier: return "hier";
    case CollAlgo::ring: return "ring";
    case CollAlgo::dissem: return "dissem";
  }
  return "?";
}

/// Parse a `--coll-algo` value; nullopt on anything unknown (callers turn
/// that into their CLI error path — exit 2, like every other enum flag).
[[nodiscard]] inline std::optional<CollAlgo> parse_coll_algo(
    const std::string& s) noexcept {
  if (s == "auto") return CollAlgo::automatic;
  if (s == "flat") return CollAlgo::flat;
  if (s == "hier") return CollAlgo::hier;
  if (s == "ring") return CollAlgo::ring;
  if (s == "dissem") return CollAlgo::dissem;
  return std::nullopt;
}

/// Which (operation, algorithm) cells ship. The equivalence harness sweeps
/// exactly this table against the flat oracle.
[[nodiscard]] inline bool coll_algo_supported(CollOp op,
                                              CollAlgo a) noexcept {
  if (a == CollAlgo::flat) return true;
  switch (op) {
    case CollOp::broadcast:
    case CollOp::reduce:
      return a == CollAlgo::hier;
    case CollOp::allgather:
      return a == CollAlgo::ring || a == CollAlgo::dissem;
    case CollOp::alltoall:
      return a == CollAlgo::hier;
    case CollOp::gather:
      return false;  // flat only
  }
  return false;
}

/// Algorithm choice keyed on (operation, message size, team shape).
/// `override_algo` pins every operation to one algorithm (the
/// `--coll-algo=` escape hatch); operations that do not support the pinned
/// algorithm fall back to flat rather than failing mid-kernel.
struct CollectiveSelector {
  CollAlgo override_algo = CollAlgo::automatic;
  /// alltoall: aggregate through node leaders only while the per-pair
  /// payload is injection/latency dominated (cf. mpl::Mpi's ~1 KiB
  /// crossover; the gas-level path keeps a wider window because the flat
  /// exchange serializes its puts per rank).
  std::size_t hier_alltoall_max_bytes = std::size_t{64} * 1024;
  /// allgather: dissemination below this per-member block size, ring above.
  std::size_t dissem_allgather_max_bytes = 4096;
  /// Two-level trees need enough members to amortize the extra leader hop.
  int hier_min_members = 4;

  [[nodiscard]] CollAlgo choose(CollOp op, std::size_t bytes, int members,
                                bool spans_nodes) const noexcept {
    if (override_algo != CollAlgo::automatic) {
      return coll_algo_supported(op, override_algo) ? override_algo
                                                    : CollAlgo::flat;
    }
    switch (op) {
      case CollOp::alltoall:
        return spans_nodes && members >= hier_min_members &&
                       bytes <= hier_alltoall_max_bytes
                   ? CollAlgo::hier
                   : CollAlgo::flat;
      case CollOp::broadcast:
      case CollOp::reduce:
        return spans_nodes && members >= hier_min_members ? CollAlgo::hier
                                                          : CollAlgo::flat;
      case CollOp::allgather:
        if (members < 3) return CollAlgo::flat;
        return bytes <= dissem_allgather_max_bytes ? CollAlgo::dissem
                                                   : CollAlgo::ring;
      case CollOp::gather:
        return CollAlgo::flat;
    }
    return CollAlgo::flat;
  }
};

}  // namespace hupc::gas
