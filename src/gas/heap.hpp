// Per-thread shared-segment allocator.
//
// Each UPC thread owns one segment (a growable arena of real host memory).
// Allocation is bump-pointer with alignment; segments are stable in memory
// (deque of fixed chunks) so raw pointers never invalidate — a property the
// whole GlobalPtr design depends on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "fault/hooks.hpp"
#include "gas/global_ptr.hpp"
#include "gas/global_ptr2d.hpp"

namespace hupc::gas {

class Segment {
 public:
  explicit Segment(std::size_t chunk_bytes = kDefaultChunk);

  /// Allocate `bytes` with `align` (power of two). Never returns nullptr.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align);

  /// Deterministic virtual offset of `p` inside this segment, or -1 when
  /// `p` does not point into it. Chunks occupy consecutive virtual ranges
  /// in allocation order, so the offset depends only on the allocation
  /// sequence — never on where the OS mapped a chunk (ASLR). Anything that
  /// must be run-stable (the comm::ReadCache line tags) keys on these
  /// offsets instead of raw addresses.
  [[nodiscard]] std::int64_t offset_of(const void* p) const noexcept;

  [[nodiscard]] std::size_t bytes_allocated() const noexcept {
    return allocated_;
  }

  static constexpr std::size_t kDefaultChunk = 8u << 20;  // 8 MiB

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size;
    std::size_t used;
  };
  std::size_t chunk_bytes_;
  std::size_t allocated_ = 0;
  std::deque<Chunk> chunks_;
};

/// The whole partitioned heap: one Segment per UPC thread.
class SharedHeap {
 public:
  explicit SharedHeap(int threads);

  [[nodiscard]] int threads() const noexcept {
    return static_cast<int>(segments_.size());
  }

  /// upc_alloc analogue: `count` Ts with affinity to thread `owner`.
  /// Under heap-pressure fault injection the allocation may throw
  /// std::bad_alloc instead (see set_fault); without a hook it never fails.
  template <class T>
  [[nodiscard]] GlobalPtr<T> alloc(int owner, std::size_t count) {
    maybe_inject_failure(owner, count * sizeof(T));
    auto* p = static_cast<T*>(segment(owner).allocate(
        count * sizeof(T), alignof(T) < 8 ? 8 : alignof(T)));
    return GlobalPtr<T>{owner, p};
  }

  /// upc_all_alloc analogue for `shared [B] T a[N]`: every thread's blocks
  /// are carved from its own segment; returns the layout descriptor.
  template <class T>
  [[nodiscard]] SharedArray<T> all_alloc(std::size_t size, std::size_t block) {
    std::vector<T*> slices;
    slices.reserve(segments_.size());
    SharedArray<T> probe(size, block,
                         std::vector<T*>(segments_.size(), nullptr));
    for (int r = 0; r < threads(); ++r) {
      const std::size_t n = probe.local_size(r);
      slices.push_back(n == 0 ? nullptr : alloc<T>(r, n).raw);
    }
    return SharedArray<T>(size, block, std::move(slices));
  }

  /// 2-D tiled allocation: `shared [BR][BC] T a[R][C]` (multidimensional
  /// blocking). Edge tiles are padded to full BR*BC size.
  template <class T>
  [[nodiscard]] SharedArray2D<T> all_alloc_2d(std::size_t rows,
                                              std::size_t cols,
                                              std::size_t block_rows,
                                              std::size_t block_cols) {
    SharedArray2D<T> probe(rows, cols, block_rows, block_cols,
                           std::vector<T*>(segments_.size(), nullptr));
    std::vector<T*> slices;
    slices.reserve(segments_.size());
    for (int r = 0; r < threads(); ++r) {
      const std::size_t n = probe.tiles_of(r) * probe.tile_elems();
      slices.push_back(n == 0 ? nullptr : alloc<T>(r, n).raw);
    }
    return SharedArray2D<T>(rows, cols, block_rows, block_cols,
                            std::move(slices));
  }

  [[nodiscard]] Segment& segment(int owner) {
    return *segments_[static_cast<std::size_t>(owner)];
  }

  /// Virtual offset of `p` inside `owner`'s segment, or -1 when it does
  /// not point there (see Segment::offset_of for the determinism contract).
  [[nodiscard]] std::int64_t offset_of(int owner, const void* p) const noexcept {
    return segments_[static_cast<std::size_t>(owner)]->offset_of(p);
  }

  /// Total bytes handed out across all segments.
  [[nodiscard]] std::size_t bytes_allocated() const noexcept;

  /// Attach a heap-pressure fault hook (non-owning, may be null): each
  /// allocation consults it and throws std::bad_alloc when it fires.
  void set_fault(fault::AllocHook* hook) noexcept { fault_ = hook; }

 private:
  /// Throws std::bad_alloc when the installed hook injects a failure.
  void maybe_inject_failure(int owner, std::size_t bytes) const;

  std::vector<std::unique_ptr<Segment>> segments_;
  fault::AllocHook* fault_ = nullptr;
};

}  // namespace hupc::gas
