#include "gas/heap.hpp"

#include <cassert>
#include <functional>
#include <new>

namespace hupc::gas {

Segment::Segment(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {}

void* Segment::allocate(std::size_t bytes, std::size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  allocated_ += bytes;

  auto try_fit = [&](Chunk& c) -> void* {
    auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
    const std::uintptr_t aligned = (base + c.used + align - 1) & ~(align - 1);
    const std::size_t end = static_cast<std::size_t>(aligned - base) + bytes;
    if (end <= c.size) {
      c.used = end;
      return reinterpret_cast<void*>(aligned);
    }
    return nullptr;
  };

  if (!chunks_.empty()) {
    if (void* p = try_fit(chunks_.back())) return p;
  }
  const std::size_t size = bytes + align > chunk_bytes_ ? bytes + align
                                                        : chunk_bytes_;
  chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size, 0});
  void* p = try_fit(chunks_.back());
  assert(p != nullptr);
  return p;
}

std::int64_t Segment::offset_of(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  std::int64_t vbase = 0;
  // std::less is a total order even over pointers into unrelated arrays,
  // which the built-in < does not guarantee.
  const std::less<const std::byte*> lt;
  for (const Chunk& c : chunks_) {
    const std::byte* lo = c.data.get();
    if (!lt(b, lo) && lt(b, lo + c.used)) return vbase + (b - lo);
    vbase += static_cast<std::int64_t>(c.size);
  }
  return -1;
}

SharedHeap::SharedHeap(int threads) {
  assert(threads >= 1);
  segments_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    segments_.push_back(std::make_unique<Segment>());
  }
}

std::size_t SharedHeap::bytes_allocated() const noexcept {
  std::size_t total = 0;
  for (const auto& s : segments_) total += s->bytes_allocated();
  return total;
}

void SharedHeap::maybe_inject_failure(int owner, std::size_t bytes) const {
  if (fault_ != nullptr &&
      fault_->fail_alloc(owner, bytes, bytes_allocated())) {
    throw std::bad_alloc();
  }
}

}  // namespace hupc::gas
