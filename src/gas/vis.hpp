// Non-contiguous transfer descriptors (VIS; DESIGN.md §15).
//
// The UPC++-style vector/indexed/strided shapes for one-sided bulk data
// movement: a gas::StridedSpec describes a rectangular footprint (up to
// 3-D, extents x strides in ELEMENTS of the transfer's value type), a
// gas::IndexedSpec an arbitrary list of (offset, length) element regions.
// gas::Thread::copy_strided / copy_irregular take one spec per side and
// lower the pair into a flat list of byte-level net::Region runs — the
// iovec-style pairing below — which the runtime then moves with ONE
// net::Transfer whose footprint field (`regions`) tells the network model
// to charge one injection per packed message instead of one per element.
//
// Contiguous copy() is the 1-region special case of the same route, so
// there is a single lowering path into net::Transfer for every bulk shape.
//
// Validation throws std::invalid_argument (the CLI/tests pin the cases):
// dims outside [1, 3], element-count mismatch between the two sides, and
// PUT destinations whose regions overlap (last-writer would be pairing-
// order-defined, which no caller should depend on). Zero-length regions
// are legal everywhere and simply drop out of the lowering; a stride equal
// to the extent makes adjacent regions contiguous and the pairing merges
// them back into one run.
#pragma once

#include <cstddef>
#include <vector>

#include "net/network.hpp"

namespace hupc::gas {

/// Rectangular strided footprint in ELEMENTS: `extents[0]` contiguous
/// elements per innermost run, repeated `extents[1]` times `strides[1]`
/// elements apart, the whole plane repeated `extents[2]` times `strides[2]`
/// elements apart. dims selects how many levels are meaningful (1..3).
struct StridedSpec {
  int dims = 1;
  std::size_t extents[3] = {0, 1, 1};
  std::size_t strides[3] = {0, 0, 0};  // strides[0] unused (runs are dense)

  /// A dense run of `n` elements (what plain copy() lowers to).
  [[nodiscard]] static StridedSpec contiguous(std::size_t n) {
    StridedSpec s;
    s.dims = 1;
    s.extents[0] = n;
    return s;
  }
  /// `nrows` runs of `row_len` elements, `row_stride` elements apart —
  /// a matrix column block, an FT transpose target, a column halo.
  [[nodiscard]] static StridedSpec rows(std::size_t row_len, std::size_t nrows,
                                        std::size_t row_stride) {
    StridedSpec s;
    s.dims = 2;
    s.extents[0] = row_len;
    s.extents[1] = nrows;
    s.strides[1] = row_stride;
    return s;
  }

  /// Innermost runs the spec describes (zero extents count as zero).
  [[nodiscard]] std::size_t regions() const noexcept {
    std::size_t r = 1;
    if (dims >= 2) r *= extents[1];
    if (dims >= 3) r *= extents[2];
    return extents[0] == 0 ? 0 : r;
  }
  /// Total elements the spec covers.
  [[nodiscard]] std::size_t elems() const noexcept {
    std::size_t e = extents[0];
    if (dims >= 2) e *= extents[1];
    if (dims >= 3) e *= extents[2];
    return e;
  }
};

/// Arbitrary (offset, length) element regions, in spec order. Sources may
/// list overlapping or repeated regions (a gather may read an element
/// twice); PUT destinations must be disjoint.
struct IndexedSpec {
  struct Region {
    std::size_t offset = 0;  // elements from the transfer base
    std::size_t len = 0;     // elements
  };
  std::vector<Region> regions;

  [[nodiscard]] std::size_t elems() const noexcept {
    std::size_t e = 0;
    for (const Region& r : regions) e += r.len;
    return e;
  }
};

namespace vis {

/// One contiguous run in elements (pre-pairing, single-sided).
struct Run {
  std::size_t offset = 0;
  std::size_t len = 0;
};

/// Flatten a spec into innermost runs, in footprint order. Throws
/// std::invalid_argument when dims is outside [1, 3]. Zero-length runs
/// are dropped.
[[nodiscard]] std::vector<Run> runs_of(const StridedSpec& spec);
[[nodiscard]] std::vector<Run> runs_of(const IndexedSpec& spec);

/// Throw std::invalid_argument when the spec's regions overlap (PUT
/// destination validation; `what` names the argument in the message).
void require_disjoint(const StridedSpec& spec, const char* what);
void require_disjoint(const IndexedSpec& spec, const char* what);

/// Pair destination and source runs iovec-style into byte-level regions,
/// splitting runs where the two sides' boundaries disagree and merging
/// back runs that turn out adjacent on both sides (stride == extent).
/// Element offsets/lengths are scaled by `elem_size`. Throws
/// std::invalid_argument when the sides cover different element counts.
[[nodiscard]] std::vector<net::Region> pair_runs(const std::vector<Run>& dst,
                                                 const std::vector<Run>& src,
                                                 std::size_t elem_size);

/// Summed payload of a lowered region list, in bytes.
[[nodiscard]] std::size_t payload_bytes(const std::vector<net::Region>& regions);

/// The full lowering for one transfer: validate the destination side
/// (regions of a write target must be disjoint), flatten both sides and
/// pair them. Works for any spec combination (StridedSpec / IndexedSpec on
/// either side) — gas::Thread's copy_strided / copy_irregular overloads
/// all funnel through this.
template <class DstSpec, class SrcSpec>
[[nodiscard]] std::vector<net::Region> lower(const DstSpec& dst,
                                             const SrcSpec& src,
                                             std::size_t elem_size) {
  require_disjoint(dst, "destination");
  return pair_runs(runs_of(dst), runs_of(src), elem_size);
}

}  // namespace vis

}  // namespace hupc::gas
