// Multidimensional blocking: `shared [BR][BC] T a[R][C]` — the tiled
// distribution of Barton et al. ("Multidimensional blocking in UPC") that
// the thesis conclusion names as a natural companion to hierarchical
// parallelism. Tiles of BR x BC elements are dealt round-robin (row-major
// tile order) over threads; each thread stores its tiles contiguously, so
// a tile is always privatizable as one dense block — the unit at which
// thread groups exchange work.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "gas/global_ptr.hpp"

namespace hupc::gas {

template <class T>
class SharedArray2D {
 public:
  SharedArray2D() = default;

  /// `slices[r]`: base of thread r's tile storage, `tiles_of(r)` tiles of
  /// BR*BC elements each (edge tiles padded to full size).
  SharedArray2D(std::size_t rows, std::size_t cols, std::size_t block_rows,
                std::size_t block_cols, std::vector<T*> slices)
      : rows_(rows),
        cols_(cols),
        brows_(block_rows),
        bcols_(block_cols),
        slices_(std::move(slices)) {
    assert(brows_ >= 1 && bcols_ >= 1);
    assert(!slices_.empty());
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t block_rows() const noexcept { return brows_; }
  [[nodiscard]] std::size_t block_cols() const noexcept { return bcols_; }
  [[nodiscard]] int threads() const noexcept {
    return static_cast<int>(slices_.size());
  }
  [[nodiscard]] std::size_t tile_rows() const noexcept {
    return (rows_ + brows_ - 1) / brows_;
  }
  [[nodiscard]] std::size_t tile_cols() const noexcept {
    return (cols_ + bcols_ - 1) / bcols_;
  }
  [[nodiscard]] std::size_t tile_elems() const noexcept {
    return brows_ * bcols_;
  }

  /// Linear id of the tile containing (i, j); row-major tile order.
  [[nodiscard]] std::size_t tile_id(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return (i / brows_) * tile_cols() + (j / bcols_);
  }

  [[nodiscard]] int owner_of(std::size_t i, std::size_t j) const {
    return static_cast<int>(tile_id(i, j) % slices_.size());
  }

  /// Tiles thread r holds (ceil distribution).
  [[nodiscard]] std::size_t tiles_of(int r) const {
    const std::size_t total = tile_rows() * tile_cols();
    const auto t = static_cast<std::size_t>(threads());
    return total / t + (static_cast<std::size_t>(r) < total % t ? 1 : 0);
  }

  /// Pointer-to-shared for element (i, j).
  [[nodiscard]] GlobalPtr<T> at(std::size_t i, std::size_t j) const {
    const std::size_t id = tile_id(i, j);
    const int owner = static_cast<int>(id % slices_.size());
    const std::size_t slot = id / slices_.size();
    const std::size_t offset =
        slot * tile_elems() + (i % brows_) * bcols_ + (j % bcols_);
    return GlobalPtr<T>{owner, slices_[static_cast<std::size_t>(owner)] + offset};
  }

  /// Base of the dense tile containing (i, j) — the privatization unit.
  [[nodiscard]] GlobalPtr<T> tile_base(std::size_t i, std::size_t j) const {
    const std::size_t id = tile_id(i, j);
    const int owner = static_cast<int>(id % slices_.size());
    const std::size_t slot = id / slices_.size();
    return GlobalPtr<T>{owner,
                        slices_[static_cast<std::size_t>(owner)] + slot * tile_elems()};
  }

  [[nodiscard]] T* slice(int r) const noexcept {
    return slices_[static_cast<std::size_t>(r)];
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::size_t brows_ = 1, bcols_ = 1;
  std::vector<T*> slices_;
};

}  // namespace hupc::gas
