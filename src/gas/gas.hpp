// Umbrella header for the PGAS runtime.
#pragma once

#include "gas/collectives.hpp"   // IWYU pragma: export
#include "gas/forall.hpp"        // IWYU pragma: export
#include "gas/global_ptr.hpp"    // IWYU pragma: export
#include "gas/global_ptr2d.hpp"  // IWYU pragma: export
#include "gas/heap.hpp"          // IWYU pragma: export
#include "gas/lock.hpp"          // IWYU pragma: export
#include "gas/runtime.hpp"       // IWYU pragma: export
#include "gas/vis.hpp"           // IWYU pragma: export
