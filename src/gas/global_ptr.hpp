// Global pointers and distributed shared arrays.
//
// The simulated partitioned global address space is backed by real host
// memory: every UPC thread owns a segment, and a GlobalPtr<T> carries
// (owner thread, raw host address). Data movement through the runtime both
// really copies bytes (so results are verifiable) and charges virtual time.
//
// SharedArray<T> mirrors `shared [B] T a[N]` — round-robin distribution of
// B-element blocks over threads, with per-thread slices living in that
// thread's segment.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace hupc::gas {

/// Pointer-to-shared: owner rank + host address within the owner's segment.
template <class T>
struct GlobalPtr {
  int owner = -1;
  T* raw = nullptr;

  [[nodiscard]] bool valid() const noexcept { return raw != nullptr; }

  /// Pointer arithmetic within one thread's contiguous slice. (Crossing
  /// block boundaries of a SharedArray is done through SharedArray::at,
  /// which recomputes the owner — matching UPC's phase-aware arithmetic.)
  [[nodiscard]] GlobalPtr operator+(std::ptrdiff_t n) const noexcept {
    return GlobalPtr{owner, raw + n};
  }

  friend bool operator==(const GlobalPtr&, const GlobalPtr&) = default;
};

template <class T>
[[nodiscard]] GlobalPtr<const T> to_const(GlobalPtr<T> p) noexcept {
  return GlobalPtr<const T>{p.owner, p.raw};
}

/// Distribution descriptor + storage handles for a `shared [B] T a[N]`.
/// The storage itself is allocated from the runtime's per-thread segments;
/// this class only performs the UPC layout arithmetic.
template <class T>
class SharedArray {
 public:
  SharedArray() = default;

  /// `slices[r]` must point to thread r's slice of ceil-distributed blocks.
  SharedArray(std::size_t size, std::size_t block, std::vector<T*> slices)
      : size_(size), block_(block), slices_(std::move(slices)) {
    assert(block_ >= 1);
    assert(!slices_.empty());
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t block() const noexcept { return block_; }
  [[nodiscard]] int threads() const noexcept {
    return static_cast<int>(slices_.size());
  }

  /// Owner thread of element i: block-cyclic layout.
  [[nodiscard]] int owner_of(std::size_t i) const noexcept {
    return static_cast<int>((i / block_) % slices_.size());
  }

  /// Elements thread r holds (ceil distribution over whole blocks).
  [[nodiscard]] std::size_t local_size(int r) const noexcept {
    const std::size_t threads = slices_.size();
    const std::size_t total_blocks = (size_ + block_ - 1) / block_;
    const std::size_t ur = static_cast<std::size_t>(r);
    const std::size_t full = total_blocks / threads;
    const std::size_t extra = total_blocks % threads;
    std::size_t blocks = full + (ur < extra ? 1 : 0);
    std::size_t elems = blocks * block_;
    // The globally-last block may be partial.
    if (total_blocks > 0 && ur == (total_blocks - 1) % threads) {
      const std::size_t tail = size_ % block_;
      if (tail != 0) elems -= block_ - tail;
    }
    return elems;
  }

  /// Pointer-to-shared for element i.
  [[nodiscard]] GlobalPtr<T> at(std::size_t i) const noexcept {
    assert(i < size_);
    const std::size_t threads = slices_.size();
    const int owner = owner_of(i);
    const std::size_t local_block = i / (block_ * threads);
    const std::size_t offset = local_block * block_ + i % block_;
    return GlobalPtr<T>{owner, slices_[static_cast<std::size_t>(owner)] + offset};
  }

  /// Raw base of thread r's slice (the owner may use it directly; others
  /// must privatize via Thread::cast or communicate).
  [[nodiscard]] T* slice(int r) const noexcept {
    return slices_[static_cast<std::size_t>(r)];
  }

 private:
  std::size_t size_ = 0;
  std::size_t block_ = 1;
  std::vector<T*> slices_;
};

}  // namespace hupc::gas
