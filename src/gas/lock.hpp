// upc_lock_t analogue: a global lock with affinity to one rank.
//
// Acquisition cost depends on where the caller sits relative to the lock's
// home: a supernode-local acquire is an atomic op (~lock_local_s); a remote
// acquire costs a small-message network round trip. This asymmetry is what
// makes the UTS local-stealing optimization pay off (thesis §3.3.2).
#pragma once

#include "gas/runtime.hpp"
#include "sim/sim.hpp"

namespace hupc::gas {

class GlobalLock {
 public:
  GlobalLock(Runtime& rt, int affinity_rank)
      : rt_(&rt), home_(affinity_rank), mutex_(rt.engine()) {}

  [[nodiscard]] int home() const noexcept { return home_; }

  /// upc_lock: pay the access cost, then queue FIFO on the lock. Taking a
  /// lock is a coherence point for the caller's read cache — lock-protected
  /// data another rank just published must be re-fetched, not served from
  /// stale lines.
  [[nodiscard]] sim::Task<void> acquire(Thread& self) {
    HUPC_TRACE_SCOPE(rt_->tracer(), trace::Category::gas, "lock", self.rank(),
                     static_cast<std::uint64_t>(home_));
    HUPC_TRACE_COUNT(rt_->tracer(), "gas.lock.acquire", self.rank());
    co_await access_cost(self);
    co_await mutex_.lock();
    self.invalidate_read_cache();
  }

  /// upc_lock_attempt: non-blocking; pays the access cost either way and
  /// fences the read cache only on success.
  [[nodiscard]] sim::Task<bool> try_acquire(Thread& self) {
    HUPC_TRACE_COUNT(rt_->tracer(), "gas.lock.attempt", self.rank());
    co_await access_cost(self);
    const bool got = mutex_.try_lock();
    if (got) self.invalidate_read_cache();
    co_return got;
  }

  /// upc_unlock. The release message to a remote home is fire-and-forget.
  [[nodiscard]] sim::Task<void> release(Thread& self) {
    HUPC_TRACE_COUNT(rt_->tracer(), "gas.lock.release", self.rank());
    co_await sim::delay(self.runtime().engine(),
                        sim::from_seconds(rt_->config().costs.lock_local_s));
    mutex_.unlock();
  }

 private:
  [[nodiscard]] sim::Task<void> access_cost(Thread& self) {
    if (rt_->same_supernode(self.rank(), home_)) {
      co_await sim::delay(rt_->engine(),
                          sim::from_seconds(rt_->config().costs.lock_local_s));
    } else if (rt_->node_of(self.rank()) == rt_->node_of(home_)) {
      co_await sim::delay(
          rt_->engine(),
          sim::from_seconds(rt_->config().costs.loopback_overhead_s));
    } else {
      // Remote atomic: request + acknowledgement round trip.
      const auto& c = rt_->config().conduit;
      co_await sim::delay(
          rt_->engine(),
          sim::from_seconds(2.0 * (c.send_overhead_s + c.latency_s +
                                   c.recv_overhead_s)));
    }
  }

  Runtime* rt_;
  int home_;
  sim::Mutex mutex_;
};

}  // namespace hupc::gas
