// The simulated UPC runtime: SPMD threads over a partitioned global address
// space, with the Berkeley-UPC-style backend split the thesis studies:
//
//   Backend::processes — each UPC thread is its own process; intra-node
//     shared memory only exists when PSHM cross-maps segments; each rank
//     owns a network connection (ConnectionMode::per_process).
//   Backend::pthreads  — all ranks of a node live in one process; intra-node
//     accesses are plain loads/stores and the node's ranks share a single
//     network connection (ConnectionMode::per_node).
//
// Every data-movement call really copies host memory *and* charges virtual
// time through the mem/net cost models. Fine-grained shared accesses pay
// the shared-pointer translation overhead unless privatized (Thread::cast),
// reproducing the castability extension of thesis §3.2/§3.3.1.
//
// Data movement funnels through two unified entry points:
//   Thread::copy / copy_async  — bulk transfers over every shape
//     (private<->shared, shared<->shared); the upc_mem{put,get,cpy} names
//     survive as thin wrappers; copy_strided / copy_irregular take VIS
//     descriptors (gas::StridedSpec / gas::IndexedSpec) and move a whole
//     non-contiguous footprint as ONE packed message (DESIGN.md §15);
//   fine-grained get/put/AMOs  — one shared-API round trip each, UNLESS a
//     coalescing epoch is open (Thread::begin_coalesce/end_coalesce or the
//     CoalesceEpoch RAII guard), in which case remote accesses aggregate
//     into per-destination buffers flushed as one message per destination
//     (comm::Coalescer; Berkeley-UPC/GASNet-VIS-style software
//     aggregation) — or a read-cache epoch is open (begin_read_cache /
//     CachedEpoch), in which case remote GETs are served through a
//     line-granularity software cache (comm::ReadCache): one round trip
//     fetches an aligned line, later gets to it cost local access only.
//     Coherence is epoch-scoped (fences, locks, AMOs and this rank's own
//     puts invalidate; the coalescer's deferred-put buffer is consulted
//     first so read-your-writes holds through the composition). With no
//     epoch open every path is bit-identical to a build without either
//     engine.
#pragma once

#include <cassert>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "async/future.hpp"
#include "comm/coalescer.hpp"
#include "comm/read_cache.hpp"
#include "fault/hooks.hpp"
#include "gas/global_ptr.hpp"
#include "gas/heap.hpp"
#include "gas/vis.hpp"
#include "mem/memory_system.hpp"
#include "net/conduit.hpp"
#include "net/network.hpp"
#include "sim/sim.hpp"
#include "topo/machine.hpp"
#include "topo/placement.hpp"
#include "trace/trace.hpp"

namespace hupc::gas {

enum class Backend { processes, pthreads };

/// Const-normalization for shared-source copy overloads: one template
/// covers GlobalPtr<T> and GlobalPtr<const T> instead of the duplicate
/// overload pairs the copy() surface used to ship per shape.
template <class U, class T>
concept SourceElement = std::same_as<std::remove_const_t<U>, T>;

/// Software-cost constants (calibration targets in DESIGN.md §6).
struct CostParams {
  /// Shared-pointer translation per fine-grained access (runtime call +
  /// address arithmetic; fitted to Table 3.1 baseline = 3.2 GB/s).
  double ptr_overhead_s = 52e-9;
  /// Per-call software cost of a supernode (PSHM/pthreads) bulk copy.
  double shm_copy_overhead_s = 0.25e-6;
  /// Intra-node path when segments are NOT cross-mapped (process backend
  /// without PSHM): the GASNet loopback channel. Bulk puts fragment into
  /// ~4 KiB AM mediums, each paying a handler dispatch (~25 us), so the
  /// effective rate is ~0.15 GB/s — the overhead PSHM exists to remove
  /// (fitted to Fig 3.4a's 20%+ improvements on a 4-node exchange).
  double loopback_bw = 0.15e9;
  double loopback_overhead_s = 1.2e-6;
  /// Dissemination-barrier per-round cost inside a node.
  double barrier_hop_s = 0.3e-6;
  /// Local lock acquire/release software cost.
  double lock_local_s = 0.15e-6;
  /// Modeled per-region metadata header of a packed VIS message (address +
  /// length per packed region, like the coalescer's per-op headers).
  /// Charged only when a descriptor lowers to MORE than one region — a
  /// single-region transfer is a plain RMA and stays bit-identical to the
  /// pre-descriptor contiguous copy() path.
  double vis_region_header_bytes = 8.0;
};

struct Config {
  topo::MachineSpec machine;
  int threads = 0;  // THREADS; must be >= 1
  Backend backend = Backend::processes;
  bool pshm = true;
  net::ConduitSpec conduit = net::ib_qdr();
  topo::Placement placement = topo::Placement::cyclic_socket;
  CostParams costs{};
  /// Effective NIC efficiency. <= 0 selects the model: independently
  /// polling connection endpoints degrade the achievable NIC bandwidth,
  ///   eff = 1 / (1 + 0.025 * max(0, connections_per_node - 1)),
  /// the "contention in the lower network API level" of thesis §4.3.1.
  /// A tuned communication library that manages the node's endpoints
  /// cooperatively (the MPI baseline) overrides this with 1.0.
  double nic_efficiency = 0.0;
  /// Optional structured tracer (non-owning). When set, the Runtime wires
  /// it to the engine's virtual clock and the rank->node topology, and all
  /// instrumented layers (engine, gas, net, sched, core) record into it.
  /// Null disables tracing at runtime; building with HUPC_TRACE=0 compiles
  /// the instrumentation out entirely.
  trace::Tracer* tracer = nullptr;
};

/// Validate `config`, throwing std::invalid_argument with a precise message
/// on nonsense (threads < 1, degenerate machine shape, negative cost
/// constants) instead of letting an assert fire deep inside the runtime.
/// Returns the config unchanged on success.
[[nodiscard]] Config validated(Config config);

class Runtime;

/// Per-rank SPMD context handed to kernels: MYTHREAD-style identity plus
/// the UPC operation set. All operations are coroutines charging virtual
/// time; `co_await` each one.
class Thread {
 public:
  Thread(Runtime& rt, int rank, topo::HwLoc loc)
      : rt_(&rt), rank_(rank), loc_(loc) {}

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  ~Thread() {
    // An epoch abandoned mid-kernel (exception unwind) still applies its
    // deferred puts so host memory stays verifiable.
    if (coalescer_ != nullptr) coalescer_->abandon();
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int threads() const noexcept;
  [[nodiscard]] topo::HwLoc loc() const noexcept { return loc_; }
  [[nodiscard]] int node() const noexcept { return loc_.node; }
  [[nodiscard]] Runtime& runtime() noexcept { return *rt_; }

  // --- synchronization -------------------------------------------------
  /// Full barrier. Fence: flushes any open coalescing epoch first, so
  /// buffered puts are globally visible once every rank passes.
  [[nodiscard]] sim::Task<void> barrier();
  /// Split-phase barrier: capture the token from notify(), overlap work,
  /// then co_await wait(token). notify() cannot flush (it never blocks);
  /// with an epoch open, flush explicitly or end the epoch first. wait()
  /// fences like barrier().
  [[nodiscard]] std::uint64_t notify();
  [[nodiscard]] sim::Task<void> wait(std::uint64_t token);

  // --- local compute / memory charges ----------------------------------
  [[nodiscard]] sim::Task<void> compute(double single_thread_seconds);
  [[nodiscard]] sim::Task<void> compute_flops(double flops, double efficiency);
  /// Bulk memory traffic against this thread's own socket.
  [[nodiscard]] sim::Task<void> stream_local(double bytes);
  /// Bulk memory traffic against the socket that homes `home_rank`'s data.
  [[nodiscard]] sim::Task<void> stream_from(int home_rank, double bytes);

  /// Analytic model of a fine-grained loop making `count` shared accesses
  /// of `bytes_each` homed at `home_rank`: pays the pointer-translation
  /// overhead per access unless `privatized` (cast pointers, thesis §3.3.1).
  [[nodiscard]] sim::Task<void> shared_loop(int home_rank, std::uint64_t count,
                                            double bytes_each,
                                            bool privatized = false);

  // --- message coalescing epochs (comm::Coalescer) ----------------------
  /// Open a coalescing epoch: until end_coalesce(), fine-grained accesses
  /// to ranks on OTHER nodes append to bounded per-destination buffers and
  /// flush as one aggregated message per destination (on capacity, on a
  /// conflicting read, at barriers/bulk copies, and at epoch end). Puts
  /// are deferred until flush; gets/AMOs apply immediately and settle
  /// their network cost at flush. Epochs do not nest.
  void begin_coalesce(const comm::Params& params = {});
  /// Flush everything and close the epoch.
  [[nodiscard]] sim::Task<void> end_coalesce();
  /// Explicit fence: flush all buffers, keep the epoch open.
  [[nodiscard]] sim::Task<void> coalesce_flush();
  /// Close the epoch applying buffered puts WITHOUT charging their flush
  /// (the CoalesceEpoch guard's unwind path — prefer end_coalesce()).
  void abandon_coalesce() noexcept;
  [[nodiscard]] bool coalescing() const noexcept { return coalescing_; }
  /// Lifetime coalescing statistics (null before the first epoch).
  [[nodiscard]] const comm::Stats* coalesce_stats() const noexcept {
    return coalescer_ == nullptr ? nullptr : &coalescer_->stats();
  }

  // --- read-cache epochs (comm::ReadCache) -------------------------------
  /// Open a read-cache epoch: until end_read_cache(), fine-grained GETs of
  /// data homed on OTHER nodes are served through a set-associative line
  /// cache — a miss fetches one aligned line in one round trip, later gets
  /// to that line cost a local access. The cache holds tags only (host
  /// memory stays the single value ground truth), so it shifts the MODELED
  /// cost schedule and nothing else. Coherence: barriers/wait() and lock
  /// acquires drop everything; AMOs and this rank's own puts/bulk copies
  /// drop the covered lines; inside a coalescing epoch the deferred-put
  /// buffer is consulted (and conflict-flushed) before a line is served.
  /// Epochs do not nest.
  void begin_read_cache(const comm::CacheParams& params = {});
  /// Close the epoch, dropping every line. Unlike end_coalesce() there is
  /// nothing deferred to settle, so closing is synchronous and free; a
  /// no-op when no epoch is open.
  void end_read_cache() noexcept;
  /// Explicit coherence point: drop every line, keep the epoch open.
  void invalidate_read_cache() noexcept;
  [[nodiscard]] bool read_caching() const noexcept { return caching_; }
  /// Lifetime read-cache statistics (null before the first epoch).
  [[nodiscard]] const comm::CacheStats* read_cache_stats() const noexcept {
    return read_cache_ == nullptr ? nullptr : &read_cache_->stats();
  }

  // --- fine-grained element access (really reads/writes memory) --------
  template <class T>
  [[nodiscard]] sim::Task<T> get(GlobalPtr<const T> src) {
    co_await read_access(src.owner, src.raw, sizeof(T));
    co_return *src.raw;
  }
  template <class T>
  [[nodiscard]] sim::Task<T> get(GlobalPtr<T> src) {
    co_return co_await get(to_const(src));
  }
  template <class T>
  [[nodiscard]] sim::Task<void> put(GlobalPtr<T> dst, T value) {
    // Read-your-writes through the cache: this rank's own store drops any
    // line covering the target, so a later get re-fetches it.
    if (caching_) note_shared_store(dst.owner, dst.raw, sizeof(T));
    if (coalescing_ && remote_node(dst.owner)) {
      co_await coalesced_put(dst.owner, dst.raw, &value, sizeof(T));
      co_return;
    }
    co_await element_access(dst.owner, sizeof(T));
    *dst.raw = value;
  }

  // --- atomics (the bupc AMO extensions) --------------------------------
  /// Atomic fetch-and-add on a shared integer; costs one shared access
  /// (remote AMOs are a network round trip, like locks) — or, inside a
  /// coalescing epoch, joins the destination's aggregated message (the
  /// value applies immediately; read-your-writes is preserved by the
  /// conflict flush). AMOs never serve from the read cache: a cached
  /// epoch's rmw_access bypasses it and drops the covered line.
  template <class T>
  [[nodiscard]] sim::Task<T> fetch_add(GlobalPtr<T> target, T delta) {
    co_await rmw_access(target.owner, target.raw, sizeof(T));
    const T old = *target.raw;
    *target.raw = old + delta;
    co_return old;
  }
  template <class T>
  [[nodiscard]] sim::Task<T> fetch_xor(GlobalPtr<T> target, T mask) {
    co_await rmw_access(target.owner, target.raw, sizeof(T));
    const T old = *target.raw;
    *target.raw = old ^ mask;
    co_return old;
  }
  /// Atomic compare-and-swap; returns the previous value.
  template <class T>
  [[nodiscard]] sim::Task<T> compare_swap(GlobalPtr<T> target, T expected,
                                          T desired) {
    co_await rmw_access(target.owner, target.raw, sizeof(T));
    const T old = *target.raw;
    if (old == expected) *target.raw = desired;
    co_return old;
  }

  // --- unified bulk data movement (upc_mem{put,get,cpy} analogues) ------
  /// One overload set covers every bulk shape; inside a coalescing epoch
  /// the destination's buffer is fenced first, keeping bulk transfers
  /// ordered after earlier buffered puts to the same node. Shared sources
  /// const-normalize through a single SourceElement template per shape —
  /// GlobalPtr<T> and GlobalPtr<const T> take the same route — and every
  /// shape bottoms out in the one lower_transfer() lowering into
  /// net::Transfer that the VIS descriptors below also use.
  /// Private -> shared (upc_memput).
  template <class T>
  [[nodiscard]] sim::Task<void> copy(GlobalPtr<T> dst, const T* src,
                                     std::size_t count) {
    co_await copy_raw(dst.owner, dst.raw, src, count * sizeof(T));
  }
  /// Shared -> private (upc_memget).
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] sim::Task<void> copy(T* dst, GlobalPtr<U> src,
                                     std::size_t count) {
    co_await copy_raw(src.owner, dst, src.raw, count * sizeof(T));
  }
  /// Shared -> shared (upc_memcpy): charged against the remote party.
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] sim::Task<void> copy(GlobalPtr<T> dst, GlobalPtr<U> src,
                                     std::size_t count) {
    const int peer = dst.owner == rank_ ? src.owner : dst.owner;
    co_await copy_raw(peer, dst.raw, src.raw, count * sizeof(T));
  }

  // Non-blocking forms returning chainable futures (upc_mem*_async /
  // waitsync; `co_await fut.wait()`, `fut.then(...)`, async::when_all).
  // Completion is promise-based: the future resolves when the transfer's
  // modeled work is done, after any installed completion-fault delay
  // (fault::CompletionHook) — so fault plans can storm completions without
  // ever reordering data movement against it.
  //
  // Issue-time coherence (the ordering hazard DESIGN.md §13 documents):
  // a shared DESTINATION is this rank's own put in program order from the
  // moment of issue, so inside a read-cache epoch the covered lines drop
  // HERE, synchronously — not when the spawned copy coroutine happens to
  // run. A cached get between issue and completion therefore re-fetches
  // instead of being served across an in-flight async put.
  template <class T>
  [[nodiscard]] async::future<> copy_async(GlobalPtr<T> dst, const T* src,
                                           std::size_t count) {
    if (caching_) note_shared_store(dst.owner, dst.raw, count * sizeof(T));
    return launch_async(copy(dst, src, count));
  }
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] async::future<> copy_async(T* dst, GlobalPtr<U> src,
                                           std::size_t count) {
    return launch_async(copy(dst, src, count));
  }
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] async::future<> copy_async(GlobalPtr<T> dst, GlobalPtr<U> src,
                                           std::size_t count) {
    if (caching_) note_shared_store(dst.owner, dst.raw, count * sizeof(T));
    return launch_async(copy(dst, src, count));
  }

  // --- non-contiguous data movement (VIS: upc_mem*_strided / _ilist
  // analogues; descriptors in gas/vis.hpp, lowering rules DESIGN.md §15) -
  /// Every form lowers its descriptors EAGERLY at the call site into a
  /// packed region list (validation — overlapping destination regions,
  /// element-count mismatch, bad dims — throws std::invalid_argument here,
  /// not inside a spawned coroutine) and funnels through one non-template
  /// route (copy_vis): the regions move as ONE message whose footprint
  /// (region count, payload vs gross bytes) the network accounts and the
  /// trace exposes. Inside a coalescing epoch a remote strided/indexed PUT
  /// packs region-by-region into the destination's epoch buffer instead;
  /// inside a read-cache epoch a remote GET prefetches every line its
  /// footprint touches with one packed fill, and a packed PUT invalidates
  /// exactly the lines its regions cover. A descriptor lowering to a
  /// single region (1-D, or stride == extent) is bit-identical to the
  /// contiguous copy() of the same bytes.
  /// Strided put, contiguous private source (upc_memput_fstrided).
  template <class T>
  [[nodiscard]] sim::Task<void> copy_strided(GlobalPtr<T> dst,
                                             const StridedSpec& dspec,
                                             const T* src) {
    return copy_strided(dst, dspec, src,
                        StridedSpec::contiguous(dspec.elems()));
  }
  /// Strided put, both sides described (upc_memput_strided).
  template <class T>
  [[nodiscard]] sim::Task<void> copy_strided(GlobalPtr<T> dst,
                                             const StridedSpec& dspec,
                                             const T* src,
                                             const StridedSpec& sspec) {
    return copy_vis(dst.owner, dst.raw, -1, src,
                    vis::lower(dspec, sspec, sizeof(T)));
  }
  /// Strided get into a contiguous private buffer (upc_memget_fstrided).
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] sim::Task<void> copy_strided(T* dst, GlobalPtr<U> src,
                                             const StridedSpec& sspec) {
    return copy_strided(dst, StridedSpec::contiguous(sspec.elems()), src,
                        sspec);
  }
  /// Strided get, both sides described (upc_memget_strided).
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] sim::Task<void> copy_strided(T* dst, const StridedSpec& dspec,
                                             GlobalPtr<U> src,
                                             const StridedSpec& sspec) {
    return copy_vis(-1, dst, src.owner, src.raw,
                    vis::lower(dspec, sspec, sizeof(T)));
  }
  /// Strided shared -> shared (upc_memcpy_strided).
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] sim::Task<void> copy_strided(GlobalPtr<T> dst,
                                             const StridedSpec& dspec,
                                             GlobalPtr<U> src,
                                             const StridedSpec& sspec) {
    return copy_vis(dst.owner, dst.raw, src.owner, src.raw,
                    vis::lower(dspec, sspec, sizeof(T)));
  }
  /// Indexed scatter: contiguous private source -> shared region list
  /// (upc_memput_ilist). Overlapping destination regions are rejected.
  template <class T>
  [[nodiscard]] sim::Task<void> copy_irregular(GlobalPtr<T> dst,
                                               const IndexedSpec& dspec,
                                               const T* src) {
    return copy_vis(
        dst.owner, dst.raw, -1, src,
        vis::lower(dspec, StridedSpec::contiguous(dspec.elems()), sizeof(T)));
  }
  /// Indexed gather: shared region list -> contiguous private buffer
  /// (upc_memget_ilist).
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] sim::Task<void> copy_irregular(T* dst, GlobalPtr<U> src,
                                               const IndexedSpec& sspec) {
    return copy_vis(
        -1, dst, src.owner, src.raw,
        vis::lower(StridedSpec::contiguous(sspec.elems()), sspec, sizeof(T)));
  }

  // Non-blocking VIS forms. Same eager lowering (validation throws at
  // issue time); a shared DESTINATION drops its covered cache lines at
  // issue, region by region — the copy_async issue-time coherence
  // contract extended to packed footprints.
  template <class T>
  [[nodiscard]] async::future<> copy_strided_async(GlobalPtr<T> dst,
                                                   const StridedSpec& dspec,
                                                   const T* src) {
    return copy_strided_async(dst, dspec, src,
                              StridedSpec::contiguous(dspec.elems()));
  }
  template <class T>
  [[nodiscard]] async::future<> copy_strided_async(GlobalPtr<T> dst,
                                                   const StridedSpec& dspec,
                                                   const T* src,
                                                   const StridedSpec& sspec) {
    auto regions = vis::lower(dspec, sspec, sizeof(T));
    if (caching_) note_vis_store(dst.owner, dst.raw, regions);
    return launch_async(
        copy_vis(dst.owner, dst.raw, -1, src, std::move(regions)));
  }
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] async::future<> copy_strided_async(T* dst, GlobalPtr<U> src,
                                                   const StridedSpec& sspec) {
    return launch_async(copy_vis(
        -1, dst, src.owner, src.raw,
        vis::lower(StridedSpec::contiguous(sspec.elems()), sspec, sizeof(T))));
  }
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] async::future<> copy_strided_async(GlobalPtr<T> dst,
                                                   const StridedSpec& dspec,
                                                   GlobalPtr<U> src,
                                                   const StridedSpec& sspec) {
    auto regions = vis::lower(dspec, sspec, sizeof(T));
    if (caching_) note_vis_store(dst.owner, dst.raw, regions);
    return launch_async(
        copy_vis(dst.owner, dst.raw, src.owner, src.raw, std::move(regions)));
  }
  template <class T>
  [[nodiscard]] async::future<> copy_irregular_async(GlobalPtr<T> dst,
                                                     const IndexedSpec& dspec,
                                                     const T* src) {
    auto regions =
        vis::lower(dspec, StridedSpec::contiguous(dspec.elems()), sizeof(T));
    if (caching_) note_vis_store(dst.owner, dst.raw, regions);
    return launch_async(
        copy_vis(dst.owner, dst.raw, -1, src, std::move(regions)));
  }
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] async::future<> copy_irregular_async(T* dst, GlobalPtr<U> src,
                                                     const IndexedSpec& sspec) {
    return launch_async(copy_vis(
        -1, dst, src.owner, src.raw,
        vis::lower(StridedSpec::contiguous(sspec.elems()), sspec, sizeof(T))));
  }

  // --- legacy bulk-copy names (thin wrappers over copy/copy_async) ------
  template <class T>
  [[nodiscard]] sim::Task<void> memput(GlobalPtr<T> dst, const T* src,
                                       std::size_t count) {
    return copy(dst, src, count);
  }
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] sim::Task<void> memget(T* dst, GlobalPtr<U> src,
                                       std::size_t count) {
    return copy(dst, src, count);
  }
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] sim::Task<void> memcpy_shared(GlobalPtr<T> dst,
                                              GlobalPtr<U> src,
                                              std::size_t count) {
    return copy(dst, src, count);
  }
  template <class T>
  [[nodiscard]] async::future<> memput_async(GlobalPtr<T> dst, const T* src,
                                             std::size_t count) {
    return copy_async(dst, src, count);
  }
  template <class T, class U>
    requires SourceElement<U, T>
  [[nodiscard]] async::future<> memget_async(T* dst, GlobalPtr<U> src,
                                             std::size_t count) {
    return copy_async(dst, src, count);
  }

  // --- privatization (bupc_cast / castability extension) ---------------
  /// Returns the raw pointer when `p` is addressable with plain loads and
  /// stores from this thread (same supernode), else nullptr.
  template <class T>
  [[nodiscard]] T* cast(GlobalPtr<T> p) const {
    return castable(p.owner) ? p.raw : nullptr;
  }
  [[nodiscard]] bool castable(int owner) const;

  /// Cost of reading one word of another thread's shared metadata (e.g. a
  /// steal-stack's work counter) without moving payload. Coalescible: the
  /// probe has no conflicting address, so inside an epoch it joins the
  /// destination's aggregate unconditionally. The addressless form cannot
  /// be cached (no line to tag); pass the counter's shared address to make
  /// the probe cacheable inside a read-cache epoch.
  [[nodiscard]] sim::Task<void> shared_probe_cost(int owner) {
    return read_access(owner, nullptr, sizeof(std::uint64_t));
  }
  [[nodiscard]] sim::Task<void> shared_probe_cost(int owner,
                                                  const void* addr) {
    return read_access(owner, addr, sizeof(std::uint64_t));
  }

  // Plumbing shared with the sub-thread layer (hupc::core).
  [[nodiscard]] sim::Task<void> copy_raw(int peer, void* dst, const void* src,
                                         std::size_t bytes) {
    return copy_raw_from(loc_, peer, dst, src, bytes);
  }
  [[nodiscard]] sim::Task<void> copy_raw_from(topo::HwLoc at, int peer,
                                              void* dst, const void* src,
                                              std::size_t bytes);
  [[nodiscard]] sim::Future<> start_async(sim::Task<void> op);
  /// Run `op` as an engine process behind a chainable future: resolves
  /// (or carries op's exception) at completion, after any installed
  /// fault::CompletionHook delay. Counters: async.copy.issued at launch,
  /// async.copy.completed at resolution.
  [[nodiscard]] async::future<> launch_async(sim::Task<void> op);

 private:
  /// launch_async's driver coroutine (spawned as a root process).
  [[nodiscard]] sim::Task<void> complete_async(sim::Task<void> op,
                                               async::promise<> done);
  [[nodiscard]] sim::Task<void> element_access(int owner, std::size_t bytes);
  /// Read-class fine-grained access (get / metadata probe): serves from
  /// the read cache inside a cached epoch (consulting the coalescer's
  /// deferred puts first), else routes through the coalescer inside a
  /// coalescing epoch (conflict-flushing buffered puts overlapping
  /// [addr, addr+bytes)), else charges element_access.
  [[nodiscard]] sim::Task<void> read_access(int owner, const void* addr,
                                            std::size_t bytes);
  /// read_access with the cache branch skipped (AMOs; cache bypass).
  [[nodiscard]] sim::Task<void> uncached_read_access(int owner,
                                                     const void* addr,
                                                     std::size_t bytes);
  /// Read-modify-write access (AMOs): never cache-served; drops the
  /// covered line so a later get re-fetches the updated value.
  [[nodiscard]] sim::Task<void> rmw_access(int owner, const void* addr,
                                           std::size_t bytes);
  /// Deferred fine-grained put through the open epoch's coalescer.
  [[nodiscard]] sim::Task<void> coalesced_put(int owner, void* dst,
                                              const void* value,
                                              std::size_t bytes);
  /// Own-write coherence: drop any cached lines covering a store this
  /// rank is making (host-side, free; no-op outside a cached epoch).
  void note_shared_store(int owner, const void* addr,
                         std::size_t bytes) noexcept;
  /// note_shared_store region by region (packed VIS stores): only the
  /// lines a region covers drop, not the gaps the stride skips.
  void note_vis_store(int owner, const void* base,
                      const std::vector<net::Region>& regions) noexcept;
  /// The single route every VIS shape funnels into with its lowered region
  /// list. owner < 0 marks a private (local) side; region offsets are byte
  /// offsets from the respective base.
  [[nodiscard]] sim::Task<void> copy_vis(int dst_owner, void* dst_base,
                                         int src_owner, const void* src_base,
                                         std::vector<net::Region> regions);
  /// The one lowering into net::Transfer shared by contiguous copies and
  /// packed VIS messages: charge `payload` bytes moving between this
  /// thread and `peer` over the shm / loopback / rma path the topology
  /// selects. `regions` > 1 marks a packed message: the rma gains
  /// per-region header bytes and the vis footprint accounting; 1 is a
  /// plain transfer, bit-identical to the pre-VIS path.
  [[nodiscard]] sim::Task<void> lower_transfer(topo::HwLoc at, int peer,
                                               double payload,
                                               std::uint64_t regions);
  [[nodiscard]] bool remote_node(int owner) const;

  Runtime* rt_;
  int rank_;
  topo::HwLoc loc_;
  bool coalescing_ = false;
  bool caching_ = false;
  std::unique_ptr<comm::Coalescer> coalescer_;  // lazily built, reused
  std::unique_ptr<comm::ReadCache> read_cache_;  // lazily built, reused
};

/// RAII coalescing epoch: opens on construction; co_await end() to flush
/// and close. If the guard unwinds without end() (exception), the epoch is
/// abandoned — deferred puts still apply to memory, uncharged, and the
/// discrepancy is counted in comm::Stats::abandoned_ops.
class CoalesceEpoch {
 public:
  explicit CoalesceEpoch(Thread& t, const comm::Params& params = {})
      : thread_(&t) {
    t.begin_coalesce(params);
  }
  CoalesceEpoch(const CoalesceEpoch&) = delete;
  CoalesceEpoch& operator=(const CoalesceEpoch&) = delete;
  ~CoalesceEpoch() {
    if (open_) thread_->abandon_coalesce();
  }

  /// Flush + close. Must be awaited on every non-exceptional path.
  [[nodiscard]] sim::Task<void> end() {
    open_ = false;
    return thread_->end_coalesce();
  }

 private:
  Thread* thread_;
  bool open_ = true;
};

/// RAII read-cache epoch, symmetric to CoalesceEpoch. Closing drops every
/// line and is free (the cache holds tags, not data), so unlike
/// CoalesceEpoch there is nothing to await and no abandon discrepancy:
/// the destructor alone is a complete, exception-safe close.
class CachedEpoch {
 public:
  explicit CachedEpoch(Thread& t, const comm::CacheParams& params = {})
      : thread_(&t) {
    t.begin_read_cache(params);
  }
  CachedEpoch(const CachedEpoch&) = delete;
  CachedEpoch& operator=(const CachedEpoch&) = delete;
  ~CachedEpoch() {
    if (open_) thread_->end_read_cache();
  }

  /// Explicit close (the destructor covers every path; this exists for
  /// call sites that want the epoch over before more work happens).
  void end() noexcept {
    open_ = false;
    thread_->end_read_cache();
  }

 private:
  Thread* thread_;
  bool open_ = true;
};

class Runtime {
 public:
  using Kernel = std::function<sim::Task<void>(Thread&)>;

  Runtime(sim::Engine& engine, Config config);

  /// Launch `kernel` on every rank (SPMD). May be called once per Runtime.
  /// The Runtime keeps the kernel (and thus any lambda captures) alive for
  /// its own lifetime — coroutine bodies reference the closure object, so
  /// capturing lambdas are safe here (unlike bare coroutine lambdas).
  void spmd(Kernel kernel);

  /// Drive the engine until all ranks finish; rethrows the first failure.
  void run_to_completion();

  // --- identity / topology ---------------------------------------------
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] int threads() const noexcept { return config_.threads; }
  [[nodiscard]] int ranks_per_node() const noexcept { return ranks_per_node_; }
  [[nodiscard]] int nodes_used() const noexcept { return nodes_used_; }
  [[nodiscard]] topo::HwLoc loc_of(int rank) const {
    return placement_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] int node_of(int rank) const { return loc_of(rank).node; }
  /// Node-local network endpoint index of `rank` under the ACTUAL placement
  /// table (not the blockwise assumption): the i-th rank placed on a node
  /// gets endpoint i. Network counters and trace attribution key on this.
  [[nodiscard]] int endpoint_of(int rank) const {
    return endpoint_of_rank_[static_cast<std::size_t>(rank)];
  }
  /// True when `a` and `b` share load/store access to each other's
  /// segments (same process under pthreads, or PSHM-mapped same node).
  [[nodiscard]] bool same_supernode(int a, int b) const;

  // --- subsystems --------------------------------------------------------
  [[nodiscard]] sim::Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] trace::Tracer* tracer() const noexcept { return config_.tracer; }
  [[nodiscard]] SharedHeap& heap() noexcept { return heap_; }
  [[nodiscard]] mem::MemorySystem& memory() noexcept { return memory_; }
  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] topo::SlotAllocator& slots() noexcept { return slots_; }
  [[nodiscard]] sim::Barrier& global_barrier() noexcept { return barrier_; }
  [[nodiscard]] Thread& thread(int rank) {
    return *threads_[static_cast<std::size_t>(rank)];
  }

  /// Virtual-time cost of one full barrier for the current configuration
  /// (dissemination rounds intra-node + inter-node).
  [[nodiscard]] sim::Time barrier_cost() const;

  // --- fault injection ---------------------------------------------------
  /// Install a fault-hook set (non-owning): wires the engine, network and
  /// heap seams immediately and exposes the steal/spawn/cache hooks to the
  /// layers that consume them at construction or epoch-open time
  /// (sched::WorkStealing, core::SubPool, Thread::begin_read_cache) —
  /// install before building/opening those. Call with a default
  /// Hooks{} to uninstall. All seams are null/off by default; an
  /// uninstalled runtime is bit-identical to one built without the seams.
  void install_faults(const fault::Hooks& hooks);
  [[nodiscard]] const fault::Hooks& fault_hooks() const noexcept {
    return fault_hooks_;
  }

 private:
  friend class Thread;

  sim::Engine* engine_;
  Config config_;
  std::vector<topo::HwLoc> placement_;
  int ranks_per_node_;
  int nodes_used_;
  std::vector<int> endpoint_of_rank_;
  topo::SlotAllocator slots_;
  mem::MemorySystem memory_;
  net::Network network_;
  SharedHeap heap_;
  sim::Barrier barrier_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<sim::Process> procs_;
  Kernel kernel_;  // owns the closure the rank coroutines execute in
  fault::Hooks fault_hooks_;
  bool launched_ = false;
};

}  // namespace hupc::gas
