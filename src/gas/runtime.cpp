#include "gas/runtime.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace hupc::gas {

namespace {

int ceil_log2(int n) {
  if (n <= 1) return 0;
  return std::bit_width(static_cast<unsigned>(n - 1));
}

net::ConnectionMode connection_mode(Backend backend) {
  return backend == Backend::processes ? net::ConnectionMode::per_process
                                       : net::ConnectionMode::per_node;
}

net::ConduitSpec effective_conduit(const Config& config, int ranks_per_node) {
  net::ConduitSpec conduit = config.conduit;
  double eff = config.nic_efficiency;
  if (eff <= 0.0) {
    // Independently polling endpoints erode the achievable NIC bandwidth
    // (thesis §4.3.1 "contention in the lower network API level").
    // Separate processes each own connections and driver state (strong
    // contention); pthreads share one connection and runtime, contending
    // only on internal locks (weak contention).
    const double coeff = config.backend == Backend::processes ? 0.025 : 0.010;
    eff = 1.0 / (1.0 + coeff * std::max(0, ranks_per_node - 1));
  }
  conduit.nic_bw *= eff;
  return conduit;
}

/// Node-local endpoint indices under the ACTUAL placement: the i-th rank
/// placed on a node gets endpoint i (ranks scanned in rank order). Matches
/// `rank % ranks_per_node` exactly for blockwise node fills, and stays
/// correct for any future placement that isn't.
std::vector<int> endpoints_from_placement(
    const std::vector<topo::HwLoc>& placement, int nodes,
    int endpoints_per_node) {
  std::vector<int> ep_of_rank(placement.size(), 0);
  std::vector<int> next(static_cast<std::size_t>(nodes), 0);
  for (std::size_t r = 0; r < placement.size(); ++r) {
    const auto node = static_cast<std::size_t>(placement[r].node);
    ep_of_rank[r] = next[node]++ % endpoints_per_node;
  }
  return ep_of_rank;
}

}  // namespace

Config validated(Config config) {
  const auto& m = config.machine;
  if (config.threads < 1) {
    throw std::invalid_argument("gas::Config: threads must be >= 1 (got " +
                                std::to_string(config.threads) + ")");
  }
  if (m.nodes < 1 || m.sockets_per_node < 1 || m.cores_per_socket < 1 ||
      m.smt_per_core < 1) {
    throw std::invalid_argument(
        "gas::Config: machine shape must have >= 1 node/socket/core/smt "
        "(got " + std::to_string(m.nodes) + "/" +
        std::to_string(m.sockets_per_node) + "/" +
        std::to_string(m.cores_per_socket) + "/" +
        std::to_string(m.smt_per_core) + ")");
  }
  const auto& c = config.costs;
  const struct { const char* name; double value; } costs[] = {
      {"ptr_overhead_s", c.ptr_overhead_s},
      {"shm_copy_overhead_s", c.shm_copy_overhead_s},
      {"loopback_bw", c.loopback_bw},
      {"loopback_overhead_s", c.loopback_overhead_s},
      {"barrier_hop_s", c.barrier_hop_s},
      {"lock_local_s", c.lock_local_s},
      {"vis_region_header_bytes", c.vis_region_header_bytes},
  };
  for (const auto& [name, value] : costs) {
    if (value < 0.0) {
      throw std::invalid_argument(std::string("gas::Config: CostParams.") +
                                  name + " must be >= 0 (got " +
                                  std::to_string(value) + ")");
    }
  }
  if (config.conduit.stage_bw <= 0.0 || config.conduit.conn_bw <= 0.0 ||
      config.conduit.nic_bw <= 0.0) {
    throw std::invalid_argument(
        "gas::Config: conduit bandwidths must be > 0");
  }
  return config;
}

Runtime::Runtime(sim::Engine& engine, Config config)
    : engine_(&engine),
      config_(validated(std::move(config))),
      placement_(topo::place_ranks(config_.machine, config_.threads,
                                   config_.placement)),
      ranks_per_node_((config_.threads + config_.machine.nodes - 1) /
                      config_.machine.nodes),
      nodes_used_((config_.threads + ranks_per_node_ - 1) / ranks_per_node_),
      endpoint_of_rank_(endpoints_from_placement(
          placement_, config_.machine.nodes, ranks_per_node_)),
      slots_(config_.machine),
      memory_(engine, config_.machine),
      network_(engine, config_.machine,
               effective_conduit(config_, ranks_per_node_),
               connection_mode(config_.backend), ranks_per_node_),
      heap_(config_.threads),
      barrier_(engine, config_.threads) {
  threads_.reserve(static_cast<std::size_t>(config_.threads));
  for (int r = 0; r < config_.threads; ++r) {
    slots_.bind(placement_[static_cast<std::size_t>(r)]);
    threads_.push_back(std::make_unique<Thread>(
        *this, r, placement_[static_cast<std::size_t>(r)]));
  }
  // Hand the network the real (node, endpoint) -> rank attribution table so
  // exporters stop guessing blockwise placement (src/net/network.hpp used
  // to document that inaccuracy).
  {
    std::vector<int> table(
        static_cast<std::size_t>(config_.machine.nodes) *
            static_cast<std::size_t>(ranks_per_node_),
        -1);
    for (int r = 0; r < config_.threads; ++r) {
      const std::size_t slot =
          static_cast<std::size_t>(node_of(r)) *
              static_cast<std::size_t>(ranks_per_node_) +
          static_cast<std::size_t>(endpoint_of(r));
      if (table[slot] < 0) table[slot] = r;  // first binder owns the slot
    }
    network_.set_endpoint_ranks(std::move(table));
  }
  if (trace::Tracer* tr = config_.tracer) {
    tr->set_clock([eng = engine_] {
      return static_cast<trace::VTime>(eng->now());
    });
    std::vector<int> nodes;
    nodes.reserve(placement_.size());
    for (const auto& loc : placement_) nodes.push_back(loc.node);
    tr->set_rank_nodes(std::move(nodes));
    engine_->set_tracer(tr);
    network_.set_tracer(tr);
  }
}

void Runtime::install_faults(const fault::Hooks& hooks) {
  fault_hooks_ = hooks;
  engine_->set_fault(hooks.schedule);
  network_.set_fault(hooks.message);
  heap_.set_fault(hooks.alloc);
}

void Runtime::spmd(Kernel kernel) {
  if (launched_) {
    throw std::logic_error("Runtime::spmd: already launched");
  }
  launched_ = true;
  kernel_ = std::move(kernel);
  procs_.reserve(threads_.size());
  for (auto& t : threads_) {
    procs_.push_back(sim::spawn(*engine_, kernel_(*t)));
  }
}

void Runtime::run_to_completion() {
  engine_->run();
  // A rank that died with an exception strands its peers at barriers —
  // surface the root cause, not the symptom.
  for (auto& p : procs_) {
    if (p.failed()) p.rethrow();
  }
  for (auto& p : procs_) {
    if (!p.done()) {
      throw std::logic_error(
          "Runtime: a rank did not finish (deadlocked barrier or lock?)");
    }
  }
}

bool Runtime::same_supernode(int a, int b) const {
  if (a == b) return true;
  if (node_of(a) != node_of(b)) return false;
  return config_.backend == Backend::pthreads || config_.pshm;
}

sim::Time Runtime::barrier_cost() const {
  const double intra =
      config_.costs.barrier_hop_s * ceil_log2(ranks_per_node_);
  double inter = 0.0;
  if (nodes_used_ > 1) {
    const auto& c = config_.conduit;
    inter = (c.send_overhead_s + c.latency_s + c.recv_overhead_s) *
            ceil_log2(nodes_used_);
  }
  return sim::from_seconds(intra + inter);
}

int Thread::threads() const noexcept { return rt_->threads(); }

bool Thread::remote_node(int owner) const {
  return rt_->node_of(owner) != loc_.node;
}

void Thread::begin_coalesce(const comm::Params& params) {
  if (coalescing_) {
    throw std::logic_error(
        "Thread::begin_coalesce: coalescing epochs do not nest (await "
        "end_coalesce() first)");
  }
  if (coalescer_ == nullptr) {
    coalescer_ = std::make_unique<comm::Coalescer>(
        rt_->network(), rank_, loc_.node, rt_->endpoint_of(rank_),
        rt_->tracer());
  }
  coalescer_->configure(params);
  coalescing_ = true;
  HUPC_TRACE_COUNT(rt_->tracer(), "comm.epoch.begin", rank_);
}

sim::Task<void> Thread::end_coalesce() {
  if (!coalescing_) {
    throw std::logic_error("Thread::end_coalesce: no epoch open");
  }
  HUPC_TRACE_COUNT(rt_->tracer(), "comm.epoch.end", rank_);
  coalescing_ = false;
  co_await coalescer_->flush_all(comm::FlushCause::fence);
}

sim::Task<void> Thread::coalesce_flush() {
  if (coalescing_) {
    co_await coalescer_->flush_all(comm::FlushCause::fence);
  }
}

void Thread::abandon_coalesce() noexcept {
  if (!coalescing_) return;
  coalescing_ = false;
  coalescer_->abandon();
}

void Thread::begin_read_cache(const comm::CacheParams& params) {
  if (caching_) {
    throw std::logic_error(
        "Thread::begin_read_cache: read-cache epochs do not nest (call "
        "end_read_cache() first)");
  }
  if (read_cache_ == nullptr) {
    read_cache_ = std::make_unique<comm::ReadCache>(
        rt_->network(), rank_, loc_.node, rt_->endpoint_of(rank_),
        rt_->tracer());
  }
  read_cache_->configure(params);
  // The cache-pressure seam is read at epoch open (like the steal seam at
  // WorkStealing construction): install fault plans before opening epochs.
  read_cache_->set_fault(rt_->fault_hooks().cache);
  caching_ = true;
  HUPC_TRACE_COUNT(rt_->tracer(), "gas.cache.epoch.begin", rank_);
}

void Thread::end_read_cache() noexcept {
  if (!caching_) return;
  caching_ = false;
  read_cache_->invalidate_all();
  HUPC_TRACE_COUNT(rt_->tracer(), "gas.cache.epoch.end", rank_);
}

void Thread::invalidate_read_cache() noexcept {
  if (caching_) read_cache_->invalidate_all();
}

void Thread::note_shared_store(int owner, const void* addr,
                               std::size_t bytes) noexcept {
  if (!caching_ || !remote_node(owner) || addr == nullptr) return;
  const std::int64_t off = rt_->heap().offset_of(owner, addr);
  if (off >= 0) read_cache_->invalidate_range(owner, off, bytes);
}

sim::Task<void> Thread::barrier() {
  HUPC_TRACE_SCOPE(rt_->tracer(), trace::Category::gas, "barrier", rank_);
  HUPC_TRACE_COUNT(rt_->tracer(), "gas.barrier", rank_);
  co_await coalesce_flush();  // fence: buffered puts visible past the barrier
  invalidate_read_cache();    // fence: peers' pre-barrier writes observable
  co_await rt_->barrier_.arrive_and_wait();
  co_await sim::delay(rt_->engine(), rt_->barrier_cost());
}

std::uint64_t Thread::notify() {
  const std::uint64_t token = rt_->barrier_.phase();
  rt_->barrier_.notify();
  return token;
}

sim::Task<void> Thread::wait(std::uint64_t token) {
  HUPC_TRACE_SCOPE(rt_->tracer(), trace::Category::gas, "barrier.wait", rank_,
                   token);
  co_await coalesce_flush();  // fence, same as the full barrier
  invalidate_read_cache();
  co_await rt_->barrier_.wait_phase(token);
  co_await sim::delay(rt_->engine(), rt_->barrier_cost());
}

sim::Task<void> Thread::compute(double single_thread_seconds) {
  co_await rt_->memory().compute(rt_->slots(), loc_, single_thread_seconds);
}

sim::Task<void> Thread::compute_flops(double flops, double efficiency) {
  co_await rt_->memory().compute_flops(rt_->slots(), loc_, flops, efficiency);
}

sim::Task<void> Thread::stream_local(double bytes) {
  co_await rt_->memory().stream(loc_, loc_, bytes);
}

sim::Task<void> Thread::stream_from(int home_rank, double bytes) {
  const topo::HwLoc home = rt_->loc_of(home_rank);
  if (home.node == loc_.node) {
    co_await rt_->memory().stream(loc_, home, bytes);
  } else {
    // Cross-node bulk pull: the data leg flows home -> here.
    co_await rt_->network().rma({.src_node = home.node,
                                 .src_ep = rt_->endpoint_of(home_rank),
                                 .dst_node = loc_.node,
                                 .bytes = bytes});
  }
}

sim::Task<void> Thread::shared_loop(int home_rank, std::uint64_t count,
                                    double bytes_each, bool privatized) {
  HUPC_TRACE_SCOPE(rt_->tracer(), trace::Category::gas, "shared_loop", rank_,
                   count, static_cast<std::uint64_t>(home_rank));
  HUPC_TRACE_COUNT(rt_->tracer(),
                   privatized ? "gas.access.privatized"
                              : "gas.access.translated",
                   rank_, count);
  // CPU side: the translation overhead is serial work on this core.
  if (!privatized) {
    const double cpu = static_cast<double>(count) * rt_->config().costs.ptr_overhead_s;
    co_await compute(cpu);
  }
  // Memory side: the touched bytes flow through the home socket's pool.
  const topo::HwLoc home = rt_->loc_of(home_rank);
  assert(home.node == loc_.node &&
         "shared_loop models intra-node fine-grained loops; remote "
         "fine-grained access should use get/put per element");
  co_await rt_->memory().stream(loc_, home,
                                static_cast<double>(count) * bytes_each);
}

bool Thread::castable(int owner) const { return rt_->same_supernode(rank_, owner); }

sim::Future<> Thread::start_async(sim::Task<void> op) {
  return sim::start(rt_->engine(), std::move(op));
}

async::future<> Thread::launch_async(sim::Task<void> op) {
  HUPC_TRACE_COUNT(rt_->tracer(), "async.copy.issued", rank_);
  async::promise<> done(rt_->engine());
  async::future<> fut = done.get_future();
  sim::spawn(rt_->engine(), complete_async(std::move(op), std::move(done)));
  return fut;
}

sim::Task<void> Thread::complete_async(sim::Task<void> op,
                                       async::promise<> done) {
  try {
    co_await std::move(op);
  } catch (...) {
    HUPC_TRACE_COUNT(rt_->tracer(), "async.copy.failed", rank_);
    done.set_exception(std::current_exception());
    co_return;
  }
  // The operation's work (data movement, invalidation, cost charges) is
  // fully done; only the COMPLETION may now be held back, so a fault plan
  // reorders when waiters observe it, never what they observe.
  if (fault::CompletionHook* hook = rt_->fault_hooks().completion) {
    const std::int64_t extra = hook->delay_completion(rank_);
    if (extra > 0) co_await sim::delay(rt_->engine(), extra);
  }
  HUPC_TRACE_COUNT(rt_->tracer(), "async.copy.completed", rank_);
  done.set_value();
}

sim::Task<void> Thread::element_access(int owner, std::size_t bytes) {
  HUPC_TRACE_INSTANT(rt_->tracer(), trace::Category::gas, "element", rank_,
                     bytes, static_cast<std::uint64_t>(owner));
  HUPC_TRACE_COUNT(rt_->tracer(), "gas.access.translated", rank_);
  // Translation overhead always applies to un-cast shared accesses.
  co_await compute(rt_->config().costs.ptr_overhead_s);
  const topo::HwLoc home = rt_->loc_of(owner);
  if (home.node == loc_.node) {
    co_await rt_->memory().access(loc_, home, 1, static_cast<double>(bytes));
  } else {
    // Remote element access: a small network message each way bounds it.
    co_await rt_->network().rma({.src_node = loc_.node,
                                 .src_ep = rt_->endpoint_of(rank_),
                                 .dst_node = home.node,
                                 .bytes = static_cast<double>(bytes)});
  }
}

sim::Task<void> Thread::read_access(int owner, const void* addr,
                                    std::size_t bytes) {
  if (caching_ && remote_node(owner)) {
    // Lines are tagged by deterministic segment offsets, never raw host
    // addresses (which differ run to run under ASLR and would leak
    // nondeterminism into the modeled hit/miss schedule). An address the
    // heap cannot resolve is uncacheable and falls through.
    const std::int64_t off =
        addr == nullptr ? -1 : rt_->heap().offset_of(owner, addr);
    if (off >= 0) {
      HUPC_TRACE_INSTANT(rt_->tracer(), trace::Category::gas,
                         "element.cached", rank_, bytes,
                         static_cast<std::uint64_t>(owner));
      HUPC_TRACE_COUNT(rt_->tracer(), "gas.access.cached", rank_);
      // Pointer translation is CPU work; caching only amortizes the
      // network side of the access.
      co_await compute(rt_->config().costs.ptr_overhead_s);
      const int dst_node = rt_->node_of(owner);
      if (coalescing_ &&
          coalescer_->has_conflicting_put(dst_node, addr, bytes)) {
        // Read-your-writes through the composition: a deferred put to
        // this range must be observed, so the destination drains before
        // the (possibly cached) line is served.
        co_await coalescer_->flush(dst_node, comm::FlushCause::conflict);
      }
      co_await read_cache_->read(owner, dst_node, off, bytes);
      // Hit or miss, the value itself is read at local cost (a miss
      // already paid the line-fill round trip above).
      co_await rt_->memory().access(loc_, loc_, 1,
                                    static_cast<double>(bytes));
      co_return;
    }
    read_cache_->count_bypass();
  }
  co_await uncached_read_access(owner, addr, bytes);
}

sim::Task<void> Thread::uncached_read_access(int owner, const void* addr,
                                             std::size_t bytes) {
  if (coalescing_ && remote_node(owner)) {
    HUPC_TRACE_INSTANT(rt_->tracer(), trace::Category::gas, "element.coalesced",
                       rank_, bytes, static_cast<std::uint64_t>(owner));
    HUPC_TRACE_COUNT(rt_->tracer(), "gas.access.coalesced", rank_);
    // Pointer translation is CPU work; coalescing only amortizes the
    // network side of the access.
    co_await compute(rt_->config().costs.ptr_overhead_s);
    co_await coalescer_->read(rt_->node_of(owner), addr, bytes);
    co_return;
  }
  co_await element_access(owner, bytes);
}

sim::Task<void> Thread::rmw_access(int owner, const void* addr,
                                   std::size_t bytes) {
  // An AMO must observe the remote value and publish its update: it never
  // serves from the cache, and it drops the covered line so a later get
  // re-fetches.
  if (caching_) note_shared_store(owner, addr, bytes);
  co_await uncached_read_access(owner, addr, bytes);
}

sim::Task<void> Thread::coalesced_put(int owner, void* dst, const void* value,
                                      std::size_t bytes) {
  HUPC_TRACE_INSTANT(rt_->tracer(), trace::Category::gas, "element.coalesced",
                     rank_, bytes, static_cast<std::uint64_t>(owner));
  HUPC_TRACE_COUNT(rt_->tracer(), "gas.access.coalesced", rank_);
  co_await compute(rt_->config().costs.ptr_overhead_s);
  co_await coalescer_->put(rt_->node_of(owner), dst, value, bytes);
}

sim::Task<void> Thread::copy_raw_from(topo::HwLoc at, int peer, void* dst,
                                      const void* src, std::size_t bytes) {
  if (coalescing_) {
    // Fence the destination's buffer: the bulk transfer must be ordered
    // after (and observe) earlier buffered puts to the same node. flush()
    // no-ops when that destination holds nothing.
    co_await coalescer_->flush(rt_->node_of(peer), comm::FlushCause::fence);
  }
  // Bulk transfers are coherence points for the read cache: the moved
  // range is unknown at line granularity (raw pointers, any shape), so
  // conservatively drop everything. Host-side, free.
  invalidate_read_cache();
  if (dst != nullptr && src != nullptr && bytes > 0) {
    std::memcpy(dst, src, bytes);  // the real data moves unconditionally
  }
  if (bytes == 0) co_return;
  HUPC_TRACE_SCOPE(rt_->tracer(), trace::Category::gas, "copy", rank_, bytes,
                   static_cast<std::uint64_t>(peer));
  co_await lower_transfer(at, peer, static_cast<double>(bytes), 1);
}

sim::Task<void> Thread::lower_transfer(topo::HwLoc at, int peer,
                                       double payload, std::uint64_t regions) {
  const double b = payload;
  const topo::HwLoc peer_loc = rt_->loc_of(peer);
  const auto& costs = rt_->config().costs;

  if (peer == rank_ || rt_->same_supernode(rank_, peer)) {
    // Plain load/store path: per-call software overhead + both memory
    // systems carry the bytes (read side and write side). Packing is a
    // wire concept — load/store moves each region at memory cost, so
    // `regions` adds nothing here.
    HUPC_TRACE_COUNT(rt_->tracer(), "gas.copy.shm", rank_);
    co_await sim::delay(rt_->engine(),
                        sim::from_seconds(costs.shm_copy_overhead_s));
    auto read_leg = rt_->memory().stream_async(at, at, b);
    auto write_leg = rt_->memory().stream_async(at, peer_loc, b);
    co_await read_leg.wait();
    co_await write_leg.wait();
  } else if (peer_loc.node == at.node) {
    // Same node, segments not cross-mapped: the GASNet loopback channel —
    // through the network stack (contending with real traffic) and with
    // TWICE the memory traffic of a direct copy (bounce-buffer staging on
    // both sides). PSHM's whole point is eliminating this.
    HUPC_TRACE_COUNT(rt_->tracer(), "gas.copy.loopback", rank_);
    co_await sim::delay(rt_->engine(),
                        sim::from_seconds(costs.loopback_overhead_s));
    auto src_mem = rt_->memory().stream_async(at, at, 2.0 * b);
    auto dst_mem = rt_->memory().stream_async(at, peer_loc, 2.0 * b);
    co_await rt_->network().loopback({.src_node = at.node,
                                      .src_ep = rt_->endpoint_of(rank_),
                                      .dst_node = at.node,
                                      .bytes = b},
                                     costs.loopback_bw);
    co_await src_mem.wait();
    co_await dst_mem.wait();
  } else if (regions > 1) {
    // Packed VIS message: ONE injection carries every region plus a
    // per-region metadata header (address + length on the wire); the
    // footprint fields let the network and trace distinguish 1 x 64 KiB
    // from 4096 x 16 B.
    HUPC_TRACE_COUNT(rt_->tracer(), "gas.copy.rma", rank_);
    const double gross =
        b + static_cast<double>(regions) * costs.vis_region_header_bytes;
    co_await rt_->network().rma({.src_node = at.node,
                                 .src_ep = rt_->endpoint_of(rank_),
                                 .dst_node = peer_loc.node,
                                 .bytes = gross,
                                 .regions = regions,
                                 .payload_bytes = b});
  } else {
    HUPC_TRACE_COUNT(rt_->tracer(), "gas.copy.rma", rank_);
    co_await rt_->network().rma({.src_node = at.node,
                                 .src_ep = rt_->endpoint_of(rank_),
                                 .dst_node = peer_loc.node,
                                 .bytes = b});
  }
}

void Thread::note_vis_store(int owner, const void* base,
                            const std::vector<net::Region>& regions) noexcept {
  if (!caching_ || base == nullptr) return;
  const auto* b = static_cast<const std::byte*>(base);
  for (const net::Region& r : regions) {
    if (r.bytes != 0) note_shared_store(owner, b + r.dst_off, r.bytes);
  }
}

sim::Task<void> Thread::copy_vis(int dst_owner, void* dst_base, int src_owner,
                                 const void* src_base,
                                 std::vector<net::Region> regions) {
  // Peer rule mirrors copy(): shared<->shared charges the remote party,
  // one-sided shapes charge the shared side.
  int peer = rank_;
  if (dst_owner >= 0 && src_owner >= 0) {
    peer = dst_owner == rank_ ? src_owner : dst_owner;
  } else if (dst_owner >= 0) {
    peer = dst_owner;
  } else if (src_owner >= 0) {
    peer = src_owner;
  }

  // Remote strided/indexed PUT inside a coalescing epoch: the regions pack
  // into the destination node's epoch buffer (values captured now, applied
  // and charged at flush) — the descriptor rides the aggregation machinery
  // region by region instead of forcing a fence like bulk copy() does.
  if (coalescing_ && dst_owner >= 0 && src_owner < 0 &&
      remote_node(dst_owner)) {
    note_vis_store(dst_owner, dst_base, regions);
    co_await coalescer_->put_regions(rt_->node_of(dst_owner), dst_base,
                                     src_base, regions.data(), regions.size());
    co_return;
  }
  if (coalescing_) {
    // Same fence as bulk copy(): order after earlier buffered puts to the
    // peer's node (and observe them — flush applies before the memcpy).
    co_await coalescer_->flush(rt_->node_of(peer), comm::FlushCause::fence);
  }
  // Precise own-write coherence, unlike bulk copy()'s drop-everything: a
  // packed store invalidates exactly the lines its regions cover — the
  // gaps a stride skips stay cached. GETs invalidate nothing.
  if (dst_owner >= 0) note_vis_store(dst_owner, dst_base, regions);

  // The real data moves region by region, unconditionally.
  if (dst_base != nullptr && src_base != nullptr) {
    auto* d = static_cast<std::byte*>(dst_base);
    const auto* s = static_cast<const std::byte*>(src_base);
    for (const net::Region& r : regions) {
      if (r.bytes != 0) std::memcpy(d + r.dst_off, s + r.src_off, r.bytes);
    }
  }
  const std::size_t payload = vis::payload_bytes(regions);
  if (payload == 0) co_return;
  HUPC_TRACE_SCOPE(rt_->tracer(), trace::Category::gas, "copy.vis", rank_,
                   payload, static_cast<std::uint64_t>(peer));
  HUPC_TRACE_COUNT(rt_->tracer(), "gas.vis.msg", rank_);
  HUPC_TRACE_COUNT(rt_->tracer(), "gas.vis.regions", rank_,
                   static_cast<std::uint64_t>(regions.size()));
  HUPC_TRACE_COUNT(rt_->tracer(), "gas.vis.bytes", rank_,
                   static_cast<std::uint64_t>(payload));

  // Remote strided/indexed GET inside a read-cache epoch: the footprint is
  // known at region granularity, so prefetch every line it touches with
  // ONE packed fill and read the values at local cost.
  if (caching_ && dst_owner < 0 && src_owner >= 0 && remote_node(src_owner)) {
    const std::int64_t off0 = rt_->heap().offset_of(src_owner, src_base);
    if (off0 >= 0) {
      std::vector<comm::ReadCache::Range> ranges;
      ranges.reserve(regions.size());
      for (const net::Region& r : regions) {
        ranges.push_back(comm::ReadCache::Range{
            off0 + static_cast<std::int64_t>(r.src_off), r.bytes});
      }
      co_await read_cache_->prefetch(src_owner, rt_->node_of(src_owner),
                                     ranges.data(), ranges.size());
      co_await rt_->memory().stream(loc_, loc_, static_cast<double>(payload));
      co_return;
    }
    read_cache_->count_bypass();
  }
  co_await lower_transfer(loc_, peer, static_cast<double>(payload),
                          static_cast<std::uint64_t>(regions.size()));
}

}  // namespace hupc::gas
