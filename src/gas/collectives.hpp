// Reference UPC-style collectives built from one-sided operations —
// optionally scoped to a *subset* of ranks (the GASNet-teams extension the
// thesis §3.2.1 anticipates: "GASNet teams are designed ... to facilitate
// collective operations on a subset of threads").
//
// The thesis FT benchmark implements its all-to-all with point-to-point
// memory copies because "collective operations are not yet supported on
// sub-threads" (§4.3.3.1); exchange() here is exactly that pattern, with
// the classic staggered peer order to avoid hot-spotting one receiver.
// broadcast() uses a binomial tree over copy() with per-member readiness
// events, giving the O(log N) critical path of a real implementation;
// reduce() is a flat one-sided gather+combine (used off the critical path).
//
// Every collective must be called by all member ranks (SPMD semantics).
// Matching is by per-member call sequence number, like MPI's ordering rule.
// Buffer vectors are indexed by *member index* (== global rank for the
// whole-runtime scope).
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "gas/runtime.hpp"
#include "sim/sim.hpp"

namespace hupc::gas {

namespace detail {

struct CollState {
  std::vector<std::unique_ptr<sim::Event>> ready;
  int arrived = 0;
};

}  // namespace detail

/// Shared coordination space for collectives over a member set.
class Collectives {
 public:
  /// Whole-runtime scope: members are all ranks, member index == rank.
  explicit Collectives(Runtime& rt) : Collectives(rt, all_ranks(rt)) {}

  /// Team scope: `members` must be sorted, unique, valid ranks.
  Collectives(Runtime& rt, std::vector<int> members)
      : rt_(&rt),
        members_(std::move(members)),
        seq_(members_.size(), 0),
        barrier_(std::make_unique<sim::Barrier>(
            rt.engine(), static_cast<int>(members_.size()))) {
    if (members_.empty()) {
      throw std::invalid_argument("Collectives: empty member set");
    }
    spans_nodes_ = false;
    for (int r : members_) {
      if (rt.node_of(r) != rt.node_of(members_.front())) spans_nodes_ = true;
    }
  }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(members_.size());
  }
  [[nodiscard]] const std::vector<int>& members() const noexcept {
    return members_;
  }
  /// Member index of a global rank; -1 when not a member.
  [[nodiscard]] int index_of(int rank) const {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (members_[i] == rank) return static_cast<int>(i);
    }
    return -1;
  }

  /// Barrier across the member set (cost scales with its hardware span).
  [[nodiscard]] sim::Task<void> barrier(Thread& self) {
    (void)self;
    co_await barrier_->arrive_and_wait();
    co_await sim::delay(rt_->engine(), barrier_cost());
  }

  /// All-to-all personalized exchange within the member set: member m's
  /// `send + p*count` goes to member p's `recv_bases[p] + m*count`. With
  /// `overlap`, all puts are issued non-blocking and awaited together.
  template <class T>
  [[nodiscard]] sim::Task<void> exchange(Thread& self,
                                         const std::vector<GlobalPtr<T>>& recv_bases,
                                         const T* send, std::size_t count,
                                         bool overlap = false) {
    const int n = size();
    const int me = require_member(self);
    if (overlap) {
      std::vector<async::future<>> pending;
      pending.reserve(static_cast<std::size_t>(n));
      for (int step = 0; step < n; ++step) {
        const int peer = (me + step + 1) % n;
        pending.push_back(self.copy_async(
            recv_bases[static_cast<std::size_t>(peer)] +
                static_cast<std::ptrdiff_t>(static_cast<std::size_t>(me) * count),
            send + static_cast<std::size_t>(peer) * count, count));
      }
      for (auto& f : pending) co_await f.wait();
    } else {
      for (int step = 0; step < n; ++step) {
        const int peer = (me + step + 1) % n;
        co_await self.copy(
            recv_bases[static_cast<std::size_t>(peer)] +
                static_cast<std::ptrdiff_t>(static_cast<std::size_t>(me) * count),
            send + static_cast<std::size_t>(peer) * count, count);
      }
    }
    co_await barrier(self);  // completion: everyone's inbox is full
  }

  /// Binomial-tree broadcast of `count` elements from member index `root`.
  /// `bufs[m]` is member m's buffer; the root's holds the payload on entry.
  template <class T>
  [[nodiscard]] sim::Task<void> broadcast(Thread& self,
                                          const std::vector<GlobalPtr<T>>& bufs,
                                          std::size_t count, int root) {
    const int n = size();
    const int me = require_member(self);
    const int rel = (me - root + n) % n;
    auto state = enter(me);

    // Locate my receive round (lowest set bit of rel); root skips it.
    int mask = 1;
    while (mask < n && (rel & mask) == 0) mask <<= 1;
    if (rel != 0) {
      co_await state->ready[static_cast<std::size_t>(me)]->wait();
    }
    // Push down the subtree: children at rel + mask/2, mask/4, ..., 1.
    for (mask >>= 1; mask > 0; mask >>= 1) {
      const int child_rel = rel + mask;
      if (child_rel < n) {
        const int child = (child_rel + root) % n;
        co_await self.copy(bufs[static_cast<std::size_t>(child)],
                             bufs[static_cast<std::size_t>(me)].raw, count);
        state->ready[static_cast<std::size_t>(child)]->trigger();
      }
    }
    co_return;
  }

  /// Gather-style reduction into member `root`'s buffer with combiner `op`.
  /// Contract: `bufs[root]` must have room for `count * size()` elements —
  /// slot (rel * count) stages relative member rel's partial.
  template <class T, class Op>
  [[nodiscard]] sim::Task<void> reduce(Thread& self,
                                       const std::vector<GlobalPtr<T>>& bufs,
                                       std::size_t count, int root, Op op) {
    const int n = size();
    const int me = require_member(self);
    const int rel = (me - root + n) % n;
    auto state = enter(me);

    if (rel != 0) {
      co_await self.copy(
          bufs[static_cast<std::size_t>(root)] +
              static_cast<std::ptrdiff_t>(static_cast<std::size_t>(rel) * count),
          bufs[static_cast<std::size_t>(me)].raw, count);
      state->ready[static_cast<std::size_t>(me)]->trigger();
      co_return;
    }
    T* mine = bufs[static_cast<std::size_t>(me)].raw;
    for (int child_rel = 1; child_rel < n; ++child_rel) {
      const int child = (child_rel + root) % n;
      co_await state->ready[static_cast<std::size_t>(child)]->wait();
      const T* staged = mine + static_cast<std::size_t>(child_rel) * count;
      for (std::size_t i = 0; i < count; ++i) mine[i] = op(mine[i], staged[i]);
      co_await self.compute(static_cast<double>(count) * 2e-9);
    }
    co_return;
  }

  /// Gather in *relative* member order: member m's `count` elements land in
  /// `root`'s buffer at slot ((m - root) mod size()) * count — so the
  /// root's own contribution is slot 0 (its buffer start) and no member
  /// ever writes over another's slot. Contract: `bufs[root]` has room for
  /// count * size() elements.
  template <class T>
  [[nodiscard]] sim::Task<void> gather(Thread& self,
                                       const std::vector<GlobalPtr<T>>& bufs,
                                       std::size_t count, int root) {
    const int n = size();
    const int me = require_member(self);
    const int rel = (me - root + n) % n;
    auto state = enter(me);
    if (rel != 0) {
      co_await self.copy(
          bufs[static_cast<std::size_t>(root)] +
              static_cast<std::ptrdiff_t>(static_cast<std::size_t>(rel) * count),
          bufs[static_cast<std::size_t>(me)].raw, count);
      state->ready[static_cast<std::size_t>(me)]->trigger();
      co_return;
    }
    for (int m = 0; m < n; ++m) {
      if (m == root) continue;
      co_await state->ready[static_cast<std::size_t>(m)]->wait();
    }
    co_return;
  }

  /// Allreduce = reduce to member 0 + broadcast. Contract: every member's
  /// buffer has room for count * size() elements (member 0's staging).
  template <class T, class Op>
  [[nodiscard]] sim::Task<void> allreduce(Thread& self,
                                          const std::vector<GlobalPtr<T>>& bufs,
                                          std::size_t count, Op op) {
    co_await reduce(self, bufs, count, 0, op);
    co_await broadcast(self, bufs, count, 0);
  }

 private:
  static std::vector<int> all_ranks(Runtime& rt) {
    std::vector<int> ranks(static_cast<std::size_t>(rt.threads()));
    for (int r = 0; r < rt.threads(); ++r) ranks[static_cast<std::size_t>(r)] = r;
    return ranks;
  }

  [[nodiscard]] int require_member(const Thread& self) const {
    const int idx = index_of(self.rank());
    if (idx < 0) {
      throw std::logic_error("Collectives: caller is not a member");
    }
    return idx;
  }

  [[nodiscard]] sim::Time barrier_cost() const {
    const auto& costs = rt_->config().costs;
    const int n = size();
    const int rounds =
        n <= 1 ? 0 : std::bit_width(static_cast<unsigned>(n - 1));
    double seconds = costs.barrier_hop_s * rounds;
    if (spans_nodes_) {
      const auto& c = rt_->config().conduit;
      seconds += (c.send_overhead_s + c.latency_s + c.recv_overhead_s) *
                 (rt_->nodes_used() <= 1
                      ? 0
                      : std::bit_width(
                            static_cast<unsigned>(rt_->nodes_used() - 1)));
    }
    return sim::from_seconds(seconds);
  }

  /// Join collective call #seq for this member; first arrival creates state.
  std::shared_ptr<detail::CollState> enter(int member) {
    const std::uint64_t id = seq_[static_cast<std::size_t>(member)]++;
    auto& slot = states_[id];
    if (!slot) {
      slot = std::make_shared<detail::CollState>();
      slot->ready.reserve(members_.size());
      for (std::size_t i = 0; i < members_.size(); ++i) {
        slot->ready.push_back(std::make_unique<sim::Event>(rt_->engine()));
      }
    }
    auto state = slot;
    if (++state->arrived == size()) states_.erase(id);
    return state;
  }

  Runtime* rt_;
  std::vector<int> members_;
  std::vector<std::uint64_t> seq_;
  std::unique_ptr<sim::Barrier> barrier_;
  bool spans_nodes_ = false;
  std::unordered_map<std::uint64_t, std::shared_ptr<detail::CollState>> states_;
};

}  // namespace hupc::gas
