// UPC-style collectives built from one-sided operations — optionally scoped
// to a *subset* of ranks (the GASNet-teams extension the thesis §3.2.1
// anticipates: "GASNet teams are designed ... to facilitate collective
// operations on a subset of threads") — with MULTIPLE ALGORITHMS per
// operation, chosen by a CollectiveSelector keyed on message size and team
// shape (gas/coll_algo.hpp; DESIGN.md §14).
//
// Algorithms (every cell bit-identical to the flat oracle — the
// cross-algorithm equivalence harness in tests/gas_collectives_algo_test.cpp
// pins this):
//   broadcast — flat: binomial tree over copy() with per-member readiness
//               events; hier: leaders-only binomial across nodes, then a
//               flat intra-node push from each leader (PSHM inside,
//               network across).
//   reduce    — flat: one-sided gather into the root's staging + combine;
//               hier: node-local combine at each leader, leaders ship one
//               partial each. Combine order is ascending member index at
//               every level, so results are bit-identical across
//               algorithms for exactly associative + commutative ops.
//   allgather — flat: direct staggered puts (oracle); ring: n-1 rounds of
//               nearest-neighbour single-block forwarding; dissem:
//               ceil(log2 n) rounds with doubling block sets.
//   alltoall  — exchange(): flat staggered (the §4.3.3.1 pattern the
//               thesis FT used because group-aware collectives were
//               missing); hier: node-local gather into the leader's
//               staging, one aggregated message per leader pair, local
//               scatter.
//
// Every collective must be called by all member ranks (SPMD semantics).
// Matching is per-(team, op): each member keeps one call-sequence counter
// PER OPERATION KIND, so two overlapping teams sharing a rank — or one
// team pipelining different operations — can interleave calls without a
// broadcast's state ever pairing with a reduce's (the latent hazard of the
// earlier single per-member counter). Buffer vectors are indexed by
// *member index* (== global rank for the whole-runtime scope). Member
// order is the construction order and may be arbitrary (Team::split orders
// by key); it is NOT required to be sorted.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "gas/coll_algo.hpp"
#include "gas/runtime.hpp"
#include "sim/sim.hpp"
#include "trace/trace.hpp"

namespace hupc::gas {

namespace detail {

struct CollState {
  std::vector<std::unique_ptr<sim::Event>> ready;
  int arrived = 0;
};

}  // namespace detail

/// Shared coordination space for collectives over a member set.
class Collectives {
 public:
  /// Whole-runtime scope: members are all ranks, member index == rank.
  explicit Collectives(Runtime& rt) : Collectives(rt, all_ranks(rt)) {}

  /// Team scope: `members` must be unique, valid ranks; any order (member
  /// index == position in `members`).
  Collectives(Runtime& rt, std::vector<int> members,
              CollectiveSelector selector = {})
      : rt_(&rt),
        members_(std::move(members)),
        selector_(selector),
        seq_(members_.size()),
        barrier_(std::make_unique<sim::Barrier>(
            rt.engine(), static_cast<int>(members_.size()))) {
    if (members_.empty()) {
      throw std::invalid_argument("Collectives: empty member set");
    }
    // Node groups in ascending node order; each group's members keep their
    // member-index order and the first one is the group's leader.
    std::map<int, std::vector<int>> by_node;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      const int r = members_[i];
      if (r < 0 || r >= rt.threads()) {
        throw std::invalid_argument("Collectives: rank out of range");
      }
      by_node[rt.node_of(r)].push_back(static_cast<int>(i));
    }
    group_of_.resize(members_.size(), 0);
    for (auto& [node, idxs] : by_node) {
      (void)node;
      for (int i : idxs) {
        group_of_[static_cast<std::size_t>(i)] =
            static_cast<int>(groups_.size());
      }
      groups_.push_back(std::move(idxs));
    }
    spans_nodes_ = groups_.size() > 1;
    std::size_t seen = 0;
    for (const auto& g : groups_) seen += g.size();
    if (seen != members_.size()) {
      throw std::invalid_argument("Collectives: duplicate member rank");
    }
  }

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(members_.size());
  }
  [[nodiscard]] const std::vector<int>& members() const noexcept {
    return members_;
  }
  [[nodiscard]] bool spans_nodes() const noexcept { return spans_nodes_; }
  [[nodiscard]] int node_groups() const noexcept {
    return static_cast<int>(groups_.size());
  }
  [[nodiscard]] CollectiveSelector& selector() noexcept { return selector_; }
  [[nodiscard]] const CollectiveSelector& selector() const noexcept {
    return selector_;
  }

  /// Member index of a global rank; -1 when not a member.
  [[nodiscard]] int index_of(int rank) const {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (members_[i] == rank) return static_cast<int>(i);
    }
    return -1;
  }

  /// The algorithm a call with this operation and payload would run under
  /// (resolving `automatic` through the selector; exposed for benches,
  /// logs and the equivalence harness).
  [[nodiscard]] CollAlgo resolve(CollOp op, std::size_t bytes,
                                 CollAlgo requested) const {
    const CollAlgo algo =
        requested == CollAlgo::automatic
            ? selector_.choose(op, bytes, size(), spans_nodes_)
            : requested;
    if (!coll_algo_supported(op, algo)) {
      throw std::invalid_argument(
          std::string("Collectives: algorithm '") + coll_algo_name(algo) +
          "' is not available for " + coll_op_name(op));
    }
    return algo;
  }

  /// Barrier across the member set (cost scales with its hardware span).
  [[nodiscard]] sim::Task<void> barrier(Thread& self) {
    (void)self;
    co_await barrier_->arrive_and_wait();
    co_await sim::delay(rt_->engine(), barrier_cost());
  }

  /// All-to-all personalized exchange within the member set: member m's
  /// `send + p*count` goes to member p's `recv_bases[p] + m*count`. With
  /// `overlap`, the flat algorithm issues all puts non-blocking and awaits
  /// them together. `algo`: flat | hier | automatic.
  template <class T>
  [[nodiscard]] sim::Task<void> exchange(
      Thread& self, const std::vector<GlobalPtr<T>>& recv_bases,
      const T* send, std::size_t count, bool overlap = false,
      CollAlgo algo = CollAlgo::automatic) {
    const CollAlgo chosen = resolve(CollOp::alltoall, count * sizeof(T), algo);
    count_call(self, "gas.coll.alltoall");
    if (chosen == CollAlgo::hier && node_groups() > 1) {
      co_await exchange_hier(self, recv_bases, send, count);
    } else {
      co_await exchange_flat(self, recv_bases, send, count, overlap);
    }
  }

  /// Broadcast of `count` elements from member index `root`. `bufs[m]` is
  /// member m's buffer; the root's holds the payload on entry.
  /// `algo`: flat (binomial) | hier (leader two-level) | automatic.
  template <class T>
  [[nodiscard]] sim::Task<void> broadcast(Thread& self,
                                          const std::vector<GlobalPtr<T>>& bufs,
                                          std::size_t count, int root,
                                          CollAlgo algo = CollAlgo::automatic) {
    const CollAlgo chosen = resolve(CollOp::broadcast, count * sizeof(T), algo);
    count_call(self, "gas.coll.broadcast");
    if (chosen == CollAlgo::hier && node_groups() > 1) {
      co_await broadcast_hier(self, bufs, count, root);
    } else {
      co_await broadcast_flat(self, bufs, count, root);
    }
  }

  /// Reduction into member `root`'s buffer with combiner `op`.
  /// Contract: `bufs[root]` must have room for `count * size()` elements —
  /// slot (rel * count) stages relative member rel's partial. The combine
  /// order is ascending member index at every level, so flat and hier agree
  /// bit-for-bit whenever `op` is exactly associative + commutative.
  template <class T, class Op>
  [[nodiscard]] sim::Task<void> reduce(Thread& self,
                                       const std::vector<GlobalPtr<T>>& bufs,
                                       std::size_t count, int root, Op op,
                                       CollAlgo algo = CollAlgo::automatic) {
    const CollAlgo chosen = resolve(CollOp::reduce, count * sizeof(T), algo);
    count_call(self, "gas.coll.reduce");
    if (chosen == CollAlgo::hier && node_groups() > 1) {
      co_await reduce_hier(self, bufs, count, root, op);
    } else {
      co_await reduce_flat(self, bufs, count, root, op);
    }
  }

  /// Allgather: member m's own block sits at `bufs[m] + m*count` on entry;
  /// on return EVERY member's buffer holds all size() blocks in member
  /// order. Contract: every buffer has room for count * size() elements.
  /// `algo`: flat (direct puts) | ring | dissem | automatic.
  template <class T>
  [[nodiscard]] sim::Task<void> allgather(Thread& self,
                                          const std::vector<GlobalPtr<T>>& bufs,
                                          std::size_t count,
                                          CollAlgo algo = CollAlgo::automatic) {
    const CollAlgo chosen = resolve(CollOp::allgather, count * sizeof(T), algo);
    count_call(self, "gas.coll.allgather");
    if (chosen == CollAlgo::ring) {
      co_await allgather_ring(self, bufs, count);
    } else if (chosen == CollAlgo::dissem) {
      co_await allgather_dissem(self, bufs, count);
    } else {
      co_await allgather_flat(self, bufs, count);
    }
  }

  /// Gather in *relative* member order: member m's `count` elements land in
  /// `root`'s buffer at slot ((m - root) mod size()) * count — so the
  /// root's own contribution is slot 0 (its buffer start) and no member
  /// ever writes over another's slot. Contract: `bufs[root]` has room for
  /// count * size() elements. Flat only.
  template <class T>
  [[nodiscard]] sim::Task<void> gather(Thread& self,
                                       const std::vector<GlobalPtr<T>>& bufs,
                                       std::size_t count, int root) {
    const int n = size();
    const int me = require_member(self);
    const int rel = (me - root + n) % n;
    count_call(self, "gas.coll.gather");
    auto state = enter(CollOp::gather, me, static_cast<std::size_t>(n));
    if (rel != 0) {
      co_await self.copy(
          bufs[static_cast<std::size_t>(root)] +
              static_cast<std::ptrdiff_t>(static_cast<std::size_t>(rel) * count),
          bufs[static_cast<std::size_t>(me)].raw, count);
      state->ready[static_cast<std::size_t>(me)]->trigger();
      co_return;
    }
    for (int m = 0; m < n; ++m) {
      if (m == root) continue;
      co_await state->ready[static_cast<std::size_t>(m)]->wait();
    }
    co_return;
  }

  /// Allreduce = reduce to member 0 + broadcast. Contract: every member's
  /// buffer has room for count * size() elements (member 0's staging).
  template <class T, class Op>
  [[nodiscard]] sim::Task<void> allreduce(Thread& self,
                                          const std::vector<GlobalPtr<T>>& bufs,
                                          std::size_t count, Op op,
                                          CollAlgo algo = CollAlgo::automatic) {
    co_await reduce(self, bufs, count, 0, op, algo);
    co_await broadcast(self, bufs, count, 0, algo);
  }

  /// Single-value allreduce through internal shared staging: each member
  /// contributes `value`; every member returns the fold over members in
  /// ascending member order. No caller-provided buffers — the staging lives
  /// in the owning ranks' heap segments and is reused across calls. Exact
  /// (bit-identical across algorithms) whenever `op` is exactly
  /// associative + commutative and `value` folding is order-insensitive.
  template <class T, class Op>
  [[nodiscard]] sim::Task<T> allreduce_value(Thread& self, T value, Op op,
                                             CollAlgo algo =
                                                 CollAlgo::automatic) {
    const int n = size();
    const int me = require_member(self);
    std::vector<GlobalPtr<T>> bufs;
    bufs.reserve(static_cast<std::size_t>(n));
    for (int m = 0; m < n; ++m) {
      bufs.push_back(GlobalPtr<T>{
          members_[static_cast<std::size_t>(m)],
          stage<T>(StageKind::value, m, static_cast<std::size_t>(n))});
    }
    bufs[static_cast<std::size_t>(me)].raw[0] = value;  // my own segment
    co_await allreduce(self, bufs, 1, op, algo);
    co_return bufs[static_cast<std::size_t>(me)].raw[0];
  }

 private:
  enum class StageKind : std::uint8_t {
    value = 0,    // allreduce_value per-member staging
    partial = 1,  // hier reduce: leader-local combine area
    gather = 2,   // hier alltoall: leader gather area (phase 1)
    pack = 3,     // hier alltoall: leader per-destination pack buffer
    scatter = 4,  // hier alltoall: leader inbound area (phase 2)
  };

  static std::vector<int> all_ranks(Runtime& rt) {
    std::vector<int> ranks(static_cast<std::size_t>(rt.threads()));
    for (int r = 0; r < rt.threads(); ++r) ranks[static_cast<std::size_t>(r)] = r;
    return ranks;
  }

  [[nodiscard]] int require_member(const Thread& self) const {
    const int idx = index_of(self.rank());
    if (idx < 0) {
      throw std::logic_error("Collectives: caller is not a member");
    }
    return idx;
  }

  void count_call(Thread& self, const char* counter) {
    (void)self;
    (void)counter;
    HUPC_TRACE_COUNT(rt_->tracer(), counter, self.rank());
  }

  [[nodiscard]] sim::Time barrier_cost() const {
    const auto& costs = rt_->config().costs;
    const int n = size();
    const int rounds =
        n <= 1 ? 0 : std::bit_width(static_cast<unsigned>(n - 1));
    double seconds = costs.barrier_hop_s * rounds;
    if (spans_nodes_) {
      const auto& c = rt_->config().conduit;
      seconds += (c.send_overhead_s + c.latency_s + c.recv_overhead_s) *
                 (rt_->nodes_used() <= 1
                      ? 0
                      : std::bit_width(
                            static_cast<unsigned>(rt_->nodes_used() - 1)));
    }
    return sim::from_seconds(seconds);
  }

  /// Join this member's next call of `op`; the first arrival creates the
  /// state with `slots` events. Matching is per-(team, op): each member
  /// keeps an independent sequence counter per operation kind, so calls of
  /// different kinds (or on overlapping teams) can never pair up.
  std::shared_ptr<detail::CollState> enter(CollOp op, int member,
                                           std::size_t slots) {
    auto& per_op = seq_[static_cast<std::size_t>(member)];
    const std::uint64_t call =
        per_op[static_cast<std::size_t>(op)]++;
    const std::uint64_t id =
        (static_cast<std::uint64_t>(op) << 56) | call;
    auto& slot = states_[id];
    if (!slot) {
      slot = std::make_shared<detail::CollState>();
      slot->ready.reserve(slots);
      for (std::size_t i = 0; i < slots; ++i) {
        slot->ready.push_back(std::make_unique<sim::Event>(rt_->engine()));
      }
    }
    auto state = slot;
    if (++state->arrived == size()) states_.erase(id);
    return state;
  }

  /// Per-(kind, member) staging area in the member's OWNING rank's heap
  /// segment, grown on demand and reused across calls (the heap is a bump
  /// allocator: growth abandons the old area, so steady-state payload
  /// sizes allocate exactly once).
  template <class T>
  [[nodiscard]] T* stage(StageKind kind, int member, std::size_t elems) {
    const std::uint64_t key = (static_cast<std::uint64_t>(kind) << 32) |
                              static_cast<std::uint64_t>(member);
    auto& s = stages_[key];
    const std::size_t bytes = elems * sizeof(T);
    if (s.cap < bytes) {
      const std::size_t units =
          (bytes + sizeof(std::max_align_t) - 1) / sizeof(std::max_align_t);
      s.p = rt_->heap()
                .alloc<std::max_align_t>(
                    members_[static_cast<std::size_t>(member)], units)
                .raw;
      s.cap = units * sizeof(std::max_align_t);
    }
    return static_cast<T*>(s.p);
  }

  // --- alltoall ---------------------------------------------------------

  template <class T>
  [[nodiscard]] sim::Task<void> exchange_flat(
      Thread& self, const std::vector<GlobalPtr<T>>& recv_bases,
      const T* send, std::size_t count, bool overlap) {
    const int n = size();
    const int me = require_member(self);
    if (overlap) {
      std::vector<async::future<>> pending;
      pending.reserve(static_cast<std::size_t>(n));
      for (int step = 0; step < n; ++step) {
        const int peer = (me + step + 1) % n;
        pending.push_back(self.copy_async(
            recv_bases[static_cast<std::size_t>(peer)] +
                static_cast<std::ptrdiff_t>(static_cast<std::size_t>(me) * count),
            send + static_cast<std::size_t>(peer) * count, count));
      }
      for (auto& f : pending) co_await f.wait();
    } else {
      for (int step = 0; step < n; ++step) {
        const int peer = (me + step + 1) % n;
        co_await self.copy(
            recv_bases[static_cast<std::size_t>(peer)] +
                static_cast<std::ptrdiff_t>(static_cast<std::size_t>(me) * count),
            send + static_cast<std::size_t>(peer) * count, count);
      }
    }
    co_await barrier(self);  // completion: everyone's inbox is full
  }

  /// Hierarchical alltoall: node-local gather of every member's whole send
  /// buffer into its leader's staging, one aggregated message per ordered
  /// leader pair, then a local scatter where every member pulls its own
  /// inbound blocks from its leader (PSHM-cheap). The network sees
  /// G*(G-1) large messages instead of n*(n-1) small ones.
  template <class T>
  [[nodiscard]] sim::Task<void> exchange_hier(
      Thread& self, const std::vector<GlobalPtr<T>>& recv_bases,
      const T* send, std::size_t count) {
    const int n = size();
    const int me = require_member(self);
    const int G = node_groups();
    const int g = group_of_[static_cast<std::size_t>(me)];
    const auto& grp = groups_[static_cast<std::size_t>(g)];
    const int A = static_cast<int>(grp.size());
    const int leader = grp.front();
    const int leader_rank = members_[static_cast<std::size_t>(leader)];
    int li = 0;  // my index within the group
    for (int i = 0; i < A; ++i) {
      if (grp[static_cast<std::size_t>(i)] == me) li = i;
    }
    // Event layout: [0, n) gather arrivals, [n, n+G) per-group local-ready,
    // [n+G, n+G+G*G) leader-pair arrivals (from*G + to).
    auto state = enter(CollOp::alltoall, me,
                       static_cast<std::size_t>(n + G + G * G));
    const auto ev = [&state](int i) {
      return state->ready[static_cast<std::size_t>(i)].get();
    };
    const auto nelems = static_cast<std::size_t>(n) * count;

    // Offset of source group `from`'s region in group `to`'s scatter
    // staging: groups are laid out in ascending group order, skipping `to`.
    const auto scatter_off = [this, count](int to, int from) {
      std::size_t off = 0;
      const std::size_t bsz = groups_[static_cast<std::size_t>(to)].size();
      for (int gg = 0; gg < from; ++gg) {
        if (gg == to) continue;
        off += groups_[static_cast<std::size_t>(gg)].size() * bsz * count;
      }
      return off;
    };
    // Full extent of group `to`'s scatter staging. EVERY participant must
    // request the stage at this size: stage() grows by reallocating, so a
    // smaller early request would hand out a pointer a later full-size
    // request abandons.
    const auto scatter_elems_of = [this, count, G](int to) {
      std::size_t total = 0;
      const std::size_t bsz = groups_[static_cast<std::size_t>(to)].size();
      for (int gg = 0; gg < G; ++gg) {
        if (gg == to) continue;
        total += groups_[static_cast<std::size_t>(gg)].size() * bsz * count;
      }
      return total;
    };

    // Phase 1 — local gather: my whole send buffer into my leader's
    // staging at [li][n*count] (one bulk intra-node copy).
    T* gstage = stage<T>(StageKind::gather, leader,
                         static_cast<std::size_t>(A) * nelems);
    co_await self.copy(
        GlobalPtr<T>{leader_rank, gstage + static_cast<std::size_t>(li) * nelems},
        send, nelems);
    ev(me)->trigger();

    if (me == leader) {
      for (int m : grp) co_await ev(m)->wait();
      ev(n + g)->trigger();  // local members may now pull intra-node blocks
      // Phase 2 — leader exchange, staggered by group: pack the blocks
      // destined to group h contiguously, ship them as ONE message.
      for (int s = 1; s < G; ++s) {
        const int h = (g + s) % G;
        const auto& dst_grp = groups_[static_cast<std::size_t>(h)];
        const int B = static_cast<int>(dst_grp.size());
        const int dst_leader = dst_grp.front();
        const int dst_leader_rank =
            members_[static_cast<std::size_t>(dst_leader)];
        T* pack = stage<T>(StageKind::pack, leader,
                           static_cast<std::size_t>(A) *
                               static_cast<std::size_t>(B) * count);
        for (int si = 0; si < A; ++si) {
          for (int dj = 0; dj < B; ++dj) {
            const auto dst_member =
                static_cast<std::size_t>(dst_grp[static_cast<std::size_t>(dj)]);
            std::memcpy(
                pack + (static_cast<std::size_t>(si) * B + dj) * count,
                gstage + static_cast<std::size_t>(si) * nelems +
                    dst_member * count,
                count * sizeof(T));
          }
        }
        const auto pack_bytes = static_cast<double>(
            static_cast<std::size_t>(A) * static_cast<std::size_t>(B) *
            count * sizeof(T));
        co_await self.stream_local(2.0 * pack_bytes);  // read + write
        T* rstage =
            stage<T>(StageKind::scatter, dst_leader, scatter_elems_of(h));
        co_await self.copy(
            GlobalPtr<T>{dst_leader_rank, rstage + scatter_off(h, g)},
            pack, static_cast<std::size_t>(A) *
                      static_cast<std::size_t>(B) * count);
        ev(n + G + g * G + h)->trigger();
      }
    } else {
      co_await ev(n + g)->wait();
    }

    // Phase 3 — scatter: every member pulls its own inbound blocks.
    // (a) intra-group blocks straight from the leader's gather staging;
    for (int si = 0; si < A; ++si) {
      const int src_member = grp[static_cast<std::size_t>(si)];
      co_await self.copy(
          recv_bases[static_cast<std::size_t>(me)] +
              static_cast<std::ptrdiff_t>(
                  static_cast<std::size_t>(src_member) * count),
          GlobalPtr<const T>{leader_rank,
                             gstage + static_cast<std::size_t>(si) * nelems +
                                 static_cast<std::size_t>(me) * count},
          count);
    }
    // (b) inter-group blocks from the leader's scatter staging, once the
    // sending leader's aggregated message has landed.
    if (G > 1) {
      T* rstage = stage<T>(StageKind::scatter, leader, scatter_elems_of(g));
      for (int from = 0; from < G; ++from) {
        if (from == g) continue;
        co_await ev(n + G + from * G + g)->wait();
        const auto& src_grp = groups_[static_cast<std::size_t>(from)];
        const T* region = rstage + scatter_off(g, from);
        for (std::size_t si = 0; si < src_grp.size(); ++si) {
          const int src_member = src_grp[si];
          co_await self.copy(
              recv_bases[static_cast<std::size_t>(me)] +
                  static_cast<std::ptrdiff_t>(
                      static_cast<std::size_t>(src_member) * count),
              GlobalPtr<const T>{
                  leader_rank,
                  region + (si * static_cast<std::size_t>(A) +
                            static_cast<std::size_t>(li)) *
                               count},
              count);
        }
      }
    }
    co_await barrier(self);
  }

  // --- broadcast --------------------------------------------------------

  template <class T>
  [[nodiscard]] sim::Task<void> broadcast_flat(
      Thread& self, const std::vector<GlobalPtr<T>>& bufs, std::size_t count,
      int root) {
    const int n = size();
    const int me = require_member(self);
    const int rel = (me - root + n) % n;
    auto state = enter(CollOp::broadcast, me, static_cast<std::size_t>(n));

    // Locate my receive round (lowest set bit of rel); root skips it.
    int mask = 1;
    while (mask < n && (rel & mask) == 0) mask <<= 1;
    if (rel != 0) {
      co_await state->ready[static_cast<std::size_t>(me)]->wait();
    }
    // Push down the subtree: children at rel + mask/2, mask/4, ..., 1.
    for (mask >>= 1; mask > 0; mask >>= 1) {
      const int child_rel = rel + mask;
      if (child_rel < n) {
        const int child = (child_rel + root) % n;
        co_await self.copy(bufs[static_cast<std::size_t>(child)],
                             bufs[static_cast<std::size_t>(me)].raw, count);
        state->ready[static_cast<std::size_t>(child)]->trigger();
      }
    }
    co_return;
  }

  /// Two-level broadcast: binomial tree across node-group leaders (the
  /// root acts as its own group's leader), then a flat intra-node push
  /// from each leader — network messages only between leaders, PSHM-cheap
  /// copies inside a node.
  template <class T>
  [[nodiscard]] sim::Task<void> broadcast_hier(
      Thread& self, const std::vector<GlobalPtr<T>>& bufs, std::size_t count,
      int root) {
    const int n = size();
    const int me = require_member(self);
    const int G = node_groups();
    const int g = group_of_[static_cast<std::size_t>(me)];
    const int rg = group_of_[static_cast<std::size_t>(root)];
    const auto leader_of = [this, root, rg](int grp) {
      return grp == rg ? root : groups_[static_cast<std::size_t>(grp)].front();
    };
    const int my_leader = leader_of(g);
    auto state = enter(CollOp::broadcast, me, static_cast<std::size_t>(n));

    if (me != root) {
      co_await state->ready[static_cast<std::size_t>(me)]->wait();
    }
    if (me == my_leader) {
      // Cross-node phase: binomial over groups, rooted at the root's group.
      const int rel = (g - rg + G) % G;
      int mask = 1;
      while (mask < G && (rel & mask) == 0) mask <<= 1;
      for (mask >>= 1; mask > 0; mask >>= 1) {
        const int child_rel = rel + mask;
        if (child_rel < G) {
          const int child = leader_of((child_rel + rg) % G);
          co_await self.copy(bufs[static_cast<std::size_t>(child)],
                             bufs[static_cast<std::size_t>(me)].raw, count);
          state->ready[static_cast<std::size_t>(child)]->trigger();
        }
      }
      // Intra-node phase: flat push to my group's other members.
      for (int member : groups_[static_cast<std::size_t>(g)]) {
        if (member == my_leader) continue;
        co_await self.copy(bufs[static_cast<std::size_t>(member)],
                           bufs[static_cast<std::size_t>(me)].raw, count);
        state->ready[static_cast<std::size_t>(member)]->trigger();
      }
    }
    co_return;
  }

  // --- reduce -----------------------------------------------------------

  template <class T, class Op>
  [[nodiscard]] sim::Task<void> reduce_flat(
      Thread& self, const std::vector<GlobalPtr<T>>& bufs, std::size_t count,
      int root, Op op) {
    const int n = size();
    const int me = require_member(self);
    const int rel = (me - root + n) % n;
    auto state = enter(CollOp::reduce, me, static_cast<std::size_t>(n));

    if (rel != 0) {
      co_await self.copy(
          bufs[static_cast<std::size_t>(root)] +
              static_cast<std::ptrdiff_t>(static_cast<std::size_t>(rel) * count),
          bufs[static_cast<std::size_t>(me)].raw, count);
      state->ready[static_cast<std::size_t>(me)]->trigger();
      co_return;
    }
    // Combine in ascending MEMBER order (the same order every algorithm
    // uses), waiting for each contributor's staged partial as we reach it.
    T* mine = bufs[static_cast<std::size_t>(me)].raw;
    for (int m = 0; m < n; ++m) {
      if (m == root) continue;
      const int child_rel = (m - root + n) % n;
      co_await state->ready[static_cast<std::size_t>(m)]->wait();
      const T* staged = mine + static_cast<std::size_t>(child_rel) * count;
      for (std::size_t i = 0; i < count; ++i) mine[i] = op(mine[i], staged[i]);
      co_await self.compute(static_cast<double>(count) * 2e-9);
    }
    co_return;
  }

  /// Two-level reduce: members of the root's group stage into the root
  /// directly (as flat); every other group combines at its leader (in
  /// ascending member order) and ships ONE partial. The root folds local
  /// members first, then leader partials, both in ascending member order.
  ///
  /// The leader-local combine area is the per-(kind, member) stage cache,
  /// REUSED across calls — so a remote-group contributor must not return
  /// (and thus must not be able to enter a later reduce that overwrites its
  /// slot) until its leader has both folded the slot and shipped the
  /// partial. Event slots [n, 2n) carry that release.
  template <class T, class Op>
  [[nodiscard]] sim::Task<void> reduce_hier(
      Thread& self, const std::vector<GlobalPtr<T>>& bufs, std::size_t count,
      int root, Op op) {
    const int n = size();
    const int me = require_member(self);
    const int G = node_groups();
    const int g = group_of_[static_cast<std::size_t>(me)];
    const int rg = group_of_[static_cast<std::size_t>(root)];
    auto state = enter(CollOp::reduce, me, static_cast<std::size_t>(2 * n));

    if (g != rg) {
      const auto& grp = groups_[static_cast<std::size_t>(g)];
      const int A = static_cast<int>(grp.size());
      const int leader = grp.front();
      const int leader_rank = members_[static_cast<std::size_t>(leader)];
      int li = 0;
      for (int i = 0; i < A; ++i) {
        if (grp[static_cast<std::size_t>(i)] == me) li = i;
      }
      T* pstage = stage<T>(StageKind::partial, leader,
                           static_cast<std::size_t>(A) * count);
      if (me != leader) {
        co_await self.copy(
            GlobalPtr<T>{leader_rank,
                         pstage + static_cast<std::size_t>(li) * count},
            bufs[static_cast<std::size_t>(me)].raw, count);
        state->ready[static_cast<std::size_t>(me)]->trigger();
        co_await state->ready[static_cast<std::size_t>(n + me)]->wait();
        co_return;
      }
      // Leader: slot 0 starts as my own contribution, then fold the
      // locals in ascending member order (group members keep that order).
      co_await self.copy(GlobalPtr<T>{leader_rank, pstage},
                         bufs[static_cast<std::size_t>(me)].raw, count);
      for (int i = 1; i < A; ++i) {
        const int member = grp[static_cast<std::size_t>(i)];
        co_await state->ready[static_cast<std::size_t>(member)]->wait();
        const T* staged = pstage + static_cast<std::size_t>(i) * count;
        for (std::size_t k = 0; k < count; ++k) {
          pstage[k] = op(pstage[k], staged[k]);
        }
        co_await self.compute(static_cast<double>(count) * 2e-9);
      }
      const int rel = (me - root + n) % n;
      co_await self.copy(
          bufs[static_cast<std::size_t>(root)] +
              static_cast<std::ptrdiff_t>(static_cast<std::size_t>(rel) * count),
          pstage, count);
      state->ready[static_cast<std::size_t>(me)]->trigger();
      // pstage is done for this call (folded AND shipped) — only now may
      // the locals start a reduce that overwrites their slots.
      for (int i = 1; i < A; ++i) {
        state->ready[static_cast<std::size_t>(
                         n + grp[static_cast<std::size_t>(i)])]
            ->trigger();
      }
      co_return;
    }
    if (me != root) {  // root's group stages into the root directly
      const int rel = (me - root + n) % n;
      co_await self.copy(
          bufs[static_cast<std::size_t>(root)] +
              static_cast<std::ptrdiff_t>(static_cast<std::size_t>(rel) * count),
          bufs[static_cast<std::size_t>(me)].raw, count);
      state->ready[static_cast<std::size_t>(me)]->trigger();
      co_return;
    }
    // Root: fold my group's members, then remote-group leader partials —
    // both walks in ascending member order, matching flat's fold order
    // for exact combiners.
    T* mine = bufs[static_cast<std::size_t>(me)].raw;
    const auto fold_member = [&](int m) -> sim::Task<void> {
      const int child_rel = (m - root + n) % n;
      co_await state->ready[static_cast<std::size_t>(m)]->wait();
      const T* staged = mine + static_cast<std::size_t>(child_rel) * count;
      for (std::size_t i = 0; i < count; ++i) mine[i] = op(mine[i], staged[i]);
      co_await self.compute(static_cast<double>(count) * 2e-9);
    };
    for (int m : groups_[static_cast<std::size_t>(rg)]) {
      if (m == root) continue;
      co_await fold_member(m);
    }
    for (int gg = 0; gg < G; ++gg) {
      if (gg == rg) continue;
      co_await fold_member(groups_[static_cast<std::size_t>(gg)].front());
    }
    co_return;
  }

  // --- allgather --------------------------------------------------------

  template <class T>
  [[nodiscard]] sim::Task<void> allgather_flat(
      Thread& self, const std::vector<GlobalPtr<T>>& bufs, std::size_t count) {
    const int n = size();
    const int me = require_member(self);
    const T* mine =
        bufs[static_cast<std::size_t>(me)].raw + static_cast<std::size_t>(me) * count;
    for (int step = 1; step < n; ++step) {
      const int peer = (me + step) % n;
      co_await self.copy(
          bufs[static_cast<std::size_t>(peer)] +
              static_cast<std::ptrdiff_t>(static_cast<std::size_t>(me) * count),
          mine, count);
    }
    co_await barrier(self);
  }

  /// Ring allgather: n-1 rounds; in round s every member forwards block
  /// (me - s) mod n to its right neighbour. Bandwidth-optimal: each member
  /// sends exactly (n-1)*count elements over one link.
  template <class T>
  [[nodiscard]] sim::Task<void> allgather_ring(
      Thread& self, const std::vector<GlobalPtr<T>>& bufs, std::size_t count) {
    const int n = size();
    const int me = require_member(self);
    auto state = enter(CollOp::allgather, me,
                       static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(n > 1 ? n - 1 : 0));
    const int dst = (me + 1) % n;
    for (int step = 0; step + 1 < n; ++step) {
      const int blk = (me - step + n) % n;  // received last round (or mine)
      co_await self.copy(
          bufs[static_cast<std::size_t>(dst)] +
              static_cast<std::ptrdiff_t>(static_cast<std::size_t>(blk) * count),
          bufs[static_cast<std::size_t>(me)].raw +
              static_cast<std::size_t>(blk) * count,
          count);
      state->ready[static_cast<std::size_t>(step * n + dst)]->trigger();
      co_await state->ready[static_cast<std::size_t>(step * n + me)]->wait();
    }
    co_await barrier(self);
  }

  /// Dissemination allgather: ceil(log2 n) rounds; in each round member m
  /// sends its lowest-indexed `min(have, n-have)` blocks to (m + have),
  /// doubling the held set — latency-optimal for small blocks.
  template <class T>
  [[nodiscard]] sim::Task<void> allgather_dissem(
      Thread& self, const std::vector<GlobalPtr<T>>& bufs, std::size_t count) {
    const int n = size();
    const int me = require_member(self);
    const int rounds =
        n <= 1 ? 0 : std::bit_width(static_cast<unsigned>(n - 1));
    auto state = enter(CollOp::allgather, me,
                       static_cast<std::size_t>(rounds) *
                           static_cast<std::size_t>(n));
    int have = 1;
    int step = 0;
    while (have < n) {
      const int cnt = have < n - have ? have : n - have;
      const int dst = (me + have) % n;
      for (int i = 0; i < cnt; ++i) {
        const int blk = (me - i + n) % n;
        co_await self.copy(
            bufs[static_cast<std::size_t>(dst)] +
                static_cast<std::ptrdiff_t>(static_cast<std::size_t>(blk) * count),
            bufs[static_cast<std::size_t>(me)].raw +
                static_cast<std::size_t>(blk) * count,
            count);
      }
      state->ready[static_cast<std::size_t>(step * n + dst)]->trigger();
      co_await state->ready[static_cast<std::size_t>(step * n + me)]->wait();
      have += cnt;
      ++step;
    }
    co_await barrier(self);
  }

  struct Stage {
    void* p = nullptr;
    std::size_t cap = 0;
  };

  Runtime* rt_;
  std::vector<int> members_;
  CollectiveSelector selector_;
  std::vector<std::array<std::uint64_t, kCollOpKinds>> seq_;
  std::unique_ptr<sim::Barrier> barrier_;
  bool spans_nodes_ = false;
  std::vector<std::vector<int>> groups_;  // member indices per node, asc node
  std::vector<int> group_of_;             // member index -> group index
  std::unordered_map<std::uint64_t, std::shared_ptr<detail::CollState>> states_;
  std::unordered_map<std::uint64_t, Stage> stages_;
};

}  // namespace hupc::gas
