// upc_forall analogue: affinity-driven loop partitioning.
//
//   upc_forall(i = 0; i < N; i++; &a[i]) body;
//
// becomes
//
//   co_await gas::forall(t, a, [&](std::size_t i, T& elem) {...});
//
// Each rank executes exactly the iterations whose element it owns, touching
// them through its private slice (no translation overhead — the owner
// always has castable access), and charges the loop's compute/memory cost.
// An index-affinity variant (`upc_forall(...; i)` — round-robin by index)
// is provided as forall_cyclic.
#pragma once

#include <cstdint>
#include <optional>

#include "gas/collectives.hpp"
#include "gas/global_ptr.hpp"
#include "gas/runtime.hpp"
#include "sim/sim.hpp"

namespace hupc::gas {

/// Affinity by element: rank r runs iterations i with a.owner_of(i) == r.
/// `body(i, element)` runs inline (real data); the loop charges
/// `seconds_per_element` of compute plus the touched bytes.
template <class T, class Body>
[[nodiscard]] sim::Task<void> forall(Thread& self, const SharedArray<T>& a,
                                     Body body,
                                     double seconds_per_element = 1e-9) {
  std::uint64_t mine = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.owner_of(i) == self.rank()) {
      body(i, *a.at(i).raw);
      ++mine;
    }
  }
  co_await self.compute(static_cast<double>(mine) * seconds_per_element);
  co_await self.stream_local(static_cast<double>(mine) * sizeof(T));
}

/// Replicated all-read reduction: every rank walks EVERY element through
/// the fine-grained shared path and folds it with `op(acc, value)`, so each
/// rank ends with the full result without a collective tree — the naive
/// `for (i...) acc = op(acc, a[i])` UPC idiom. Remote elements cost one
/// round trip each; pass `cache` to serve them through a read-cache epoch
/// instead (one round trip per line — consecutive elements of a remote
/// block then hit at local cost).
template <class T, class Op>
[[nodiscard]] sim::Task<T> reduce_gather(
    Thread& self, const SharedArray<T>& a, T init, Op op,
    const comm::CacheParams* cache = nullptr) {
  std::optional<CachedEpoch> epoch;
  if (cache != nullptr) epoch.emplace(self, *cache);
  T acc = init;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = op(acc, co_await self.get(a.at(i)));
  }
  co_return acc;
}

/// Collective-tree reduction: each rank folds ONLY the elements it owns
/// (in ascending index order, at private-access cost) and the partials
/// combine through `coll.allreduce_value` — a topology-aware tree instead
/// of every rank walking every element. Every rank of `coll`'s member set
/// must call this; `init` must be the identity of `op` (each rank seeds
/// its local fold with it, so a non-identity init would be folded once
/// per member). Bit-identical across collective algorithms whenever `op`
/// is exactly associative + commutative.
template <class T, class Op>
[[nodiscard]] sim::Task<T> reduce_gather(Thread& self, Collectives& coll,
                                         const SharedArray<T>& a, T init, Op op,
                                         CollAlgo algo = CollAlgo::automatic) {
  T acc = init;
  std::uint64_t mine = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.owner_of(i) == self.rank()) {
      acc = op(acc, *a.at(i).raw);
      ++mine;
    }
  }
  co_await self.compute(static_cast<double>(mine) * 1e-9);
  co_await self.stream_local(static_cast<double>(mine) * sizeof(T));
  co_return co_await coll.allreduce_value(self, acc, op, algo);
}

/// Affinity by index (upc_forall with an integer affinity expression):
/// rank r runs iterations i with i % THREADS == r. The body receives only
/// the index; shared accesses inside must go through the usual operations.
template <class Body>
[[nodiscard]] sim::Task<void> forall_cyclic(Thread& self, std::size_t n,
                                            Body body,
                                            double seconds_per_iteration = 1e-9) {
  std::uint64_t mine = 0;
  const auto threads = static_cast<std::size_t>(self.threads());
  for (std::size_t i = static_cast<std::size_t>(self.rank()); i < n;
       i += threads) {
    body(i);
    ++mine;
  }
  co_await self.compute(static_cast<double>(mine) * seconds_per_iteration);
}

}  // namespace hupc::gas
