// Calibration self-check: measures every model endpoint DESIGN.md §6 fits
// a constant against, in one place. If a refactor drifts a cost model,
// this bench shows which knob moved.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "gas/gas.hpp"
#include "net/network.hpp"
#include "sim/sim.hpp"
#include "stream/stream.hpp"
#include "util/cli.hpp"

namespace {

using namespace hupc;  // NOLINT

double node_stream_bw() {
  sim::Engine e;
  gas::Runtime rt(e, bench::make_config("lehman", 1, 8));
  return stream::hybrid_triad(rt, 4 << 20, 0, core::SubModel::openmp)
      .gbytes_per_s;
}

double single_flow_gbs() {
  sim::Engine e;
  const auto m = topo::lehman(2);
  net::Network nw(e, m, net::ib_qdr(), net::ConnectionMode::per_process, 8);
  sim::spawn(e, [](net::Network& n) -> sim::Task<void> {
    co_await n.rma({.src_node = 0, .src_ep = 0, .dst_node = 1, .bytes = 1e9});
  }(nw));
  e.run();
  return 1.0 / sim::to_seconds(e.now());
}

double nic_aggregate_gbs() {
  sim::Engine e;
  const auto m = topo::lehman(2);
  net::Network nw(e, m, net::ib_qdr(), net::ConnectionMode::per_process, 8);
  for (int ep = 0; ep < 4; ++ep) {
    sim::spawn(e, [](net::Network& n, int endpoint) -> sim::Task<void> {
      co_await n.rma(
          {.src_node = 0, .src_ep = endpoint, .dst_node = 1, .bytes = 1e9});
    }(nw, ep));
  }
  e.run();
  return 4.0 / sim::to_seconds(e.now());
}

double small_message_rtt_us() {
  sim::Engine e;
  const auto m = topo::lehman(2);
  net::Network nw(e, m, net::ib_qdr(), net::ConnectionMode::per_process, 8);
  sim::spawn(e, [](net::Network& n) -> sim::Task<void> {
    co_await n.rma({.src_node = 0, .src_ep = 0, .dst_node = 1, .bytes = 8});
    co_await n.rma({.src_node = 1, .src_ep = 0, .dst_node = 0, .bytes = 8});
  }(nw));
  e.run();
  return sim::to_micros(e.now());
}

double translation_slowdown() {
  // 8 threads, as in Table 3.1: the memory share per thread sets the
  // privatized baseline the translation overhead is compared against.
  auto run = [](bool privatized) {
    sim::Engine e;
    gas::Runtime rt(e, bench::make_config("lehman", 1, 8));
    rt.spmd([privatized](gas::Thread& t) -> sim::Task<void> {
      co_await t.shared_loop(t.rank() ^ 1, 1 << 20, 24.0, privatized);
    });
    rt.run_to_completion();
    return sim::to_seconds(e.now());
  };
  return run(false) / run(true);
}

double numa_penalty_measured() {
  auto run = [](int socket) {
    sim::Engine e;
    mem::MemorySystem ms(e, topo::lehman(1));
    sim::spawn(e, [](mem::MemorySystem& mem, int s) -> sim::Task<void> {
      co_await mem.access(topo::HwLoc{0, s, 0, 0}, topo::HwLoc{0, 0, 0, 0},
                          100000, 8.0);
    }(ms, socket));
    e.run();
    return sim::to_seconds(e.now());
  };
  return run(1) / run(0);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.reject_unread(argv[0]);
  bench::banner("Calibration self-check",
                "every DESIGN.md §6 endpoint, measured from the live model");

  util::Table table({"Endpoint", "Measured", "Target (paper)"});
  table.add_row({"Lehman node STREAM triad (GB/s)",
                 util::Table::num(node_stream_bw(), 1), "23.4 - 24.5"});
  table.add_row({"QDR single-flow rate (GB/s)",
                 util::Table::num(single_flow_gbs(), 2), "~1.5 (Fig 4.2b)"});
  table.add_row({"QDR NIC aggregate (GB/s)",
                 util::Table::num(nic_aggregate_gbs(), 2), "~2.4 (Fig 4.2b)"});
  table.add_row({"QDR 8 B round trip (us)",
                 util::Table::num(small_message_rtt_us(), 1),
                 "2 - 4 (Fig 4.2a)"});
  table.add_row({"Shared-pointer translation slowdown (x)",
                 util::Table::num(translation_slowdown(), 1),
                 "~7 (Table 3.1: 23.2/3.2)"});
  table.add_row({"NUMA remote-access penalty (x)",
                 util::Table::num(numa_penalty_measured(), 2),
                 "1.15 - 1.40 (thesis 2.1)"});
  table.print(std::cout);
  return 0;
}
