// Ablation: the asynchronous completion layer (src/async) on a halo
// exchange — each rank ships a small ghost-zone message to its four ring
// neighbours on either side every step. The blocking id waits out each
// transfer before issuing the next one and only then computes, so every
// step pays eight serialized wire latencies plus the stencil update. The
// async id launches all eight puts through Thread::launch_async, computes
// the interior while they are in flight, and settles the step with one
// when_all — the thesis §4.2 overlap discipline expressed as futures.
//
// Runs on Pyramid's GigE conduit with small messages, so the exchange is
// latency-dominated (~45 us wire latency against ~7 us of sender
// occupancy per message): exactly the regime where blocking waitsync
// exposes the full delivery time of every message while split-phase
// injection pays only the per-message gap plus ONE exposed latency
// (Bell et al.'s observation that overlap buys the most on high-latency
// networks). The report gates async-vs-blocking step time at >= 2x.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "async/future.hpp"
#include "bench_common.hpp"
#include "perf/runner.hpp"
#include "sim/sim.hpp"
#include "trace/trace.hpp"

namespace {

using namespace hupc;  // NOLINT

constexpr int kThreads = 64;
constexpr int kNodes = 8;
constexpr int kNeighbors = 7;  // each side, node-strided (all off-node)
// Peers sit a whole node apart so every ghost message is an inter-node
// RMA (same-node neighbours would take the shared-memory path and hide
// the wire latency this ablation is about).
constexpr int kStride = kThreads / kNodes;
constexpr std::size_t kMsgBytes = 128;  // latency-dominated ghost zone
constexpr double kComputeSeconds = 250e-6;  // interior stencil update

struct HaloResult {
  double step_us = 0.0;   // modeled microseconds per step (mean)
  double total_s = 0.0;   // modeled seconds for the whole run
  int steps = 0;
};

sim::Task<void> halo_step_blocking(gas::Thread& t) {
  for (int d = 1; d <= kNeighbors; ++d) {
    const int up = (t.rank() + d * kStride) % t.threads();
    const int down = (t.rank() - d * kStride + t.threads()) % t.threads();
    co_await t.copy_raw(up, nullptr, nullptr, kMsgBytes);
    co_await t.copy_raw(down, nullptr, nullptr, kMsgBytes);
  }
  co_await t.compute(kComputeSeconds);
  co_await t.barrier();
}

sim::Task<void> halo_step_async(gas::Thread& t) {
  std::vector<async::future<>> pending;
  pending.reserve(2 * kNeighbors);
  for (int d = 1; d <= kNeighbors; ++d) {
    const int up = (t.rank() + d * kStride) % t.threads();
    const int down = (t.rank() - d * kStride + t.threads()) % t.threads();
    pending.push_back(
        t.launch_async(t.copy_raw(up, nullptr, nullptr, kMsgBytes)));
    pending.push_back(
        t.launch_async(t.copy_raw(down, nullptr, nullptr, kMsgBytes)));
  }
  // The interior update rides under the in-flight ghost puts.
  co_await t.compute(kComputeSeconds);
  co_await async::when_all(std::move(pending)).wait();
  co_await t.barrier();
}

HaloResult run_halo(perf::Context& ctx, bool async, trace::Tracer& tracer) {
  const int steps = ctx.smoke() ? 20 : 50;

  sim::Engine engine;
  auto config = bench::make_config("pyramid", kNodes, kThreads,
                                   gas::Backend::processes, "gige");
  config.tracer = &tracer;
  gas::Runtime rt(engine, config);

  rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    for (int s = 0; s < steps; ++s) {
      if (async) {
        co_await halo_step_async(t);
      } else {
        co_await halo_step_blocking(t);
      }
    }
  });
  rt.run_to_completion();

  HaloResult r;
  r.steps = steps;
  r.total_s = sim::to_seconds(engine.now());
  r.step_us = r.total_s / steps * 1e6;
  return r;
}

void run_variant(perf::Context& ctx, bool async) {
  trace::Tracer tracer;
  const HaloResult r = run_halo(ctx, async, tracer);

  ctx.set_config("machine", "pyramid");
  ctx.set_config("conduit", "gige");
  ctx.set_config("backend", "processes");
  ctx.set_config("threads", std::to_string(kThreads));
  ctx.set_config("nodes", std::to_string(kNodes));
  ctx.set_config("neighbors", std::to_string(2 * kNeighbors));
  ctx.set_config("msg_bytes", std::to_string(kMsgBytes));
  ctx.set_config("steps", std::to_string(r.steps));
  ctx.set_config("async", async ? "on" : "off");
  ctx.report("steptime", r.step_us, "us/step",
             perf::Direction::lower_is_better);
  ctx.report_trace_counters(
      tracer, {"net.msg", "net.bytes", "async.copy.issued",
               "async.copy.completed", "async.copy.failed"});
}

PERF_BENCHMARK("halo.exchange.blocking") { run_variant(ctx, /*async=*/false); }
PERF_BENCHMARK("halo.exchange.async") { run_variant(ctx, /*async=*/true); }

int report(std::ostream& os, const std::vector<perf::Result>& results) {
  const auto* blocking =
      bench::find_result(results, "halo.exchange.blocking");
  const auto* async = bench::find_result(results, "halo.exchange.async");
  if (blocking == nullptr || async == nullptr) return 0;  // filtered out

  const double blk = blocking->median("steptime");
  const double asy = async->median("steptime");
  const double speedup = asy > 0.0 ? blk / asy : 0.0;

  os << "\nAsync-completion ablation on the ring halo exchange (" << kThreads
     << " ranks, " << kNodes << " nodes, GigE, " << 2 * kNeighbors
     << " x " << kMsgBytes << " B per step)\n";
  util::Table table({"Exchange", "us/step", "vs blocking"});
  table.add_row({"blocking waitsync", util::Table::num(blk, 3), "1.00"});
  table.add_row({"async when_all", util::Table::num(asy, 3),
                 util::Table::num(speedup, 2)});
  table.print(os);

  char line[96];
  std::snprintf(line, sizeof line,
                "\nAsync overlap speedup over blocking: %.2fx %s\n", speedup,
                speedup >= 2.0 ? "(PASS >= 2x)" : "(FAIL < 2x)");
  os << line;
  return speedup >= 2.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const perf::Runner runner("bench_ablation_async", argc, argv);
  bench::banner(
      runner.human_out(),
      "Ablation — async completion layer on a latency-bound halo exchange",
      "futures + when_all overlap what blocking waitsync serializes: eight "
      "in-flight ghost puts share the wire latency the blocking loop pays "
      "eight times (thesis §4.2)");
  return runner.main([&](const std::vector<perf::Result>& results) {
    return report(runner.human_out(), results);
  });
}
