// Ablation: per-destination software coalescing (src/comm) on the GUPS
// fine-grained access pattern — the Berkeley-UPC/GASNet-VIS aggregation
// story. The naive variant pays one network API call per remote update;
// the coalesced variant runs the IDENTICAL loop inside a Thread
// coalescing epoch, so the runtime batches updates per destination node
// and amortizes the per-message overhead. The grouped (thread-group
// proxy) variant is shown as the hand-optimized upper bound.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sim/sim.hpp"
#include "stream/random_access.hpp"
#include "util/cli.hpp"

namespace {

using namespace hupc;  // NOLINT

stream::GupsResult run_variant(int threads, int nodes, int log2_table,
                               std::uint64_t updates,
                               stream::GupsVariant variant,
                               const comm::Params& coalesce) {
  sim::Engine engine;
  gas::Runtime rt(engine,
                  bench::make_config("lehman", nodes, threads,
                                     gas::Backend::processes, "ib-qdr"));
  stream::RandomAccess ra(rt, log2_table);
  return ra.run(variant, updates, /*passes=*/1, coalesce);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int threads = static_cast<int>(cli.get_int("threads", 64));
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  const int log2_table = static_cast<int>(cli.get_int("log2_table", 16));
  const auto updates =
      static_cast<std::uint64_t>(cli.get_int("updates", 1500));

  bench::banner(
      "Ablation — software message coalescing on RandomAccess (GUPS)",
      "aggregating fine-grained remote updates per destination node "
      "amortizes the per-message API cost (thesis §4.3 aggregation)");

  const auto naive = run_variant(threads, nodes, log2_table, updates,
                                 stream::GupsVariant::naive, {});

  std::printf("\n(a) Coalescing buffer sweep (%d ranks, %d nodes, QDR IB)\n",
              threads, nodes);
  util::Table table({"Buffer (ops x bytes)", "GUPS", "vs naive"});
  table.add_row({"off (naive)", util::Table::num(naive.gups, 5), "1.00"});
  double best = 0.0;
  for (const std::size_t ops : {16u, 64u, 256u, 512u}) {
    comm::Params p;
    p.max_ops = ops;
    p.max_bytes = 16384;
    const auto r = run_variant(threads, nodes, log2_table, updates,
                               stream::GupsVariant::coalesced, p);
    best = std::max(best, r.gups);
    table.add_row({std::to_string(ops) + " x 16K",
                   util::Table::num(r.gups, 5),
                   util::Table::num(r.gups / naive.gups, 2)});
  }
  const auto grouped = run_variant(threads, nodes, log2_table, updates,
                                   stream::GupsVariant::grouped, {});
  table.add_row({"hand-bucketed (grouped)", util::Table::num(grouped.gups, 5),
                 util::Table::num(grouped.gups / naive.gups, 2)});
  table.print(std::cout);

  std::printf("\nBest coalesced speedup over naive: %.2fx %s\n",
              best / naive.gups,
              best / naive.gups >= 1.5 ? "(PASS >= 1.5x)" : "(FAIL < 1.5x)");
  return best / naive.gups >= 1.5 ? 0 : 1;
}
