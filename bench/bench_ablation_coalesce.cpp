// Ablation: per-destination software coalescing (src/comm) on the GUPS
// fine-grained access pattern — the Berkeley-UPC/GASNet-VIS aggregation
// story. The naive variant pays one network API call per remote update;
// the coalesced variant runs the IDENTICAL loop inside a Thread
// coalescing epoch, so the runtime batches updates per destination node
// and amortizes the per-message overhead. The grouped (thread-group
// proxy) variant is shown as the hand-optimized upper bound.
//
// Harnessed under src/perf: each variant is one registered benchmark
// (`gups.coalesce.*`) reporting a modeled `gups` metric plus the trace
// counters that explain it (messages on the wire, aggregated ops); the
// paper-style table below is a formatter over the same samples.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "perf/runner.hpp"
#include "sim/sim.hpp"
#include "stream/random_access.hpp"
#include "trace/trace.hpp"

namespace {

using namespace hupc;  // NOLINT

constexpr int kThreads = 64;
constexpr int kNodes = 8;
constexpr int kLog2Table = 16;

void run_variant(perf::Context& ctx, stream::GupsVariant variant,
                 const comm::Params& coalesce) {
  const std::uint64_t updates = ctx.smoke() ? 1500 : 6000;
  trace::Tracer tracer;
  sim::Engine engine;
  auto config = bench::make_config("lehman", kNodes, kThreads,
                                   gas::Backend::processes, "ib-qdr");
  config.tracer = &tracer;
  gas::Runtime rt(engine, config);
  stream::RandomAccess ra(rt, kLog2Table);
  const auto r = ra.run(variant, updates, /*passes=*/1, coalesce);

  ctx.set_config("machine", "lehman");
  ctx.set_config("conduit", "ib-qdr");
  ctx.set_config("backend", "processes");
  ctx.set_config("threads", std::to_string(kThreads));
  ctx.set_config("nodes", std::to_string(kNodes));
  ctx.set_config("log2_table", std::to_string(kLog2Table));
  ctx.set_config("updates", std::to_string(updates));
  ctx.report("gups", r.gups, "GUPS");
  ctx.report_trace_counters(
      tracer, {"net.msg", "net.bytes", "net.aggregated", "net.coalesced_ops",
               "comm.flush.msgs"});
}

comm::Params buffer_params(std::size_t ops) {
  comm::Params p;
  p.max_ops = ops;
  p.max_bytes = 16384;
  return p;
}

PERF_BENCHMARK("gups.coalesce.naive") {
  run_variant(ctx, stream::GupsVariant::naive, {});
}
PERF_BENCHMARK("gups.coalesce.buf16") {
  run_variant(ctx, stream::GupsVariant::coalesced, buffer_params(16));
}
PERF_BENCHMARK("gups.coalesce.buf64") {
  run_variant(ctx, stream::GupsVariant::coalesced, buffer_params(64));
}
PERF_BENCHMARK("gups.coalesce.buf256") {
  run_variant(ctx, stream::GupsVariant::coalesced, buffer_params(256));
}
PERF_BENCHMARK("gups.coalesce.buf512") {
  run_variant(ctx, stream::GupsVariant::coalesced, buffer_params(512));
}
PERF_BENCHMARK("gups.coalesce.grouped") {
  run_variant(ctx, stream::GupsVariant::grouped, {});
}

int report(std::ostream& os, const std::vector<perf::Result>& results) {
  const perf::Result* naive = bench::find_result(results, "gups.coalesce.naive");
  if (naive == nullptr) return 0;  // filtered out; nothing to gate against
  const double naive_gups = naive->median("gups");

  os << "\n(a) Coalescing buffer sweep (" << kThreads << " ranks, "
     << kNodes << " nodes, QDR IB)\n";
  util::Table table({"Buffer (ops x bytes)", "GUPS", "vs naive"});
  table.add_row({"off (naive)", util::Table::num(naive_gups, 5), "1.00"});
  double best = 0.0;
  for (const int ops : {16, 64, 256, 512}) {
    const auto* r = bench::find_result(
        results, "gups.coalesce.buf" + std::to_string(ops));
    if (r == nullptr) continue;
    const double gups = r->median("gups");
    best = std::max(best, gups);
    table.add_row({std::to_string(ops) + " x 16K", util::Table::num(gups, 5),
                   util::Table::num(gups / naive_gups, 2)});
  }
  if (const auto* grouped = bench::find_result(results, "gups.coalesce.grouped");
      grouped != nullptr) {
    const double gups = grouped->median("gups");
    table.add_row({"hand-bucketed (grouped)", util::Table::num(gups, 5),
                   util::Table::num(gups / naive_gups, 2)});
  }
  table.print(os);

  if (best == 0.0) return 0;
  char line[96];
  std::snprintf(line, sizeof line,
                "\nBest coalesced speedup over naive: %.2fx %s\n",
                best / naive_gups,
                best / naive_gups >= 1.5 ? "(PASS >= 1.5x)" : "(FAIL < 1.5x)");
  os << line;
  return best / naive_gups >= 1.5 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const perf::Runner runner("bench_ablation_coalesce", argc, argv);
  bench::banner(
      runner.human_out(),
      "Ablation — software message coalescing on RandomAccess (GUPS)",
      "aggregating fine-grained remote updates per destination node "
      "amortizes the per-message API cost (thesis §4.3 aggregation)");
  return runner.main([&](const std::vector<perf::Result>& results) {
    return report(runner.human_out(), results);
  });
}
