// Shared UTS run driver for the Fig 3.3 / Table 3.2 / ablation benches.
#pragma once

#include <memory>
#include <string>

#include "bench_common.hpp"
#include "gas/gas.hpp"
#include "sched/work_stealing.hpp"
#include "sim/sim.hpp"
#include "trace/trace.hpp"
#include "uts/tree.hpp"

namespace hupc::bench {

struct UtsRun {
  double seconds = 0;
  double mnodes_per_s = 0;
  double local_steal_ratio = 0;
  std::uint64_t nodes = 0;
  std::uint64_t local_steals = 0;
  std::uint64_t remote_steals = 0;
  std::uint64_t failed_probes = 0;
};

enum class UtsVariant { baseline, local_steal, local_steal_diffusion };

[[nodiscard]] inline const char* to_string(UtsVariant v) {
  switch (v) {
    case UtsVariant::baseline: return "Baseline";
    case UtsVariant::local_steal: return "Local-stealing";
    case UtsVariant::local_steal_diffusion: return "Local-stealing + Rapid-diffusion";
  }
  return "?";
}

/// One UTS run: `threads` ranks over `nodes` Pyramid nodes on `conduit`.
/// Pass a tracer to collect a structured event trace of the run (the caller
/// owns it; clear() between runs to keep runs separate).
[[nodiscard]] inline UtsRun run_uts(const uts::TreeParams& tree, int threads,
                                    int nodes, const std::string& conduit,
                                    UtsVariant variant, int granularity,
                                    trace::Tracer* tracer = nullptr) {
  sim::Engine engine;
  auto config = make_config("pyramid", nodes, threads,
                            gas::Backend::processes, conduit);
  config.tracer = tracer;
  gas::Runtime rt(engine, config);
  sched::StealParams params;
  params.policy = variant == UtsVariant::baseline
                      ? sched::VictimPolicy::random
                      : sched::VictimPolicy::local_first;
  params.rapid_diffusion = variant == UtsVariant::local_steal_diffusion;
  params.granularity = granularity;
  params.chunk = granularity;

  sched::WorkStealing<uts::Node> ws(
      rt, params, [&tree](const uts::Node& n, std::vector<uts::Node>& out) {
        uts::expand(tree, n, out);
      });
  ws.seed_work(0, {uts::root_node(tree)});
  rt.spmd([&ws](gas::Thread& t) -> sim::Task<void> { co_await ws.run(t); });
  rt.run_to_completion();

  UtsRun result;
  result.seconds = sim::to_seconds(engine.now());
  result.nodes = ws.total_processed();
  result.mnodes_per_s =
      static_cast<double>(result.nodes) / result.seconds / 1e6;
  result.local_steal_ratio = ws.local_steal_ratio();
  for (int r = 0; r < threads; ++r) {
    const auto& s = ws.stats(r);
    result.local_steals += s.local_steals;
    result.remote_steals += s.remote_steals;
    result.failed_probes += s.failed_probes;
  }
  return result;
}

}  // namespace hupc::bench
