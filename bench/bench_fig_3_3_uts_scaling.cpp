// Reproduces Fig 3.3: "Parallel scalability on 16 cluster nodes (8-way SMP)
// for the UPC implementation of UTS" — throughput (Mnodes/s) of the three
// stealing variants over 16..128 threads on InfiniBand and Ethernet.
//
// Paper shape: the optimized variants consistently beat the baseline on
// both networks, with the largest relative gain on Ethernet (~2x at 128
// threads); steal granularity 8 on InfiniBand, 20 on Ethernet.
//
// Harnessed under src/perf: `uts.scaling.<conduit>.t<T>.<variant>` per
// point. The smoke tier runs the ~0.5M-node quick tree at 16/32 threads;
// the full tier runs the thesis's 4-million-class tree (seed 28 ->
// 4,576,257 nodes) across the whole 16..128 sweep. For a chrome://tracing
// view of a UTS run use `examples/uts_search --trace=FILE`.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "perf/runner.hpp"
#include "uts_driver.hpp"

namespace {

using namespace hupc;  // NOLINT

constexpr int kThreadSweep[] = {16, 32, 64, 128};
constexpr int kNodes = 16;

struct Net {
  const char* conduit;
  int granularity;
};
constexpr Net kNets[] = {{"ib-ddr", 8}, {"gige", 20}};

const char* variant_tag(bench::UtsVariant v) {
  switch (v) {
    case bench::UtsVariant::baseline: return "baseline";
    case bench::UtsVariant::local_steal: return "local";
    case bench::UtsVariant::local_steal_diffusion: return "diffusion";
  }
  return "?";
}

void run_point(perf::Context& ctx, const Net& net, int threads,
               bench::UtsVariant variant) {
  uts::TreeParams tree = uts::paper_tree();
  if (ctx.smoke()) tree.root_seed = 42;
  trace::Tracer tracer;
  const auto r = bench::run_uts(tree, threads, kNodes, net.conduit, variant,
                                net.granularity, &tracer);

  ctx.set_config("machine", "pyramid");
  ctx.set_config("conduit", net.conduit);
  ctx.set_config("backend", "processes");
  ctx.set_config("threads", std::to_string(threads));
  ctx.set_config("nodes", std::to_string(kNodes));
  ctx.set_config("granularity", std::to_string(net.granularity));
  ctx.set_config("tree_seed", std::to_string(tree.root_seed));
  ctx.set_config("variant", to_string(variant));
  ctx.report("mnodes_per_s", r.mnodes_per_s, "Mnodes/s");
  ctx.report("local_steal_ratio", r.local_steal_ratio, "fraction");
  ctx.report_counter("tree_nodes", r.nodes);
  ctx.report_counter("local_steals", r.local_steals);
  ctx.report_counter("remote_steals", r.remote_steals);
  ctx.report_trace_counters(tracer, {"net.msg", "net.bytes",
                                     "sched.steal.attempt", "sched.steal.fail"});
}

std::string point_id(const char* conduit, int threads, bench::UtsVariant v) {
  return std::string("uts.scaling.") + conduit + ".t" +
         std::to_string(threads) + "." + variant_tag(v);
}

void register_benchmarks() {
  for (const Net& net : kNets) {
    for (const int threads : kThreadSweep) {
      for (const auto variant :
           {bench::UtsVariant::baseline, bench::UtsVariant::local_steal,
            bench::UtsVariant::local_steal_diffusion}) {
        perf::Benchmark b;
        b.id = point_id(net.conduit, threads, variant);
        b.in_smoke = threads <= 32;
        b.fn = [net, threads, variant](perf::Context& ctx) {
          run_point(ctx, net, threads, variant);
        };
        perf::Registry::instance().add(std::move(b));
      }
    }
  }
}

int report(std::ostream& os, const std::vector<perf::Result>& results) {
  for (const Net& net : kNets) {
    util::Table table({"Threads", "Baseline (Mn/s)", "Local-steal (Mn/s)",
                       "Local+diffusion (Mn/s)", "Best/baseline"});
    for (const int threads : kThreadSweep) {
      const auto* base = bench::find_result(
          results, point_id(net.conduit, threads, bench::UtsVariant::baseline));
      const auto* local = bench::find_result(
          results,
          point_id(net.conduit, threads, bench::UtsVariant::local_steal));
      const auto* diff = bench::find_result(
          results, point_id(net.conduit, threads,
                            bench::UtsVariant::local_steal_diffusion));
      if (base == nullptr || local == nullptr || diff == nullptr) continue;
      const double b = base->median("mnodes_per_s");
      const double l = local->median("mnodes_per_s");
      const double d = diff->median("mnodes_per_s");
      const double best = std::max(l, d);
      table.add_row({std::to_string(threads), util::Table::num(b, 1),
                     util::Table::num(l, 1), util::Table::num(d, 1),
                     util::Table::num(best / b, 2) + "x"});
    }
    if (table.rows() == 0) continue;
    os << "\n--- Network: " << net.conduit << " (steal granularity = "
       << net.granularity << ") ---\n";
    table.print(os);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  const perf::Runner runner("bench_fig_3_3_uts_scaling", argc, argv);
  bench::banner(runner.human_out(),
                "Fig 3.3 — UTS scalability, 16 nodes, 3 variants x 2 networks",
                "optimized > baseline everywhere; ~2x gain on Ethernet at "
                "128 threads; granularity IB=8, Eth=20");
  return runner.main([&](const std::vector<perf::Result>& results) {
    return report(runner.human_out(), results);
  });
}
