// Reproduces Fig 3.3: "Parallel scalability on 16 cluster nodes (8-way SMP)
// for the UPC implementation of UTS" — throughput (Mnodes/s) of the three
// stealing variants over 16..128 threads on InfiniBand and Ethernet.
//
// Paper shape: the optimized variants consistently beat the baseline on
// both networks, with the largest relative gain on Ethernet (~2x at 128
// threads); steal granularity 8 on InfiniBand, 20 on Ethernet.
// --trace=FILE writes a chrome://tracing JSON of the final (largest,
// local+diffusion) configuration.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "uts_driver.hpp"
#include "util/cli.hpp"

namespace {

using namespace hupc;  // NOLINT

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Default tree: the thesis's 4-million-class binomial tree (seed 28 ->
  // 4,576,257 nodes). --quick switches to a ~0.5M-node tree for CI.
  uts::TreeParams tree = uts::paper_tree();
  if (cli.get_bool("quick", false)) tree.root_seed = 42;
  const int nodes = static_cast<int>(cli.get_int("nodes", 16));
  const std::string trace_file = cli.get("trace", "");
  std::unique_ptr<trace::Tracer> tracer;
  if (!trace_file.empty()) tracer = std::make_unique<trace::Tracer>();

  bench::banner("Fig 3.3 — UTS scalability, 16 nodes, 3 variants x 2 networks",
                "optimized > baseline everywhere; ~2x gain on Ethernet at "
                "128 threads; granularity IB=8, Eth=20");

  for (const auto& [conduit, granularity] :
       {std::pair{std::string("ib-ddr"), 8}, {std::string("gige"), 20}}) {
    std::printf("\n--- Network: %s (steal granularity = %d) ---\n",
                conduit.c_str(), granularity);
    util::Table table({"Threads", "Baseline (Mn/s)", "Local-steal (Mn/s)",
                       "Local+diffusion (Mn/s)", "Best/baseline"});
    for (int threads : {16, 32, 64, 128}) {
      const auto base = bench::run_uts(tree, threads, nodes, conduit,
                                       bench::UtsVariant::baseline, granularity);
      const auto local = bench::run_uts(tree, threads, nodes, conduit,
                                        bench::UtsVariant::local_steal,
                                        granularity);
      // Only the diffusion run is traced; each run starts a fresh trace, so
      // the exported file holds the last (largest) configuration.
      if (tracer) tracer->clear();
      const auto diff = bench::run_uts(
          tree, threads, nodes, conduit,
          bench::UtsVariant::local_steal_diffusion, granularity, tracer.get());
      const double best = std::max(local.mnodes_per_s, diff.mnodes_per_s);
      table.add_row({std::to_string(threads),
                     util::Table::num(base.mnodes_per_s, 1),
                     util::Table::num(local.mnodes_per_s, 1),
                     util::Table::num(diff.mnodes_per_s, 1),
                     util::Table::num(best / base.mnodes_per_s, 2) + "x"});
    }
    table.print(std::cout);
  }
  std::printf("\nTree: binomial, seed %u, %s mode\n", tree.root_seed,
              cli.get_bool("quick", false) ? "quick" : "full");
  if (tracer) {
    std::ofstream os(trace_file);
    tracer->export_chrome(os);
    if (!os) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_file.c_str());
      return 1;
    }
    std::printf("trace: %llu events (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(tracer->recorded()),
                static_cast<unsigned long long>(tracer->dropped()),
                trace_file.c_str());
  }
  return 0;
}
