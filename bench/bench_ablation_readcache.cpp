// Ablation: the software read cache (src/comm/read_cache) on the
// read-dominated gather workload — bursts of consecutive table elements
// read through fine-grained remote gets. Uncached, every element pays a
// full remote round trip; inside a read-cache epoch the first element of
// each remote burst fills an aligned line in ONE round trip and the rest
// of the burst serves at local cost, so the modeled read rate scales with
// the line size until eviction pressure bites.
//
// Harnessed under src/perf: each geometry is one registered benchmark
// (`gather.readcache.*`) reporting a modeled `mreads` metric plus the
// trace counters that explain it (wire messages, cache hits/misses/
// evictions/invalidations). The cache-off id runs the IDENTICAL loop with
// no epoch open and must stay bit-identical to a build without the cache.
//
// Debug knobs (consumed before the perf::Runner sees argv):
//   --read-cache=on|off      off forces every cached id to run uncached
//   --cache-lines=N          override the line count of every cached id
//   --cache-line-bytes=B     override the line size of every cached id
// Baseline-gated CI runs pass none of these, so the per-id geometries
// below are what the checked-in baselines describe.
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "perf/runner.hpp"
#include "sim/sim.hpp"
#include "stream/random_access.hpp"
#include "trace/trace.hpp"

namespace {

using namespace hupc;  // NOLINT

constexpr int kThreads = 64;
constexpr int kNodes = 8;
constexpr int kLog2Table = 16;

struct CacheOverrides {
  bool enabled = true;       // --read-cache=off flips this
  std::size_t lines = 0;       // 0: keep the per-id geometry
  std::size_t line_bytes = 0;  // 0: keep the per-id geometry
};
CacheOverrides g_overrides;

void run_variant(perf::Context& ctx, bool cached, std::size_t line_bytes,
                 std::size_t lines) {
  stream::GatherParams params;
  params.bursts = ctx.smoke() ? 24 : 64;
  params.burst_len = ctx.smoke() ? 48 : 64;
  params.cached = cached && g_overrides.enabled;
  if (params.cached) {
    params.cache.line_bytes =
        g_overrides.line_bytes != 0 ? g_overrides.line_bytes : line_bytes;
    params.cache.lines = g_overrides.lines != 0 ? g_overrides.lines : lines;
  }

  trace::Tracer tracer;
  sim::Engine engine;
  auto config = bench::make_config("lehman", kNodes, kThreads,
                                   gas::Backend::processes, "ib-qdr");
  config.tracer = &tracer;
  gas::Runtime rt(engine, config);
  stream::RandomAccess ra(rt, kLog2Table);
  const auto r = ra.run_gather(params);

  ctx.set_config("machine", "lehman");
  ctx.set_config("conduit", "ib-qdr");
  ctx.set_config("backend", "processes");
  ctx.set_config("threads", std::to_string(kThreads));
  ctx.set_config("nodes", std::to_string(kNodes));
  ctx.set_config("log2_table", std::to_string(kLog2Table));
  ctx.set_config("bursts", std::to_string(params.bursts));
  ctx.set_config("burst_len", std::to_string(params.burst_len));
  ctx.set_config("read_cache", params.cached ? "on" : "off");
  if (params.cached) {
    ctx.set_config("cache_lines", std::to_string(params.cache.lines));
    ctx.set_config("cache_line_bytes",
                   std::to_string(params.cache.line_bytes));
  }
  // The checksum is the transparency witness: identical for every id.
  ctx.set_config("checksum", std::to_string(r.checksum));
  ctx.report("mreads", r.mreads, "Mreads/s");
  ctx.report_trace_counters(
      tracer, {"net.msg", "net.bytes", "net.aggregated", "gas.cache.hits",
               "gas.cache.misses", "gas.cache.evictions",
               "gas.cache.invalidations"});
}

PERF_BENCHMARK("gather.readcache.off") {
  run_variant(ctx, /*cached=*/false, 0, 0);
}
PERF_BENCHMARK("gather.readcache.line64") {
  run_variant(ctx, /*cached=*/true, /*line_bytes=*/64, /*lines=*/256);
}
PERF_BENCHMARK("gather.readcache.line256") {
  run_variant(ctx, /*cached=*/true, /*line_bytes=*/256, /*lines=*/256);
}
// Deliberately undersized (8 lines, 4-way -> 2 sets): measures how fast
// the win evaporates under eviction pressure.
PERF_BENCHMARK("gather.readcache.tiny") {
  run_variant(ctx, /*cached=*/true, /*line_bytes=*/64, /*lines=*/8);
}

int report(std::ostream& os, const std::vector<perf::Result>& results) {
  const perf::Result* off = bench::find_result(results, "gather.readcache.off");
  if (off == nullptr) return 0;  // filtered out; nothing to gate against
  const double off_mreads = off->median("mreads");

  os << "\nRead-cache ablation on the gather workload (" << kThreads
     << " ranks, " << kNodes << " nodes, QDR IB)\n";
  util::Table table({"Cache geometry", "Mreads/s", "vs off"});
  table.add_row({"off", util::Table::num(off_mreads, 3), "1.00"});
  double best = 0.0;
  const struct {
    const char* id;
    const char* label;
  } rows[] = {
      {"gather.readcache.line64", "256 lines x 64 B"},
      {"gather.readcache.line256", "256 lines x 256 B"},
      {"gather.readcache.tiny", "8 lines x 64 B (thrash)"},
  };
  for (const auto& row : rows) {
    const auto* r = bench::find_result(results, row.id);
    if (r == nullptr) continue;
    const double mreads = r->median("mreads");
    best = std::max(best, mreads);
    table.add_row({row.label, util::Table::num(mreads, 3),
                   util::Table::num(mreads / off_mreads, 2)});
  }
  table.print(os);

  if (best == 0.0) return 0;
  char line[96];
  std::snprintf(line, sizeof line,
                "\nBest cached speedup over off: %.2fx %s\n", best / off_mreads,
                best / off_mreads >= 5.0 ? "(PASS >= 5x)" : "(FAIL < 5x)");
  os << line;
  return best / off_mreads >= 5.0 ? 0 : 1;
}

/// Consume the cache debug flags before perf::Runner (which hard-errors on
/// anything it does not know) parses the rest. Accepts --flag=value and
/// --flag value forms, mirroring util::Cli.
std::vector<const char*> strip_cache_flags(int argc, char** argv) {
  std::vector<const char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  auto parse_size = [](const std::string& flag,
                       const std::string& v) -> std::size_t {
    const long long n = std::stoll(v);
    if (n <= 0) throw std::invalid_argument(flag + ": expected > 0");
    return static_cast<std::size_t>(n);
  };
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    bool inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      inline_value = true;
    }
    if (arg != "--read-cache" && arg != "--cache-lines" &&
        arg != "--cache-line-bytes") {
      kept.push_back(argv[i]);
      continue;
    }
    if (!inline_value) {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + ": missing value");
      }
      value = argv[++i];
    }
    if (arg == "--read-cache") {
      if (value == "on") {
        g_overrides.enabled = true;
      } else if (value == "off") {
        g_overrides.enabled = false;
      } else {
        throw std::invalid_argument("--read-cache: expected on|off, got '" +
                                    value + "'");
      }
    } else if (arg == "--cache-lines") {
      g_overrides.lines = parse_size(arg, value);
    } else {
      g_overrides.line_bytes = parse_size(arg, value);
    }
  }
  return kept;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> args;
  try {
    args = strip_cache_flags(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_ablation_readcache: " << e.what() << '\n';
    return 2;
  }
  const perf::Runner runner("bench_ablation_readcache",
                            static_cast<int>(args.size()), args.data());
  bench::banner(
      runner.human_out(),
      "Ablation — software read cache on the gather (burst-read) workload",
      "caching remote get lines amortizes fine-grained read latency the "
      "same way privatization does for local data (thesis §4.3)");
  return runner.main([&](const std::vector<perf::Result>& results) {
    return report(runner.human_out(), results);
  });
}
