// Ablation: how the locality optimization's payoff scales with network
// latency — sweeping a synthetic conduit from InfiniBand-class to
// Ethernet-class latency while holding bandwidth fixed, isolating the
// term the local-first policy actually removes (remote lock RTTs and
// steal transfers).
#include <cstdio>
#include <iostream>

#include "uts_driver.hpp"
#include "util/cli.hpp"

namespace {

using namespace hupc;  // NOLINT

bench::UtsRun run_with_latency(const uts::TreeParams& tree, int threads,
                               int nodes, double latency_us,
                               bench::UtsVariant variant) {
  sim::Engine engine;
  gas::Config config;
  config.machine = topo::pyramid(nodes);
  config.threads = threads;
  config.conduit = net::ib_ddr();
  config.conduit.latency_s = latency_us * 1e-6;
  gas::Runtime rt(engine, config);

  sched::StealParams params;
  params.policy = variant == bench::UtsVariant::baseline
                      ? sched::VictimPolicy::random
                      : sched::VictimPolicy::local_first;
  params.rapid_diffusion = variant == bench::UtsVariant::local_steal_diffusion;

  sched::WorkStealing<uts::Node> ws(
      rt, params, [&tree](const uts::Node& n, std::vector<uts::Node>& out) {
        uts::expand(tree, n, out);
      });
  ws.seed_work(0, {uts::root_node(tree)});
  rt.spmd([&ws](gas::Thread& t) -> sim::Task<void> { co_await ws.run(t); });
  rt.run_to_completion();

  bench::UtsRun result;
  result.seconds = sim::to_seconds(engine.now());
  result.nodes = ws.total_processed();
  result.mnodes_per_s = static_cast<double>(result.nodes) / result.seconds / 1e6;
  result.local_steal_ratio = ws.local_steal_ratio();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  uts::TreeParams tree = uts::paper_tree();
  if (cli.get_bool("quick", false)) tree.root_seed = 42;
  const int threads = static_cast<int>(cli.get_int("threads", 64));
  const int nodes = static_cast<int>(cli.get_int("nodes", 16));
  cli.reject_unread(argv[0]);

  bench::banner("Ablation — UTS locality gain vs network latency",
                "the local-first gain should grow monotonically with the "
                "cost of going remote");

  util::Table table({"Latency (us)", "Baseline (Mn/s)", "Optimized (Mn/s)",
                     "Gain", "Local steal % (opt)"});
  for (double latency : {1.0, 2.5, 5.0, 10.0, 20.0, 45.0, 90.0}) {
    const auto base = run_with_latency(tree, threads, nodes, latency,
                                       bench::UtsVariant::baseline);
    const auto opt = run_with_latency(
        tree, threads, nodes, latency,
        bench::UtsVariant::local_steal_diffusion);
    table.add_row({util::Table::num(latency, 1),
                   util::Table::num(base.mnodes_per_s, 1),
                   util::Table::num(opt.mnodes_per_s, 1),
                   util::Table::num(opt.mnodes_per_s / base.mnodes_per_s, 2) + "x",
                   util::Table::pct(opt.local_steal_ratio, 1)});
  }
  table.print(std::cout);
  std::printf("\n(%d threads over %d nodes; DDR InfiniBand bandwidths, "
              "latency swept)\n",
              threads, nodes);
  return 0;
}
