// RandomAccess (GUPS) under thread groups — the second application class
// the thesis assigns to the thread-group approach (§4.4). Not a paper
// figure (the thesis names it without measurements); this bench supplies
// the numbers: naive fine-grained remote AMOs vs supernode-privatized +
// bucketed updates, across node counts and both networks.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sim/sim.hpp"
#include "stream/random_access.hpp"
#include "util/cli.hpp"

namespace {

using namespace hupc;  // NOLINT

stream::GupsResult run_gups(int threads, int nodes, const std::string& conduit,
                            stream::GupsVariant variant, int log2_table,
                            std::uint64_t updates) {
  sim::Engine engine;
  auto config = bench::make_config("pyramid", nodes, threads,
                                   gas::Backend::processes, conduit);
  gas::Runtime rt(engine, config);
  stream::RandomAccess ra(rt, log2_table);
  return ra.run(variant, updates);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int log2_table = static_cast<int>(cli.get_int("log2-table", 16));
  const auto updates =
      static_cast<std::uint64_t>(cli.get_int("updates", 8192));

  bench::banner("RandomAccess (GUPS) with thread groups",
                "thesis §4.4 names Random Access as a thread-group "
                "application; bucketed supernode updates vs naive AMOs");

  for (const std::string conduit : {"ib-ddr", "gige"}) {
    std::printf("\n--- Network: %s ---\n", conduit.c_str());
    util::Table table({"Threads/Nodes", "Naive (MUP/s)", "Grouped (MUP/s)",
                       "Gain", "Local updates"});
    for (const auto& [threads, nodes] :
         {std::pair{16, 2}, {32, 4}, {64, 8}, {128, 16}}) {
      const auto naive = run_gups(threads, nodes, conduit,
                                  stream::GupsVariant::naive, log2_table,
                                  updates);
      const auto grouped = run_gups(threads, nodes, conduit,
                                    stream::GupsVariant::grouped, log2_table,
                                    updates);
      char label[32];
      std::snprintf(label, sizeof label, "%d/%d", threads, nodes);
      table.add_row(
          {label, util::Table::num(naive.gups * 1e3, 1),
           util::Table::num(grouped.gups * 1e3, 1),
           util::Table::num(grouped.gups / naive.gups, 1) + "x",
           util::Table::pct(static_cast<double>(grouped.local) /
                                static_cast<double>(grouped.updates),
                            1)});
    }
    table.print(std::cout);
  }
  return 0;
}
