// RandomAccess (GUPS) under thread groups — the second application class
// the thesis assigns to the thread-group approach (§4.4). Not a paper
// figure (the thesis names it without measurements); this bench supplies
// the numbers: naive fine-grained remote AMOs vs supernode-privatized +
// bucketed updates, across node counts and both networks.
//
// Harnessed under src/perf: `gups.groups.<conduit>.t<T>n<N>.<variant>`
// per point; the two largest scales (64/8, 128/16) are full-tier only.
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "perf/runner.hpp"
#include "sim/sim.hpp"
#include "stream/random_access.hpp"
#include "trace/trace.hpp"

namespace {

using namespace hupc;  // NOLINT

constexpr std::pair<int, int> kScales[] = {{16, 2}, {32, 4}, {64, 8}, {128, 16}};
const char* const kConduits[] = {"ib-ddr", "gige"};
constexpr int kLog2Table = 16;

void run_point(perf::Context& ctx, const std::string& conduit, int threads,
               int nodes, stream::GupsVariant variant) {
  const std::uint64_t updates = ctx.smoke() ? 2048 : 8192;
  trace::Tracer tracer;
  sim::Engine engine;
  auto config = bench::make_config("pyramid", nodes, threads,
                                   gas::Backend::processes, conduit);
  config.tracer = &tracer;
  gas::Runtime rt(engine, config);
  stream::RandomAccess ra(rt, kLog2Table);
  const auto r = ra.run(variant, updates);

  ctx.set_config("machine", "pyramid");
  ctx.set_config("conduit", conduit);
  ctx.set_config("backend", "processes");
  ctx.set_config("threads", std::to_string(threads));
  ctx.set_config("nodes", std::to_string(nodes));
  ctx.set_config("log2_table", std::to_string(kLog2Table));
  ctx.set_config("updates", std::to_string(updates));
  ctx.report("gups", r.gups, "GUPS");
  ctx.report("local_fraction",
             static_cast<double>(r.local) / static_cast<double>(r.updates),
             "fraction");
  ctx.report_trace_counters(tracer, {"net.msg", "net.bytes"});
}

std::string point_id(const std::string& conduit, int threads, int nodes,
                     bool grouped) {
  return "gups.groups." + conduit + ".t" + std::to_string(threads) + "n" +
         std::to_string(nodes) + (grouped ? ".grouped" : ".naive");
}

void register_benchmarks() {
  for (const char* const conduit : kConduits) {
    for (const auto& [threads, nodes] : kScales) {
      for (const bool grouped : {false, true}) {
        perf::Benchmark b;
        b.id = point_id(conduit, threads, nodes, grouped);
        b.in_smoke = threads <= 32;
        b.fn = [conduit = std::string(conduit), threads = threads,
                nodes = nodes, grouped](perf::Context& ctx) {
          run_point(ctx, conduit, threads, nodes,
                    grouped ? stream::GupsVariant::grouped
                            : stream::GupsVariant::naive);
        };
        perf::Registry::instance().add(std::move(b));
      }
    }
  }
}

int report(std::ostream& os, const std::vector<perf::Result>& results) {
  for (const char* const conduit : kConduits) {
    util::Table table({"Threads/Nodes", "Naive (MUP/s)", "Grouped (MUP/s)",
                       "Gain", "Local updates"});
    for (const auto& [threads, nodes] : kScales) {
      const auto* naive =
          bench::find_result(results, point_id(conduit, threads, nodes, false));
      const auto* grouped =
          bench::find_result(results, point_id(conduit, threads, nodes, true));
      if (naive == nullptr || grouped == nullptr) continue;
      const double n = naive->median("gups");
      const double g = grouped->median("gups");
      char label[32];
      std::snprintf(label, sizeof label, "%d/%d", threads, nodes);
      table.add_row({label, util::Table::num(n * 1e3, 1),
                     util::Table::num(g * 1e3, 1),
                     util::Table::num(g / n, 1) + "x",
                     util::Table::pct(grouped->median("local_fraction"), 1)});
    }
    if (table.rows() == 0) continue;
    os << "\n--- Network: " << conduit << " ---\n";
    table.print(os);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  const perf::Runner runner("bench_gups_groups", argc, argv);
  bench::banner(runner.human_out(),
                "RandomAccess (GUPS) with thread groups",
                "thesis §4.4 names Random Access as a thread-group "
                "application; bucketed supernode updates vs naive AMOs");
  return runner.main([&](const std::vector<perf::Result>& results) {
    return report(runner.human_out(), results);
  });
}
