// Ablation: flat vs hierarchical all-to-all in gas::Collectives at scale.
// The flat exchange sends one wire message per (src, dst) pair — n^2 of
// them, nearly all inter-node once the team spans the machine — while the
// hierarchical schedule gathers node-locally over shared memory, exchanges
// ONE aggregated message per (node, node) leader pair, and scatters
// node-locally again: G^2 wire messages instead of n^2, the supernode
// discipline of thesis ch. 4 applied to the collective layer itself.
//
// Runs real data (not cost-only copies) on Pyramid's GigE conduit with
// small per-pair blocks, so the exchange is message-count-dominated:
// exactly the regime the CollectiveSelector routes to hier. Every received
// block is verified against the sender's pattern, so the measured schedule
// is also a correct one. The report gates hier-vs-flat exchange time at
// >= 2x on the smoke tier's 256 ranks (32 nodes x 8); the full tier scales
// to 1024 ranks (128 nodes).
//
// Flags: the perf harness set, plus --coll-algo=auto|flat|hier to override
// the algorithm the tuned variant runs (unknown or unsupported values exit
// 2 — a typo must not silently measure the wrong schedule).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gas/collectives.hpp"
#include "perf/runner.hpp"
#include "sim/sim.hpp"
#include "trace/trace.hpp"

namespace {

using namespace hupc;  // NOLINT

constexpr int kRanksPerNode = 8;  // pyramid nodes
constexpr std::size_t kCount = 8;  // int64 elements per (src, dst) block
constexpr int kRounds = 2;

// The tuned variant's algorithm; settable via --coll-algo.
gas::CollAlgo g_tuned_algo = gas::CollAlgo::hier;

std::int64_t pattern(int member, std::size_t i) {
  return static_cast<std::int64_t>(member + 1) * 1000003 +
         static_cast<std::int64_t>(i) * 7919;
}

struct ExchangeResult {
  double round_us = 0.0;  // modeled microseconds per exchange round
  int threads = 0;
  int nodes = 0;
  std::uint64_t errors = 0;  // received elements that mismatched the oracle
};

ExchangeResult run_exchange(perf::Context& ctx, gas::CollAlgo algo,
                            trace::Tracer& tracer) {
  ExchangeResult res;
  res.threads = ctx.smoke() ? 256 : 1024;
  res.nodes = res.threads / kRanksPerNode;

  sim::Engine engine;
  auto config = bench::make_config("pyramid", res.nodes, res.threads,
                                   gas::Backend::processes, "gige");
  config.tracer = &tracer;
  gas::Runtime rt(engine, config);
  gas::Collectives coll(rt);
  const int n = res.threads;
  const std::size_t full = static_cast<std::size_t>(n) * kCount;

  std::vector<gas::GlobalPtr<std::int64_t>> bufs;
  bufs.reserve(static_cast<std::size_t>(n));
  std::vector<std::vector<std::int64_t>> send(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    bufs.push_back(rt.heap().alloc<std::int64_t>(m, full));
    for (std::size_t i = 0; i < full; ++i) bufs.back().raw[i] = 0;
    auto& s = send[static_cast<std::size_t>(m)];
    s.resize(full);
    for (int dst = 0; dst < n; ++dst) {
      for (std::size_t i = 0; i < kCount; ++i) {
        s[static_cast<std::size_t>(dst) * kCount + i] =
            pattern(m, i) + dst * 31;
      }
    }
  }

  rt.spmd([&](gas::Thread& t) -> sim::Task<void> {
    for (int r = 0; r < kRounds; ++r) {
      co_await coll.exchange(t, bufs,
                             send[static_cast<std::size_t>(t.rank())].data(),
                             kCount, /*overlap=*/false, algo);
    }
  });
  rt.run_to_completion();

  res.round_us = sim::to_seconds(engine.now()) / kRounds * 1e6;
  for (int m = 0; m < n; ++m) {
    const std::int64_t* recv = bufs[static_cast<std::size_t>(m)].raw;
    for (int src = 0; src < n; ++src) {
      for (std::size_t i = 0; i < kCount; ++i) {
        if (recv[static_cast<std::size_t>(src) * kCount + i] !=
            pattern(src, i) + m * 31) {
          ++res.errors;
        }
      }
    }
  }
  return res;
}

void run_variant(perf::Context& ctx, gas::CollAlgo algo) {
  trace::Tracer tracer;
  const ExchangeResult r = run_exchange(ctx, algo, tracer);

  ctx.set_config("machine", "pyramid");
  ctx.set_config("conduit", "gige");
  ctx.set_config("backend", "processes");
  ctx.set_config("threads", std::to_string(r.threads));
  ctx.set_config("nodes", std::to_string(r.nodes));
  ctx.set_config("block_bytes", std::to_string(kCount * sizeof(std::int64_t)));
  ctx.set_config("rounds", std::to_string(kRounds));
  ctx.set_config("algo", gas::coll_algo_name(algo));
  ctx.report("roundtime", r.round_us, "us/round",
             perf::Direction::lower_is_better);
  ctx.report("errors", static_cast<double>(r.errors), "elements",
             perf::Direction::lower_is_better);
  ctx.report_trace_counters(tracer,
                            {"net.msg", "net.bytes", "gas.copy.rma",
                             "gas.copy.shm", "gas.coll.alltoall"});
}

PERF_BENCHMARK("coll.alltoall.flat") {
  run_variant(ctx, gas::CollAlgo::flat);
}
PERF_BENCHMARK("coll.alltoall.hier") { run_variant(ctx, g_tuned_algo); }

int report(std::ostream& os, const std::vector<perf::Result>& results) {
  const auto* flat = bench::find_result(results, "coll.alltoall.flat");
  const auto* hier = bench::find_result(results, "coll.alltoall.hier");
  if (flat == nullptr || hier == nullptr) return 0;  // filtered out

  if (flat->median("errors") != 0.0 || hier->median("errors") != 0.0) {
    os << "\nFAIL: the exchange delivered wrong data (flat "
       << flat->median("errors") << ", tuned " << hier->median("errors")
       << " bad elements)\n";
    return 1;
  }

  const double f = flat->median("roundtime");
  const double h = hier->median("roundtime");
  const double speedup = h > 0.0 ? f / h : 0.0;

  os << "\nCollectives ablation on the team all-to-all ("
     << gas::coll_algo_name(g_tuned_algo) << " vs flat, "
     << kCount * sizeof(std::int64_t) << " B blocks)\n";
  util::Table table({"Algorithm", "us/round", "vs flat"});
  table.add_row({"flat pairwise", util::Table::num(f, 3), "1.00"});
  table.add_row({gas::coll_algo_name(g_tuned_algo), util::Table::num(h, 3),
                 util::Table::num(speedup, 2)});
  table.print(os);

  char line[96];
  std::snprintf(line, sizeof line,
                "\nHierarchical speedup over flat all-to-all: %.2fx %s\n",
                speedup, speedup >= 2.0 ? "(PASS >= 2x)" : "(FAIL < 2x)");
  os << line;
  return speedup >= 2.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // --coll-algo is ours, not the harness's: validate and strip it before
  // perf::Runner sees the argument list.
  std::vector<const char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--coll-algo", 11) != 0) {
      args.push_back(arg);
      continue;
    }
    const char* value = arg[11] == '=' ? arg + 12 : nullptr;
    const auto algo = value != nullptr
                          ? gas::parse_coll_algo(value)
                          : std::optional<gas::CollAlgo>{};
    if (!algo ||
        !gas::coll_algo_supported(gas::CollOp::alltoall, *algo)) {
      std::fprintf(stderr,
                   "bench_ablation_collectives: error: unknown --coll-algo "
                   "value '%s' (expected auto|flat|hier)\n",
                   value != nullptr ? value : "");
      return 2;
    }
    g_tuned_algo = *algo;
  }

  const perf::Runner runner("bench_ablation_collectives",
                            static_cast<int>(args.size()), args.data());
  bench::banner(
      runner.human_out(),
      "Ablation — flat vs hierarchical all-to-all at 256-1024 ranks",
      "node-local gather + one aggregated message per leader pair + local "
      "scatter turns n^2 wire messages into G^2 (thesis ch. 4 supernode "
      "discipline applied to the collective layer)");
  return runner.main([&](const std::vector<perf::Result>& results) {
    return report(runner.human_out(), results);
  });
}
