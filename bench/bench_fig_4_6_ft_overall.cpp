// Reproduces Fig 4.6: "NAS FT Class B (512*256*256) Performance Results" on
// 8 Lehman nodes.
//   (a,b) relative performance of pthreads / hybrid models vs pure process
//         UPC across thread configurations (UPC x subs), split-phase and
//         overlap variants;
//   (c,d) absolute scalability 8..128 total threads for every model.
//
// Paper shape: hybrids win ~+10% at 64 threads and ~+30% at 128 (SMT);
// OpenMP best, thread-pool close, Cilk++ worst (~10% slower kernels plus a
// constant startup lag); 8-masters-per-node configurations (8*n) degrade
// because every master pins its sub-threads to one socket; the chapter-5
// headline x1.4 shows up at full SMT subscription.
#include <cstdio>
#include <iostream>
#include <vector>

#include "ft_driver.hpp"
#include "util/cli.hpp"

namespace {

using namespace hupc;  // NOLINT

struct HybridConfig {
  int upc;   // total UPC threads (over 8 nodes)
  int subs;  // sub-threads per UPC thread
};

// The paper's configuration axis: 8*1, 8*2, 16*1, 16*2, 32*1, 32*2, 64*1,
// 64*2 (total threads = upc * subs, 8 nodes).
constexpr HybridConfig kConfigs[] = {{8, 1},  {8, 2},  {16, 1}, {16, 2},
                                     {32, 1}, {32, 2}, {64, 1}, {64, 2}};

double run_total(bench::FtExec exec, int upc, int subs, fft::FtParams grid,
                 fft::CommVariant variant) {
  const int total = upc * std::max(1, subs);
  if (exec == bench::FtExec::upc_processes ||
      exec == bench::FtExec::upc_pthreads) {
    return bench::run_ft("lehman", 8, total, 0, exec, grid, variant)
        .mean.total;
  }
  return bench::run_ft("lehman", 8, upc, subs, exec, grid, variant).mean.total;
}

void relative_table(const char* title, fft::FtParams grid,
                    fft::CommVariant variant, bool include_cilk) {
  std::printf("\n%s — improvement over pure process UPC\n", title);
  std::vector<std::string> headers{"Config (UPC*subs)", "UPC pthreads",
                                   "UPC*OpenMP"};
  if (include_cilk) headers.push_back("UPC*Cilk++");
  headers.push_back("UPC*Thread-Pool");
  util::Table table(std::move(headers));
  for (const auto& cfg : kConfigs) {
    const int total = cfg.upc * cfg.subs;
    const double procs = run_total(bench::FtExec::upc_processes, total, 0,
                                   grid, variant);
    std::vector<std::string> row;
    char label[32];
    std::snprintf(label, sizeof label, "%d*%d", cfg.upc, cfg.subs);
    row.emplace_back(label);
    row.push_back(util::Table::pct(
        procs / run_total(bench::FtExec::upc_pthreads, total, 0, grid, variant) -
            1.0,
        1));
    row.push_back(util::Table::pct(
        procs / run_total(bench::FtExec::hybrid_openmp, cfg.upc, cfg.subs, grid,
                          variant) -
            1.0,
        1));
    if (include_cilk) {
      row.push_back(util::Table::pct(
          procs / run_total(bench::FtExec::hybrid_cilk, cfg.upc, cfg.subs, grid,
                            variant) -
              1.0,
          1));
    }
    row.push_back(util::Table::pct(
        procs / run_total(bench::FtExec::hybrid_pool, cfg.upc, cfg.subs, grid,
                          variant) -
            1.0,
        1));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

void scalability_table(const char* title, fft::FtParams grid,
                       fft::CommVariant variant) {
  std::printf("\n%s — total time (s) vs thread count\n", title);
  util::Table table({"Threads", "UPC processes", "UPC pthreads", "UPC*OpenMP",
                     "UPC*Thread-Pool"});
  for (int total : {8, 16, 32, 64, 128}) {
    // Best-practice hybrid shape (Fig 4.6a): keep >= 2 masters per node so
    // no node is capped at a single endpoint's wire rate; pair each master
    // with 2 sub-threads once the node has cores to spare.
    const int masters = std::max(8, total / 2);
    const int subs = std::max(1, total / masters);
    table.add_row(
        {std::to_string(total),
         util::Table::num(
             run_total(bench::FtExec::upc_processes, total, 0, grid, variant), 2),
         util::Table::num(
             run_total(bench::FtExec::upc_pthreads, total, 0, grid, variant), 2),
         util::Table::num(
             run_total(bench::FtExec::hybrid_openmp, masters, subs, grid, variant),
             2),
         util::Table::num(
             run_total(bench::FtExec::hybrid_pool, masters, subs, grid, variant),
             2)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto grid = cli.get_bool("quick", false) ? fft::FtParams::class_a()
                                                 : fft::FtParams::class_b();
  cli.reject_unread(argv[0]);

  bench::banner("Fig 4.6 — NAS FT class B overall results, 8 Lehman nodes",
                "hybrids ~+10% @64, ~+30% @128 threads; OpenMP > pool > "
                "Cilk++; x1.4 headline at full SMT subscription");

  relative_table("(a) Split-phase", grid, fft::CommVariant::split_phase, true);
  relative_table("(b) Overlap", grid, fft::CommVariant::overlap, false);
  scalability_table("(c) Split-phase scalability", grid,
                    fft::CommVariant::split_phase);
  scalability_table("(d) Overlap scalability", grid, fft::CommVariant::overlap);

  // Chapter 5 headline: best hybrid vs process UPC at full subscription.
  const double procs =
      run_total(bench::FtExec::upc_processes, 128, 0, grid,
                fft::CommVariant::overlap);
  const double hybrid = run_total(bench::FtExec::hybrid_openmp, 64, 2, grid,
                                  fft::CommVariant::overlap);
  std::printf("\nHeadline: hybrid speedup over process UPC at 128 threads = "
              "%.2fx (paper: ~1.4x)\n",
              procs / hybrid);
  return 0;
}
