// Ablation: non-contiguous data movement (VIS descriptors, src/gas/vis)
// on the FT all-to-all transpose exchange — the communication pattern of
// the NAS FT slab transpose at 64 ranks. Each rank owns one z-plane of a
// 512 x 16 x 64 complex grid and must deposit px = 8 destination rows of
// ny = 16 complex values into every peer's x-slab, strided by nz*ny.
//
//   loop  — the pre-VIS exchange: one contiguous copy_async per
//           destination row, 8 x 64 B small messages per peer;
//   vis   — one gas::copy_strided_async per peer: the same 8 rows move as
//           ONE packed 512 B message (plus per-region headers);
//   vis+epochs — the vis exchange inside coalescing + read-cache epochs:
//           remote packed puts defer into the per-node epoch buffers and
//           flush as aggregated messages (the composition cell; reported,
//           not gated).
//
// All three variants move identical bytes into identical places (the
// checksum config is the witness); only the modeled message schedule
// changes. The gate: vis must beat loop by >= 3x modeled exchange rate.
//
// Debug knob (consumed before the perf::Runner sees argv):
//   --vis=on|off    off forces the vis cells to run the loop exchange
//                   (transparency probe; the gate is skipped)
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fft/kernel.hpp"
#include "gas/gas.hpp"
#include "perf/runner.hpp"
#include "sim/sim.hpp"
#include "trace/trace.hpp"

namespace {

using namespace hupc;  // NOLINT

constexpr int kThreads = 64;
constexpr int kNodes = 8;
constexpr std::size_t kNx = 512;  // px = kNx / kThreads = 8 rows per peer
constexpr std::size_t kNy = 4;    // 4 complex = 64 B per row (fine-grained)
constexpr std::size_t kNz = 64;   // pz = 1 plane per rank

bool g_vis_enabled = true;  // --vis=off flips this

enum class Variant { loop, vis, vis_epochs };

void run_variant(perf::Context& ctx, Variant variant) {
  const bool use_vis =
      variant != Variant::loop && g_vis_enabled;
  const bool use_epochs = variant == Variant::vis_epochs;
  const std::size_t px = kNx / kThreads;
  const std::size_t plane = kNx * kNy;

  trace::Tracer tracer;
  sim::Engine engine;
  auto config = bench::make_config("lehman", kNodes, kThreads,
                                   gas::Backend::processes, "ib-qdr");
  config.tracer = &tracer;
  gas::Runtime rt(engine, config);

  // in_[r]: rank r's z-plane [x][y]; out_[r]: its x-slab [x_local][z][y].
  std::vector<gas::GlobalPtr<fft::Complex>> in, out;
  for (int r = 0; r < kThreads; ++r) {
    in.push_back(rt.heap().alloc<fft::Complex>(r, plane));
    out.push_back(rt.heap().alloc<fft::Complex>(r, px * kNz * kNy));
  }

  rt.spmd([&, use_vis, use_epochs](gas::Thread& t) -> sim::Task<void> {
    const int me = t.rank();
    fft::Complex* slab = in[static_cast<std::size_t>(me)].raw;
    for (std::size_t i = 0; i < plane; ++i) {
      slab[i] = fft::Complex(static_cast<double>((i * 37 + me) % 101),
                             static_cast<double>((i * 13 + me) % 89));
    }
    co_await t.barrier();

    if (use_epochs) {
      t.begin_read_cache({});
      t.begin_coalesce({});
    }
    const std::size_t z = static_cast<std::size_t>(me);  // pz == 1
    std::vector<async::future<>> pending;
    for (int p = 0; p < kThreads; ++p) {
      fft::Complex* dst_base = out[static_cast<std::size_t>(p)].raw;
      const fft::Complex* src_rows =
          slab + static_cast<std::size_t>(p) * px * kNy;
      if (use_vis) {
        gas::GlobalPtr<fft::Complex> dst{p, dst_base + z * kNy};
        pending.push_back(t.copy_strided_async(
            dst, gas::StridedSpec::rows(kNy, px, kNz * kNy), src_rows));
      } else {
        for (std::size_t xl = 0; xl < px; ++xl) {
          gas::GlobalPtr<fft::Complex> dst{
              p, dst_base + (xl * kNz + z) * kNy};
          pending.push_back(t.copy_async(dst, src_rows + xl * kNy, kNy));
        }
      }
    }
    for (auto& f : pending) co_await f.wait();
    if (use_epochs) {
      co_await t.end_coalesce();
      t.end_read_cache();
    }
    co_await t.barrier();
    co_return;
  });
  rt.run_to_completion();

  // Identical deposits regardless of variant: fold the x-slabs.
  double checksum = 0.0;
  for (int r = 0; r < kThreads; ++r) {
    const fft::Complex* xs = out[static_cast<std::size_t>(r)].raw;
    for (std::size_t i = 0; i < px * kNz * kNy; ++i) {
      checksum += xs[i].real() - xs[i].imag();
    }
  }

  const double payload = static_cast<double>(kThreads) * kThreads * px * kNy *
                         sizeof(fft::Complex);
  const double secs = sim::to_seconds(engine.now());

  ctx.set_config("machine", "lehman");
  ctx.set_config("conduit", "ib-qdr");
  ctx.set_config("backend", "processes");
  ctx.set_config("threads", std::to_string(kThreads));
  ctx.set_config("nodes", std::to_string(kNodes));
  ctx.set_config("grid", std::to_string(kNx) + "x" + std::to_string(kNy) +
                             "x" + std::to_string(kNz));
  ctx.set_config("vis", use_vis ? "on" : "off");
  ctx.set_config("epochs", use_epochs ? "on" : "off");
  ctx.set_config("checksum", std::to_string(checksum));
  ctx.report("xchg", payload / secs / 1e9, "GB/s");
  ctx.report_trace_counters(
      tracer, {"net.msg", "net.bytes", "net.vis.msg", "net.vis.regions",
               "net.vis.bytes", "comm.flush.msgs", "gas.cache.hits"});
}

PERF_BENCHMARK("ft.transpose.loop") { run_variant(ctx, Variant::loop); }
PERF_BENCHMARK("ft.transpose.vis") { run_variant(ctx, Variant::vis); }
PERF_BENCHMARK("ft.transpose.vis_epochs") {
  run_variant(ctx, Variant::vis_epochs);
}

int report(std::ostream& os, const std::vector<perf::Result>& results) {
  const perf::Result* loop = bench::find_result(results, "ft.transpose.loop");
  const perf::Result* vis = bench::find_result(results, "ft.transpose.vis");
  const perf::Result* full =
      bench::find_result(results, "ft.transpose.vis_epochs");
  if (loop == nullptr) return 0;  // filtered out; nothing to gate against
  const double loop_rate = loop->median("xchg");

  os << "\nVIS ablation on the FT transpose exchange (" << kThreads
     << " ranks, " << kNodes << " nodes, QDR IB)\n";
  util::Table table({"Exchange", "GB/s", "vs loop"});
  table.add_row({"per-row loop", util::Table::num(loop_rate, 3), "1.00"});
  double vis_rate = 0.0;
  if (vis != nullptr) {
    vis_rate = vis->median("xchg");
    table.add_row({"vis packed", util::Table::num(vis_rate, 3),
                   util::Table::num(vis_rate / loop_rate, 2)});
  }
  if (full != nullptr) {
    const double r = full->median("xchg");
    table.add_row({"vis + coalesce + cache", util::Table::num(r, 3),
                   util::Table::num(r / loop_rate, 2)});
  }
  table.print(os);

  if (vis == nullptr || !g_vis_enabled) return 0;  // no gate to apply
  char line[96];
  std::snprintf(line, sizeof line, "\nVIS speedup over per-row loop: %.2fx %s\n",
                vis_rate / loop_rate,
                vis_rate / loop_rate >= 3.0 ? "(PASS >= 3x)" : "(FAIL < 3x)");
  os << line;
  return vis_rate / loop_rate >= 3.0 ? 0 : 1;
}

/// Consume the --vis debug flag before perf::Runner (which hard-errors on
/// anything it does not know) parses the rest.
std::vector<const char*> strip_vis_flags(int argc, char** argv) {
  std::vector<const char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    bool inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      inline_value = true;
    }
    if (arg != "--vis") {
      kept.push_back(argv[i]);
      continue;
    }
    if (!inline_value) {
      if (i + 1 >= argc) throw std::invalid_argument(arg + ": missing value");
      value = argv[++i];
    }
    if (value == "on") {
      g_vis_enabled = true;
    } else if (value == "off") {
      g_vis_enabled = false;
    } else {
      throw std::invalid_argument("unknown --vis value '" + value +
                                  "' (expected on|off)");
    }
  }
  return kept;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> args;
  try {
    args = strip_vis_flags(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_ablation_vis: " << e.what() << '\n';
    return 2;
  }
  const perf::Runner runner("bench_ablation_vis",
                            static_cast<int>(args.size()), args.data());
  bench::banner(
      runner.human_out(),
      "Ablation — VIS strided descriptors on the FT transpose exchange",
      "packing a strided footprint into one message amortizes per-message "
      "injection overhead the coalescer pays per fine-grained op (GASNet "
      "VIS; thesis §4.3.1)");
  return runner.main([&](const std::vector<perf::Result>& results) {
    return report(runner.human_out(), results);
  });
}
