// Reproduces Table 4.1: "Performance of the STREAM Triad" under hybrid
// UPC x OpenMP thread placement on one Lehman node.
//
// Paper values (GB/s): UPC(8) 24.5, OpenMP(8) 23.7, UPC*OpenMP 1x8 = 13.9,
// 2x4 = 24.7, 4x2 = 24.7. The 1x8 configuration collapses because the
// shared arrays are first-touched by the single UPC thread and all
// sub-threads inherit its socket affinity (§4.3.2).
#include <iostream>

#include "bench_common.hpp"
#include "sim/sim.hpp"
#include "stream/stream.hpp"

namespace {

using namespace hupc;  // NOLINT

double run_hybrid(int upc_threads, int subs, std::size_t elements_total) {
  sim::Engine engine;
  gas::Runtime rt(engine, bench::make_config("lehman", 1, upc_threads));
  const std::size_t per_master =
      elements_total / static_cast<std::size_t>(upc_threads);
  return stream::hybrid_triad(rt, per_master, subs, core::SubModel::openmp)
      .gbytes_per_s;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto elements =
      static_cast<std::size_t>(cli.get_int("elements", 64 << 20));
  cli.reject_unread(argv[0]);

  bench::banner("Table 4.1 — STREAM triad, hybrid placement",
                "UPC 24.5 | OpenMP 23.7 | 1x8 = 13.9 | 2x4 = 24.7 | "
                "4x2 = 24.7 (GB/s)");

  util::Table table({"Variant", "Config (UPC*OpenMP)", "Throughput (GB/s)",
                     "Paper (GB/s)"});
  table.add_row({"UPC", "8", util::Table::num(run_hybrid(8, 0, elements), 1),
                 "24.5"});
  // The OpenMP-only run is placement-equivalent to 8 bound threads.
  table.add_row({"OpenMP", "8", util::Table::num(run_hybrid(8, 0, elements), 1),
                 "23.7"});
  table.add_row({"UPC*OpenMP", "1*8",
                 util::Table::num(run_hybrid(1, 8, elements), 1), "13.9"});
  table.add_row({"UPC*OpenMP", "2*4",
                 util::Table::num(run_hybrid(2, 4, elements), 1), "24.7"});
  table.add_row({"UPC*OpenMP", "4*2",
                 util::Table::num(run_hybrid(4, 2, elements), 1), "24.7"});
  table.print(std::cout);
  return 0;
}
