// Reproduces Table 3.1: "Performance of the Twisted STREAM Triad".
//
// 8 threads on one dual-socket Nehalem node (Lehman), odd/even-exchange
// access pattern. Paper values (GB/s): UPC baseline 3.2, UPC with
// re-localization 7.2, UPC with cast 23.2, OpenMP baseline 23.4.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sim/sim.hpp"
#include "stream/stream.hpp"

namespace {

using namespace hupc;  // NOLINT

double run_variant(stream::TriadVariant variant, std::size_t elements) {
  sim::Engine engine;
  gas::Runtime rt(engine, bench::make_config("lehman", 1, 8));
  return stream::twisted_triad(rt, elements, variant).gbytes_per_s;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto elements =
      static_cast<std::size_t>(cli.get_int("elements", 8 << 20));
  cli.reject_unread(argv[0]);

  bench::banner("Table 3.1 — twisted STREAM triad",
                "UPC baseline 3.2 | re-localization 7.2 | cast 23.2 | "
                "OpenMP 23.4 (GB/s, 8 threads, 2x4-core Nehalem)");

  util::Table table({"Variant", "Throughput (GB/s)", "Paper (GB/s)"});
  struct Row {
    const char* name;
    stream::TriadVariant variant;
    double paper;
  };
  const Row rows[] = {
      {"UPC baseline", stream::TriadVariant::upc_baseline, 3.2},
      {"UPC with re-localization", stream::TriadVariant::upc_relocalize, 7.2},
      {"UPC with cast", stream::TriadVariant::upc_cast, 23.2},
      {"OpenMP baseline", stream::TriadVariant::openmp, 23.4},
  };
  for (const Row& row : rows) {
    table.add_row({row.name, util::Table::num(run_variant(row.variant, elements), 1),
                   util::Table::num(row.paper, 1)});
  }
  table.print(std::cout);
  return 0;
}
