// Reproduces Fig 3.4: "NAS FT (class B) all-to-all communication
// performance with UPC runtime optimizations and hand optimizations on 4
// cluster nodes".
//   (a) % improvement over the plain process baseline for PSHM /
//       PSHM+cast / pthreads / pthreads+cast, blocking upc_memput,
//       4..64 threads;
//   (b) time split of the non-blocking variant (upc_memput_async issue vs
//       upc_waitsync) across the six runtime configurations.
//
// Paper shape: ~20-120% improvements that grow with threads/node (more
// intra-node pairs to optimize); manual cast == runtime PSHM/pthreads
// (automatic optimization is as good as hand optimization); with PSHM or
// pthreads the async calls complete locally and time shifts from the wait
// into the issue phase.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "fft/ft_model.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"
#include "util/cli.hpp"

namespace {

using namespace hupc;  // NOLINT

struct Variant {
  const char* name;
  gas::Backend backend;
  bool pshm;
  bool cast;  // manual memcpy replacement: cheaper per-call overhead
};

constexpr Variant kBase{"base", gas::Backend::processes, false, false};
constexpr Variant kVariantsA[] = {
    {"PSHM", gas::Backend::processes, true, false},
    {"PSHM + cast", gas::Backend::processes, true, true},
    {"pthreads", gas::Backend::pthreads, true, false},
    {"pthreads + cast", gas::Backend::pthreads, true, true},
};
constexpr Variant kVariantsB[] = {
    {"PSHM", gas::Backend::processes, true, false},
    {"PSHM+cast", gas::Backend::processes, true, true},
    {"base", gas::Backend::processes, false, false},
    {"pthr+PSHM", gas::Backend::pthreads, true, false},
    {"pthr+PSHM+cast", gas::Backend::pthreads, true, true},
    {"pthreads", gas::Backend::pthreads, false, false},
};

struct ExchangeTimes {
  double total = 0;  // blocking exchange
  double issue = 0;  // non-blocking: time in memput_async calls
  double wait = 0;   // non-blocking: time in waitsync
};

ExchangeTimes run_exchange(const Variant& v, int threads, bool async) {
  sim::Engine engine;
  auto cfg = bench::make_config("lehman", 4, threads, v.backend);
  cfg.pshm = v.pshm;
  if (v.cast) {
    // Hand optimization: castable destinations use plain memcpy — the
    // per-call runtime overhead drops to a bare libc call.
    cfg.costs.shm_copy_overhead_s = 0.05e-6;
  }
  gas::Runtime rt(engine, cfg);
  const double chunk = fft::FtParams::class_b().total_bytes() /
                       (static_cast<double>(threads) * threads);
  ExchangeTimes times;
  rt.spmd([&rt, &times, chunk, async](gas::Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    auto& eng = rt.engine();
    const sim::Time start = eng.now();
    if (!async) {
      for (int step = 1; step < t.threads(); ++step) {
        const int peer = (t.rank() + step) % t.threads();
        co_await t.copy_raw(peer, nullptr, nullptr,
                            static_cast<std::size_t>(chunk));
      }
      co_await t.barrier();
      if (t.rank() == 0) times.total = sim::to_seconds(eng.now() - start);
    } else {
      std::vector<sim::Future<>> pending;
      for (int step = 1; step < t.threads(); ++step) {
        const int peer = (t.rank() + step) % t.threads();
        pending.push_back(t.start_async(t.copy_raw(
            peer, nullptr, nullptr, static_cast<std::size_t>(chunk))));
      }
      const sim::Time issued = eng.now();
      for (auto& f : pending) co_await f.wait();
      co_await t.barrier();
      if (t.rank() == 0) {
        times.issue = sim::to_seconds(issued - start);
        times.wait = sim::to_seconds(eng.now() - issued);
      }
    }
  });
  rt.run_to_completion();
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.reject_unread(argv[0]);

  bench::banner("Fig 3.4 — FT class B all-to-all on 4 Lehman nodes",
                "(a) PSHM/pthreads beat non-shared baseline by ~20-120%, "
                "manual cast == runtime optimization; (b) async time split");

  std::printf("\n(a) Blocking memput: improvement over process baseline\n");
  util::Table a({"Threads", "PSHM", "PSHM + cast", "pthreads",
                 "pthreads + cast"});
  for (int threads : {4, 8, 16, 32, 64}) {
    const double base = run_exchange(kBase, threads, false).total;
    std::vector<std::string> row{std::to_string(threads)};
    for (const Variant& v : kVariantsA) {
      const double t = run_exchange(v, threads, false).total;
      row.push_back(util::Table::pct(base / t - 1.0, 1));
    }
    a.add_row(std::move(row));
  }
  a.print(std::cout);

  std::printf(
      "\n(b) Non-blocking memput: seconds in issue (async calls) and wait "
      "(upc_waitsync)\n");
  util::Table b({"Config", "Threads", "Issue (s)", "Wait (s)", "Total (s)"});
  for (int threads : {4, 8, 16, 32, 64}) {
    for (const Variant& v : kVariantsB) {
      const auto t = run_exchange(v, threads, true);
      b.add_row({v.name, std::to_string(threads),
                 util::Table::num(t.issue, 3), util::Table::num(t.wait, 3),
                 util::Table::num(t.issue + t.wait, 3)});
    }
  }
  b.print(std::cout);
  return 0;
}
