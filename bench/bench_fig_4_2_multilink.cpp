// Reproduces Fig 4.2: "Multi-link Network Microbenchmark Performance" on
// two QDR-InfiniBand nodes (Lehman).
//   (a) round-trip latency vs message size, 1-8 link-pairs, process-based
//       vs pthread-based (shared-connection) endpoints;
//   (b) unidirectional flood bandwidth vs message size, same configs.
//
// Paper shape: >=2 links lift flood bandwidth from ~1.5 GB/s (one flow's
// cap) toward ~2.4 GB/s (NIC); latency grows with link count once messages
// are bandwidth-bound; pthread links serialize injection (higher latency,
// slightly lower small/mid-size throughput) because they share one
// connection per node.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "net/network.hpp"
#include "sim/sim.hpp"
#include "util/cli.hpp"

namespace {

using namespace hupc;  // NOLINT

/// Median round-trip latency (us) of `links` concurrent ping-pongs.
double latency_us(net::ConnectionMode mode, int links, double bytes,
                  int round_trips) {
  sim::Engine engine;
  const auto machine = topo::lehman(2);
  net::Network nw(engine, machine, net::ib_qdr(), mode, 8);
  std::vector<sim::Time> elapsed(static_cast<std::size_t>(links));
  for (int link = 0; link < links; ++link) {
    sim::spawn(engine, [](sim::Engine& eng, net::Network& n, int ep, double b,
                          int reps, sim::Time& out) -> sim::Task<void> {
      const sim::Time start = eng.now();
      for (int i = 0; i < reps; ++i) {
        co_await n.rma(
            {.src_node = 0, .src_ep = ep, .dst_node = 1, .bytes = b});
        co_await n.rma(
            {.src_node = 1, .src_ep = ep, .dst_node = 0, .bytes = b});
      }
      out = eng.now() - start;
    }(engine, nw, link, bytes, round_trips, elapsed[static_cast<std::size_t>(link)]));
  }
  engine.run();
  sim::Time total = 0;
  for (sim::Time t : elapsed) total += t;
  return sim::to_micros(total) /
         (static_cast<double>(links) * round_trips * 2.0);
}

/// Aggregate flood bandwidth (MB/s) with `links` senders streaming
/// `messages` back-to-back non-blocking messages each.
double flood_mbs(net::ConnectionMode mode, int links, double bytes,
                 int messages) {
  sim::Engine engine;
  const auto machine = topo::lehman(2);
  net::Network nw(engine, machine, net::ib_qdr(), mode, 8);
  for (int link = 0; link < links; ++link) {
    sim::spawn(engine, []([[maybe_unused]] sim::Engine& eng, net::Network& n,
                          int ep, double b, int count) -> sim::Task<void> {
      std::vector<sim::Future<>> inflight;
      inflight.reserve(static_cast<std::size_t>(count));
      for (int i = 0; i < count; ++i) {
        inflight.push_back(
            n.rma_async({.src_node = 0, .src_ep = ep, .dst_node = 1, .bytes = b}));
      }
      for (auto& f : inflight) co_await f.wait();
    }(engine, nw, link, bytes, messages));
  }
  engine.run();
  const double total_bytes = bytes * links * messages;
  return total_bytes / sim::to_seconds(engine.now()) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 20));
  cli.reject_unread(argv[0]);

  bench::banner("Fig 4.2 — multi-link latency and flood bandwidth (QDR IB)",
                "1 link ~1.5 GB/s; multi-link ~2.4 GB/s; pthread links "
                "serialize injection");

  std::printf("\n(a) Latency (us; ping-pong round trip / 2, the usual "
              "convention)\n");
  util::Table lat({"Size (B)", "1 link", "2 proc", "4 proc", "8 proc",
                   "2 pthr", "4 pthr", "8 pthr"});
  for (double size : {1.0, 8.0, 64.0, 512.0, 1024.0, 4096.0, 16384.0, 32768.0}) {
    std::vector<std::string> row{util::Table::num(size, 0)};
    row.push_back(util::Table::num(
        latency_us(net::ConnectionMode::per_process, 1, size, reps), 1));
    for (int links : {2, 4, 8}) {
      row.push_back(util::Table::num(
          latency_us(net::ConnectionMode::per_process, links, size, reps), 1));
    }
    for (int links : {2, 4, 8}) {
      row.push_back(util::Table::num(
          latency_us(net::ConnectionMode::per_node, links, size, reps), 1));
    }
    lat.add_row(std::move(row));
  }
  lat.print(std::cout);

  std::printf("\n(b) Unidirectional flood bandwidth (MB/s)\n");
  util::Table bw({"Size (B)", "1 link", "2 proc", "4 proc", "8 proc",
                  "2 pthr", "4 pthr", "8 pthr"});
  for (double size : {64.0, 512.0, 4096.0, 32768.0, 131072.0, 524288.0,
                      2097152.0}) {
    const int messages = size >= 131072.0 ? 20 : 100;
    std::vector<std::string> row{util::Table::num(size, 0)};
    row.push_back(util::Table::num(
        flood_mbs(net::ConnectionMode::per_process, 1, size, messages), 0));
    for (int links : {2, 4, 8}) {
      row.push_back(util::Table::num(
          flood_mbs(net::ConnectionMode::per_process, links, size, messages), 0));
    }
    for (int links : {2, 4, 8}) {
      row.push_back(util::Table::num(
          flood_mbs(net::ConnectionMode::per_node, links, size, messages), 0));
    }
    bw.add_row(std::move(row));
  }
  bw.print(std::cout);
  return 0;
}
