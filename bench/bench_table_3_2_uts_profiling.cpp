// Reproduces Table 3.2: "Profiling Results of UTS" — overall improvement of
// the optimized (local-stealing + rapid-diffusion) variant over baseline,
// and the % of local steals for both, at 32/64/128 threads on 16 nodes for
// InfiniBand and Ethernet.
//
// Paper values: improvements IB 3.4/7.1/11.2%, Eth 49.4/66.5/99.5%;
// local-steal % baseline 36->72 (IB) and 18->58 (Eth), optimized 59->91
// and 58->90 — the ratio *rises with local worker count* even at a fixed
// local/remote configuration ratio.
#include <cstdio>
#include <iostream>

#include "uts_driver.hpp"
#include "util/cli.hpp"

namespace {
using namespace hupc;  // NOLINT
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  uts::TreeParams tree = uts::paper_tree();
  if (cli.get_bool("quick", false)) tree.root_seed = 42;
  const int nodes = static_cast<int>(cli.get_int("nodes", 16));
  cli.reject_unread(argv[0]);

  bench::banner(
      "Table 3.2 — UTS profiling: local-steal ratios and improvement",
      "IB improvements 3.4/7.1/11.2%; Eth 49.4/66.5/99.5%; local-steal "
      "ratio rises with threads/node in both variants");

  util::Table table({"Config (total/local)", "Overall improvement",
                     "Local steal % (baseline)", "Local steal % (optimized)"});
  for (const auto& [conduit, granularity, label] :
       {std::tuple{std::string("ib-ddr"), 8, "Infiniband"},
        std::tuple{std::string("gige"), 20, "Ethernet"}}) {
    for (int threads : {32, 64, 128}) {
      const auto base = bench::run_uts(tree, threads, nodes, conduit,
                                       bench::UtsVariant::baseline, granularity);
      const auto opt = bench::run_uts(
          tree, threads, nodes, conduit,
          bench::UtsVariant::local_steal_diffusion, granularity);
      const double improvement = base.seconds / opt.seconds - 1.0;
      char config[64];
      std::snprintf(config, sizeof config, "%s %d/%d", label, threads,
                    threads / nodes);
      table.add_row({config, util::Table::pct(improvement, 1),
                     util::Table::pct(base.local_steal_ratio, 1),
                     util::Table::pct(opt.local_steal_ratio, 1)});
    }
  }
  table.print(std::cout);
  return 0;
}
