// Ablation: steal-granularity sweep and rapid-diffusion contribution.
//
// The thesis states "the work stealing granularity parameter has a strong
// impact on performance" and picks 8 (IB) / 20 (Ethernet); rapid diffusion
// (steal-half) is claimed to mitigate local starvation under local-first
// stealing. This bench quantifies both on our model.
#include <cstdio>
#include <iostream>

#include "uts_driver.hpp"
#include "util/cli.hpp"

namespace {
using namespace hupc;  // NOLINT
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  uts::TreeParams tree = uts::paper_tree();
  if (cli.get_bool("quick", false)) tree.root_seed = 42;
  const int threads = static_cast<int>(cli.get_int("threads", 64));
  const int nodes = static_cast<int>(cli.get_int("nodes", 16));

  bench::banner("Ablation — UTS steal granularity and rapid diffusion",
                "thesis picks k=8 (IB) / k=20 (Ethernet); steal-half "
                "mitigates starvation under local-first stealing");

  for (const std::string conduit : {"ib-ddr", "gige"}) {
    std::printf("\n--- %s, %d threads, %d nodes ---\n", conduit.c_str(),
                threads, nodes);
    util::Table table({"Granularity", "Fixed-k local-first (Mn/s)",
                       "+ rapid diffusion (Mn/s)", "Diffusion gain"});
    for (int k : {1, 2, 4, 8, 16, 32, 64}) {
      const auto fixed = bench::run_uts(tree, threads, nodes, conduit,
                                        bench::UtsVariant::local_steal, k);
      const auto diff = bench::run_uts(
          tree, threads, nodes, conduit,
          bench::UtsVariant::local_steal_diffusion, k);
      table.add_row({std::to_string(k),
                     util::Table::num(fixed.mnodes_per_s, 1),
                     util::Table::num(diff.mnodes_per_s, 1),
                     util::Table::num(diff.mnodes_per_s / fixed.mnodes_per_s, 2) +
                         "x"});
    }
    table.print(std::cout);
  }
  return 0;
}
