// Ablation: steal-granularity sweep and rapid-diffusion contribution.
//
// The thesis states "the work stealing granularity parameter has a strong
// impact on performance" and picks 8 (IB) / 20 (Ethernet); rapid diffusion
// (steal-half) is claimed to mitigate local starvation under local-first
// stealing. This bench quantifies both on our model.
//
// Harnessed under src/perf: one benchmark per (conduit, granularity,
// variant) point — `uts.steal.<conduit>.k<K>.<fixed|diffusion>` — with the
// full k sweep in the full tier and {1, 8, 32} in smoke. The smoke tier
// also drops to the ~0.5M-node quick tree on 32 threads / 8 nodes so the
// CI gate stays fast; the paper configuration (4.5M-node tree, 64 threads,
// 16 nodes) runs in the full tier.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "perf/runner.hpp"
#include "uts_driver.hpp"

namespace {

using namespace hupc;  // NOLINT

constexpr int kGranularities[] = {1, 2, 4, 8, 16, 32, 64};
constexpr int kSmokeGranularities[] = {1, 8, 32};
const char* const kConduits[] = {"ib-ddr", "gige"};

bool in_smoke_sweep(int k) {
  for (const int s : kSmokeGranularities) {
    if (s == k) return true;
  }
  return false;
}

void run_point(perf::Context& ctx, const std::string& conduit, int k,
               bench::UtsVariant variant) {
  uts::TreeParams tree = uts::paper_tree();
  int threads = 64;
  int nodes = 16;
  if (ctx.smoke()) {
    tree.root_seed = 42;  // ~0.5M-node tree
    threads = 32;
    nodes = 8;
  }
  trace::Tracer tracer;
  const auto r =
      bench::run_uts(tree, threads, nodes, conduit, variant, k, &tracer);

  ctx.set_config("machine", "pyramid");
  ctx.set_config("conduit", conduit);
  ctx.set_config("backend", "processes");
  ctx.set_config("threads", std::to_string(threads));
  ctx.set_config("nodes", std::to_string(nodes));
  ctx.set_config("granularity", std::to_string(k));
  ctx.set_config("tree_seed", std::to_string(tree.root_seed));
  ctx.set_config("variant", to_string(variant));
  ctx.report("mnodes_per_s", r.mnodes_per_s, "Mnodes/s");
  ctx.report("local_steal_ratio", r.local_steal_ratio, "fraction");
  ctx.report_counter("tree_nodes", r.nodes);
  ctx.report_counter("local_steals", r.local_steals);
  ctx.report_counter("remote_steals", r.remote_steals);
  ctx.report_counter("failed_probes", r.failed_probes);
  ctx.report_trace_counters(tracer, {"net.msg", "net.bytes"});
}

std::string point_id(const std::string& conduit, int k, bool diffusion) {
  return "uts.steal." + conduit + ".k" + std::to_string(k) +
         (diffusion ? ".diffusion" : ".fixed");
}

void register_benchmarks() {
  for (const char* const conduit : kConduits) {
    for (const int k : kGranularities) {
      for (const bool diffusion : {false, true}) {
        perf::Benchmark b;
        b.id = point_id(conduit, k, diffusion);
        b.in_smoke = in_smoke_sweep(k);
        b.fn = [conduit = std::string(conduit), k, diffusion](
                   perf::Context& ctx) {
          run_point(ctx, conduit, k,
                    diffusion ? bench::UtsVariant::local_steal_diffusion
                              : bench::UtsVariant::local_steal);
        };
        perf::Registry::instance().add(std::move(b));
      }
    }
  }
}

int report(std::ostream& os, const std::vector<perf::Result>& results) {
  for (const char* const conduit : kConduits) {
    util::Table table({"Granularity", "Fixed-k local-first (Mn/s)",
                       "+ rapid diffusion (Mn/s)", "Diffusion gain"});
    for (const int k : kGranularities) {
      const auto* fixed =
          bench::find_result(results, point_id(conduit, k, false));
      const auto* diff =
          bench::find_result(results, point_id(conduit, k, true));
      if (fixed == nullptr || diff == nullptr) continue;
      const double f = fixed->median("mnodes_per_s");
      const double d = diff->median("mnodes_per_s");
      table.add_row({std::to_string(k), util::Table::num(f, 1),
                     util::Table::num(d, 1), util::Table::num(d / f, 2) + "x"});
    }
    if (table.rows() == 0) continue;
    os << "\n--- " << conduit << " ---\n";
    table.print(os);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  const perf::Runner runner("bench_ablation_steal", argc, argv);
  bench::banner(runner.human_out(),
                "Ablation — UTS steal granularity and rapid diffusion",
                "thesis picks k=8 (IB) / k=20 (Ethernet); steal-half "
                "mitigates starvation under local-first stealing");
  return runner.main([&](const std::vector<perf::Result>& results) {
    return report(runner.human_out(), results);
  });
}
