// google-benchmark microbenchmarks of the substrate primitives: event
// queue throughput, coroutine spawn/switch, fluid-link recomputation,
// global-pointer arithmetic, SHA-1 (the UTS per-node cost), and FFT
// kernels. These are the "is the simulator itself fast enough" numbers.
#include <benchmark/benchmark.h>

#include <vector>

#include "fft/kernel.hpp"
#include "gas/heap.hpp"
#include "sim/sim.hpp"
#include "uts/sha1.hpp"
#include "uts/tree.hpp"
#include "util/rng.hpp"

namespace {

using namespace hupc;  // NOLINT

void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < n; ++i) {
      e.schedule_at(i, [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_CoroutineSpawnJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < n; ++i) {
      sim::spawn(e, [](sim::Engine& eng) -> sim::Task<void> {
        co_await sim::delay(eng, 1);
      }(e));
    }
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CoroutineSpawnJoin)->Arg(1000);

void BM_FluidLinkContention(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    sim::FluidLink link(e, 1e9);
    for (int i = 0; i < flows; ++i) {
      sim::spawn(e, [](sim::FluidLink& l) -> sim::Task<void> {
        co_await l.transfer(1e6);
      }(link));
    }
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidLinkContention)->Arg(8)->Arg(64)->Arg(256);

void BM_SharedArrayAt(benchmark::State& state) {
  gas::SharedHeap heap(64);
  auto arr = heap.all_alloc<double>(1 << 20, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arr.at(i).raw);
    i = (i + 977) & ((1 << 20) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedArrayAt);

void BM_Sha1NodeSplit(benchmark::State& state) {
  uts::Digest d = uts::sha1({});
  std::uint32_t i = 0;
  for (auto _ : state) {
    d = uts::split_state(d, i++);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sha1NodeSplit);

void BM_UtsExpand(benchmark::State& state) {
  const uts::TreeParams params;
  uts::Node node = uts::root_node(params);
  std::vector<uts::Node> children;
  for (auto _ : state) {
    children.clear();
    uts::expand(params, node, children);
    if (!children.empty()) node = children.front();
    benchmark::DoNotOptimize(children.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UtsExpand);

void BM_Fft1D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256ss rng(1);
  std::vector<fft::Complex> data(n);
  for (auto& v : data) v = fft::Complex(rng.uniform(), rng.uniform());
  for (auto _ : state) {
    fft::fft_inplace(data, -1);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_Fft1D)->Arg(256)->Arg(4096)->Arg(65536);

void BM_Fft2D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256ss rng(2);
  std::vector<fft::Complex> plane(n * n);
  for (auto& v : plane) v = fft::Complex(rng.uniform(), rng.uniform());
  for (auto _ : state) {
    fft::fft_2d(plane.data(), n, n, -1);
    benchmark::DoNotOptimize(plane.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n * n));
}
BENCHMARK(BM_Fft2D)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
