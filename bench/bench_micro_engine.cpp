// Microbenchmarks of the substrate primitives: event queue throughput,
// coroutine spawn/switch, fluid-link recomputation, global-pointer
// arithmetic, SHA-1 (the UTS per-node cost), and FFT kernels. These are
// the "is the simulator itself fast enough" numbers.
//
// Unlike the simulation benches, these measure *host wall-clock* time, so
// every metric is Kind::measured — the regression gate reports them but
// never hard-fails on them (they are machine- and load-dependent). Each
// repetition times a fixed iteration count; register with one warmup
// repetition to get caches and the allocator warm.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "fft/kernel.hpp"
#include "gas/heap.hpp"
#include "perf/runner.hpp"
#include "sim/sim.hpp"
#include "uts/sha1.hpp"
#include "uts/tree.hpp"
#include "util/rng.hpp"

namespace {

using namespace hupc;  // NOLINT

using Clock = std::chrono::steady_clock;

/// Report wall-clock `ns/op` (gated report-only) for `ops` operations that
/// took `seconds`.
void report_ns_per_op(perf::Context& ctx, double seconds, std::uint64_t ops) {
  ctx.set_config("ops", std::to_string(ops));
  ctx.report("ns_per_op", seconds * 1e9 / static_cast<double>(ops), "ns",
             perf::Direction::lower_is_better, perf::Kind::measured);
}

PERF_BENCHMARK("micro.engine.schedule_run", .warmup = 1) {
  const int n = ctx.smoke() ? 20000 : 100000;
  const auto t0 = Clock::now();
  sim::Engine e;
  for (int i = 0; i < n; ++i) {
    e.schedule_at(i, [] {});
  }
  e.run();
  const std::chrono::duration<double> dt = Clock::now() - t0;
  report_ns_per_op(ctx, dt.count(), static_cast<std::uint64_t>(n));
}

PERF_BENCHMARK("micro.engine.coroutine_spawn_join", .warmup = 1) {
  const int n = ctx.smoke() ? 5000 : 20000;
  const auto t0 = Clock::now();
  sim::Engine e;
  for (int i = 0; i < n; ++i) {
    sim::spawn(e, [](sim::Engine& eng) -> sim::Task<void> {
      co_await sim::delay(eng, 1);
    }(e));
  }
  e.run();
  const std::chrono::duration<double> dt = Clock::now() - t0;
  report_ns_per_op(ctx, dt.count(), static_cast<std::uint64_t>(n));
}

PERF_BENCHMARK("micro.sim.fluid_link_contention", .warmup = 1) {
  const int flows = 256;
  const int rounds = ctx.smoke() ? 4 : 16;
  const auto t0 = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    sim::Engine e;
    sim::FluidLink link(e, 1e9);
    for (int i = 0; i < flows; ++i) {
      sim::spawn(e, [](sim::FluidLink& l) -> sim::Task<void> {
        co_await l.transfer(1e6);
      }(link));
    }
    e.run();
  }
  const std::chrono::duration<double> dt = Clock::now() - t0;
  report_ns_per_op(ctx, dt.count(),
                   static_cast<std::uint64_t>(flows) * rounds);
}

PERF_BENCHMARK("micro.gas.shared_array_at", .warmup = 1) {
  const std::uint64_t n = ctx.smoke() ? 1'000'000 : 8'000'000;
  gas::SharedHeap heap(64);
  auto arr = heap.all_alloc<double>(1 << 20, 64);
  std::size_t i = 0;
  std::uintptr_t sink = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t op = 0; op < n; ++op) {
    sink ^= reinterpret_cast<std::uintptr_t>(arr.at(i).raw);
    i = (i + 977) & ((1 << 20) - 1);
  }
  const std::chrono::duration<double> dt = Clock::now() - t0;
  // Defeat dead-code elimination of the address computation.
  if (sink == 1) std::printf("unreachable\n");
  report_ns_per_op(ctx, dt.count(), n);
}

PERF_BENCHMARK("micro.uts.sha1_node_split", .warmup = 1) {
  const std::uint32_t n = ctx.smoke() ? 200'000 : 1'000'000;
  uts::Digest d = uts::sha1({});
  const auto t0 = Clock::now();
  for (std::uint32_t i = 0; i < n; ++i) {
    d = uts::split_state(d, i);
  }
  const std::chrono::duration<double> dt = Clock::now() - t0;
  if (d[0] == 0 && d[1] == 0 && d[2] == 0 && d[3] == 0) {
    std::printf("improbable all-zero digest prefix\n");
  }
  report_ns_per_op(ctx, dt.count(), n);
}

PERF_BENCHMARK("micro.uts.expand", .warmup = 1) {
  const int n = ctx.smoke() ? 100'000 : 500'000;
  const uts::TreeParams params;
  uts::Node node = uts::root_node(params);
  std::vector<uts::Node> children;
  const auto t0 = Clock::now();
  for (int i = 0; i < n; ++i) {
    children.clear();
    uts::expand(params, node, children);
    if (!children.empty()) node = children.front();
  }
  const std::chrono::duration<double> dt = Clock::now() - t0;
  report_ns_per_op(ctx, dt.count(), static_cast<std::uint64_t>(n));
}

PERF_BENCHMARK("micro.fft.fft1d_4096", .warmup = 1) {
  const int rounds = ctx.smoke() ? 50 : 400;
  const std::size_t n = 4096;
  util::Xoshiro256ss rng(1);
  std::vector<fft::Complex> data(n);
  for (auto& v : data) v = fft::Complex(rng.uniform(), rng.uniform());
  const auto t0 = Clock::now();
  for (int i = 0; i < rounds; ++i) {
    fft::fft_inplace(data, -1);
  }
  const std::chrono::duration<double> dt = Clock::now() - t0;
  report_ns_per_op(ctx, dt.count(),
                   static_cast<std::uint64_t>(rounds) * n);
}

PERF_BENCHMARK("micro.fft.fft2d_256", .warmup = 1) {
  const int rounds = ctx.smoke() ? 4 : 32;
  const std::size_t n = 256;
  util::Xoshiro256ss rng(2);
  std::vector<fft::Complex> plane(n * n);
  for (auto& v : plane) v = fft::Complex(rng.uniform(), rng.uniform());
  const auto t0 = Clock::now();
  for (int i = 0; i < rounds; ++i) {
    fft::fft_2d(plane.data(), n, n, -1);
  }
  const std::chrono::duration<double> dt = Clock::now() - t0;
  report_ns_per_op(ctx, dt.count(),
                   static_cast<std::uint64_t>(rounds) * n * n);
}

}  // namespace

int main(int argc, char** argv) {
  const perf::Runner runner("bench_micro_engine", argc, argv);
  return runner.main();
}
