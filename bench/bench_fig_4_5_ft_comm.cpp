// Reproduces Fig 4.5: "Time spent in communication calls of the split-phase
// implementation" — NAS FT class B comm time for MPI / UPC processes /
// UPC pthreads / UPC x Threads (hybrid) as cores per node grow, on both
// clusters: (a) Lehman (8 nodes, 8..64 cores + 2-way SMT at 128) and
// (b) Pyramid (16 nodes, 16..128 cores).
//
// Paper shape: nothing scales past 2 threads/node; at full subscription
// MPI < hybrid < pthreads < processes; MPI's edge comes from the tuned
// collective, the hybrid's from centralizing traffic on one endpoint per
// node (fewer, larger messages through the shared network-API path).
#include <cstdio>
#include <iostream>

#include "ft_driver.hpp"
#include "util/cli.hpp"

namespace {

using namespace hupc;  // NOLINT

void run_platform(const char* machine, int nodes,
                  const std::vector<int>& core_counts, fft::FtParams grid) {
  std::printf("\n--- %s (%d nodes) ---\n", machine, nodes);
  util::Table table({"Cores", "MPI (s)", "UPC processes (s)",
                     "UPC pthreads (s)", "UPC*Threads hybrid (s)"});
  for (int cores : core_counts) {
    const auto mpi =
        bench::run_ft(machine, nodes, cores, 0, bench::FtExec::mpi, grid,
                      fft::CommVariant::split_phase);
    const auto procs =
        bench::run_ft(machine, nodes, cores, 0, bench::FtExec::upc_processes,
                      grid, fft::CommVariant::split_phase);
    const auto pthr =
        bench::run_ft(machine, nodes, cores, 0, bench::FtExec::upc_pthreads,
                      grid, fft::CommVariant::split_phase);
    // Hybrid: two UPC masters per node (one per socket — the best-practice
    // binding of §4.3.2; a single master per node would be capped at one
    // endpoint's wire rate), subs fill the rest of the node's cores.
    const int masters = std::min(cores, 2 * nodes);
    const int subs = std::max(1, cores / masters);
    const auto hybrid =
        bench::run_ft(machine, nodes, masters, subs,
                      bench::FtExec::hybrid_openmp, grid,
                      fft::CommVariant::split_phase);
    table.add_row({std::to_string(cores), util::Table::num(mpi.mean.comm, 3),
                   util::Table::num(procs.mean.comm, 3),
                   util::Table::num(pthr.mean.comm, 3),
                   util::Table::num(hybrid.mean.comm, 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto grid = cli.get_bool("quick", false) ? fft::FtParams::class_a()
                                                 : fft::FtParams::class_b();
  cli.reject_unread(argv[0]);

  bench::banner("Fig 4.5 — FT class B: time in communication calls",
                "no scaling past 2 threads/node; at full subscription "
                "MPI < hybrid < pthreads < processes");

  run_platform("lehman", 8, {8, 16, 32, 64, 128}, grid);
  run_platform("pyramid", 16, {16, 32, 64, 128}, grid);
  return 0;
}
