// Shared plumbing for the paper-reproduction bench binaries: machine/config
// construction from CLI flags and uniform headers so every binary's output
// names the table/figure it regenerates.
#pragma once

#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "gas/gas.hpp"
#include "net/conduit.hpp"
#include "perf/benchmark.hpp"
#include "topo/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace hupc::bench {

/// Look up one harness result by benchmark id (null when the id was
/// filtered out of the run — formatters skip those rows).
[[nodiscard]] inline const perf::Result* find_result(
    const std::vector<perf::Result>& results, std::string_view id) {
  for (const auto& r : results) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

inline void banner(const char* experiment, const char* paper_result) {
  std::printf("=====================================================================\n");
  std::printf("HUPC reproduction | %s\n", experiment);
  std::printf("Paper reference   | %s\n", paper_result);
  std::printf("=====================================================================\n");
}

/// Harnessed benches pass perf::Runner::human_out() so the banner lands on
/// stderr when the JSON artifact streams to stdout.
inline void banner(std::ostream& os, const char* experiment,
                   const char* paper_result) {
  os << "=====================================================================\n"
     << "HUPC reproduction | " << experiment << '\n'
     << "Paper reference   | " << paper_result << '\n'
     << "=====================================================================\n";
}

/// Build a gas::Config for a named machine preset. `machine` must be
/// "pyramid" or "lehman"; `conduit` must be "" (the machine's default
/// network), "gige", "ib-qdr" or "ib-ddr". Anything else throws
/// std::invalid_argument — a typo must not silently measure the wrong
/// cluster.
inline gas::Config make_config(const std::string& machine, int nodes,
                               int threads,
                               gas::Backend backend = gas::Backend::processes,
                               const std::string& conduit = "") {
  gas::Config cfg;
  if (machine == "pyramid") {
    cfg.machine = topo::pyramid(nodes);
    cfg.conduit = net::ib_ddr();
  } else if (machine == "lehman") {
    cfg.machine = topo::lehman(nodes);
    cfg.conduit = net::ib_qdr();
  } else {
    throw std::invalid_argument("unknown machine preset '" + machine +
                                "' (expected pyramid|lehman)");
  }
  if (conduit == "gige") {
    cfg.conduit = net::gige();
  } else if (conduit == "ib-qdr") {
    cfg.conduit = net::ib_qdr();
  } else if (conduit == "ib-ddr") {
    cfg.conduit = net::ib_ddr();
  } else if (!conduit.empty()) {
    throw std::invalid_argument("unknown conduit '" + conduit +
                                "' (expected gige|ib-qdr|ib-ddr)");
  }
  cfg.threads = threads;
  cfg.backend = backend;
  return cfg;
}

}  // namespace hupc::bench
