// Shared plumbing for the paper-reproduction bench binaries: machine/config
// construction from CLI flags and uniform headers so every binary's output
// names the table/figure it regenerates.
#pragma once

#include <cstdio>
#include <string>

#include "gas/gas.hpp"
#include "net/conduit.hpp"
#include "topo/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace hupc::bench {

inline void banner(const char* experiment, const char* paper_result) {
  std::printf("=====================================================================\n");
  std::printf("HUPC reproduction | %s\n", experiment);
  std::printf("Paper reference   | %s\n", paper_result);
  std::printf("=====================================================================\n");
}

/// Build a gas::Config for a named machine preset.
inline gas::Config make_config(const std::string& machine, int nodes,
                               int threads,
                               gas::Backend backend = gas::Backend::processes,
                               const std::string& conduit = "") {
  gas::Config cfg;
  if (machine == "pyramid") {
    cfg.machine = topo::pyramid(nodes);
    cfg.conduit = net::ib_ddr();
  } else {
    cfg.machine = topo::lehman(nodes);
    cfg.conduit = net::ib_qdr();
  }
  if (conduit == "gige") cfg.conduit = net::gige();
  if (conduit == "ib-qdr") cfg.conduit = net::ib_qdr();
  if (conduit == "ib-ddr") cfg.conduit = net::ib_ddr();
  cfg.threads = threads;
  cfg.backend = backend;
  return cfg;
}

}  // namespace hupc::bench
