// KV serving under open-loop load: the first latency-percentile benchmark.
//
// Eight cells drive kv::run_serving over a store sharded across every rank:
// 64 ranks (lehman, QDR IB) at two read/write mixes, each measured on the
// pinned amo path, the pinned rpc path, and the per-call selector (auto) —
// plus 256-rank (pyramid) auto cells that pin the percentiles at 4x the
// scale. Unlike the throughput benches, the reported metrics are the shape
// of the latency DISTRIBUTION: p50/p99/p99.9 from the log-bucketed
// histogram of intended-arrival-to-completion latencies, plus raw
// throughput and goodput under a 50 us SLO.
//
// The report is a selector ablation gate: on BOTH 64-rank mixes, auto's
// p99 must land within 5% of the better pinned path — the per-call policy
// (local/read -> amo, remote write -> rpc) has to beat committing to
// either path wholesale, read-heavy and write-heavy alike.
//
// Debug knob (consumed before the perf::Runner sees argv):
//   --kv-path=auto|amo|rpc   force every cell onto one path
// Baseline-gated CI runs pass none of these.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "async/rpc.hpp"
#include "bench_common.hpp"
#include "kv/shard_map.hpp"
#include "kv/store.hpp"
#include "kv/workload.hpp"
#include "perf/runner.hpp"
#include "sim/sim.hpp"
#include "trace/trace.hpp"

namespace {

using namespace hupc;  // NOLINT

constexpr int kRanksPerNode = 8;
constexpr double kSloS = 50e-6;

// --kv-path override: automatic keeps each cell's registered path.
kv::KvPath g_path_override = kv::KvPath::automatic;

struct Cell {
  int threads;
  double read_fraction;
  kv::KvPath path;
};

void run_cell(perf::Context& ctx, const Cell& cell) {
  const int nodes = cell.threads / kRanksPerNode;
  const char* machine = cell.threads > 64 ? "pyramid" : "lehman";
  const char* conduit = cell.threads > 64 ? "ib-ddr" : "ib-qdr";

  trace::Tracer tracer;
  sim::Engine engine;
  auto config = bench::make_config(machine, nodes, cell.threads,
                                   gas::Backend::processes, conduit);
  config.tracer = &tracer;
  gas::Runtime rt(engine, config);
  async::RpcDomain rpc(rt);
  kv::KvStore::Params store_params;
  store_params.capacity = 1024;
  kv::KvStore store(rt, rpc, kv::ShardMap::over(rt), store_params);

  kv::ServingParams params;
  params.keys = 4096;
  params.ops_per_rank = ctx.smoke() ? (cell.threads > 64 ? 64 : 120) : 256;
  params.dist = kv::KeyDist::zipfian;
  params.zipf_s = 0.99;
  params.read_fraction = cell.read_fraction;
  params.path = g_path_override != kv::KvPath::automatic ? g_path_override
                                                         : cell.path;
  params.arrival_rate_hz = 1.0e6;
  params.slo_s = kSloS;
  params.seed = 1;

  const kv::ServingResult res = kv::run_serving(rt, store, params);

  ctx.set_config("machine", machine);
  ctx.set_config("conduit", conduit);
  ctx.set_config("backend", "processes");
  ctx.set_config("threads", std::to_string(cell.threads));
  ctx.set_config("nodes", std::to_string(nodes));
  ctx.set_config("keys", std::to_string(params.keys));
  ctx.set_config("ops_per_rank", std::to_string(params.ops_per_rank));
  ctx.set_config("dist", kv::key_dist_name(params.dist));
  ctx.set_config("zipf_s", "0.99");
  ctx.set_config("read_fraction", std::to_string(params.read_fraction));
  ctx.set_config("kv_path", kv::kv_path_name(params.path));
  ctx.set_config("arrival_rate_hz", "1e6");
  ctx.set_config("slo_us", "50");
  // Transparency witness: every path must serve the same operation count.
  ctx.set_config("ops", std::to_string(res.ops));

  ctx.report("p50_us", res.p50_s * 1e6, "us", perf::Direction::lower_is_better);
  ctx.report("p99_us", res.p99_s * 1e6, "us", perf::Direction::lower_is_better);
  ctx.report("p999_us", res.p999_s * 1e6, "us",
             perf::Direction::lower_is_better);
  ctx.report("throughput_kops", res.throughput_ops_s / 1e3, "kops/s");
  ctx.report("slo_goodput_kops", res.slo_goodput_ops_s / 1e3, "kops/s");
  ctx.report_trace_counters(
      tracer, {"net.msg", "net.bytes", "kv.latency.op", "kv.latency.slo_miss",
               "gas.kv.path.amo", "gas.kv.path.rpc", "gas.kv.probe",
               "gas.kv.retry"});
}

PERF_BENCHMARK("kv.serving.t64.r95.amo") {
  run_cell(ctx, {64, 0.95, kv::KvPath::amo});
}
PERF_BENCHMARK("kv.serving.t64.r95.rpc") {
  run_cell(ctx, {64, 0.95, kv::KvPath::rpc});
}
PERF_BENCHMARK("kv.serving.t64.r95.auto") {
  run_cell(ctx, {64, 0.95, kv::KvPath::automatic});
}
PERF_BENCHMARK("kv.serving.t64.r50.amo") {
  run_cell(ctx, {64, 0.50, kv::KvPath::amo});
}
PERF_BENCHMARK("kv.serving.t64.r50.rpc") {
  run_cell(ctx, {64, 0.50, kv::KvPath::rpc});
}
PERF_BENCHMARK("kv.serving.t64.r50.auto") {
  run_cell(ctx, {64, 0.50, kv::KvPath::automatic});
}
PERF_BENCHMARK("kv.serving.t256.r95.auto") {
  run_cell(ctx, {256, 0.95, kv::KvPath::automatic});
}
PERF_BENCHMARK("kv.serving.t256.r50.auto") {
  run_cell(ctx, {256, 0.50, kv::KvPath::automatic});
}

int report(std::ostream& os, const std::vector<perf::Result>& results) {
  os << "\nKV serving latency (Zipfian s=0.99, 1 Mops/s/rank offered, 50 us "
        "SLO)\n";
  util::Table table({"Cell", "p50 us", "p99 us", "p99.9 us", "kops/s",
                     "SLO kops/s"});
  for (const auto& r : results) {
    table.add_row({r.id, util::Table::num(r.median("p50_us"), 2),
                   util::Table::num(r.median("p99_us"), 2),
                   util::Table::num(r.median("p999_us"), 2),
                   util::Table::num(r.median("throughput_kops"), 1),
                   util::Table::num(r.median("slo_goodput_kops"), 1)});
  }
  table.print(os);

  if (g_path_override != kv::KvPath::automatic) {
    os << "\n(--kv-path override active: selector gate skipped)\n";
    return 0;
  }

  // Selector gate: on both 64-rank mixes auto's p99 must be within 5% of
  // the better pinned path.
  int rc = 0;
  for (const char* mix : {"r95", "r50"}) {
    const std::string base = std::string("kv.serving.t64.") + mix + ".";
    const auto* amo = bench::find_result(results, base + "amo");
    const auto* rpc = bench::find_result(results, base + "rpc");
    const auto* aut = bench::find_result(results, base + "auto");
    if (amo == nullptr || rpc == nullptr || aut == nullptr) continue;
    const double best =
        std::min(amo->median("p99_us"), rpc->median("p99_us"));
    const double got = aut->median("p99_us");
    char line[128];
    std::snprintf(line, sizeof line,
                  "\n%s: auto p99 %.2f us vs best pinned %.2f us -> %.2fx %s\n",
                  mix, got, best, got / best,
                  got <= 1.05 * best ? "(PASS <= 1.05x)" : "(FAIL > 1.05x)");
    os << line;
    if (got > 1.05 * best) rc = 1;
  }
  return rc;
}

/// Consume --kv-path before perf::Runner (which hard-errors on anything it
/// does not know) parses the rest. Accepts --flag=value and --flag value.
std::vector<const char*> strip_kv_flags(int argc, char** argv) {
  std::vector<const char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    bool inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      inline_value = true;
    }
    if (arg != "--kv-path") {
      kept.push_back(argv[i]);
      continue;
    }
    if (!inline_value) {
      if (i + 1 >= argc) throw std::invalid_argument("--kv-path: missing value");
      value = argv[++i];
    }
    const auto parsed = kv::parse_kv_path(value);
    if (!parsed) {
      throw std::invalid_argument("unknown --kv-path value '" + value +
                                  "' (expected auto|amo|rpc)");
    }
    g_path_override = *parsed;
  }
  return kept;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> args;
  try {
    args = strip_kv_flags(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_kv_serving: " << e.what() << '\n';
    return 2;
  }
  const perf::Runner runner("bench_kv_serving", static_cast<int>(args.size()),
                            args.data());
  bench::banner(runner.human_out(),
                "KV serving — latency percentiles under open-loop load",
                "fine-grained AMO vs RPC-to-owner access paths over the "
                "hierarchical machine (thesis §4 communication trade-offs)");
  return runner.main([&](const std::vector<perf::Result>& results) {
    return report(runner.human_out(), results);
  });
}
