// Reproduces Fig 4.4: "NAS FT Runtime Performance Breakdown" — per-step
// speedup of class B over 1..128 threads on 8 Lehman nodes.
//
// Paper shape: evolve / local transpose / 1-D FFT / 2-D FFT scale almost
// perfectly to 64 threads; the all-to-all stops scaling past 16 threads
// (2 per node, when the per-flow connection cap stops binding and the NIC
// saturates); at 128 threads the kernels gain only the SMT 5-30% and the
// curves kink.
// --trace=FILE writes a chrome://tracing JSON of the final (128-thread,
// split-phase) configuration.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "ft_driver.hpp"
#include "util/cli.hpp"

namespace {
using namespace hupc;  // NOLINT
}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto grid = cli.get_bool("quick", false) ? fft::FtParams::class_a()
                                                 : fft::FtParams::class_b();
  const std::string trace_file = cli.get("trace", "");
  cli.reject_unread(argv[0]);
  std::unique_ptr<trace::Tracer> tracer;
  if (!trace_file.empty()) tracer = std::make_unique<trace::Tracer>();

  bench::banner("Fig 4.4 — NAS FT per-step speedup, class B, 8 Lehman nodes",
                "compute steps ~linear to 64; all-to-all flat past 16 "
                "threads; SMT kink at 128");

  fft::FtTimings base;
  util::Table table({"Threads", "Evolve", "Transpose", "FFT 2D", "FFT 1D",
                     "All-to-all (split)", "Comm hidden by overlap"});
  for (int threads : {1, 2, 4, 8, 16, 32, 64, 128}) {
    // Only the split-phase run is traced; each run starts fresh, so the
    // exported file holds the last (128-thread) configuration.
    if (tracer) tracer->clear();
    const auto split = bench::run_ft("lehman", 8, threads, 0,
                                     bench::FtExec::upc_processes, grid,
                                     fft::CommVariant::split_phase,
                                     tracer.get());
    const auto overlap = bench::run_ft("lehman", 8, threads, 0,
                                       bench::FtExec::upc_processes, grid,
                                       fft::CommVariant::overlap);
    if (threads == 1) {
      base = split.mean;
    } else if (threads == 2) {
      // A single rank exchanges nothing; the all-to-all speedup column is
      // normalized to the 2-thread run at "speedup 2".
      base.comm = split.mean.comm * 2.0;
    }
    auto speedup = [](double b, double t) {
      return t <= 0 ? 0.0 : b / t;
    };
    table.add_row(
        {std::to_string(threads),
         util::Table::num(speedup(base.evolve, split.mean.evolve), 1),
         util::Table::num(speedup(base.transpose, split.mean.transpose), 1),
         util::Table::num(speedup(base.fft2d, split.mean.fft2d), 1),
         util::Table::num(speedup(base.fft1d, split.mean.fft1d), 1),
         util::Table::num(speedup(base.comm, split.mean.comm), 1),
         // How much of the exchange the overlap variant hides under
         // compute: ~100% while compute dominates, ~0% once the cores are
         // saturated and communication is exposed (the paper's motivation
         // for more levels of parallelism).
         split.mean.comm <= 0.0
             ? "n/a"
             : util::Table::pct(
                   std::max(0.0, 1.0 - overlap.mean.comm / split.mean.comm),
                   0)});
  }
  table.print(std::cout);
  std::printf("\n(speedup relative to 1 thread; class %s)\n", grid.name);
  if (tracer) {
    std::ofstream os(trace_file);
    tracer->export_chrome(os);
    if (!os) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_file.c_str());
      return 1;
    }
    std::printf("trace: %llu events (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(tracer->recorded()),
                static_cast<unsigned long long>(tracer->dropped()),
                trace_file.c_str());
  }
  return 0;
}
