// Ablation: flat pairwise vs hierarchical node-aware all-to-all in the
// message layer, across per-pair sizes — locating the crossover that
// justifies the tuned collective's aggregation strategy.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mpl/mpi.hpp"
#include "sim/sim.hpp"
#include "util/cli.hpp"

namespace {

using namespace hupc;  // NOLINT

double run_alltoall(int threads, int nodes, std::size_t bytes_per_pair,
                    bool hierarchical) {
  sim::Engine engine;
  gas::Runtime rt(engine, bench::make_config("lehman", nodes, threads));
  mpl::Mpi mpi(rt);
  rt.spmd([&mpi, bytes_per_pair, hierarchical](gas::Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    if (hierarchical) {
      co_await mpi.alltoall(t, nullptr, nullptr, bytes_per_pair);
    } else {
      // Modeled flat exchange: the UPC-style p2p pattern.
      std::vector<sim::Future<>> pending;
      for (int step = 1; step < t.threads(); ++step) {
        const int peer = (t.rank() + step) % t.threads();
        pending.push_back(
            t.start_async(t.copy_raw(peer, nullptr, nullptr, bytes_per_pair)));
      }
      for (auto& f : pending) co_await f.wait();
      co_await t.barrier();
    }
  });
  rt.run_to_completion();
  return sim::to_seconds(engine.now());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int threads = static_cast<int>(cli.get_int("threads", 32));
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  cli.reject_unread(argv[0]);

  bench::banner("Ablation — flat vs hierarchical all-to-all",
                "aggregation wins at small message sizes (fewer injections, "
                "latencies), flat wins once wire time dominates");

  util::Table table({"Bytes/pair", "Flat p2p (ms)", "Hierarchical (ms)",
                     "Hier/flat"});
  for (std::size_t bytes : {64u, 512u, 4096u, 32768u, 262144u, 1048576u}) {
    const double flat = run_alltoall(threads, nodes, bytes, false);
    const double hier = run_alltoall(threads, nodes, bytes, true);
    table.add_row({std::to_string(bytes), util::Table::num(flat * 1e3, 2),
                   util::Table::num(hier * 1e3, 2),
                   util::Table::num(hier / flat, 2)});
  }
  table.print(std::cout);
  std::printf("\n(%d threads over %d nodes, QDR InfiniBand)\n", threads, nodes);
  return 0;
}
