// Shared NAS FT run driver for the Fig 4.4 / 4.5 / 4.6 benches.
#pragma once

#include <string>

#include "bench_common.hpp"
#include "fft/ft_model.hpp"
#include "gas/gas.hpp"
#include "sim/sim.hpp"
#include "trace/trace.hpp"

namespace hupc::bench {

enum class FtExec {
  mpi,            // MPI-Fortran analogue: tuned alltoall collective
  upc_processes,  // process backend, PSHM on
  upc_pthreads,   // pthreads backend (shared node connection)
  hybrid_openmp,  // UPC x OpenMP sub-threads
  hybrid_cilk,    // UPC x Cilk++
  hybrid_pool,    // UPC x in-house thread pool
};

[[nodiscard]] inline const char* to_string(FtExec e) {
  switch (e) {
    case FtExec::mpi: return "MPI";
    case FtExec::upc_processes: return "UPC (processes)";
    case FtExec::upc_pthreads: return "UPC (pthreads)";
    case FtExec::hybrid_openmp: return "UPC*OpenMP";
    case FtExec::hybrid_cilk: return "UPC*Cilk++";
    case FtExec::hybrid_pool: return "UPC*Thread-Pool";
  }
  return "?";
}

struct FtRun {
  fft::FtTimings mean;
  double total_seconds = 0;
};

/// Run FT with `upc_threads` UPC ranks x `subs` sub-threads each on
/// `machine` restricted to `nodes` nodes.
[[nodiscard]] inline FtRun run_ft(const std::string& machine, int nodes,
                                  int upc_threads, int subs, FtExec exec,
                                  fft::FtParams grid,
                                  fft::CommVariant variant,
                                  trace::Tracer* tracer = nullptr) {
  sim::Engine engine;
  gas::Backend backend = exec == FtExec::upc_pthreads
                             ? gas::Backend::pthreads
                             : gas::Backend::processes;
  auto config = make_config(machine, nodes, upc_threads, backend);
  config.tracer = tracer;
  // The MPI library manages the node's endpoints cooperatively (tuned
  // collectives), so it does not pay the per-endpoint NIC contention the
  // independent GASNet process endpoints do.
  if (exec == FtExec::mpi) config.nic_efficiency = 1.0;
  gas::Runtime rt(engine, config);

  fft::FtConfig cfg;
  cfg.grid = grid;
  cfg.variant = variant;
  cfg.comm = exec == FtExec::mpi ? fft::FtComm::mpi_alltoall
                                 : fft::FtComm::upc_p2p;
  cfg.subs = subs;
  switch (exec) {
    case FtExec::hybrid_openmp: cfg.sub_model = core::SubModel::openmp; break;
    case FtExec::hybrid_cilk: cfg.sub_model = core::SubModel::cilk; break;
    case FtExec::hybrid_pool: cfg.sub_model = core::SubModel::thread_pool; break;
    default: cfg.subs = 0; break;
  }

  fft::FtModel ft(rt, cfg);
  rt.spmd([&ft](gas::Thread& t) -> sim::Task<void> { co_await ft.run(t); });
  rt.run_to_completion();

  FtRun result;
  result.mean = ft.mean();
  result.total_seconds = sim::to_seconds(engine.now());
  return result;
}

}  // namespace hupc::bench
