# Empty compiler generated dependencies file for uts_test.
# This may be replaced when dependencies are built.
