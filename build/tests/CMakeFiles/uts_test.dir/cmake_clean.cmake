file(REMOVE_RECURSE
  "CMakeFiles/uts_test.dir/uts_test.cpp.o"
  "CMakeFiles/uts_test.dir/uts_test.cpp.o.d"
  "uts_test"
  "uts_test.pdb"
  "uts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
