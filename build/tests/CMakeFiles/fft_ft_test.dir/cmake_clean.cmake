file(REMOVE_RECURSE
  "CMakeFiles/fft_ft_test.dir/fft_ft_test.cpp.o"
  "CMakeFiles/fft_ft_test.dir/fft_ft_test.cpp.o.d"
  "fft_ft_test"
  "fft_ft_test.pdb"
  "fft_ft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_ft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
