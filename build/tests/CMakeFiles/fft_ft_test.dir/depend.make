# Empty dependencies file for fft_ft_test.
# This may be replaced when dependencies are built.
