# Empty dependencies file for core_team_coll_test.
# This may be replaced when dependencies are built.
