file(REMOVE_RECURSE
  "CMakeFiles/sim_profiler_test.dir/sim_profiler_test.cpp.o"
  "CMakeFiles/sim_profiler_test.dir/sim_profiler_test.cpp.o.d"
  "sim_profiler_test"
  "sim_profiler_test.pdb"
  "sim_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
