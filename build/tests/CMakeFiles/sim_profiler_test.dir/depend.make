# Empty dependencies file for sim_profiler_test.
# This may be replaced when dependencies are built.
