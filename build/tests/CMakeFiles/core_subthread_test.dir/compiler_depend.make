# Empty compiler generated dependencies file for core_subthread_test.
# This may be replaced when dependencies are built.
