file(REMOVE_RECURSE
  "CMakeFiles/core_subthread_test.dir/core_subthread_test.cpp.o"
  "CMakeFiles/core_subthread_test.dir/core_subthread_test.cpp.o.d"
  "core_subthread_test"
  "core_subthread_test.pdb"
  "core_subthread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_subthread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
