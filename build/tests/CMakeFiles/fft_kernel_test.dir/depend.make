# Empty dependencies file for fft_kernel_test.
# This may be replaced when dependencies are built.
