file(REMOVE_RECURSE
  "CMakeFiles/fft_kernel_test.dir/fft_kernel_test.cpp.o"
  "CMakeFiles/fft_kernel_test.dir/fft_kernel_test.cpp.o.d"
  "fft_kernel_test"
  "fft_kernel_test.pdb"
  "fft_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
