# Empty dependencies file for stream_gups_test.
# This may be replaced when dependencies are built.
