file(REMOVE_RECURSE
  "CMakeFiles/stream_gups_test.dir/stream_gups_test.cpp.o"
  "CMakeFiles/stream_gups_test.dir/stream_gups_test.cpp.o.d"
  "stream_gups_test"
  "stream_gups_test.pdb"
  "stream_gups_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_gups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
