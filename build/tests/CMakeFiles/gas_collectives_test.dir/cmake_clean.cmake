file(REMOVE_RECURSE
  "CMakeFiles/gas_collectives_test.dir/gas_collectives_test.cpp.o"
  "CMakeFiles/gas_collectives_test.dir/gas_collectives_test.cpp.o.d"
  "gas_collectives_test"
  "gas_collectives_test.pdb"
  "gas_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
