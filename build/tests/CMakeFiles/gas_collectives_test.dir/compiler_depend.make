# Empty compiler generated dependencies file for gas_collectives_test.
# This may be replaced when dependencies are built.
