
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gas_test.cpp" "tests/CMakeFiles/gas_test.dir/gas_test.cpp.o" "gcc" "tests/CMakeFiles/gas_test.dir/gas_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gas/CMakeFiles/hupc_gas.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hupc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hupc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hupc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/hupc_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hupc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
