# Empty dependencies file for core_team_test.
# This may be replaced when dependencies are built.
