file(REMOVE_RECURSE
  "CMakeFiles/core_team_test.dir/core_team_test.cpp.o"
  "CMakeFiles/core_team_test.dir/core_team_test.cpp.o.d"
  "core_team_test"
  "core_team_test.pdb"
  "core_team_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_team_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
