# Empty compiler generated dependencies file for gas_forall_test.
# This may be replaced when dependencies are built.
