file(REMOVE_RECURSE
  "CMakeFiles/gas_forall_test.dir/gas_forall_test.cpp.o"
  "CMakeFiles/gas_forall_test.dir/gas_forall_test.cpp.o.d"
  "gas_forall_test"
  "gas_forall_test.pdb"
  "gas_forall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_forall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
