# Empty dependencies file for gas_array2d_test.
# This may be replaced when dependencies are built.
