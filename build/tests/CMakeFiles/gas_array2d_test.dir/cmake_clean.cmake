file(REMOVE_RECURSE
  "CMakeFiles/gas_array2d_test.dir/gas_array2d_test.cpp.o"
  "CMakeFiles/gas_array2d_test.dir/gas_array2d_test.cpp.o.d"
  "gas_array2d_test"
  "gas_array2d_test.pdb"
  "gas_array2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_array2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
