# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_task_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sync_test[1]_include.cmake")
include("/root/repo/build/tests/sim_resource_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/gas_test[1]_include.cmake")
include("/root/repo/build/tests/gas_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/core_team_test[1]_include.cmake")
include("/root/repo/build/tests/core_subthread_test[1]_include.cmake")
include("/root/repo/build/tests/mpl_test[1]_include.cmake")
include("/root/repo/build/tests/uts_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/fft_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/fft_ft_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/core_team_coll_test[1]_include.cmake")
include("/root/repo/build/tests/gas_array2d_test[1]_include.cmake")
include("/root/repo/build/tests/gas_forall_test[1]_include.cmake")
include("/root/repo/build/tests/sim_profiler_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/stream_gups_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/util_histogram_test[1]_include.cmake")
