file(REMOVE_RECURSE
  "libhupc_uts.a"
)
