# Empty dependencies file for hupc_uts.
# This may be replaced when dependencies are built.
