file(REMOVE_RECURSE
  "CMakeFiles/hupc_uts.dir/sha1.cpp.o"
  "CMakeFiles/hupc_uts.dir/sha1.cpp.o.d"
  "CMakeFiles/hupc_uts.dir/tree.cpp.o"
  "CMakeFiles/hupc_uts.dir/tree.cpp.o.d"
  "libhupc_uts.a"
  "libhupc_uts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_uts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
