file(REMOVE_RECURSE
  "CMakeFiles/hupc_gas.dir/heap.cpp.o"
  "CMakeFiles/hupc_gas.dir/heap.cpp.o.d"
  "CMakeFiles/hupc_gas.dir/runtime.cpp.o"
  "CMakeFiles/hupc_gas.dir/runtime.cpp.o.d"
  "libhupc_gas.a"
  "libhupc_gas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_gas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
