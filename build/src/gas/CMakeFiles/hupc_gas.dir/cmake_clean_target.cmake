file(REMOVE_RECURSE
  "libhupc_gas.a"
)
