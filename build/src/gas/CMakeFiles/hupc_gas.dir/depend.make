# Empty dependencies file for hupc_gas.
# This may be replaced when dependencies are built.
