file(REMOVE_RECURSE
  "CMakeFiles/hupc_fft.dir/ft_model.cpp.o"
  "CMakeFiles/hupc_fft.dir/ft_model.cpp.o.d"
  "CMakeFiles/hupc_fft.dir/ft_real.cpp.o"
  "CMakeFiles/hupc_fft.dir/ft_real.cpp.o.d"
  "CMakeFiles/hupc_fft.dir/kernel.cpp.o"
  "CMakeFiles/hupc_fft.dir/kernel.cpp.o.d"
  "libhupc_fft.a"
  "libhupc_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
