file(REMOVE_RECURSE
  "libhupc_fft.a"
)
