# Empty dependencies file for hupc_fft.
# This may be replaced when dependencies are built.
