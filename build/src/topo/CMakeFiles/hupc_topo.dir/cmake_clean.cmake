file(REMOVE_RECURSE
  "CMakeFiles/hupc_topo.dir/machine.cpp.o"
  "CMakeFiles/hupc_topo.dir/machine.cpp.o.d"
  "CMakeFiles/hupc_topo.dir/placement.cpp.o"
  "CMakeFiles/hupc_topo.dir/placement.cpp.o.d"
  "libhupc_topo.a"
  "libhupc_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
