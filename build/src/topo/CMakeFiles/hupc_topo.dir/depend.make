# Empty dependencies file for hupc_topo.
# This may be replaced when dependencies are built.
