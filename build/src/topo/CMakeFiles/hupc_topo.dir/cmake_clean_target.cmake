file(REMOVE_RECURSE
  "libhupc_topo.a"
)
