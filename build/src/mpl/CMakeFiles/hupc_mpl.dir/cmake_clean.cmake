file(REMOVE_RECURSE
  "CMakeFiles/hupc_mpl.dir/mpi.cpp.o"
  "CMakeFiles/hupc_mpl.dir/mpi.cpp.o.d"
  "libhupc_mpl.a"
  "libhupc_mpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_mpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
