file(REMOVE_RECURSE
  "libhupc_mpl.a"
)
