# Empty compiler generated dependencies file for hupc_mpl.
# This may be replaced when dependencies are built.
