file(REMOVE_RECURSE
  "CMakeFiles/hupc_sim.dir/engine.cpp.o"
  "CMakeFiles/hupc_sim.dir/engine.cpp.o.d"
  "CMakeFiles/hupc_sim.dir/profiler.cpp.o"
  "CMakeFiles/hupc_sim.dir/profiler.cpp.o.d"
  "CMakeFiles/hupc_sim.dir/resource.cpp.o"
  "CMakeFiles/hupc_sim.dir/resource.cpp.o.d"
  "libhupc_sim.a"
  "libhupc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
