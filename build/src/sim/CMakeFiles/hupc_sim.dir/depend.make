# Empty dependencies file for hupc_sim.
# This may be replaced when dependencies are built.
