file(REMOVE_RECURSE
  "libhupc_sim.a"
)
