file(REMOVE_RECURSE
  "libhupc_net.a"
)
