# Empty compiler generated dependencies file for hupc_net.
# This may be replaced when dependencies are built.
