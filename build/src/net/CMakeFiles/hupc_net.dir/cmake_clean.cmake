file(REMOVE_RECURSE
  "CMakeFiles/hupc_net.dir/network.cpp.o"
  "CMakeFiles/hupc_net.dir/network.cpp.o.d"
  "libhupc_net.a"
  "libhupc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
