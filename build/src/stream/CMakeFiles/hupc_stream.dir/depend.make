# Empty dependencies file for hupc_stream.
# This may be replaced when dependencies are built.
