file(REMOVE_RECURSE
  "libhupc_stream.a"
)
