file(REMOVE_RECURSE
  "CMakeFiles/hupc_stream.dir/random_access.cpp.o"
  "CMakeFiles/hupc_stream.dir/random_access.cpp.o.d"
  "CMakeFiles/hupc_stream.dir/stream.cpp.o"
  "CMakeFiles/hupc_stream.dir/stream.cpp.o.d"
  "libhupc_stream.a"
  "libhupc_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
