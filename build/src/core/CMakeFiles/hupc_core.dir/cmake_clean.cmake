file(REMOVE_RECURSE
  "CMakeFiles/hupc_core.dir/subthread.cpp.o"
  "CMakeFiles/hupc_core.dir/subthread.cpp.o.d"
  "CMakeFiles/hupc_core.dir/team.cpp.o"
  "CMakeFiles/hupc_core.dir/team.cpp.o.d"
  "libhupc_core.a"
  "libhupc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
