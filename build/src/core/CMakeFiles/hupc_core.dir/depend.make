# Empty dependencies file for hupc_core.
# This may be replaced when dependencies are built.
