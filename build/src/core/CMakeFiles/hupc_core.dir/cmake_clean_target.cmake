file(REMOVE_RECURSE
  "libhupc_core.a"
)
