file(REMOVE_RECURSE
  "CMakeFiles/hupc_util.dir/cli.cpp.o"
  "CMakeFiles/hupc_util.dir/cli.cpp.o.d"
  "CMakeFiles/hupc_util.dir/histogram.cpp.o"
  "CMakeFiles/hupc_util.dir/histogram.cpp.o.d"
  "CMakeFiles/hupc_util.dir/table.cpp.o"
  "CMakeFiles/hupc_util.dir/table.cpp.o.d"
  "libhupc_util.a"
  "libhupc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
