# Empty dependencies file for hupc_util.
# This may be replaced when dependencies are built.
