file(REMOVE_RECURSE
  "libhupc_util.a"
)
