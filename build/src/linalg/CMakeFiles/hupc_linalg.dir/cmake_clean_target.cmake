file(REMOVE_RECURSE
  "libhupc_linalg.a"
)
