# Empty dependencies file for hupc_linalg.
# This may be replaced when dependencies are built.
