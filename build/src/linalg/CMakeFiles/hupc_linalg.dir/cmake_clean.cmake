file(REMOVE_RECURSE
  "CMakeFiles/hupc_linalg.dir/summa.cpp.o"
  "CMakeFiles/hupc_linalg.dir/summa.cpp.o.d"
  "libhupc_linalg.a"
  "libhupc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
