file(REMOVE_RECURSE
  "CMakeFiles/hupc_mem.dir/memory_system.cpp.o"
  "CMakeFiles/hupc_mem.dir/memory_system.cpp.o.d"
  "libhupc_mem.a"
  "libhupc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
