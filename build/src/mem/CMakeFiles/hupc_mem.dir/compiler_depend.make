# Empty compiler generated dependencies file for hupc_mem.
# This may be replaced when dependencies are built.
