file(REMOVE_RECURSE
  "libhupc_mem.a"
)
