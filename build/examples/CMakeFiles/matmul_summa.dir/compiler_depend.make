# Empty compiler generated dependencies file for matmul_summa.
# This may be replaced when dependencies are built.
