file(REMOVE_RECURSE
  "CMakeFiles/matmul_summa.dir/matmul_summa.cpp.o"
  "CMakeFiles/matmul_summa.dir/matmul_summa.cpp.o.d"
  "matmul_summa"
  "matmul_summa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_summa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
