file(REMOVE_RECURSE
  "CMakeFiles/hupc_bench.dir/hupc_bench.cpp.o"
  "CMakeFiles/hupc_bench.dir/hupc_bench.cpp.o.d"
  "hupc_bench"
  "hupc_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hupc_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
