# Empty dependencies file for hupc_bench.
# This may be replaced when dependencies are built.
