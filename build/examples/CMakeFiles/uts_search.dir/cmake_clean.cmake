file(REMOVE_RECURSE
  "CMakeFiles/uts_search.dir/uts_search.cpp.o"
  "CMakeFiles/uts_search.dir/uts_search.cpp.o.d"
  "uts_search"
  "uts_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uts_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
