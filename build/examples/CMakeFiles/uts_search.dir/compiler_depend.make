# Empty compiler generated dependencies file for uts_search.
# This may be replaced when dependencies are built.
