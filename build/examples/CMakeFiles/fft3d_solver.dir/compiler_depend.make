# Empty compiler generated dependencies file for fft3d_solver.
# This may be replaced when dependencies are built.
