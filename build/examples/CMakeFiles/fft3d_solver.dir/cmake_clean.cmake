file(REMOVE_RECURSE
  "CMakeFiles/fft3d_solver.dir/fft3d_solver.cpp.o"
  "CMakeFiles/fft3d_solver.dir/fft3d_solver.cpp.o.d"
  "fft3d_solver"
  "fft3d_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft3d_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
