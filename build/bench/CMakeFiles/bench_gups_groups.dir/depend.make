# Empty dependencies file for bench_gups_groups.
# This may be replaced when dependencies are built.
