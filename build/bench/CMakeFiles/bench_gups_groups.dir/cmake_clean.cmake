file(REMOVE_RECURSE
  "CMakeFiles/bench_gups_groups.dir/bench_gups_groups.cpp.o"
  "CMakeFiles/bench_gups_groups.dir/bench_gups_groups.cpp.o.d"
  "bench_gups_groups"
  "bench_gups_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gups_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
