file(REMOVE_RECURSE
  "CMakeFiles/bench_table_3_1_stream_twisted.dir/bench_table_3_1_stream_twisted.cpp.o"
  "CMakeFiles/bench_table_3_1_stream_twisted.dir/bench_table_3_1_stream_twisted.cpp.o.d"
  "bench_table_3_1_stream_twisted"
  "bench_table_3_1_stream_twisted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_3_1_stream_twisted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
