# Empty compiler generated dependencies file for bench_table_3_1_stream_twisted.
# This may be replaced when dependencies are built.
