# Empty compiler generated dependencies file for bench_fig_4_5_ft_comm.
# This may be replaced when dependencies are built.
