file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_4_5_ft_comm.dir/bench_fig_4_5_ft_comm.cpp.o"
  "CMakeFiles/bench_fig_4_5_ft_comm.dir/bench_fig_4_5_ft_comm.cpp.o.d"
  "bench_fig_4_5_ft_comm"
  "bench_fig_4_5_ft_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_4_5_ft_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
