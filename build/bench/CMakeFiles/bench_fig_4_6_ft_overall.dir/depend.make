# Empty dependencies file for bench_fig_4_6_ft_overall.
# This may be replaced when dependencies are built.
