# Empty compiler generated dependencies file for bench_table_4_1_stream_hybrid.
# This may be replaced when dependencies are built.
