file(REMOVE_RECURSE
  "CMakeFiles/bench_table_3_2_uts_profiling.dir/bench_table_3_2_uts_profiling.cpp.o"
  "CMakeFiles/bench_table_3_2_uts_profiling.dir/bench_table_3_2_uts_profiling.cpp.o.d"
  "bench_table_3_2_uts_profiling"
  "bench_table_3_2_uts_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_3_2_uts_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
