# Empty compiler generated dependencies file for bench_table_3_2_uts_profiling.
# This may be replaced when dependencies are built.
