file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_conduit.dir/bench_ablation_conduit.cpp.o"
  "CMakeFiles/bench_ablation_conduit.dir/bench_ablation_conduit.cpp.o.d"
  "bench_ablation_conduit"
  "bench_ablation_conduit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conduit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
