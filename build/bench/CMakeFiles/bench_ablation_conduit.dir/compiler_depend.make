# Empty compiler generated dependencies file for bench_ablation_conduit.
# This may be replaced when dependencies are built.
