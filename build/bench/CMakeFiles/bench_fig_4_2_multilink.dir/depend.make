# Empty dependencies file for bench_fig_4_2_multilink.
# This may be replaced when dependencies are built.
