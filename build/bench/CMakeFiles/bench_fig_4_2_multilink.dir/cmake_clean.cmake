file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_4_2_multilink.dir/bench_fig_4_2_multilink.cpp.o"
  "CMakeFiles/bench_fig_4_2_multilink.dir/bench_fig_4_2_multilink.cpp.o.d"
  "bench_fig_4_2_multilink"
  "bench_fig_4_2_multilink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_4_2_multilink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
