# Empty dependencies file for bench_fig_3_3_uts_scaling.
# This may be replaced when dependencies are built.
