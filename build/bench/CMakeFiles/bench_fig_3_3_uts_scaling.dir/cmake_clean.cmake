file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_3_3_uts_scaling.dir/bench_fig_3_3_uts_scaling.cpp.o"
  "CMakeFiles/bench_fig_3_3_uts_scaling.dir/bench_fig_3_3_uts_scaling.cpp.o.d"
  "bench_fig_3_3_uts_scaling"
  "bench_fig_3_3_uts_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_3_3_uts_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
