file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_3_4_ft_alltoall.dir/bench_fig_3_4_ft_alltoall.cpp.o"
  "CMakeFiles/bench_fig_3_4_ft_alltoall.dir/bench_fig_3_4_ft_alltoall.cpp.o.d"
  "bench_fig_3_4_ft_alltoall"
  "bench_fig_3_4_ft_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_3_4_ft_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
