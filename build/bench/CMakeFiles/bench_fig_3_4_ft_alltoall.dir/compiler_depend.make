# Empty compiler generated dependencies file for bench_fig_3_4_ft_alltoall.
# This may be replaced when dependencies are built.
