# Empty compiler generated dependencies file for bench_fig_4_4_ft_breakdown.
# This may be replaced when dependencies are built.
