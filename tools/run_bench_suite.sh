#!/usr/bin/env bash
# Run the harnessed benchmark suite and merge the per-binary JSON artifacts
# into one results file at the repo root.
#
# Usage: tools/run_bench_suite.sh [--tier=smoke|full] [--build-dir=DIR]
#                                 [--out=FILE] [--update-baseline]
#
# --tier=smoke (default) runs the CI-sized subset; --tier=full runs the
# paper-scale configurations (minutes, not seconds). --update-baseline
# additionally copies the merged artifact over bench/baselines/<tier>.json —
# do this only when a deliberate model change shifts the numbers.
set -euo pipefail

tier=smoke
build_dir=build
out=BENCH_results.json
update_baseline=0

for arg in "$@"; do
  case "$arg" in
    --tier=*) tier="${arg#*=}" ;;
    --build-dir=*) build_dir="${arg#*=}" ;;
    --out=*) out="${arg#*=}" ;;
    --update-baseline) update_baseline=1 ;;
    *)
      echo "run_bench_suite: unknown argument '$arg'" >&2
      echo "usage: $0 [--tier=smoke|full] [--build-dir=DIR] [--out=FILE]" \
           "[--update-baseline]" >&2
      exit 2
      ;;
  esac
done

case "$tier" in
  smoke|full) ;;
  *) echo "run_bench_suite: --tier must be smoke or full, got '$tier'" >&2
     exit 2 ;;
esac

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if [[ ! -d "$build_dir" ]]; then
  echo "run_bench_suite: build dir '$build_dir' not found" \
       "(run: cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
  exit 2
fi

HUPC_GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export HUPC_GIT_SHA

# Simulation suites: modeled metrics are deterministic, so 2 repetitions
# are enough to prove bit-identical samples (MAD 0). The wall-clock micro
# suite needs more repetitions plus warmup to tame host noise.
sim_suites=(
  bench_ablation_coalesce
  bench_ablation_readcache
  bench_ablation_vis
  bench_ablation_steal
  bench_ablation_async
  bench_ablation_collectives
  bench_gups_groups
  bench_fig_3_3_uts_scaling
  bench_kv_serving
)
micro_suite=bench_micro_engine

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

artifacts=()
for suite in "${sim_suites[@]}"; do
  bin="$build_dir/bench/$suite"
  if [[ ! -x "$bin" ]]; then
    echo "run_bench_suite: missing binary $bin" >&2
    exit 2
  fi
  echo "== $suite (tier=$tier) =="
  "$bin" --tier="$tier" --repetitions=2 --json="$tmpdir/$suite.json" --no-table
  artifacts+=("$tmpdir/$suite.json")
done

bin="$build_dir/bench/$micro_suite"
if [[ ! -x "$bin" ]]; then
  echo "run_bench_suite: missing binary $bin" >&2
  exit 2
fi
echo "== $micro_suite (tier=$tier) =="
"$bin" --tier="$tier" --repetitions=5 --warmup=1 \
       --json="$tmpdir/$micro_suite.json" --no-table
artifacts+=("$tmpdir/$micro_suite.json")

python3 tools/bench_merge.py "$out" "${artifacts[@]}"

if [[ "$update_baseline" == 1 ]]; then
  mkdir -p bench/baselines
  cp "$out" "bench/baselines/$tier.json"
  echo "run_bench_suite: baseline refreshed: bench/baselines/$tier.json"
fi

echo "run_bench_suite: done -> $out (tier=$tier, git=$HUPC_GIT_SHA)"
