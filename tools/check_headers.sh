#!/usr/bin/env bash
# Header self-containment check: every public header under src/ must
# compile standalone (all of its includes declared, no hidden ordering
# dependencies). Catches the "works only when included after X" rot that
# umbrella headers hide.
set -u
cd "$(dirname "$0")/.."

CXX="${CXX:-g++}"
status=0
checked=0
for header in $(find src -name '*.hpp' | sort); do
  if ! "$CXX" -std=c++20 -fsyntax-only -Isrc -x c++ "$header" 2>/tmp/hdr_err; then
    echo "NOT SELF-CONTAINED: $header"
    sed 's/^/    /' /tmp/hdr_err | head -10
    status=1
  fi
  checked=$((checked + 1))
done
echo "checked $checked headers under src/"
exit $status
