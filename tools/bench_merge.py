#!/usr/bin/env python3
"""Merge per-binary perf artifacts (schema v1) into one results file.

Usage: bench_merge.py OUT IN.json [IN.json ...]

Each input is the --json output of one harnessed bench binary. The merged
document keeps schema_version/tier/fingerprint at the top (inputs must
agree on tier), collects the producing suite names, and concatenates the
benchmark entries, stamping each with its suite. Duplicate benchmark ids
across suites are an error — ids are the baseline lookup key.
"""

import json
import sys


def fail(msg):
    print(f"bench_merge: error: {msg}", file=sys.stderr)
    sys.exit(2)


def main(argv):
    if len(argv) < 3:
        fail("usage: bench_merge.py OUT IN.json [IN.json ...]")
    out_path, inputs = argv[1], argv[2:]

    merged = None
    for path in inputs:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"{path}: {e}")
        if doc.get("schema_version") != 1:
            fail(f"{path}: unsupported schema_version {doc.get('schema_version')}")
        if merged is None:
            fingerprint = {
                k: v for k, v in doc.get("fingerprint", {}).items() if k != "suite"
            }
            merged = {
                "schema_version": 1,
                "tier": doc.get("tier", "full"),
                "fingerprint": fingerprint,
                "suites": [],
                "benchmarks": [],
            }
        if doc.get("tier") != merged["tier"]:
            fail(f"{path}: tier {doc.get('tier')!r} != {merged['tier']!r}")
        merged["suites"].append(doc.get("suite", "?"))
        for bench in doc.get("benchmarks", []):
            entry = dict(bench)
            entry["suite"] = doc.get("suite", "?")
            merged["benchmarks"].append(entry)

    if merged is None:
        fail("no inputs")
    ids = [b.get("id") for b in merged["benchmarks"]]
    dups = {i for i in ids if ids.count(i) > 1}
    if dups:
        fail(f"duplicate benchmark ids across suites: {sorted(dups)}")

    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(
        f"bench_merge: {len(merged['benchmarks'])} benchmarks from "
        f"{len(inputs)} suites -> {out_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
