#!/usr/bin/env python3
"""Perf-regression gate: diff a results file against a committed baseline.

Usage:
  bench_compare.py CURRENT.json BASELINE.json [options]
  bench_compare.py --self-test

Options:
  --max-regress=F   relative regression that hard-fails a modeled metric
                    (default 0.30, i.e. 30%)
  --noise-mult=F    widen the allowance to F sigma of measurement noise,
                    where sigma = 1.4826 * max(baseline MAD, current MAD)
                    (default 3.0)
  --report-only     print everything but always exit 0

Policy (DESIGN.md §11):
  * modeled metrics (deterministic simulation output) hard-fail when they
    regress, in their declared direction, by more than
    max(--max-regress, --noise-mult * sigma / |baseline median|);
  * measured metrics (host wall-clock) are annotated, never gating —
    they depend on the machine running the suite;
  * trace counters are behavioral fingerprints: a change of more than
    --max-regress in either direction hard-fails (behavior drifted),
    smaller drifts are annotated; counters missing from the current run
    (e.g. an HUPC_TRACE=0 build) only warn;
  * benchmarks present in the baseline but absent from the current run
    warn — a silently vanished benchmark must not pass the gate quietly.

Exit codes: 0 ok / annotations only, 1 hard regression, 2 usage or schema
error.
"""

import json
import sys

MAD_TO_SIGMA = 1.4826


def fail_usage(msg):
    print(f"bench_compare: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail_usage(f"{path}: {e}")
    if doc.get("schema_version") != 1:
        fail_usage(f"{path}: unsupported schema_version {doc.get('schema_version')}")
    return doc


def regression(direction, base, cur):
    """Relative regression in the metric's bad direction (positive = worse)."""
    if direction == "lower_is_better":
        return (cur - base) / abs(base)
    return (base - cur) / abs(base)


def compare(current, baseline, max_regress=0.30, noise_mult=3.0):
    """Return (failures, warnings, notes) — lists of report lines."""
    failures, warnings, notes = [], [], []

    fp_cur = current.get("fingerprint", {})
    fp_base = baseline.get("fingerprint", {})
    for key in ("build_type", "cxx_flags", "trace_level"):
        if key in fp_base and fp_cur.get(key) != fp_base.get(key):
            warnings.append(
                f"fingerprint mismatch: {key} {fp_base.get(key)!r} -> "
                f"{fp_cur.get(key)!r} (numbers may not be comparable)"
            )

    by_id = {b["id"]: b for b in current.get("benchmarks", [])}
    for base_bench in baseline.get("benchmarks", []):
        bid = base_bench["id"]
        cur_bench = by_id.get(bid)
        if cur_bench is None:
            warnings.append(f"{bid}: in baseline but missing from current run")
            continue

        for name, base_m in base_bench.get("metrics", {}).items():
            cur_m = cur_bench.get("metrics", {}).get(name)
            if cur_m is None:
                warnings.append(f"{bid} {name}: metric missing from current run")
                continue
            base_med, cur_med = base_m["median"], cur_m["median"]
            if base_med == 0:
                if cur_med != 0:
                    warnings.append(
                        f"{bid} {name}: baseline median is 0, current {cur_med:g}"
                    )
                continue
            kind = base_m.get("kind", "modeled")
            direction = base_m.get("direction", "higher_is_better")
            rel = regression(direction, base_med, cur_med)
            sigma = MAD_TO_SIGMA * max(base_m.get("mad", 0.0), cur_m.get("mad", 0.0))
            allowed = max(max_regress, noise_mult * sigma / abs(base_med))
            line = (
                f"{bid} {name}: {base_med:.6g} -> {cur_med:.6g} "
                f"({rel:+.1%} vs allowed {allowed:.1%}, {kind})"
            )
            if rel > allowed:
                if kind == "modeled":
                    failures.append(line)
                else:
                    warnings.append(line + " — measured, report-only")
            elif rel < -allowed:
                notes.append(line + " — improvement; consider refreshing the baseline")

        for name, base_v in base_bench.get("counters", {}).items():
            cur_counters = cur_bench.get("counters", {})
            if name not in cur_counters:
                warnings.append(
                    f"{bid} counter {name}: missing from current run "
                    "(trace-disabled build?)"
                )
                continue
            cur_v = cur_counters[name]
            if base_v == 0:
                if cur_v != 0:
                    warnings.append(f"{bid} counter {name}: 0 -> {cur_v}")
                continue
            drift = (cur_v - base_v) / base_v
            if abs(drift) > max_regress:
                failures.append(
                    f"{bid} counter {name}: {base_v} -> {cur_v} "
                    f"({drift:+.1%}) — behavior changed beyond {max_regress:.0%}"
                )
            elif cur_v != base_v:
                notes.append(f"{bid} counter {name}: {base_v} -> {cur_v} ({drift:+.1%})")

    base_ids = {b["id"] for b in baseline.get("benchmarks", [])}
    for bid in by_id:
        if bid not in base_ids:
            notes.append(f"{bid}: new benchmark (not in baseline)")

    return failures, warnings, notes


def run_compare(argv):
    paths, max_regress, noise_mult, report_only = [], 0.30, 3.0, False
    for arg in argv:
        if arg.startswith("--max-regress="):
            max_regress = float(arg.split("=", 1)[1])
        elif arg.startswith("--noise-mult="):
            noise_mult = float(arg.split("=", 1)[1])
        elif arg == "--report-only":
            report_only = True
        elif arg.startswith("--"):
            fail_usage(f"unknown flag {arg}")
        else:
            paths.append(arg)
    if len(paths) != 2:
        fail_usage("expected CURRENT.json BASELINE.json")

    current, baseline = load(paths[0]), load(paths[1])
    failures, warnings, notes = compare(current, baseline, max_regress, noise_mult)

    for line in failures:
        print(f"[FAIL] {line}")
    for line in warnings:
        print(f"[warn] {line}")
    for line in notes:
        print(f"[note] {line}")
    n_base = len(baseline.get("benchmarks", []))
    print(
        f"bench_compare: {n_base} baseline benchmarks checked, "
        f"{len(failures)} hard regressions, {len(warnings)} warnings"
    )
    if failures and not report_only:
        return 1
    return 0


# --- self-test -------------------------------------------------------------


def _bench(bid, metrics=None, counters=None):
    entry = {"id": bid, "repetitions": 2, "warmup": 0, "config": {}, "metrics": {}}
    for name, (median, mad, direction, kind) in (metrics or {}).items():
        entry["metrics"][name] = {
            "unit": "x",
            "direction": direction,
            "kind": kind,
            "median": median,
            "mad": mad,
            "min": median,
            "max": median,
            "mean": median,
            "ci95_lo": median,
            "ci95_hi": median,
            "samples": [median, median],
        }
    entry["counters"] = dict(counters or {})
    return entry


def _doc(benches):
    return {
        "schema_version": 1,
        "tier": "smoke",
        "fingerprint": {"build_type": "Release", "cxx_flags": "", "trace_level": 1},
        "benchmarks": benches,
    }


def self_test():
    hi, lo = "higher_is_better", "lower_is_better"
    checks = []

    def check(name, current, baseline, want_fail, **kw):
        failures, _, _ = compare(current, baseline, **kw)
        ok = bool(failures) == want_fail
        checks.append((name, ok, failures))
        print(f"{'PASS' if ok else 'FAIL'}: {name}")

    base = _doc([_bench("b.gups", {"gups": (0.30, 0.0, hi, "modeled")}, {"net.msg": 1000})])

    # 1. identical re-run (the deterministic-simulation case) passes
    check("identical re-run passes", base, base, want_fail=False)

    # 2. synthetically injected 2x slowdown on a modeled metric fails
    slow = _doc([_bench("b.gups", {"gups": (0.15, 0.0, hi, "modeled")}, {"net.msg": 1000})])
    check("2x modeled slowdown fails", slow, base, want_fail=True)

    # 3. small (10%) modeled drift under the 30% threshold passes
    drift = _doc([_bench("b.gups", {"gups": (0.27, 0.0, hi, "modeled")}, {"net.msg": 1000})])
    check("10% modeled drift tolerated", drift, base, want_fail=False)

    # 4. measured (wall-clock) metrics never hard-fail
    mbase = _doc([_bench("b.micro", {"ns": (100.0, 0.0, lo, "measured")})])
    mslow = _doc([_bench("b.micro", {"ns": (250.0, 0.0, lo, "measured")})])
    check("measured 2.5x slowdown is report-only", mslow, mbase, want_fail=False)

    # 5. noisy metric: 40% drop inside 3-sigma of MAD noise passes
    nbase = _doc([_bench("b.noisy", {"t": (100.0, 20.0, lo, "modeled")})])
    nslow = _doc([_bench("b.noisy", {"t": (140.0, 20.0, lo, "modeled")})])
    check("regression within noise band tolerated", nslow, nbase, want_fail=False)

    # 6. same 40% drop with no noise fails (lower_is_better direction)
    qbase = _doc([_bench("b.quiet", {"t": (100.0, 0.0, lo, "modeled")})])
    qslow = _doc([_bench("b.quiet", {"t": (140.0, 0.0, lo, "modeled")})])
    check("lower_is_better regression fails", qslow, qbase, want_fail=True)

    # 7. behavioral counter drift beyond threshold fails
    chatty = _doc([_bench("b.gups", {"gups": (0.30, 0.0, hi, "modeled")}, {"net.msg": 1600})])
    check("counter +60% fails", chatty, base, want_fail=True)

    # 8. counter missing from current (trace-disabled build) only warns
    untraced = _doc([_bench("b.gups", {"gups": (0.30, 0.0, hi, "modeled")})])
    check("missing counter warns, not fails", untraced, base, want_fail=False)

    # 9. improvement does not fail (direction-aware)
    fast = _doc([_bench("b.gups", {"gups": (0.90, 0.0, hi, "modeled")}, {"net.msg": 1000})])
    check("3x improvement passes", fast, base, want_fail=False)

    bad = [name for name, ok, _ in checks if not ok]
    if bad:
        print(f"bench_compare self-test: {len(bad)} FAILED: {bad}", file=sys.stderr)
        return 1
    print(f"bench_compare self-test: all {len(checks)} checks passed")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    return run_compare(argv[1:])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
