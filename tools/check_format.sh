#!/usr/bin/env bash
# clang-format compliance gate over every tracked C++ source. Run with a
# clang-format on PATH (CI installs one); exits nonzero listing offending
# files. `tools/check_format.sh fix` rewrites them in place instead.
set -u
cd "$(dirname "$0")/.."

FMT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FMT" >/dev/null 2>&1; then
  echo "error: $FMT not found (set CLANG_FORMAT or install clang-format)" >&2
  exit 2
fi

mode="${1:-check}"
files=$(git ls-files 'src/**/*.hpp' 'src/**/*.cpp' 'tests/*.cpp' \
  'bench/*.cpp' 'bench/*.hpp' 'examples/*.cpp')
if [ "$mode" = "fix" ]; then
  # shellcheck disable=SC2086
  "$FMT" -i $files
  exit 0
fi
# shellcheck disable=SC2086
"$FMT" --dry-run -Werror $files
