#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fft/kernel.hpp"
#include "util/rng.hpp"

namespace {

using hupc::fft::Complex;
using hupc::fft::dft_naive;
using hupc::fft::fft_2d;
using hupc::fft::fft_3d_serial;
using hupc::fft::fft_flops;
using hupc::fft::fft_inplace;
using hupc::fft::fft_strided;
using hupc::fft::is_pow2;

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  hupc::util::Xoshiro256ss rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex(rng.uniform() - 0.5, rng.uniform() - 0.5);
  return v;
}

double max_diff(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 17 + n);
  const auto expected = dft_naive(signal, -1);
  fft_inplace(signal, -1);
  EXPECT_LT(max_diff(signal, expected), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, RoundTripRecoversInput) {
  const std::size_t n = GetParam();
  const auto original = random_signal(n, 5 + n);
  auto work = original;
  fft_inplace(work, -1);
  fft_inplace(work, +1);
  for (auto& v : work) v /= static_cast<double>(n);
  EXPECT_LT(max_diff(work, original), 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Pow2, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> v(64, Complex(0, 0));
  v[0] = Complex(1, 0);
  fft_inplace(v, -1);
  for (const auto& x : v) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, LinearityProperty) {
  const std::size_t n = 128;
  auto a = random_signal(n, 1), b = random_signal(n, 2);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  fft_inplace(a, -1);
  fft_inplace(b, -1);
  fft_inplace(sum, -1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(sum[i] - (2.0 * a[i] + 3.0 * b[i])), 1e-9);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  const std::size_t n = 256;
  auto v = random_signal(n, 9);
  double time_energy = 0;
  for (const auto& x : v) time_energy += std::norm(x);
  fft_inplace(v, -1);
  double freq_energy = 0;
  for (const auto& x : v) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-8 * time_energy * static_cast<double>(n));
}

TEST(Fft, StridedMatchesContiguous) {
  const std::size_t n = 64, stride = 5;
  auto packed = random_signal(n, 3);
  std::vector<Complex> sparse(n * stride, Complex(7, 7));
  for (std::size_t i = 0; i < n; ++i) sparse[i * stride] = packed[i];
  fft_inplace(packed, -1);
  fft_strided(sparse.data(), n, stride, 1, 0, -1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(sparse[i * stride] - packed[i]), 1e-10);
  }
  // Untouched gaps stay untouched.
  EXPECT_EQ(sparse[1], Complex(7, 7));
}

TEST(Fft, TwoDRoundTrip) {
  const std::size_t nx = 16, ny = 32;
  auto plane = random_signal(nx * ny, 21);
  const auto original = plane;
  fft_2d(plane.data(), nx, ny, -1);
  fft_2d(plane.data(), nx, ny, +1);
  for (auto& v : plane) v /= static_cast<double>(nx * ny);
  EXPECT_LT(max_diff(plane, original), 1e-9);
}

TEST(Fft, ThreeDRoundTrip) {
  const std::size_t nx = 8, ny = 16, nz = 4;
  auto grid = random_signal(nx * ny * nz, 33);
  const auto original = grid;
  fft_3d_serial(grid.data(), nx, ny, nz, -1);
  fft_3d_serial(grid.data(), nx, ny, nz, +1);
  for (auto& v : grid) v /= static_cast<double>(nx * ny * nz);
  EXPECT_LT(max_diff(grid, original), 1e-9);
}

TEST(Fft, ThreeDSingleModeIsComplexExponential) {
  // A pure frequency mode must transform to a single spike.
  const std::size_t nx = 8, ny = 8, nz = 8;
  std::vector<Complex> grid(nx * ny * nz);
  const std::size_t kx = 2, ky = 3, kz = 1;
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t x = 0; x < nx; ++x) {
      for (std::size_t y = 0; y < ny; ++y) {
        // e^{+i 2 pi k.x/N}: the forward transform (sign -1) collapses this
        // to a single spike at k.
        const double phase =
            2.0 * M_PI *
            (static_cast<double>(kx * x) / nx + static_cast<double>(ky * y) / ny +
             static_cast<double>(kz * z) / nz);
        grid[(z * nx + x) * ny + y] = Complex(std::cos(phase), std::sin(phase));
      }
    }
  }
  fft_3d_serial(grid.data(), nx, ny, nz, -1);
  const double total = static_cast<double>(nx * ny * nz);
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t x = 0; x < nx; ++x) {
      for (std::size_t y = 0; y < ny; ++y) {
        const double expected =
            (x == kx && y == ky && z == kz) ? total : 0.0;
        EXPECT_NEAR(std::abs(grid[(z * nx + x) * ny + y]), expected, 1e-8)
            << x << "," << y << "," << z;
      }
    }
  }
}

TEST(Fft, FlopsFormula) {
  EXPECT_DOUBLE_EQ(fft_flops(8), 5.0 * 8 * 3);
  EXPECT_DOUBLE_EQ(fft_flops(1024), 5.0 * 1024 * 10);
}

TEST(Fft, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
}

}  // namespace
