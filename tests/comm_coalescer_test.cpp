// The per-destination coalescing engine (src/comm) and its gas::Thread
// epoch API: read-your-writes via conflict flush, deferred-put visibility,
// deterministic flush ordering, counter/trace reconciliation, and the
// no-epoch bit-identity guarantee.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/coalescer.hpp"
#include "gas/gas.hpp"
#include "sched/work_stealing.hpp"
#include "sim/sim.hpp"
#include "stream/random_access.hpp"
#include "trace/trace.hpp"

namespace {

using namespace hupc;  // NOLINT: test-local convenience
using gas::Runtime;
using gas::Thread;

gas::Config cfg(int threads, int nodes, trace::Tracer* tracer = nullptr) {
  gas::Config c;
  c.machine = topo::lehman(nodes);
  c.threads = threads;
  c.tracer = tracer;
  return c;
}

TEST(Coalescer, ReadYourWritesViaConflictFlush) {
  sim::Engine e;
  Runtime rt(e, cfg(2, 2));  // one rank per node: rank 1 is remote
  auto cells = rt.heap().all_alloc<std::uint64_t>(2, 1);
  *cells.at(0).raw = 0;
  *cells.at(1).raw = 0;
  std::uint64_t before_flush = 99, observed = 0;
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    if (t.rank() == 0) {
      t.begin_coalesce();
      co_await t.put(cells.at(1), std::uint64_t{42});
      before_flush = *cells.at(1).raw;  // put is DEFERRED: still the old 0
      observed = co_await t.get(cells.at(1));  // conflict flush, then read
      co_await t.end_coalesce();
    }
    co_await t.barrier();
  });
  rt.run_to_completion();
  EXPECT_EQ(before_flush, 0u);
  EXPECT_EQ(observed, 42u);
  const comm::Stats* s = rt.thread(0).coalesce_stats();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->puts_deferred, 1u);
  EXPECT_EQ(s->flushes_conflict, 1u);
}

TEST(Coalescer, NonOverlappingReadDoesNotFlushBufferedPuts) {
  sim::Engine e;
  Runtime rt(e, cfg(2, 2));
  auto cells = rt.heap().all_alloc<std::uint64_t>(4, 2);  // 2 words per rank
  for (int i = 0; i < 4; ++i) *cells.at(i).raw = 7;
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    if (t.rank() == 0) {
      t.begin_coalesce();
      co_await t.put(cells.at(2), std::uint64_t{1});  // rank 1's word 0
      // Reading rank 1's OTHER word must not force the put out.
      (void)co_await t.get(cells.at(3));
      EXPECT_EQ(*cells.at(2).raw, 7u);  // still buffered
      co_await t.end_coalesce();
      EXPECT_EQ(*cells.at(2).raw, 1u);  // fence applied it
    }
    co_await t.barrier();
  });
  rt.run_to_completion();
  const comm::Stats* s = rt.thread(0).coalesce_stats();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->flushes_conflict, 0u);
  EXPECT_EQ(s->flushes_fence, 1u);
  EXPECT_EQ(s->ops_absorbed, 2u);  // one put + one get, one message
  EXPECT_EQ(s->flush_messages, 1u);
}

TEST(Coalescer, CapacityTriggersIntermediateFlushes) {
  sim::Engine e;
  Runtime rt(e, cfg(2, 2));
  auto cells = rt.heap().all_alloc<std::uint64_t>(32, 16);
  for (int i = 0; i < 32; ++i) *cells.at(i).raw = 0;
  comm::Params p;
  p.max_ops = 4;
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    if (t.rank() == 0) {
      t.begin_coalesce(p);
      for (int i = 0; i < 10; ++i) {
        co_await t.put(cells.at(16 + i), static_cast<std::uint64_t>(i + 1));
      }
      co_await t.end_coalesce();
    }
    co_await t.barrier();
  });
  rt.run_to_completion();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(*cells.at(16 + i).raw, static_cast<std::uint64_t>(i + 1));
  }
  const comm::Stats* s = rt.thread(0).coalesce_stats();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->flushes_capacity, 2u);  // ops 4 and 8
  EXPECT_EQ(s->flushes_fence, 1u);     // the trailing 2
  EXPECT_EQ(s->flush_messages, 3u);
  EXPECT_EQ(rt.network().total_aggregated(), 3u);
  EXPECT_EQ(rt.network().total_coalesced_ops(), 10u);
}

TEST(Coalescer, BarrierFencesBufferedPutsForPeers) {
  sim::Engine e;
  Runtime rt(e, cfg(2, 2));
  auto cells = rt.heap().all_alloc<std::uint64_t>(2, 1);
  *cells.at(0).raw = 0;
  *cells.at(1).raw = 0;
  std::uint64_t seen_by_peer = 0;
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    if (t.rank() == 0) {
      t.begin_coalesce();
      co_await t.put(cells.at(1), std::uint64_t{5});
      co_await t.barrier();  // fence: flushes though the epoch stays open
      EXPECT_TRUE(t.coalescing());
      co_await t.end_coalesce();
    } else {
      co_await t.barrier();
      seen_by_peer = *cells.at(1).raw;  // own cell, plain load after fence
    }
    co_await t.barrier();
  });
  rt.run_to_completion();
  EXPECT_EQ(seen_by_peer, 5u);
}

TEST(Coalescer, BulkCopyToSameNodeFencesThatDestination) {
  sim::Engine e;
  Runtime rt(e, cfg(2, 2));
  auto cells = rt.heap().all_alloc<std::uint64_t>(8, 4);
  for (int i = 0; i < 8; ++i) *cells.at(i).raw = 0;
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    if (t.rank() == 0) {
      t.begin_coalesce();
      co_await t.put(cells.at(4), std::uint64_t{11});
      // A bulk copy into node 1 must be ordered after the buffered put.
      const std::uint64_t src[2] = {21, 22};
      co_await t.copy(cells.at(6), src, 2);
      EXPECT_EQ(*cells.at(4).raw, 11u);  // fenced out by the bulk transfer
      co_await t.end_coalesce();
    }
    co_await t.barrier();
  });
  rt.run_to_completion();
  EXPECT_EQ(*cells.at(6).raw, 21u);
  EXPECT_EQ(*cells.at(7).raw, 22u);
  const comm::Stats* s = rt.thread(0).coalesce_stats();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->flushes_fence, 1u);  // the copy's fence; epoch end had nothing
}

TEST(Coalescer, RaiiGuardAbandonStillAppliesPutsUncharged) {
  sim::Engine e;
  Runtime rt(e, cfg(2, 2));
  auto cells = rt.heap().all_alloc<std::uint64_t>(2, 1);
  *cells.at(0).raw = 0;
  *cells.at(1).raw = 0;
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    if (t.rank() == 0) {
      {
        gas::CoalesceEpoch epoch(t);
        co_await t.put(cells.at(1), std::uint64_t{7});
        // Guard destroyed without end(): the unwind path.
      }
      EXPECT_FALSE(t.coalescing());
    }
    co_await t.barrier();
  });
  rt.run_to_completion();
  EXPECT_EQ(*cells.at(1).raw, 7u);  // memory stays verifiable
  const comm::Stats* s = rt.thread(0).coalesce_stats();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->abandoned_ops, 1u);
  EXPECT_EQ(s->flush_messages, 0u);
  EXPECT_EQ(rt.network().total_aggregated(), 0u);  // never charged
}

TEST(Coalescer, EpochsDoNotNestAndConfigRejectsNonsense) {
  sim::Engine e;
  Runtime rt(e, cfg(2, 2));
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    if (t.rank() == 0) {
      t.begin_coalesce();
      EXPECT_THROW(t.begin_coalesce(), std::logic_error);
      comm::Params bad_ops;
      bad_ops.max_ops = 0;
      EXPECT_THROW(t.begin_coalesce(bad_ops), std::logic_error);  // nested
      co_await t.end_coalesce();
      EXPECT_THROW(t.begin_coalesce(bad_ops), std::invalid_argument);
      comm::Params bad_scale;
      bad_scale.api_scale = 0.0;
      EXPECT_THROW(t.begin_coalesce(bad_scale), std::invalid_argument);
      EXPECT_FALSE(t.coalescing());
    }
    co_await t.barrier();
  });
  rt.run_to_completion();
}

// Every rank puts a burst to every other node, then ends the epoch: the
// coalescer's own stats, the network's aggregation counters, and the trace
// counter stream must all tell the same story.
TEST(Coalescer, CountersReconcileWithNetworkAndTrace) {
  trace::Tracer tracer;
  sim::Engine e;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerPeer = 8;
  Runtime rt(e, cfg(kThreads, 4, &tracer));  // one rank per node
  auto cells =
      rt.heap().all_alloc<std::uint64_t>(kThreads * kThreads * kPerPeer,
                                         kThreads * kPerPeer);
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    t.begin_coalesce();
    for (int peer = 0; peer < t.threads(); ++peer) {
      if (peer == t.rank()) continue;
      for (std::uint64_t k = 0; k < kPerPeer; ++k) {
        const auto idx = static_cast<std::uint64_t>(peer) * kThreads *
                             kPerPeer +
                         static_cast<std::uint64_t>(t.rank()) * kPerPeer + k;
        co_await t.put(cells.at(idx), idx);
      }
    }
    co_await t.end_coalesce();
    co_await t.barrier();
  });
  rt.run_to_completion();

  std::uint64_t flushes = 0, absorbed = 0;
  for (int r = 0; r < kThreads; ++r) {
    const comm::Stats* s = rt.thread(r).coalesce_stats();
    ASSERT_NE(s, nullptr);
    flushes += s->flush_messages;
    absorbed += s->ops_absorbed;
    EXPECT_EQ(s->ops_absorbed, kPerPeer * (kThreads - 1));
  }
  EXPECT_EQ(flushes, static_cast<std::uint64_t>(kThreads) * (kThreads - 1));
  EXPECT_EQ(absorbed, kPerPeer * kThreads * (kThreads - 1));
  // Network view: every flush became one aggregated message.
  EXPECT_EQ(rt.network().total_aggregated(), flushes);
  EXPECT_EQ(rt.network().total_coalesced_ops(), absorbed);
  // Trace view: the counter stream carries the identical totals (unless
  // the instrumentation is compiled out entirely).
  if (trace::kEnabled) {
    EXPECT_EQ(tracer.counter_total("comm.flush.msgs"), flushes);
    EXPECT_EQ(tracer.counter_total("comm.flush.ops"), absorbed);
    EXPECT_EQ(tracer.counter_total("net.aggregated"), flushes);
    EXPECT_EQ(tracer.counter_total("net.coalesced_ops"), absorbed);
    EXPECT_EQ(tracer.counter_total("gas.access.coalesced"), absorbed);
  }
  // Every deferred value landed.
  for (int peer = 0; peer < kThreads; ++peer) {
    for (int r = 0; r < kThreads; ++r) {
      if (peer == r) continue;
      for (std::uint64_t k = 0; k < kPerPeer; ++k) {
        const auto idx =
            static_cast<std::uint64_t>(peer) * kThreads * kPerPeer +
            static_cast<std::uint64_t>(r) * kPerPeer + k;
        EXPECT_EQ(*cells.at(idx).raw, idx);
      }
    }
  }
}

// Fixed seed, two runs, byte-identical schedules: final virtual time and
// the full trace summary must match exactly.
std::pair<double, std::string> coalesced_scatter_run() {
  trace::Tracer tracer;
  sim::Engine e;
  Runtime rt(e, cfg(8, 4, &tracer));  // 2 ranks per node
  auto cells = rt.heap().all_alloc<std::uint64_t>(64, 8);
  for (int i = 0; i < 64; ++i) *cells.at(i).raw = 0;
  comm::Params p;
  p.max_ops = 6;
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    t.begin_coalesce(p);
    std::uint64_t x = 0x9E3779B97F4A7C15ULL * (t.rank() + 1);
    for (int i = 0; i < 40; ++i) {
      x = stream::RandomAccess::hpcc_next(x);
      const auto idx = x % 64;
      const int owner = cells.owner_of(idx);
      if (t.runtime().node_of(owner) != t.node()) {
        (void)co_await t.fetch_xor(cells.at(idx), x);
      }
    }
    co_await t.end_coalesce();
    co_await t.barrier();
  });
  rt.run_to_completion();
  std::ostringstream os;
  tracer.export_summary(os);
  return {sim::to_seconds(e.now()), os.str()};
}

TEST(Coalescer, FlushScheduleIsDeterministic) {
  const auto [t1, s1] = coalesced_scatter_run();
  const auto [t2, s2] = coalesced_scatter_run();
  EXPECT_EQ(t1, t2);  // bit-identical virtual end time
  EXPECT_EQ(s1, s2);  // identical event/counter stream
}

// With no epoch open, the coalescing engine must be invisible: no
// aggregated messages, no per-thread stats, and a bit-identical repeat.
std::pair<double, std::string> plain_run() {
  trace::Tracer tracer;
  sim::Engine e;
  Runtime rt(e, cfg(4, 2, &tracer));
  auto cells = rt.heap().all_alloc<std::uint64_t>(4, 1);
  for (int i = 0; i < 4; ++i) *cells.at(i).raw = 0;
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    co_await t.barrier();
    const int peer = (t.rank() + 2) % 4;  // cross-node partner
    co_await t.put(cells.at(peer), static_cast<std::uint64_t>(t.rank()));
    (void)co_await t.fetch_add(cells.at(peer), std::uint64_t{1});
    co_await t.barrier();
    EXPECT_FALSE(t.coalescing());
    EXPECT_EQ(t.coalesce_stats(), nullptr);  // engine never engaged
  });
  rt.run_to_completion();
  EXPECT_EQ(rt.network().total_aggregated(), 0u);
  EXPECT_EQ(rt.network().total_coalesced_ops(), 0u);
  EXPECT_EQ(tracer.counter_total("gas.access.coalesced"), 0u);
  std::ostringstream os;
  tracer.export_summary(os);
  return {sim::to_seconds(e.now()), os.str()};
}

TEST(Coalescer, NoEpochRunsAreBitIdenticalAndUninstrumented) {
  const auto [t1, s1] = plain_run();
  const auto [t2, s2] = plain_run();
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(s1, s2);
}

TEST(Coalescer, GupsCoalescedRestoresTableAndBeatsNaive) {
  auto gups = [](stream::GupsVariant v) {
    sim::Engine e;
    Runtime rt(e, cfg(16, 4));
    stream::RandomAccess ra(rt, 14);
    const auto r = ra.run(v, 1024, /*passes=*/2);
    EXPECT_TRUE(ra.verify());  // xor involution across deferred flushes
    return r.gups;
  };
  const double naive = gups(stream::GupsVariant::naive);
  const double coalesced = gups(stream::GupsVariant::coalesced);
  EXPECT_GT(coalesced, 1.5 * naive);
}

struct Item {
  int value;
  int splits_left;
};

void split_process(const Item& item, std::vector<Item>& out) {
  if (item.splits_left > 0) {
    out.push_back(Item{item.value * 2, item.splits_left - 1});
    out.push_back(Item{item.value * 2 + 1, item.splits_left - 1});
  }
}

TEST(Coalescer, StealProbeEpochsPreserveWorkConservation) {
  sim::Engine e;
  Runtime rt(e, cfg(8, 2));
  sched::StealParams params;
  params.granularity = 2;
  params.chunk = 2;
  params.coalesce_probes = true;
  sched::WorkStealing<Item> ws(rt, params, split_process);
  ws.seed_work(0, {Item{1, 12}});  // 2^13 - 1 = 8191 items
  rt.spmd([&ws](Thread& t) -> sim::Task<void> { co_await ws.run(t); });
  rt.run_to_completion();
  EXPECT_EQ(ws.total_processed(), 8191u);
  EXPECT_EQ(ws.outstanding(), 0);
  // Remote probe sweeps actually aggregated (ranks span 2 nodes).
  std::uint64_t absorbed = 0;
  for (int r = 0; r < 8; ++r) {
    if (const comm::Stats* s = rt.thread(r).coalesce_stats()) {
      absorbed += s->ops_absorbed;
    }
  }
  EXPECT_GT(absorbed, 0u);
}

}  // namespace
