// SUMMA over 2-D blocked arrays and overlapping row/column teams.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gas/gas.hpp"
#include "linalg/summa.hpp"

namespace {

using namespace hupc;  // NOLINT: test-local convenience
using linalg::ProcessGrid;
using linalg::Summa;

gas::Config cfg(int threads, int nodes) {
  gas::Config c;
  c.machine = topo::lehman(nodes);
  c.threads = threads;
  return c;
}

std::vector<double> reference_matmul(const std::vector<double>& a,
                                     const std::vector<double>& b,
                                     std::size_t m, std::size_t n,
                                     std::size_t k) {
  std::vector<double> c(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += a[i * k + kk] * b[kk * n + j];
      }
    }
  }
  return c;
}

class SummaParam
    : public ::testing::TestWithParam<
          std::tuple<int, std::size_t, std::size_t, std::size_t>> {};

TEST_P(SummaParam, MatchesReferenceMultiply) {
  const auto [p, m, n, k] = GetParam();
  sim::Engine e;
  gas::Runtime rt(e, cfg(p * p, 2));
  Summa summa(rt, ProcessGrid{p, p}, m, n, k);
  summa.fill(42);
  const auto a = summa.dense_a();
  const auto b = summa.dense_b();

  rt.spmd([&summa](gas::Thread& t) -> sim::Task<void> {
    co_await summa.run(t);
  });
  rt.run_to_completion();

  const auto c = summa.dense_c();
  const auto ref = reference_matmul(a, b, m, n, k);
  double max_err = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    max_err = std::max(max_err, std::abs(c[i] - ref[i]));
  }
  EXPECT_LT(max_err, 1e-11 * static_cast<double>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SummaParam,
    ::testing::Values(std::tuple{1, 4ul, 4ul, 4ul},
                      std::tuple{2, 8ul, 8ul, 8ul},
                      std::tuple{2, 16ul, 8ul, 12ul},
                      std::tuple{3, 9ul, 6ul, 12ul},
                      std::tuple{4, 16ul, 16ul, 16ul}));

TEST(Summa, RejectsInvalidConfigurations) {
  sim::Engine e;
  gas::Runtime rt(e, cfg(4, 1));
  EXPECT_THROW(Summa(rt, ProcessGrid{2, 1}, 4, 4, 4), std::invalid_argument);
  EXPECT_THROW(Summa(rt, ProcessGrid{3, 3}, 9, 9, 9), std::invalid_argument);
  EXPECT_THROW(Summa(rt, ProcessGrid{2, 2}, 5, 4, 4), std::invalid_argument);
}

TEST(Summa, ScalesWithGridAcrossNodes) {
  // Fixed problem, growing grid: virtual time must drop.
  // Large enough that compute dominates the broadcasts at p = 4.
  auto timed = [](int p, int nodes) {
    sim::Engine e;
    gas::Runtime rt(e, cfg(p * p, nodes));
    Summa summa(rt, ProcessGrid{p, p}, 256, 256, 256);
    summa.fill(7);
    rt.spmd([&summa](gas::Thread& t) -> sim::Task<void> {
      co_await summa.run(t);
    });
    rt.run_to_completion();
    return sim::to_seconds(e.now());
  };
  const double t1 = timed(1, 1);
  const double t2 = timed(2, 1);
  const double t4 = timed(4, 2);
  EXPECT_LT(t2, t1);
  EXPECT_LT(t4, t2);
}

TEST(Summa, GridRankMapping) {
  ProcessGrid g{3, 3};
  EXPECT_EQ(g.rank_of(1, 2), 5);
  EXPECT_EQ(g.row_of(5), 1);
  EXPECT_EQ(g.col_of(5), 2);
  EXPECT_EQ(g.rank_of(g.row_of(7), g.col_of(7)), 7);
}

}  // namespace
