#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "uts/sha1.hpp"
#include "uts/tree.hpp"

namespace {

using namespace hupc::uts;  // NOLINT: test-local convenience

std::span<const std::uint8_t> bytes(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s), std::strlen(s)};
}

// FIPS 180-1 known-answer tests.
TEST(Sha1, KnownAnswerEmpty) {
  EXPECT_EQ(to_hex(sha1(bytes(""))), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, KnownAnswerAbc) {
  EXPECT_EQ(to_hex(sha1(bytes("abc"))), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, KnownAnswerTwoBlockMessage) {
  EXPECT_EQ(to_hex(sha1(bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, KnownAnswerMillionA) {
  std::vector<std::uint8_t> msg(1'000'000, 'a');
  EXPECT_EQ(to_hex(sha1(msg)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, PaddingBoundaries) {
  // Lengths around the 55/56/63/64-byte padding edge cases must not crash
  // and must be distinct.
  std::set<std::string> seen;
  for (std::size_t n : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::vector<std::uint8_t> msg(n, 0x42);
    EXPECT_TRUE(seen.insert(to_hex(sha1(msg))).second) << n;
  }
}

TEST(Sha1, SplitStateIsDeterministicAndSensitiveToIndex) {
  const Digest parent = sha1(bytes("root"));
  EXPECT_EQ(split_state(parent, 0), split_state(parent, 0));
  EXPECT_NE(split_state(parent, 0), split_state(parent, 1));
  EXPECT_NE(split_state(parent, 0), split_state(parent, 0x100));
}

TEST(Sha1, UniformFromInUnitInterval) {
  Digest d = sha1(bytes("x"));
  for (int i = 0; i < 100; ++i) {
    const double u = uniform_from(d);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    d = split_state(d, static_cast<std::uint32_t>(i));
  }
}

TEST(Tree, RootIsDepthZeroWithConfiguredFanout) {
  TreeParams p;
  p.b0 = 100;
  const Node root = root_node(p);
  EXPECT_EQ(root.depth, 0u);
  EXPECT_EQ(num_children(p, root), 100);
}

TEST(Tree, BinomialEnumerationIsDeterministic) {
  TreeParams p;
  p.b0 = 500;
  p.root_seed = 7;
  const TreeStats a = enumerate(p);
  const TreeStats b = enumerate(p);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.max_depth, b.max_depth);
  EXPECT_GT(a.nodes, 500u);  // at least root + its children
}

TEST(Tree, DifferentSeedsGiveDifferentTrees) {
  TreeParams p;
  p.b0 = 500;
  p.root_seed = 1;
  const auto a = enumerate(p);
  p.root_seed = 2;
  const auto b = enumerate(p);
  EXPECT_NE(a.nodes, b.nodes);
}

TEST(Tree, NodeAccountingIsConsistent) {
  TreeParams p;
  p.b0 = 200;
  p.root_seed = 3;
  std::uint64_t visited = 0;
  std::uint64_t children_total = 0;
  const TreeStats stats = enumerate(p, [&](const Node& n) {
    ++visited;
    children_total += static_cast<std::uint64_t>(num_children(p, n));
  });
  EXPECT_EQ(visited, stats.nodes);
  // Every node except the root is someone's child.
  EXPECT_EQ(children_total, stats.nodes - 1);
}

TEST(Tree, GeometricRespectsDepthLimit) {
  TreeParams p;
  p.shape = Shape::geometric;
  p.geo_b = 3.0;
  p.max_depth = 5;
  p.root_seed = 11;
  const TreeStats stats = enumerate(p);
  EXPECT_LE(stats.max_depth, 6u);  // children of depth-5 nodes are cut off
  EXPECT_GT(stats.nodes, 1u);
}

TEST(Tree, BinomialIsHeavyTailedAcrossSeeds) {
  // The load-imbalance property the benchmark depends on: subtree sizes
  // vary wildly. Sample the size of single-child subtrees.
  TreeParams p;
  p.b0 = 1;  // a root with one child: the child's subtree is binomial
  std::uint64_t min_nodes = UINT64_MAX, max_nodes = 0;
  for (std::uint32_t seed = 0; seed < 40; ++seed) {
    p.root_seed = seed;
    const auto s = enumerate(p);
    min_nodes = std::min(min_nodes, s.nodes);
    max_nodes = std::max(max_nodes, s.nodes);
  }
  EXPECT_LE(min_nodes, 3u);        // many immediate die-outs
  EXPECT_GE(max_nodes, 50u);       // and some long chains
}

}  // namespace
