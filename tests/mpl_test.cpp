#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "gas/gas.hpp"
#include "mpl/mpi.hpp"

namespace {

using namespace hupc;  // NOLINT: test-local convenience
using gas::Config;
using gas::Runtime;
using gas::Thread;
using mpl::Mpi;

Config cfg(int threads, int nodes) {
  Config c;
  c.machine = topo::lehman(nodes);
  c.threads = threads;
  return c;
}

TEST(Mpi, SendRecvDeliversAcrossNodes) {
  sim::Engine e;
  Runtime rt(e, cfg(2, 2));
  Mpi mpi(rt);
  std::vector<int> payload(256);
  std::iota(payload.begin(), payload.end(), 0);
  std::vector<int> inbox(256, -1);
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    if (t.rank() == 0) {
      co_await mpi.send(t, 1, 7, payload.data(), payload.size() * sizeof(int));
    } else {
      co_await mpi.recv(t, 0, 7, inbox.data(), inbox.size() * sizeof(int));
    }
  });
  rt.run_to_completion();
  EXPECT_EQ(inbox, payload);
  EXPECT_GE(rt.network().total_messages(), 1u);
}

TEST(Mpi, RecvBeforeSendAlsoMatches) {
  sim::Engine e;
  Runtime rt(e, cfg(2, 2));
  Mpi mpi(rt);
  int value = 0;
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    if (t.rank() == 1) {
      // Receiver posts first (sender delayed).
      co_await mpi.recv(t, 0, 3, &value, sizeof value);
    } else {
      co_await t.compute(5e-6);
      const int v = 99;
      co_await mpi.send(t, 1, 3, &v, sizeof v);
    }
  });
  rt.run_to_completion();
  EXPECT_EQ(value, 99);
}

TEST(Mpi, TagsKeepStreamsSeparate) {
  sim::Engine e;
  Runtime rt(e, cfg(2, 2));
  Mpi mpi(rt);
  int a = 0, b = 0;
  rt.spmd([&](Thread& t) -> sim::Task<void> {
    if (t.rank() == 0) {
      const int x = 1, y = 2;
      co_await mpi.send(t, 1, 20, &y, sizeof y);  // tag 20 first
      co_await mpi.send(t, 1, 10, &x, sizeof x);
    } else {
      co_await mpi.recv(t, 0, 10, &a, sizeof a);  // posted out of order
      co_await mpi.recv(t, 0, 20, &b, sizeof b);
    }
  });
  rt.run_to_completion();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

class AlltoallParam
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(AlltoallParam, ContentCorrectAcrossShapes) {
  const auto [threads, nodes, hierarchical] = GetParam();
  sim::Engine e;
  Runtime rt(e, cfg(threads, nodes));
  Mpi mpi(rt);
  const std::size_t per = 16;  // ints per pair
  std::vector<std::vector<int>> send(static_cast<std::size_t>(threads));
  std::vector<std::vector<int>> recv(static_cast<std::size_t>(threads));
  for (int r = 0; r < threads; ++r) {
    send[static_cast<std::size_t>(r)].resize(per * static_cast<std::size_t>(threads));
    recv[static_cast<std::size_t>(r)].assign(per * static_cast<std::size_t>(threads), -1);
    for (int p = 0; p < threads; ++p) {
      for (std::size_t i = 0; i < per; ++i) {
        send[static_cast<std::size_t>(r)][static_cast<std::size_t>(p) * per + i] =
            r * 100000 + p * 100 + static_cast<int>(i);
      }
    }
  }
  rt.spmd([&, hierarchical](Thread& t) -> sim::Task<void> {
    const auto r = static_cast<std::size_t>(t.rank());
    if (hierarchical) {
      co_await mpi.alltoall(t, send[r].data(), recv[r].data(),
                            per * sizeof(int));
    } else {
      co_await mpi.pairwise_alltoall(t, send[r].data(), recv[r].data(),
                                     per * sizeof(int));
    }
  });
  rt.run_to_completion();
  for (int r = 0; r < threads; ++r) {
    for (int p = 0; p < threads; ++p) {
      for (std::size_t i = 0; i < per; ++i) {
        EXPECT_EQ(recv[static_cast<std::size_t>(r)][static_cast<std::size_t>(p) * per + i],
                  p * 100000 + r * 100 + static_cast<int>(i))
            << "r=" << r << " p=" << p << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AlltoallParam,
    ::testing::Values(std::tuple{1, 1, true}, std::tuple{4, 1, true},
                      std::tuple{4, 2, true}, std::tuple{8, 2, true},
                      std::tuple{8, 4, true}, std::tuple{16, 4, true},
                      std::tuple{6, 2, true},  // uneven last node? no: 3/node
                      std::tuple{4, 2, false}, std::tuple{16, 4, false}));

TEST(Mpi, HierarchicalAlltoallSendsFewerNetworkMessages) {
  auto count = [](bool hierarchical) {
    sim::Engine e;
    Runtime rt(e, cfg(16, 4));
    Mpi mpi(rt);
    static std::vector<std::vector<char>> send(16), recv(16);
    for (int r = 0; r < 16; ++r) {
      send[static_cast<std::size_t>(r)].assign(16 * 1024, 'a');
      recv[static_cast<std::size_t>(r)].assign(16 * 1024, 'b');
    }
    rt.spmd([&, hierarchical](Thread& t) -> sim::Task<void> {
      const auto r = static_cast<std::size_t>(t.rank());
      if (hierarchical) {
        co_await mpi.alltoall(t, send[r].data(), recv[r].data(), 1024);
      } else {
        co_await mpi.pairwise_alltoall(t, send[r].data(), recv[r].data(), 1024);
      }
    });
    rt.run_to_completion();
    return rt.network().total_messages();
  };
  const auto flat = count(false);
  const auto hier = count(true);
  // Flat: 16 ranks x 12 off-node peers = 192 messages.
  // Hierarchical: 4 leaders x 3 peer nodes = 12 messages.
  EXPECT_EQ(flat, 192u);
  EXPECT_EQ(hier, 12u);
}

TEST(Mpi, HierarchicalBeatsFlatForSmallMessages) {
  // The node-aware algorithm's edge is message aggregation: at tiny
  // per-pair sizes the flat exchange pays THREADS^2 per-message API and
  // latency costs, the hierarchical one only nodes^2.
  auto timed = [](bool hierarchical) {
    sim::Engine e;
    Runtime rt(e, cfg(64, 8));  // 8 ranks/node
    Mpi mpi(rt);
    static std::vector<std::vector<char>> send(64), recv(64);
    const std::size_t per = 64;
    for (int r = 0; r < 64; ++r) {
      send[static_cast<std::size_t>(r)].assign(64 * per, 'a');
      recv[static_cast<std::size_t>(r)].assign(64 * per, 'b');
    }
    rt.spmd([&, hierarchical](Thread& t) -> sim::Task<void> {
      const auto r = static_cast<std::size_t>(t.rank());
      if (hierarchical) {
        co_await mpi.alltoall(t, send[r].data(), recv[r].data(), per);
      } else {
        co_await mpi.pairwise_alltoall(t, send[r].data(), recv[r].data(), per);
      }
    });
    rt.run_to_completion();
    return sim::to_seconds(e.now());
  };
  EXPECT_LT(timed(true), timed(false));
}

}  // namespace
